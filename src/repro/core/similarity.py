"""Vector similarity (Definitions 7 & 8).

Similarity between a sampling vector and a signature vector is the
reciprocal Euclidean distance, with two refinements from the paper:

* components whose sampling value is ``*`` (NaN) contribute zero
  difference (Eq. 7 — the fault-tolerant masked difference);
* an exact match has infinite similarity (handled explicitly — the
  tracker compares squared distances, where 0 is a perfectly ordinary
  minimum).
"""

from __future__ import annotations

import numpy as np

__all__ = ["vector_difference", "sq_distance", "similarity", "similarity_matrix"]


def vector_difference(v1: np.ndarray, v2: np.ndarray) -> np.ndarray:
    """Masked component-wise difference of Eq. 7.

    Components where *either* vector holds ``*`` (NaN) difference to 0 —
    a silent pair neither supports nor contradicts any face.
    """
    v1 = np.asarray(v1, dtype=float)
    v2 = np.asarray(v2, dtype=float)
    if v1.shape != v2.shape:
        raise ValueError(f"vector shapes differ: {v1.shape} vs {v2.shape}")
    diff = v1 - v2
    return np.where(np.isnan(diff), 0.0, diff)


def sq_distance(v1: np.ndarray, v2: np.ndarray) -> float:
    """Squared masked Euclidean distance."""
    d = vector_difference(v1, v2)
    return float(d @ d)


def similarity(v1: np.ndarray, v2: np.ndarray) -> float:
    """Definition 7: ``S = 1 / ||v1 - v2||``; ``inf`` on exact match."""
    d2 = sq_distance(v1, v2)
    if d2 == 0.0:
        return float("inf")
    return 1.0 / float(np.sqrt(d2))


def similarity_matrix(vectors: np.ndarray, signatures: np.ndarray) -> np.ndarray:
    """Similarities between rows of *vectors* (Q, P) and *signatures* (F, P).

    Vectorized batch form used by analysis code; NaN components of the
    sampling vectors are masked per Eq. 7.  Exact matches map to ``inf``.
    """
    vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
    signatures = np.atleast_2d(np.asarray(signatures, dtype=float))
    if vectors.shape[1] != signatures.shape[1]:
        raise ValueError(
            f"dimension mismatch: vectors {vectors.shape} vs signatures {signatures.shape}"
        )
    v = np.where(np.isnan(vectors), 0.0, vectors)
    mask = (~np.isnan(vectors)).astype(float)  # (Q, P)
    # d2[q, f] = sum_p mask[q,p] * (v[q,p] - s[f,p])^2
    #         = sum v^2*mask - 2 * (v*mask) @ s.T + mask @ (s^2).T
    v2 = (v * v * mask).sum(axis=1)[:, None]
    cross = (v * mask) @ signatures.T
    s2 = mask @ (signatures * signatures).T
    d2 = v2 - 2.0 * cross + s2
    # the expansion cancels catastrophically for (near-)identical vectors;
    # snap anything below float-noise scale to an exact match
    tol = 1e-9 * np.maximum(v2 + s2, 1.0)
    d2 = np.where(d2 < tol, 0.0, d2)
    with np.errstate(divide="ignore"):
        return np.where(d2 > 0.0, 1.0 / np.sqrt(d2), np.inf)
