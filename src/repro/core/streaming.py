"""Online tracking session.

``FTTTracker.track`` consumes a finished batch list; a deployed base
station receives rounds one at a time and wants, at every instant, the
current estimate, a confidence signal, and a short history.  This module
provides that stateful wrapper, including the practical warts: rounds
arriving late or out of order (buffered and folded in by timestamp), gap
detection, and an online-smoothed output trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque

import numpy as np
from collections import deque

from repro.core.tracker import FTTTracker, TrackEstimate
from repro.rf.channel import SampleBatch

__all__ = ["SessionState", "TrackingSession"]


@dataclass(frozen=True)
class SessionState:
    """Snapshot of the session after a round is processed."""

    t: float
    position: np.ndarray  # raw per-round estimate
    smoothed_position: np.ndarray  # exponentially smoothed output
    confidence: float  # in (0, 1]; 1 = exact signature match
    face_id: int
    n_reporting: int
    rounds_processed: int
    gaps_detected: int


class TrackingSession:
    """Stateful online FTTT tracking.

    Parameters
    ----------
    tracker : the FTTT tracker to drive (its heuristic matcher state is
        exactly the consecutive-tracking accelerator of Algorithm 2).
    expected_period_s : nominal round spacing; a gap of more than
        ``gap_factor`` periods resets the matcher seed (the target may be
        anywhere by then) and counts as a gap.
    smoothing_alpha : exponential-smoothing weight for the output trace.
    reorder_buffer : rounds arriving out of order are buffered this many
        deep and folded in sorted by timestamp.
    history : how many recent states to retain.
    """

    def __init__(
        self,
        tracker: FTTTracker,
        *,
        expected_period_s: float = 0.5,
        gap_factor: float = 3.0,
        smoothing_alpha: float = 0.5,
        reorder_buffer: int = 4,
        history: int = 256,
    ) -> None:
        if expected_period_s <= 0:
            raise ValueError(f"period must be positive, got {expected_period_s}")
        if gap_factor < 1:
            raise ValueError(f"gap factor must be >= 1, got {gap_factor}")
        if not (0.0 < smoothing_alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {smoothing_alpha}")
        if reorder_buffer < 1:
            raise ValueError(f"reorder buffer must be >= 1, got {reorder_buffer}")
        self.tracker = tracker
        self.expected_period_s = expected_period_s
        self.gap_factor = gap_factor
        self.smoothing_alpha = smoothing_alpha
        self.reorder_buffer = reorder_buffer
        self._pending: list[SampleBatch] = []
        self._history: Deque[SessionState] = deque(maxlen=history)
        self._last_t: float | None = None
        self._smoothed: np.ndarray | None = None
        self._gaps = 0
        self._rounds = 0

    # -- feeding ------------------------------------------------------------

    def submit(self, batch: SampleBatch) -> "SessionState | None":
        """Submit one round; returns the new state, or None while the
        reorder buffer is still filling."""
        self._pending.append(batch)
        self._pending.sort(key=lambda b: float(b.times[0]))
        if len(self._pending) < self.reorder_buffer:
            return None
        return self._process(self._pending.pop(0))

    def flush(self) -> "list[SessionState]":
        """Process everything still buffered (end of stream)."""
        out = []
        for batch in sorted(self._pending, key=lambda b: float(b.times[0])):
            out.append(self._process(batch))
        self._pending.clear()
        return out

    # -- internals ---------------------------------------------------------

    def _process(self, batch: SampleBatch) -> SessionState:
        t = float(batch.times[0])
        if self._last_t is not None:
            if t < self._last_t:
                # arrived hopelessly late: fold in, but flag the gap logic off
                t = self._last_t
            elif t - self._last_t > self.gap_factor * self.expected_period_s:
                self._gaps += 1
                self.tracker.reset()  # stale matcher seed after a long gap
        est: TrackEstimate = self.tracker.localize_batch(batch)
        self._rounds += 1
        self._last_t = t
        if self._smoothed is None:
            self._smoothed = est.position.copy()
        else:
            self._smoothed = (
                self.smoothing_alpha * est.position + (1 - self.smoothing_alpha) * self._smoothed
            )
        state = SessionState(
            t=t,
            position=est.position,
            smoothed_position=self._smoothed.copy(),
            confidence=self._confidence(est),
            face_id=int(est.face_ids[0]),
            n_reporting=est.n_reporting,
            rounds_processed=self._rounds,
            gaps_detected=self._gaps,
        )
        self._history.append(state)
        return state

    def _confidence(self, est: TrackEstimate) -> float:
        """Map the match's vector distance to (0, 1]: exp(-d/scale).

        An exact signature match gives 1; each vector-unit of mismatch
        roughly halves it.  Heuristic but monotone and bounded — intended
        for alarm thresholds, not probability calculus.
        """
        if not np.isfinite(est.sq_distance):
            return 0.0
        return float(np.exp(-np.sqrt(max(est.sq_distance, 0.0)) * 0.7))

    # -- queries ------------------------------------------------------------

    @property
    def state(self) -> "SessionState | None":
        return self._history[-1] if self._history else None

    @property
    def history(self) -> "list[SessionState]":
        return list(self._history)

    @property
    def gaps_detected(self) -> int:
        return self._gaps

    def recent_errors(self, truths: np.ndarray) -> np.ndarray:
        """Errors of the recent history against supplied true positions."""
        truths = np.atleast_2d(np.asarray(truths, dtype=float))
        states = self.history[-len(truths) :]
        if len(states) != len(truths):
            raise ValueError(
                f"{len(truths)} truths supplied for {len(states)} retained states"
            )
        est = np.stack([s.position for s in states])
        return np.hypot(est[:, 0] - truths[:, 0], est[:, 1] - truths[:, 1])
