"""Core FTTT strategy (paper §4 and §6).

Everything specific to the Fault-Tolerant Target-Tracking contribution:
sampling-vector construction from grouping samplings (Algorithm 1, with the
fault-tolerant fill of Eq. 6), signature matching by maximum likelihood
(Definition 7), the heuristic neighbor-link matcher (Algorithm 2), and the
quantitative extension (Definition 10).
"""

from repro.core.vectors import (
    sampling_vector,
    extended_sampling_vector,
    sampling_vector_reference,
    STAR,
)
from repro.core.similarity import (
    vector_difference,
    sq_distance,
    similarity,
)
from repro.core.matching import ExhaustiveMatcher, MatchResult
from repro.core.heuristic import HeuristicMatcher
from repro.core.extended import expected_extended_signatures, attach_soft_signatures
from repro.core.tracker import DegradationPolicy, FTTTracker, TrackEstimate, TrackResult
from repro.core.trajectory import (
    smooth_result,
    smoothness_metrics,
    TrajectorySmoothness,
)
from repro.core.streaming import TrackingSession, SessionState
from repro.core.diagnostics import (
    pair_informativeness,
    least_informative_pairs,
    face_separability,
    AmbiguityCensus,
    ambiguity_census,
)

__all__ = [
    "sampling_vector",
    "extended_sampling_vector",
    "sampling_vector_reference",
    "STAR",
    "vector_difference",
    "sq_distance",
    "similarity",
    "ExhaustiveMatcher",
    "HeuristicMatcher",
    "expected_extended_signatures",
    "attach_soft_signatures",
    "MatchResult",
    "DegradationPolicy",
    "FTTTracker",
    "TrackEstimate",
    "TrackResult",
    "smooth_result",
    "smoothness_metrics",
    "TrajectorySmoothness",
    "TrackingSession",
    "SessionState",
    "pair_informativeness",
    "least_informative_pairs",
    "face_separability",
    "AmbiguityCensus",
    "ambiguity_census",
]
