"""Heuristic matching over neighbor-face links (Algorithm 2, Theorem 1).

Faces divided by uncertain boundaries are not isolated: neighbors differ by
exactly one unit in one signature component (Theorem 1), so similarity is
locally smooth over the face adjacency graph and matching can hill-climb
from the previous localization's face instead of scanning all O(n^4)
signatures.  Consecutive tracking steps start where the last one ended,
which keeps searches to a handful of rounds (paper §4.4-2).

Hill climbing can stall in a local optimum if the target jumped far or the
sampling vector is badly corrupted; ``fallback`` optionally detects a poor
local optimum and re-runs the exhaustive scan, preserving Algorithm 2's
speed in the common case without sacrificing worst-case accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.core.matching import ExhaustiveMatcher, MatchResult
from repro.geometry.faces import FaceMap
from repro.obs import metrics as obs

__all__ = ["HeuristicMatcher"]


class HeuristicMatcher:
    """Stateful neighbor-link matcher (Algorithm 2).

    Parameters
    ----------
    face_map : the divided monitor area.
    hops : search ring per climb step; 1 is Algorithm 2 verbatim, 2
        (default) also examines neighbors-of-neighbors, which escapes the
        single-face local optima noisy sampling vectors create while still
        visiting a tiny fraction of the face set.
    fallback : when True (default), a local optimum whose squared distance
        exceeds ``fallback_sq_distance`` triggers one exhaustive re-match.
    fallback_sq_distance : quality gate for the fallback, in squared
        vector-distance units.  The default of 4.0 tolerates up to two
        single-step component errors before falling back.
    max_steps : hard bound on hill-climb moves (defensive; the climb is
        strictly improving so it always terminates anyway).
    """

    def __init__(
        self,
        face_map: FaceMap,
        *,
        soft: bool = False,
        hops: int = 2,
        fallback: bool = True,
        fallback_sq_distance: float = 4.0,
        max_steps: int = 100_000,
    ) -> None:
        if hops not in (1, 2):
            raise ValueError(f"hops must be 1 or 2, got {hops}")
        if fallback_sq_distance < 0:
            raise ValueError(f"fallback gate must be non-negative, got {fallback_sq_distance}")
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.face_map = face_map
        self.soft = soft
        self.hops = hops
        self.fallback = fallback
        self.fallback_sq_distance = fallback_sq_distance
        self.max_steps = max_steps
        self._exhaustive = ExhaustiveMatcher(face_map, soft=soft)
        self._last_face: int | None = None

    @property
    def last_face(self) -> "int | None":
        """Face of the previous localization (Algorithm 2's f0)."""
        return self._last_face

    def reset(self) -> None:
        """Forget the previous face; the next match seeds exhaustively."""
        self._last_face = None

    def _sq_distance_to_faces(self, vector: np.ndarray, face_ids: np.ndarray) -> np.ndarray:
        sigs = self.face_map.signature_matrix(soft=self.soft)[face_ids].astype(np.float64)
        v = np.asarray(vector, dtype=float)
        diff = sigs - v[None, :]
        diff = np.where(np.isnan(diff), 0.0, diff)
        return np.einsum("fp,fp->f", diff, diff)

    def match(self, vector: np.ndarray, start_face: "int | None" = None) -> MatchResult:
        """Match *vector*, hill-climbing from ``start_face`` / the previous face.

        The very first localization (no previous face, no explicit start)
        falls back to one exhaustive scan — Algorithm 2's
        ``Initialization()``.
        """
        fm = self.face_map
        record = obs.enabled()
        start = start_face if start_face is not None else self._last_face
        if start is None:
            if record:
                obs.counter("core.heuristic.init_scans").inc()
            result = self._exhaustive.match(vector)
            self._last_face = result.face_id
            return result
        if not (0 <= start < fm.n_faces):
            raise IndexError(f"start face {start} out of range [0, {fm.n_faces})")

        current = int(start)
        current_d2 = float(self._sq_distance_to_faces(vector, np.array([current]))[0])
        visited = 1
        steps = 0
        for _ in range(self.max_steps):
            nbrs = fm.neighbors(current)
            if self.hops == 2 and len(nbrs):
                # widen the step to the 2-hop neighborhood: single-face
                # local optima under noisy vectors are common, and one
                # extra ring is enough to step over almost all of them
                ring = set(nbrs.tolist())
                for nb in nbrs:
                    ring.update(fm.neighbors(int(nb)).tolist())
                ring.discard(current)
                nbrs = np.fromiter(ring, dtype=np.int64)
            if len(nbrs) == 0:
                break
            d2 = self._sq_distance_to_faces(vector, nbrs)
            visited += len(nbrs)
            best = int(np.argmin(d2))
            if d2[best] < current_d2 - 1e-12:
                current = int(nbrs[best])
                current_d2 = float(d2[best])
                steps += 1
            else:
                break

        if record:
            obs.counter("core.heuristic.rounds").inc()
            obs.histogram("core.heuristic.steps").observe(steps)
            obs.histogram("core.heuristic.visited").observe(visited)

        if self.fallback and current_d2 > self.fallback_sq_distance:
            if record:
                obs.counter("core.heuristic.fallbacks").inc()
            result = self._exhaustive.match(vector)
            self._last_face = result.face_id
            return MatchResult(
                face_ids=result.face_ids,
                sq_distance=result.sq_distance,
                position=result.position,
                visited=visited + result.visited,
            )

        self._last_face = current
        return MatchResult(
            face_ids=np.array([current]),
            sq_distance=current_d2,
            position=fm.centroids[current].copy(),
            visited=visited,
        )
