"""Exhaustive maximum-likelihood matching (paper §4.4-1).

Scans every face signature and returns all faces tying at the maximum
similarity.  O(F · P) per localization with F = O(n^4) faces — correct but
slow; Algorithm 2's heuristic matcher exists to avoid this scan, and the
complexity benchmark measures the gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.faces import FaceMap

__all__ = ["MatchResult", "ExhaustiveMatcher"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one sampling vector against the face map."""

    face_ids: np.ndarray  # all faces at the maximum similarity
    sq_distance: float  # squared vector distance at the optimum
    position: np.ndarray  # mean centroid of the tied faces
    visited: int  # how many face signatures were examined

    @property
    def face_id(self) -> int:
        """Lowest-id best face (deterministic tie representative)."""
        return int(self.face_ids[0])

    @property
    def similarity(self) -> float:
        if self.sq_distance == 0.0:
            return float("inf")
        return 1.0 / float(np.sqrt(self.sq_distance))

    @property
    def is_ambiguous(self) -> bool:
        """True when more than one face ties at the maximum similarity."""
        return len(self.face_ids) > 1


class ExhaustiveMatcher:
    """Stateless full-scan matcher over a face map.

    ``soft=True`` matches against the attached quantitative signatures
    (extended FTTT, §6) instead of the qualitative {-1, 0, +1} ones.
    """

    def __init__(self, face_map: FaceMap, *, soft: bool = False) -> None:
        self.face_map = face_map
        self.soft = soft

    def match(self, vector: np.ndarray, start_face: "int | None" = None) -> MatchResult:
        """Match *vector* against every face (``start_face`` is ignored;
        accepted so exhaustive and heuristic matchers are interchangeable)."""
        face_ids, d2 = self.face_map.match(vector, soft=self.soft)
        position = self.face_map.centroids[face_ids].mean(axis=0)
        return MatchResult(
            face_ids=face_ids,
            sq_distance=d2,
            position=position,
            visited=self.face_map.n_faces,
        )

    def match_many(self, vectors: np.ndarray) -> list[MatchResult]:
        """Match a whole ``(B, P)`` batch of vectors in one kernel call.

        Row ``b`` of the result is bit-identical to ``match(vectors[b])``
        (see :meth:`repro.geometry.faces.FaceMap.distances_to_many`); the
        batch trades the per-round Python loop for one GEMM over the
        signature matrix.
        """
        ties, bests = self.face_map.match_many(vectors, soft=self.soft)
        centroids = self.face_map.centroids
        n_faces = self.face_map.n_faces
        return [
            MatchResult(
                face_ids=t,
                sq_distance=float(best),
                position=centroids[t].mean(axis=0),
                visited=n_faces,
            )
            for t, best in zip(ties, bests)
        ]

    def reset(self) -> None:
        """No state to clear; present for interface parity."""
