"""Trajectory post-processing and smoothness metrics.

The paper's second motivating problem: under uncertainty, "the returning
results change back and forth instead of being smooth".  FTTT attacks the
cause; this module handles the residue — post-hoc smoothing of an
estimated trace and the metrics that quantify how jumpy a trajectory is
(used by the extended-FTTT evaluation, whose claim is exactly
"smoother").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tracker import TrackEstimate, TrackResult

__all__ = [
    "moving_average",
    "exponential_smoothing",
    "median_filter",
    "smooth_result",
    "TrajectorySmoothness",
    "smoothness_metrics",
]


def moving_average(positions: np.ndarray, window: int = 3) -> np.ndarray:
    """Centred moving average over a (T, 2) position series.

    Edges use shrunken windows, so the output has the same length and no
    phase lag.
    """
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or len(positions) <= 2:
        return positions.copy()
    half = window // 2
    out = np.empty_like(positions)
    for t in range(len(positions)):
        lo = max(0, t - half)
        hi = min(len(positions), t + half + 1)
        out[t] = positions[lo:hi].mean(axis=0)
    return out


def exponential_smoothing(positions: np.ndarray, alpha: float = 0.5) -> np.ndarray:
    """Causal exponential smoothing (usable online): s_t = a·x_t + (1-a)·s_{t-1}."""
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    if not (0.0 < alpha <= 1.0):
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    out = np.empty_like(positions)
    out[0] = positions[0]
    for t in range(1, len(positions)):
        out[t] = alpha * positions[t] + (1.0 - alpha) * out[t - 1]
    return out


def median_filter(positions: np.ndarray, window: int = 3) -> np.ndarray:
    """Component-wise centred median filter — kills single-round outliers
    (the back-and-forth jumps) without smearing corners as much as a mean."""
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or len(positions) <= 2:
        return positions.copy()
    half = window // 2
    out = np.empty_like(positions)
    for t in range(len(positions)):
        lo = max(0, t - half)
        hi = min(len(positions), t + half + 1)
        out[t] = np.median(positions[lo:hi], axis=0)
    return out


def smooth_result(result: TrackResult, *, method: str = "median", window: int = 3, alpha: float = 0.5) -> TrackResult:
    """Return a new TrackResult with smoothed estimate positions.

    Ground truth, timestamps and per-round metadata are preserved, so the
    error metrics of the smoothed result are directly comparable.
    """
    if method == "mean":
        smoothed = moving_average(result.positions, window)
    elif method == "median":
        smoothed = median_filter(result.positions, window)
    elif method == "exponential":
        smoothed = exponential_smoothing(result.positions, alpha)
    else:
        raise ValueError(f"unknown method {method!r}")
    out = TrackResult()
    for est, pos, truth in zip(result.estimates, smoothed, result.true_positions):
        out.append(
            TrackEstimate(
                t=est.t,
                position=pos,
                face_ids=est.face_ids,
                sq_distance=est.sq_distance,
                n_reporting=est.n_reporting,
                visited_faces=est.visited_faces,
            ),
            truth,
        )
    return out


@dataclass(frozen=True)
class TrajectorySmoothness:
    """How jumpy an estimated trajectory is."""

    mean_step_m: float  # mean per-round displacement
    max_step_m: float
    path_inflation: float  # estimated path length / true path length
    mean_turn_rad: float  # mean absolute heading change between steps
    reversal_rate: float  # fraction of steps turning more than 90 degrees


def smoothness_metrics(result: TrackResult) -> TrajectorySmoothness:
    """Quantify trajectory roughness (larger = jumpier).

    ``path_inflation`` is the headline: a tracker that zig-zags around the
    true trace travels much farther than the target did.
    """
    est = result.positions
    tru = result.truth
    if len(est) < 3:
        raise ValueError("need at least three rounds for smoothness metrics")
    steps = np.diff(est, axis=0)
    step_len = np.hypot(steps[:, 0], steps[:, 1])
    true_len = np.hypot(*np.diff(tru, axis=0).T).sum()
    headings = np.arctan2(steps[:, 1], steps[:, 0])
    moving = step_len > 1e-9
    dh = np.abs(np.angle(np.exp(1j * np.diff(headings))))
    dh = dh[moving[:-1] & moving[1:]]
    return TrajectorySmoothness(
        mean_step_m=float(step_len.mean()),
        max_step_m=float(step_len.max()),
        path_inflation=float(step_len.sum() / true_len) if true_len > 0 else float("inf"),
        mean_turn_rad=float(dh.mean()) if len(dh) else 0.0,
        reversal_rate=float((dh > np.pi / 2).mean()) if len(dh) else 0.0,
    )
