"""FTTT tracker facade.

Binds together the face map, the sampling-vector construction, and a
matcher into the strategy of Fig. 4: per localization round, build the
(basic or extended) sampling vector from the grouping sampling and match
it into a face; the face centroid (mean of tied faces) is the estimate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Literal

import numpy as np

from repro.core.heuristic import HeuristicMatcher
from repro.core.matching import ExhaustiveMatcher, MatchResult
from repro.core.vectors import (
    extended_sampling_vector,
    extended_sampling_vectors,
    sampling_vector,
    sampling_vectors,
)
from repro.geometry.faces import FaceMap
from repro.geometry.primitives import enumerate_pairs
from repro.obs import metrics as obs
from repro.obs.tracing import trace_event
from repro.rf.channel import SampleBatch

__all__ = ["DegradationPolicy", "FTTTracker", "TrackEstimate", "TrackResult"]

Mode = Literal["basic", "extended"]
MatcherKind = Literal["heuristic", "exhaustive"]


@dataclass(frozen=True)
class DegradationPolicy:
    """Graceful-degradation knobs for tracking under value faults.

    The Eq. 6/7 machinery only defends against *omission*: a Byzantine or
    stuck sensor keeps reporting, so its pair values poison the sampling
    vector instead of vanishing into ``*``.  This policy adds three
    tracker-side defenses, each individually cheap and off by default
    (construct :class:`FTTTracker` with ``degradation=None`` — the
    shipped paper behaviour — to disable all of them):

    * **flip-rate suppression** — a per-pair exponentially-weighted
      *residual* rate is maintained across rounds: after each match, a
      pair scores ``|value - signature| / 2`` against the matched face's
      signature (0 = the pair agreed with the face the round settled on,
      1 = it voted the exact opposite).  Healthy pairs agree almost
      always, whatever their distance to the target; a stuck, drifted or
      Byzantine endpoint disagrees chronically.  Pairs whose residual
      EWMA stays above ``flip_threshold`` after warmup are demoted to
      ``*`` *before* the next round's matching, so Eq. 7 masks them
      exactly like pairs of silent sensors — and un-demote on their own
      once the EWMA decays back below the threshold;
    * **reporting quorum** — when fewer than ``min_reporting`` sensors
      delivered data, or more than ``max_masked_fraction`` of the pair
      values are ``*``, the round's vector carries too little signal to
      trust: the tracker holds the previous face instead of matching;
    * **extended tie-break** — when a weak round must still be matched
      (there is no previous face to hold yet), ties between
      equally-similar faces are re-scored by their agreement with the
      quantitative (Definition 10) vector of the same grouping sampling,
      which orders faces the qualitative vector cannot distinguish.
      (Applying the tie-break on *healthy* rounds measurably hurts —
      collapsing a tie loses the centroid averaging — so it is scoped
      to quorum-weak rounds only.)
    """

    flip_threshold: float = 0.3
    halflife_rounds: float = 10.0
    warmup_rounds: int = 10
    min_reporting: int = 3
    max_masked_fraction: float = 0.9
    tie_break: bool = True

    def __post_init__(self) -> None:
        if not (0.0 < self.flip_threshold <= 1.0):
            raise ValueError(f"flip_threshold must be in (0, 1], got {self.flip_threshold}")
        if self.halflife_rounds <= 0:
            raise ValueError(f"halflife must be positive, got {self.halflife_rounds}")
        if self.warmup_rounds < 1:
            raise ValueError(f"warmup must be >= 1 round, got {self.warmup_rounds}")
        if self.min_reporting < 0:
            raise ValueError(f"min_reporting must be >= 0, got {self.min_reporting}")
        if not (0.0 < self.max_masked_fraction <= 1.0):
            raise ValueError(
                f"max_masked_fraction must be in (0, 1], got {self.max_masked_fraction}"
            )

    @property
    def ewma_alpha(self) -> float:
        """Per-round EWMA weight equivalent to the configured halflife."""
        return 1.0 - 0.5 ** (1.0 / self.halflife_rounds)


@dataclass(frozen=True)
class TrackEstimate:
    """One localization outcome."""

    t: float
    position: np.ndarray  # estimated (x, y)
    face_ids: np.ndarray  # best-matching face(s)
    sq_distance: float  # vector distance at the match
    n_reporting: int  # sensors that delivered data this round
    visited_faces: int  # matcher work (for complexity accounting)

    @property
    def similarity(self) -> float:
        if self.sq_distance == 0.0:
            return float("inf")
        return 1.0 / float(np.sqrt(self.sq_distance))


@dataclass
class TrackResult:
    """A full tracking run: estimates plus aligned ground truth."""

    estimates: list[TrackEstimate] = field(default_factory=list)
    true_positions: list[np.ndarray] = field(default_factory=list)

    def append(self, estimate: TrackEstimate, true_position: np.ndarray) -> None:
        self.estimates.append(estimate)
        self.true_positions.append(np.asarray(true_position, dtype=float).reshape(2))

    @property
    def times(self) -> np.ndarray:
        return np.array([e.t for e in self.estimates])

    @property
    def positions(self) -> np.ndarray:
        if not self.estimates:
            return np.empty((0, 2))
        return np.stack([e.position for e in self.estimates])

    @property
    def truth(self) -> np.ndarray:
        if not self.true_positions:
            return np.empty((0, 2))
        return np.stack(self.true_positions)

    @property
    def errors(self) -> np.ndarray:
        """Per-round geographic tracking error in metres."""
        est, tru = self.positions, self.truth
        return np.hypot(est[:, 0] - tru[:, 0], est[:, 1] - tru[:, 1])

    @property
    def mean_error(self) -> float:
        e = self.errors
        return float(e.mean()) if len(e) else float("nan")

    @property
    def std_error(self) -> float:
        e = self.errors
        return float(e.std()) if len(e) else float("nan")

    @property
    def max_error(self) -> float:
        e = self.errors
        return float(e.max()) if len(e) else float("nan")

    def __len__(self) -> int:
        return len(self.estimates)


class FTTTracker:
    """The Fault-Tolerant Target-Tracking strategy.

    Parameters
    ----------
    face_map : divided monitor area with signature vectors.
    mode : ``"basic"`` uses Definition 4 pair values; ``"extended"`` uses
        the quantitative values of Definition 10 (§6), which break
        similarity ties and smooth the trajectory.
    matcher : ``"heuristic"`` = Algorithm 2 neighbor-link hill climbing
        (the paper's tracking algorithm); ``"exhaustive"`` = full scan.
    comparator_eps : RSS comparator deadband in dB (ties count as flips).
    degradation : optional :class:`DegradationPolicy` enabling flip-rate
        pair suppression, the reporting quorum, and the extended
        tie-break.  ``None`` (default) reproduces the paper exactly.
    """

    def __init__(
        self,
        face_map: FaceMap,
        *,
        mode: Mode = "basic",
        matcher: MatcherKind = "heuristic",
        comparator_eps: float = 0.0,
        heuristic_fallback: bool = True,
        soft_signatures: "bool | None" = None,
        degradation: "DegradationPolicy | None" = None,
    ) -> None:
        if mode not in ("basic", "extended"):
            raise ValueError(f"unknown mode {mode!r}")
        if matcher not in ("heuristic", "exhaustive"):
            raise ValueError(f"unknown matcher {matcher!r}")
        self.face_map = face_map
        self.mode: Mode = mode
        self.comparator_eps = comparator_eps
        self._pairs = enumerate_pairs(face_map.n_nodes)
        # extended mode matches against the quantitative (soft) signatures
        # of §6 whenever they are attached to the face map
        if soft_signatures is None:
            soft_signatures = mode == "extended" and face_map.soft_signatures is not None
        if soft_signatures and face_map.soft_signatures is None:
            raise ValueError(
                "soft_signatures requested but none attached; call "
                "repro.core.extended.attach_soft_signatures(face_map, ...)"
            )
        self.soft_signatures = bool(soft_signatures)
        if matcher == "heuristic":
            # soft matching carries a per-pair fractional background distance,
            # so the fallback quality gate is proportionally looser
            gate = 8.0 if self.soft_signatures else 4.0
            self.matcher: "HeuristicMatcher | ExhaustiveMatcher" = HeuristicMatcher(
                face_map,
                soft=self.soft_signatures,
                fallback=heuristic_fallback,
                fallback_sq_distance=gate,
            )
        else:
            self.matcher = ExhaustiveMatcher(face_map, soft=self.soft_signatures)
        self.degradation = degradation
        self._flip_ewma: "np.ndarray | None" = None
        self._flip_obs: "np.ndarray | None" = None
        self._prev_estimate: "TrackEstimate | None" = None

    # -- vector construction ------------------------------------------------

    def build_vector(self, rss: np.ndarray) -> np.ndarray:
        """Sampling vector for one grouping-sampling matrix."""
        if self.mode == "extended":
            return extended_sampling_vector(rss, self._pairs, comparator_eps=self.comparator_eps)
        return sampling_vector(rss, self._pairs, comparator_eps=self.comparator_eps)

    def build_vectors(self, rss_stack: np.ndarray) -> np.ndarray:
        """Batched Algorithm 1: ``(T, k, n)`` round stack -> ``(T, P)`` vectors.

        Row ``t`` is bit-identical to ``build_vector(rss_stack[t])``.
        """
        if self.mode == "extended":
            return extended_sampling_vectors(
                rss_stack, self._pairs, comparator_eps=self.comparator_eps
            )
        return sampling_vectors(rss_stack, self._pairs, comparator_eps=self.comparator_eps)

    # -- localization ---------------------------------------------------------

    def localize(self, rss: np.ndarray, t: float = 0.0) -> TrackEstimate:
        """Localize from a raw ``(k, n)`` RSS matrix (NaN = missing)."""
        rss = np.atleast_2d(np.asarray(rss, dtype=float))
        if rss.shape[1] != self.face_map.n_nodes:
            raise ValueError(
                f"rss has {rss.shape[1]} sensors but the face map was built "
                f"for {self.face_map.n_nodes}"
            )
        vector = self.build_vector(rss)
        n_reporting = int((~np.isnan(rss).all(axis=0)).sum())
        raw_vector = vector
        weak = False
        if self.degradation is not None:
            vector = self._suppress_flippy_pairs(vector, t)
            weak = self._quorum_is_weak(vector, n_reporting)
            if weak:
                fallback = self._hold_previous(vector, n_reporting, t)
                if fallback is not None:
                    if obs.enabled():
                        self._record_round(fallback, int(np.isnan(vector).sum()))
                    self._prev_estimate = fallback
                    return fallback
        match: MatchResult = self.matcher.match(vector)
        if (
            self.degradation is not None
            and self.degradation.tie_break
            and weak
            and len(match.face_ids) > 1
        ):
            match = self._tie_break(match, rss, t)
        if self.degradation is not None:
            self._update_pair_residuals(raw_vector, match)
        est = TrackEstimate(
            t=t,
            position=match.position,
            face_ids=match.face_ids,
            sq_distance=match.sq_distance,
            n_reporting=n_reporting,
            visited_faces=match.visited,
        )
        self._prev_estimate = est
        if obs.enabled():
            self._record_round(est, int(np.isnan(vector).sum()))
        return est

    # -- graceful degradation -------------------------------------------------

    def _suppress_flippy_pairs(self, vector: np.ndarray, t: float) -> np.ndarray:
        """Demote chronically inconsistent pairs to ``*`` (Eq. 7 masks them).

        Pairs whose residual EWMA (see :meth:`_update_pair_residuals`)
        sits at or above the policy threshold after warmup chronically
        vote against the faces the tracker settles on — a stuck,
        drifted or Byzantine endpoint — and are masked before matching.
        The demotion is re-evaluated every round, so a pair recovers as
        soon as its EWMA decays back under the threshold.
        """
        pol = self.degradation
        if self._flip_ewma is None or len(self._flip_ewma) != len(vector):
            self._flip_ewma = np.zeros(len(vector))
            self._flip_obs = np.zeros(len(vector), dtype=np.int64)
        demote = (
            ~np.isnan(vector)
            & (self._flip_obs >= pol.warmup_rounds)
            & (self._flip_ewma >= pol.flip_threshold)
        )
        n_demoted = int(demote.sum())
        if n_demoted:
            vector = vector.copy()
            vector[demote] = np.nan
            if obs.enabled():
                obs.counter("tracker.degradation.suppression_rounds").inc()
                obs.histogram("tracker.degradation.suppressed_pairs").observe(n_demoted)
                trace_event(
                    "degradation", decision="suppress", t=t, suppressed_pairs=n_demoted
                )
        return vector

    def _update_pair_residuals(self, raw_vector: np.ndarray, match: MatchResult) -> None:
        """Score every observed pair against the face the round settled on.

        The residual ``|value - signature| / 2`` is 0 when the pair's
        ordering agrees with the matched face and 1 when it votes the
        exact opposite; its per-pair EWMA is the suppression signal read
        by :meth:`_suppress_flippy_pairs` at the *next* round.  Updating
        from the raw (pre-suppression) vector keeps demoted pairs under
        observation, so a healed sensor is readmitted once its residuals
        decay.  Empirically the two populations separate cleanly: healthy
        pairs sit below ~0.2 whatever their distance to the target, while
        stuck/drifted endpoints plateau near 0.5.
        """
        pol = self.degradation
        sigs = self.face_map.signature_matrix()[match.face_ids].astype(np.float64)
        sig = sigs.mean(axis=0) if len(match.face_ids) > 1 else sigs[0]
        valid = ~np.isnan(raw_vector)
        residual = np.abs(raw_vector[valid] - sig[valid]) / 2.0
        alpha = pol.ewma_alpha
        self._flip_ewma[valid] += alpha * (residual - self._flip_ewma[valid])
        self._flip_obs[valid] += 1

    def _quorum_is_weak(self, vector: np.ndarray, n_reporting: int) -> bool:
        """True when the round's vector carries too little signal to trust."""
        pol = self.degradation
        masked_fraction = float(np.isnan(vector).mean())
        return n_reporting < pol.min_reporting or masked_fraction > pol.max_masked_fraction

    def _hold_previous(
        self, vector: np.ndarray, n_reporting: int, t: float
    ) -> "TrackEstimate | None":
        """Hold the previous face through a quorum-weak round (None = no history)."""
        if self._prev_estimate is None:
            return None
        prev = self._prev_estimate
        if obs.enabled():
            obs.counter("tracker.degradation.quorum_fallbacks").inc()
            trace_event(
                "degradation",
                decision="quorum_fallback",
                t=t,
                n_reporting=n_reporting,
                masked_fraction=float(np.isnan(vector).mean()),
                held_face=int(prev.face_ids[0]),
            )
        return TrackEstimate(
            t=t,
            position=prev.position.copy(),
            face_ids=prev.face_ids.copy(),
            sq_distance=float("inf"),  # similarity 0: the hold has no evidence
            n_reporting=n_reporting,
            visited_faces=0,
        )

    def _tie_break(self, match: MatchResult, rss: np.ndarray, t: float) -> MatchResult:
        """Re-score tied faces by agreement with the Definition 10 vector.

        Agreement is the inner product of each tied face's signature with
        the quantitative vector (``*`` pairs contribute 0) — sign
        agreement weighted by how decisive the quantitative value is,
        which avoids the bias a plain distance would give to all-zero
        signatures.
        """
        ext = extended_sampling_vector(rss, self._pairs, comparator_eps=self.comparator_eps)
        sigs = self.face_map.signature_matrix()[match.face_ids].astype(np.float64)
        prod = sigs * ext[None, :]
        prod = np.where(np.isnan(prod), 0.0, prod)
        agreement = prod.sum(axis=1)
        best = agreement.max()
        keep = agreement >= best - 1e-12
        if keep.all():
            return match  # the quantitative vector cannot separate them either
        face_ids = match.face_ids[keep]
        position = self.face_map.centroids[face_ids].mean(axis=0)
        if hasattr(self.matcher, "_last_face"):
            self.matcher._last_face = int(face_ids[0])
        if obs.enabled():
            obs.counter("tracker.degradation.tie_breaks").inc()
            trace_event(
                "degradation",
                decision="tie_break",
                t=t,
                ties_before=len(match.face_ids),
                ties_after=len(face_ids),
            )
        return MatchResult(
            face_ids=face_ids,
            sq_distance=match.sq_distance,
            position=position,
            visited=match.visited,
        )

    def _record_round(self, est: TrackEstimate, masked_pairs: int) -> None:
        """Per-round metrics + trace event (Eq. 7 ``*`` counts and match work)."""
        obs.counter("tracker.rounds").inc()
        obs.histogram("tracker.masked_pairs").observe(masked_pairs)
        obs.histogram("tracker.ties").observe(len(est.face_ids))
        trace_event(
            "round",
            t=est.t,
            mode=self.mode,
            face=int(est.face_ids[0]),
            n_ties=len(est.face_ids),
            sq_distance=est.sq_distance,
            masked_pairs=masked_pairs,
            n_reporting=est.n_reporting,
            visited_faces=est.visited_faces,
        )

    def localize_batch(self, batch: SampleBatch, t: "float | None" = None) -> TrackEstimate:
        """Localize from a :class:`~repro.rf.channel.SampleBatch`."""
        t0 = float(batch.times[0]) if t is None else t
        return self.localize(batch.rss, t=t0)

    # -- tracking -------------------------------------------------------------

    def track(self, batches: Iterable[SampleBatch]) -> TrackResult:
        """Track through a sequence of grouping samplings.

        The matcher state persists across rounds, so the heuristic matcher
        starts each search from the previous face (Algorithm 2's
        consecutive-tracking speedup).  The exhaustive matcher has no such
        state, so its whole trace is localized in two batched kernel calls
        (Algorithm-1 vectors, then one GEMM match) — bit-identical to the
        per-round loop, an order of magnitude faster.
        """
        batches = list(batches)
        record = obs.enabled()
        # degradation is sequential state (flip EWMAs, previous face), so
        # the trace-at-a-time kernel path only serves the stateless case
        if (
            isinstance(self.matcher, ExhaustiveMatcher)
            and len(batches) > 1
            and self.degradation is None
        ):
            stacked = self._stack_rss(batches)
            if stacked is not None:
                vectors = self.build_vectors(stacked)
                matches = self.matcher.match_many(vectors)
                result = TrackResult()
                for b, (batch, rss, match) in enumerate(zip(batches, stacked, matches)):
                    est = TrackEstimate(
                        t=float(batch.times[0]),
                        position=match.position,
                        face_ids=match.face_ids,
                        sq_distance=match.sq_distance,
                        n_reporting=int((~np.isnan(rss).all(axis=0)).sum()),
                        visited_faces=match.visited,
                    )
                    if record:
                        self._record_round(est, int(np.isnan(vectors[b]).sum()))
                    result.append(est, batch.mean_position)
                return result
        result = TrackResult()
        for batch in batches:
            t0 = time.perf_counter() if record else 0.0
            est = self.localize_batch(batch)
            if record:
                obs.histogram("tracker.round_seconds").observe(time.perf_counter() - t0)
            result.append(est, batch.mean_position)
        return result

    def _stack_rss(self, batches: "list[SampleBatch]") -> "np.ndarray | None":
        """(T, k, n) stack of the batches' RSS, or None if shapes vary."""
        stack = [np.atleast_2d(np.asarray(b.rss, dtype=float)) for b in batches]
        shape = stack[0].shape
        if any(s.shape != shape for s in stack) or shape[1] != self.face_map.n_nodes:
            return None
        return np.stack(stack)

    def reset(self) -> None:
        """Clear matcher and degradation state (start a fresh trace)."""
        self.matcher.reset()
        self._flip_ewma = None
        self._flip_obs = None
        self._prev_estimate = None
