"""FTTT tracker facade.

Binds together the face map, the sampling-vector construction, and a
matcher into the strategy of Fig. 4: per localization round, build the
(basic or extended) sampling vector from the grouping sampling and match
it into a face; the face centroid (mean of tied faces) is the estimate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Literal

import numpy as np

from repro.core.heuristic import HeuristicMatcher
from repro.core.matching import ExhaustiveMatcher, MatchResult
from repro.core.vectors import (
    extended_sampling_vector,
    extended_sampling_vectors,
    sampling_vector,
    sampling_vectors,
)
from repro.geometry.faces import FaceMap
from repro.geometry.primitives import enumerate_pairs
from repro.obs import metrics as obs
from repro.obs.tracing import trace_event
from repro.rf.channel import SampleBatch

__all__ = ["FTTTracker", "TrackEstimate", "TrackResult"]

Mode = Literal["basic", "extended"]
MatcherKind = Literal["heuristic", "exhaustive"]


@dataclass(frozen=True)
class TrackEstimate:
    """One localization outcome."""

    t: float
    position: np.ndarray  # estimated (x, y)
    face_ids: np.ndarray  # best-matching face(s)
    sq_distance: float  # vector distance at the match
    n_reporting: int  # sensors that delivered data this round
    visited_faces: int  # matcher work (for complexity accounting)

    @property
    def similarity(self) -> float:
        if self.sq_distance == 0.0:
            return float("inf")
        return 1.0 / float(np.sqrt(self.sq_distance))


@dataclass
class TrackResult:
    """A full tracking run: estimates plus aligned ground truth."""

    estimates: list[TrackEstimate] = field(default_factory=list)
    true_positions: list[np.ndarray] = field(default_factory=list)

    def append(self, estimate: TrackEstimate, true_position: np.ndarray) -> None:
        self.estimates.append(estimate)
        self.true_positions.append(np.asarray(true_position, dtype=float).reshape(2))

    @property
    def times(self) -> np.ndarray:
        return np.array([e.t for e in self.estimates])

    @property
    def positions(self) -> np.ndarray:
        if not self.estimates:
            return np.empty((0, 2))
        return np.stack([e.position for e in self.estimates])

    @property
    def truth(self) -> np.ndarray:
        if not self.true_positions:
            return np.empty((0, 2))
        return np.stack(self.true_positions)

    @property
    def errors(self) -> np.ndarray:
        """Per-round geographic tracking error in metres."""
        est, tru = self.positions, self.truth
        return np.hypot(est[:, 0] - tru[:, 0], est[:, 1] - tru[:, 1])

    @property
    def mean_error(self) -> float:
        e = self.errors
        return float(e.mean()) if len(e) else float("nan")

    @property
    def std_error(self) -> float:
        e = self.errors
        return float(e.std()) if len(e) else float("nan")

    @property
    def max_error(self) -> float:
        e = self.errors
        return float(e.max()) if len(e) else float("nan")

    def __len__(self) -> int:
        return len(self.estimates)


class FTTTracker:
    """The Fault-Tolerant Target-Tracking strategy.

    Parameters
    ----------
    face_map : divided monitor area with signature vectors.
    mode : ``"basic"`` uses Definition 4 pair values; ``"extended"`` uses
        the quantitative values of Definition 10 (§6), which break
        similarity ties and smooth the trajectory.
    matcher : ``"heuristic"`` = Algorithm 2 neighbor-link hill climbing
        (the paper's tracking algorithm); ``"exhaustive"`` = full scan.
    comparator_eps : RSS comparator deadband in dB (ties count as flips).
    """

    def __init__(
        self,
        face_map: FaceMap,
        *,
        mode: Mode = "basic",
        matcher: MatcherKind = "heuristic",
        comparator_eps: float = 0.0,
        heuristic_fallback: bool = True,
        soft_signatures: "bool | None" = None,
    ) -> None:
        if mode not in ("basic", "extended"):
            raise ValueError(f"unknown mode {mode!r}")
        if matcher not in ("heuristic", "exhaustive"):
            raise ValueError(f"unknown matcher {matcher!r}")
        self.face_map = face_map
        self.mode: Mode = mode
        self.comparator_eps = comparator_eps
        self._pairs = enumerate_pairs(face_map.n_nodes)
        # extended mode matches against the quantitative (soft) signatures
        # of §6 whenever they are attached to the face map
        if soft_signatures is None:
            soft_signatures = mode == "extended" and face_map.soft_signatures is not None
        if soft_signatures and face_map.soft_signatures is None:
            raise ValueError(
                "soft_signatures requested but none attached; call "
                "repro.core.extended.attach_soft_signatures(face_map, ...)"
            )
        self.soft_signatures = bool(soft_signatures)
        if matcher == "heuristic":
            # soft matching carries a per-pair fractional background distance,
            # so the fallback quality gate is proportionally looser
            gate = 8.0 if self.soft_signatures else 4.0
            self.matcher: "HeuristicMatcher | ExhaustiveMatcher" = HeuristicMatcher(
                face_map,
                soft=self.soft_signatures,
                fallback=heuristic_fallback,
                fallback_sq_distance=gate,
            )
        else:
            self.matcher = ExhaustiveMatcher(face_map, soft=self.soft_signatures)

    # -- vector construction ------------------------------------------------

    def build_vector(self, rss: np.ndarray) -> np.ndarray:
        """Sampling vector for one grouping-sampling matrix."""
        if self.mode == "extended":
            return extended_sampling_vector(rss, self._pairs, comparator_eps=self.comparator_eps)
        return sampling_vector(rss, self._pairs, comparator_eps=self.comparator_eps)

    def build_vectors(self, rss_stack: np.ndarray) -> np.ndarray:
        """Batched Algorithm 1: ``(T, k, n)`` round stack -> ``(T, P)`` vectors.

        Row ``t`` is bit-identical to ``build_vector(rss_stack[t])``.
        """
        if self.mode == "extended":
            return extended_sampling_vectors(
                rss_stack, self._pairs, comparator_eps=self.comparator_eps
            )
        return sampling_vectors(rss_stack, self._pairs, comparator_eps=self.comparator_eps)

    # -- localization ---------------------------------------------------------

    def localize(self, rss: np.ndarray, t: float = 0.0) -> TrackEstimate:
        """Localize from a raw ``(k, n)`` RSS matrix (NaN = missing)."""
        rss = np.atleast_2d(np.asarray(rss, dtype=float))
        if rss.shape[1] != self.face_map.n_nodes:
            raise ValueError(
                f"rss has {rss.shape[1]} sensors but the face map was built "
                f"for {self.face_map.n_nodes}"
            )
        vector = self.build_vector(rss)
        match: MatchResult = self.matcher.match(vector)
        n_reporting = int((~np.isnan(rss).all(axis=0)).sum())
        est = TrackEstimate(
            t=t,
            position=match.position,
            face_ids=match.face_ids,
            sq_distance=match.sq_distance,
            n_reporting=n_reporting,
            visited_faces=match.visited,
        )
        if obs.enabled():
            self._record_round(est, int(np.isnan(vector).sum()))
        return est

    def _record_round(self, est: TrackEstimate, masked_pairs: int) -> None:
        """Per-round metrics + trace event (Eq. 7 ``*`` counts and match work)."""
        obs.counter("tracker.rounds").inc()
        obs.histogram("tracker.masked_pairs").observe(masked_pairs)
        obs.histogram("tracker.ties").observe(len(est.face_ids))
        trace_event(
            "round",
            t=est.t,
            mode=self.mode,
            face=int(est.face_ids[0]),
            n_ties=len(est.face_ids),
            sq_distance=est.sq_distance,
            masked_pairs=masked_pairs,
            n_reporting=est.n_reporting,
            visited_faces=est.visited_faces,
        )

    def localize_batch(self, batch: SampleBatch, t: "float | None" = None) -> TrackEstimate:
        """Localize from a :class:`~repro.rf.channel.SampleBatch`."""
        t0 = float(batch.times[0]) if t is None else t
        return self.localize(batch.rss, t=t0)

    # -- tracking -------------------------------------------------------------

    def track(self, batches: Iterable[SampleBatch]) -> TrackResult:
        """Track through a sequence of grouping samplings.

        The matcher state persists across rounds, so the heuristic matcher
        starts each search from the previous face (Algorithm 2's
        consecutive-tracking speedup).  The exhaustive matcher has no such
        state, so its whole trace is localized in two batched kernel calls
        (Algorithm-1 vectors, then one GEMM match) — bit-identical to the
        per-round loop, an order of magnitude faster.
        """
        batches = list(batches)
        record = obs.enabled()
        if isinstance(self.matcher, ExhaustiveMatcher) and len(batches) > 1:
            stacked = self._stack_rss(batches)
            if stacked is not None:
                vectors = self.build_vectors(stacked)
                matches = self.matcher.match_many(vectors)
                result = TrackResult()
                for b, (batch, rss, match) in enumerate(zip(batches, stacked, matches)):
                    est = TrackEstimate(
                        t=float(batch.times[0]),
                        position=match.position,
                        face_ids=match.face_ids,
                        sq_distance=match.sq_distance,
                        n_reporting=int((~np.isnan(rss).all(axis=0)).sum()),
                        visited_faces=match.visited,
                    )
                    if record:
                        self._record_round(est, int(np.isnan(vectors[b]).sum()))
                    result.append(est, batch.mean_position)
                return result
        result = TrackResult()
        for batch in batches:
            t0 = time.perf_counter() if record else 0.0
            est = self.localize_batch(batch)
            if record:
                obs.histogram("tracker.round_seconds").observe(time.perf_counter() - t0)
            result.append(est, batch.mean_position)
        return result

    def _stack_rss(self, batches: "list[SampleBatch]") -> "np.ndarray | None":
        """(T, k, n) stack of the batches' RSS, or None if shapes vary."""
        stack = [np.atleast_2d(np.asarray(b.rss, dtype=float)) for b in batches]
        shape = stack[0].shape
        if any(s.shape != shape for s in stack) or shape[1] != self.face_map.n_nodes:
            return None
        return np.stack(stack)

    def reset(self) -> None:
        """Clear matcher state (start a fresh trace)."""
        self.matcher.reset()
