"""Face-map and matching diagnostics.

Deployment-time introspection: which node pairs actually carry location
information, how distinguishable the faces are, and how much ambiguity a
sampling vector can face — the questions an operator asks before trusting
a deployment, and the quantities behind the paper's O(n^4)-faces and
tie-breaking discussions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.faces import FaceMap

__all__ = [
    "pair_informativeness",
    "least_informative_pairs",
    "face_separability",
    "AmbiguityCensus",
    "ambiguity_census",
]


def pair_informativeness(face_map: FaceMap) -> np.ndarray:
    """Per-pair entropy (bits) of the signature value over the field area.

    A pair whose value is the same almost everywhere contributes almost
    nothing to localization; a pair splitting the area into balanced
    thirds carries up to log2(3) ≈ 1.58 bits.
    """
    weights = face_map.cell_counts.astype(float)
    total = weights.sum()
    out = np.empty(face_map.n_pairs)
    sigs = face_map.signatures
    for p in range(face_map.n_pairs):
        h = 0.0
        for v in (-1, 0, 1):
            mass = weights[sigs[:, p] == v].sum() / total
            if mass > 0:
                h -= mass * np.log2(mass)
        out[p] = h
    return out


def least_informative_pairs(face_map: FaceMap, k: int = 5) -> np.ndarray:
    """Indices of the *k* pairs contributing the least location information.

    Candidates for pruning when uplink budget is tight (their values can
    be dropped from reports with minimal accuracy cost).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    info = pair_informativeness(face_map)
    k = min(k, face_map.n_pairs)
    return np.argsort(info)[:k]


def face_separability(face_map: FaceMap) -> dict:
    """How far apart face signatures are — the matching safety margin.

    Returns min / median / mean pairwise squared signature distance across
    a sample of face pairs.  A minimum of 1 means two faces differ in a
    single component step: one flipped pair can confuse them (Theorem 1
    says neighbors always do; what matters is how common 1-distance pairs
    are among *non*-neighbors).
    """
    sigs = face_map.signatures.astype(np.float32)
    f = len(sigs)
    if f < 2:
        raise ValueError("need at least two faces")
    # subsample for large maps: all pairs up to ~500 faces, else random
    if f <= 500:
        idx_a, idx_b = np.triu_indices(f, k=1)
    else:
        rng = np.random.default_rng(0)
        idx_a = rng.integers(0, f, size=120_000)
        idx_b = rng.integers(0, f, size=120_000)
        keep = idx_a != idx_b
        idx_a, idx_b = idx_a[keep], idx_b[keep]
    diff = sigs[idx_a] - sigs[idx_b]
    d2 = np.einsum("ij,ij->i", diff, diff)
    return {
        "min_sq_distance": float(d2.min()),
        "median_sq_distance": float(np.median(d2)),
        "mean_sq_distance": float(d2.mean()),
        "unit_distance_fraction": float((d2 <= 1.0).mean()),
    }


@dataclass(frozen=True)
class AmbiguityCensus:
    """How often maximum-likelihood matching ties, measured by sampling."""

    n_trials: int
    tie_fraction: float  # trials with more than one best face
    mean_tie_size: float  # average number of tied faces when tied
    max_tie_size: int


def ambiguity_census(
    face_map: FaceMap,
    n_trials: int = 500,
    *,
    corruption: int = 2,
    rng: "np.random.Generator | int | None" = 0,
) -> AmbiguityCensus:
    """Sample corrupted signatures and measure matching ambiguity.

    Each trial takes a real face signature, corrupts *corruption*
    components by one level, and matches it back — the §6 motivation
    ("sometimes more than one face has the maximum likelihood") made
    measurable for a concrete deployment.
    """
    from repro.rng import ensure_rng

    if n_trials < 1:
        raise ValueError("need at least one trial")
    if corruption < 0:
        raise ValueError("corruption must be non-negative")
    gen = ensure_rng(rng)
    # draw all corrupted vectors first (same RNG consumption order as the
    # historical per-trial loop), then match the whole census in one
    # batched kernel call — bit-identical ties, one GEMM instead of
    # n_trials signature scans
    vectors = np.empty((n_trials, face_map.n_pairs), dtype=float)
    for trial in range(n_trials):
        fid = int(gen.integers(0, face_map.n_faces))
        v = face_map.signatures[fid].astype(float)
        for idx in gen.integers(0, face_map.n_pairs, size=corruption):
            step = gen.choice([-1.0, 1.0])
            v[idx] = float(np.clip(v[idx] + step, -1.0, 1.0))
        vectors[trial] = v
    tied_lists, _ = face_map.match_many(vectors)
    ties = np.asarray([len(t) for t in tied_lists])
    tied_mask = ties > 1
    return AmbiguityCensus(
        n_trials=n_trials,
        tie_fraction=float(tied_mask.mean()),
        mean_tie_size=float(ties[tied_mask].mean()) if tied_mask.any() else 1.0,
        max_tie_size=int(ties.max()),
    )
