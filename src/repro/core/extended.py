"""Quantitative signature model for extended FTTT (paper §6).

§6 quantifies the pairwise uncertainty on the *sampling* side: the
extended pair value ``(N_ij - N_ji)/k`` lives in [-1, 1].  Matching those
against qualitative {-1, 0, +1} signatures leaves information on the
table: deep inside a pair's uncertain band the expected extended value is
near 0, but near the band edge it is near ±1 — a gradient the qualitative
signature cannot express.  This module computes the *expected* extended
value of every face under the channel model,

    E[v] = P(RSS_i - RSS_j > eps) - P(RSS_j - RSS_i > eps)
         = Phi((dmu - eps) / (sqrt(2) sigma)) - Phi((-dmu - eps) / (sqrt(2) sigma)),
    dmu  = 10 beta log10(d_j / d_i),

averaged over the face's cells, with the same sensing-range semantics as
the qualitative signatures (one silent node => ±1, both silent => 0).
Matching extended sampling vectors against these soft signatures is the
natural completion of §6 and is what eliminates similarity ties.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.geometry.faces import FaceMap
from repro.geometry.primitives import enumerate_pairs, pairwise_distances

__all__ = ["expected_extended_signatures", "attach_soft_signatures"]


def expected_extended_signatures(
    face_map: FaceMap,
    *,
    path_loss_exponent: float,
    noise_sigma_dbm: float,
    resolution_dbm: float = 0.0,
    sensing_range: float | None = None,
    chunk_pairs: int = 128,
) -> np.ndarray:
    """Per-face expected extended pair values, shape ``(F, P)`` float32.

    Parameters mirror the channel: *path_loss_exponent* and
    *noise_sigma_dbm* set the per-sample win probability, and
    *resolution_dbm* is the comparator deadband (a sample within it counts
    for neither side).
    """
    if path_loss_exponent <= 0:
        raise ValueError(f"path-loss exponent must be positive, got {path_loss_exponent}")
    if noise_sigma_dbm < 0 or resolution_dbm < 0:
        raise ValueError("sigma and resolution must be non-negative")
    grid = face_map.grid
    nodes = face_map.nodes
    cell_face = face_map.cell_face
    n_faces = face_map.n_faces
    i_idx, j_idx = enumerate_pairs(len(nodes))
    n_pairs = len(i_idx)
    if n_pairs != face_map.n_pairs:
        raise AssertionError("pair count mismatch between nodes and signatures")

    dist = pairwise_distances(grid.cell_centers, nodes)  # (M, n)
    counts = face_map.cell_counts.astype(np.float64)
    out = np.empty((n_faces, n_pairs), dtype=np.float32)
    denom = np.sqrt(2.0) * noise_sigma_dbm
    for start in range(0, n_pairs, chunk_pairs):
        stop = min(start + chunk_pairs, n_pairs)
        di = dist[:, i_idx[start:stop]]
        dj = dist[:, j_idx[start:stop]]
        with np.errstate(divide="ignore"):
            dmu = 10.0 * path_loss_exponent * (np.log10(dj) - np.log10(di))
        if noise_sigma_dbm > 0:
            vals = norm.cdf((dmu - resolution_dbm) / denom) - norm.cdf(
                (-dmu - resolution_dbm) / denom
            )
        else:  # noiseless: hard sign outside the deadband
            vals = np.sign(dmu) * (np.abs(dmu) > resolution_dbm)
        if sensing_range is not None:
            in_i = di <= sensing_range
            in_j = dj <= sensing_range
            vals = np.where(in_i & ~in_j, 1.0, vals)
            vals = np.where(~in_i & in_j, -1.0, vals)
            vals = np.where(~in_i & ~in_j, 0.0, vals)
        acc = np.zeros((n_faces, stop - start))
        np.add.at(acc, cell_face, vals)
        out[:, start:stop] = (acc / counts[:, None]).astype(np.float32)
    return out


def attach_soft_signatures(
    face_map: FaceMap,
    *,
    path_loss_exponent: float,
    noise_sigma_dbm: float,
    resolution_dbm: float = 0.0,
    sensing_range: float | None = None,
) -> FaceMap:
    """Compute and attach soft signatures to *face_map* (idempotent)."""
    if face_map.soft_signatures is None:
        face_map.soft_signatures = expected_extended_signatures(
            face_map,
            path_loss_exponent=path_loss_exponent,
            noise_sigma_dbm=noise_sigma_dbm,
            resolution_dbm=resolution_dbm,
            sensing_range=sensing_range,
        )
    return face_map
