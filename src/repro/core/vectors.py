"""Sampling-vector construction (Algorithm 1, Definitions 3-5, 10; Eq. 6).

A grouping sampling is a ``(k, n)`` RSS matrix — k near-synchronous sample
instants by n sensors, NaN where a sensor did not report.  For every node
pair ``(i, j), i < j`` in the canonical enumeration, the pair value is

* **basic** (Definition 4): +1 if node i's RSS beats node j's at *every*
  instant, -1 if it loses at every instant, 0 if the ordering flipped
  within the group;
* **extended** (Definition 10): ``(N_ij - N_ji) / k`` in ``[-1, 1]`` — the
  signed fraction of instants won;
* **fault-tolerant fill** (Eq. 6): a reporting sensor is assumed stronger
  than a silent one (+1 / -1), and two silent sensors give the ``*`` value,
  represented as NaN and masked out of every vector difference (Eq. 7).

The vectorized implementations here are the production path; the
loop-based :func:`sampling_vector_reference` transcribes the paper's
Algorithm 1 literally and exists to pin the vectorized code to it.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.primitives import enumerate_pairs

__all__ = [
    "STAR",
    "sampling_vector",
    "extended_sampling_vector",
    "sampling_vectors",
    "extended_sampling_vectors",
    "sampling_vector_reference",
    "pair_win_counts",
]

STAR = np.nan
"""The ``*`` pair value of Eq. 6 — stored as NaN, masked by Eq. 7."""


def _prepare(rss: np.ndarray, pairs: "tuple[np.ndarray, np.ndarray] | None"):
    rss = np.atleast_2d(np.asarray(rss, dtype=float))
    if rss.ndim != 2:
        raise ValueError(f"rss must be a (k, n) matrix, got shape {rss.shape}")
    n = rss.shape[1]
    if n < 2:
        raise ValueError(f"need at least two sensors, got {n}")
    if pairs is None:
        pairs = enumerate_pairs(n)
    return rss, pairs


def pair_win_counts(
    rss: np.ndarray,
    pairs: "tuple[np.ndarray, np.ndarray] | None" = None,
    *,
    comparator_eps: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-pair counts over the common valid instants.

    Returns ``(wins_i, wins_j, valid)`` with shapes ``(P,)`` — instants where
    i's RSS exceeds j's by more than *comparator_eps*, where j exceeds i,
    and how many instants both sensors reported.  Instants where the two
    RSS are within *comparator_eps* count toward neither side (tie).
    """
    if comparator_eps < 0:
        raise ValueError(f"comparator_eps must be non-negative, got {comparator_eps}")
    rss, (i_idx, j_idx) = _prepare(rss, pairs)
    diff = rss[:, i_idx] - rss[:, j_idx]  # (k, P); NaN if either missing
    valid = ~np.isnan(diff)
    wins_i = np.count_nonzero(valid & (diff > comparator_eps), axis=0)
    wins_j = np.count_nonzero(valid & (diff < -comparator_eps), axis=0)
    return wins_i, wins_j, np.count_nonzero(valid, axis=0)


def _fault_fill(
    values: np.ndarray,
    rss: np.ndarray,
    i_idx: np.ndarray,
    j_idx: np.ndarray,
    n_valid: np.ndarray,
) -> np.ndarray:
    """Apply the Eq. 6 fill to pairs with no common valid instants."""
    reported = ~np.isnan(rss).all(axis=0)  # sensor delivered >= 1 sample
    no_common = n_valid == 0
    if not no_common.any():
        return values
    ri = reported[i_idx]
    rj = reported[j_idx]
    values = values.copy()
    values[no_common & ri & ~rj] = 1.0
    values[no_common & ~ri & rj] = -1.0
    values[no_common & ~ri & ~rj] = STAR
    # both reported but never simultaneously: fall back to mean comparison
    both = no_common & ri & rj
    if both.any():
        counts = np.maximum((~np.isnan(rss)).sum(axis=0), 1)
        sums = np.where(np.isnan(rss), 0.0, rss).sum(axis=0)
        means = sums / counts
        values[both] = np.sign(means[i_idx[both]] - means[j_idx[both]])
    return values


def sampling_vector(
    rss: np.ndarray,
    pairs: "tuple[np.ndarray, np.ndarray] | None" = None,
    *,
    comparator_eps: float = 0.0,
) -> np.ndarray:
    """Basic sampling vector (Algorithm 1 + the Eq. 6 fault fill).

    Parameters
    ----------
    rss : (k, n) grouping-sampling matrix, NaN for missing samples.
    pairs : optional pre-computed canonical pair enumeration.
    comparator_eps : hardware comparator deadband in dB; RSS pairs within
        it are ties and force the pair value to 0 (flipped).

    Returns
    -------
    (P,) float vector with values in {-1, 0, +1} and NaN for ``*`` pairs.
    """
    rss, (i_idx, j_idx) = _prepare(rss, pairs)
    wins_i, wins_j, n_valid = pair_win_counts(rss, (i_idx, j_idx), comparator_eps=comparator_eps)
    values = np.zeros(len(i_idx), dtype=float)
    with np.errstate(invalid="ignore"):
        ordinal_i = (wins_i == n_valid) & (n_valid > 0)
        ordinal_j = (wins_j == n_valid) & (n_valid > 0)
    values[ordinal_i] = 1.0
    values[ordinal_j] = -1.0
    return _fault_fill(values, rss, i_idx, j_idx, n_valid)


def extended_sampling_vector(
    rss: np.ndarray,
    pairs: "tuple[np.ndarray, np.ndarray] | None" = None,
    *,
    comparator_eps: float = 0.0,
) -> np.ndarray:
    """Extended (quantitative) sampling vector of Definition 10.

    Each component is ``P(i beats j) - P(j beats i)`` estimated over the
    common valid instants — in ``[-1, 1]``, equal to the basic value at the
    extremes.  Pairs with no common instants get the Eq. 6 fill.
    """
    rss, (i_idx, j_idx) = _prepare(rss, pairs)
    wins_i, wins_j, n_valid = pair_win_counts(rss, (i_idx, j_idx), comparator_eps=comparator_eps)
    denom = np.where(n_valid > 0, n_valid, 1)
    values = (wins_i - wins_j) / denom
    return _fault_fill(values, rss, i_idx, j_idx, n_valid)


def _prepare_stack(
    rss: np.ndarray, pairs: "tuple[np.ndarray, np.ndarray] | None"
) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
    rss = np.asarray(rss, dtype=float)
    if rss.ndim == 2:
        rss = rss[None]
    if rss.ndim != 3:
        raise ValueError(f"rss must be a (T, k, n) stack, got shape {rss.shape}")
    n = rss.shape[2]
    if n < 2:
        raise ValueError(f"need at least two sensors, got {n}")
    if pairs is None:
        pairs = enumerate_pairs(n)
    return rss, pairs


def _stack_win_counts(
    rss: np.ndarray,
    i_idx: np.ndarray,
    j_idx: np.ndarray,
    comparator_eps: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(T, P) win counts — :func:`pair_win_counts` over a round stack."""
    if comparator_eps < 0:
        raise ValueError(f"comparator_eps must be non-negative, got {comparator_eps}")
    diff = rss[:, :, i_idx] - rss[:, :, j_idx]  # (T, k, P); NaN if either missing
    valid = ~np.isnan(diff)
    wins_i = np.count_nonzero(valid & (diff > comparator_eps), axis=1)
    wins_j = np.count_nonzero(valid & (diff < -comparator_eps), axis=1)
    return wins_i, wins_j, np.count_nonzero(valid, axis=1)


def _fault_fill_stack(
    values: np.ndarray,
    rss: np.ndarray,
    i_idx: np.ndarray,
    j_idx: np.ndarray,
    n_valid: np.ndarray,
) -> np.ndarray:
    """The Eq. 6 fill of :func:`_fault_fill`, per round of a (T, k, n) stack."""
    reported = ~np.isnan(rss).all(axis=1)  # (T, n)
    no_common = n_valid == 0
    if not no_common.any():
        return values
    ri = reported[:, i_idx]
    rj = reported[:, j_idx]
    values = values.copy()
    values[no_common & ri & ~rj] = 1.0
    values[no_common & ~ri & rj] = -1.0
    values[no_common & ~ri & ~rj] = STAR
    both = no_common & ri & rj
    if both.any():
        counts = np.maximum((~np.isnan(rss)).sum(axis=1), 1)  # (T, n)
        sums = np.where(np.isnan(rss), 0.0, rss).sum(axis=1)
        means = sums / counts
        delta = means[:, i_idx] - means[:, j_idx]
        values[both] = np.sign(delta[both])
    return values


def sampling_vectors(
    rss: np.ndarray,
    pairs: "tuple[np.ndarray, np.ndarray] | None" = None,
    *,
    comparator_eps: float = 0.0,
) -> np.ndarray:
    """Batched :func:`sampling_vector` over a ``(T, k, n)`` round stack.

    Returns a ``(T, P)`` matrix whose row ``t`` is bit-identical to
    ``sampling_vector(rss[t], ...)`` — every operation is elementwise per
    round, so batching cannot change a single value.  This is the
    Algorithm-1 kernel the trace-level matchers feed from.
    """
    rss, (i_idx, j_idx) = _prepare_stack(rss, pairs)
    wins_i, wins_j, n_valid = _stack_win_counts(rss, i_idx, j_idx, comparator_eps)
    values = np.zeros(wins_i.shape, dtype=float)
    values[(wins_i == n_valid) & (n_valid > 0)] = 1.0
    values[(wins_j == n_valid) & (n_valid > 0)] = -1.0
    return _fault_fill_stack(values, rss, i_idx, j_idx, n_valid)


def extended_sampling_vectors(
    rss: np.ndarray,
    pairs: "tuple[np.ndarray, np.ndarray] | None" = None,
    *,
    comparator_eps: float = 0.0,
) -> np.ndarray:
    """Batched :func:`extended_sampling_vector` over a ``(T, k, n)`` stack."""
    rss, (i_idx, j_idx) = _prepare_stack(rss, pairs)
    wins_i, wins_j, n_valid = _stack_win_counts(rss, i_idx, j_idx, comparator_eps)
    denom = np.where(n_valid > 0, n_valid, 1)
    values = (wins_i - wins_j) / denom
    return _fault_fill_stack(values, rss, i_idx, j_idx, n_valid)


def sampling_vector_reference(rss: np.ndarray) -> np.ndarray:
    """Literal transcription of the paper's Algorithm 1 (loops and all).

    Only supports fully-reporting groups (no NaN) — Algorithm 1 predates
    the fault-tolerance extension.  Used by tests to pin
    :func:`sampling_vector` and by the complexity benchmark.
    """
    rss = np.atleast_2d(np.asarray(rss, dtype=float))
    if np.isnan(rss).any():
        raise ValueError("Algorithm 1 reference handles complete groups only (no NaN)")
    k, n = rss.shape
    values: list[float] = []
    for i in range(n):
        for j in range(i + 1, n):
            v: float | None = None
            for w in range(k):
                if rss[w, i] > rss[w, j]:
                    if v == -1:
                        v = 0.0
                        break
                    v = 1.0
                elif rss[w, i] < rss[w, j]:
                    if v == 1:
                        v = 0.0
                        break
                    v = -1.0
                else:  # exact tie: counts as a flip
                    v = 0.0
                    break
            values.append(0.0 if v is None else v)
    return np.asarray(values, dtype=float)
