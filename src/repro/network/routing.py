"""Cluster-head election and multi-hop report forwarding.

The paper aggregates sensing results "in the base stations or in the
cluster heads" (§4.3-2).  This substrate models the report path: sensors
attach to the nearest cluster head within radio range, heads forward to
the base station over a shortest-hop tree, and every radio hop loses a
report independently — so a sensor's effective delivery probability decays
with its hop depth.  The energy cost of relaying is charged per forwarded
report, which is what makes "too dense deployment will worsen the
communication ability" (§5.2) a measurable statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.rng import ensure_rng

__all__ = ["RoutingTopology", "build_routing_topology"]


@dataclass
class RoutingTopology:
    """A routed WSN: per-node next hops toward the base station.

    Attributes
    ----------
    positions : (n, 2) sensor positions; the base station is a virtual
        node at ``bs_position``.
    next_hop : (n,) index of each node's parent (-1 = delivers straight
        to the base station, -2 = disconnected).
    hop_depth : (n,) radio hops from node to base station (np.inf when
        disconnected).
    per_hop_loss : report loss probability per radio hop.
    """

    positions: np.ndarray
    bs_position: np.ndarray
    next_hop: np.ndarray
    hop_depth: np.ndarray
    per_hop_loss: float
    relay_counts: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        n = len(self.positions)
        counts = np.zeros(n, dtype=np.int64)
        for node in range(n):
            hop = self.next_hop[node]
            seen = 0
            while hop >= 0:
                counts[hop] += 1
                hop = self.next_hop[hop]
                seen += 1
                if seen > n:
                    raise AssertionError("routing loop detected")
        self.relay_counts = counts

    @property
    def n_nodes(self) -> int:
        return len(self.positions)

    @property
    def connected(self) -> np.ndarray:
        return np.isfinite(self.hop_depth)

    def delivery_probability(self) -> np.ndarray:
        """Per-node probability that one report survives all its hops."""
        p = np.where(self.connected, (1.0 - self.per_hop_loss) ** self.hop_depth, 0.0)
        return p

    def drop_mask(self, round_index: int, rng: np.random.Generator) -> np.ndarray:
        """Sample which sensors' reports are lost this round (True = lost).

        Losses are drawn per *hop* so siblings sharing a dead relay link
        are NOT correlated here — each report traverses the tree at its
        own instant; per-report independence is the standard assumption.
        """
        u = rng.random(self.n_nodes)
        return u >= self.delivery_probability()

    def relay_energy_per_round(self, report_cost_j: float = 5e-4) -> np.ndarray:
        """Energy each node spends per round on its own + relayed reports."""
        own = np.where(self.connected, 1.0, 0.0)
        return (own + self.relay_counts) * report_cost_j

    def network_lifetime_rounds(
        self, energy_j: float = 100.0, report_cost_j: float = 5e-4
    ) -> float:
        """Rounds until the busiest node exhausts its budget (classic
        first-node-death lifetime)."""
        per_round = self.relay_energy_per_round(report_cost_j)
        busiest = per_round.max()
        if busiest <= 0:
            return float("inf")
        return float(energy_j / busiest)


def build_routing_topology(
    positions: np.ndarray,
    *,
    bs_position: "np.ndarray | None" = None,
    radio_range: float = 30.0,
    per_hop_loss: float = 0.02,
) -> RoutingTopology:
    """Shortest-hop routing tree toward the base station.

    Nodes within ``radio_range`` of each other (or of the base station)
    share a link; each node's parent is its neighbour on a shortest hop
    path.  Disconnected nodes never deliver (their reports become the
    fault-tolerance path's problem).
    """
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    n = len(positions)
    if n < 1:
        raise ValueError("need at least one sensor")
    if radio_range <= 0:
        raise ValueError(f"radio range must be positive, got {radio_range}")
    if not (0.0 <= per_hop_loss < 1.0):
        raise ValueError(f"per-hop loss must be in [0, 1), got {per_hop_loss}")
    if bs_position is None:
        bs_position = positions.mean(axis=0)
    bs_position = np.asarray(bs_position, dtype=float).reshape(2)

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    bs = "BS"
    graph.add_node(bs)
    diff = positions[:, None, :] - positions[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    for i in range(n):
        for j in range(i + 1, n):
            if dist[i, j] <= radio_range:
                graph.add_edge(i, j)
        if np.hypot(*(positions[i] - bs_position)) <= radio_range:
            graph.add_edge(i, bs)

    next_hop = np.full(n, -2, dtype=np.int64)
    hop_depth = np.full(n, np.inf)
    lengths, paths = nx.single_source_dijkstra(graph, bs)
    for node in range(n):
        if node in lengths:
            hop_depth[node] = lengths[node]
            parent = paths[node][-2]  # the hop before this node on the BS path
            next_hop[node] = -1 if parent == bs else int(parent)
    return RoutingTopology(
        positions=positions,
        bs_position=bs_position,
        next_hop=next_hop,
        hop_depth=hop_depth,
        per_hop_loss=per_hop_loss,
    )
