"""Slotted contention MAC for the report uplink.

The §5.2 discussion's second half: dense deployments congest the channel
and add delay.  This model makes that concrete without simulating radios
bit by bit: per localization round, every reporting sensor contends for
one of ``n_slots`` uplink slots (slotted-ALOHA style, with up to
``max_retries`` backoff rounds).  Collided-out reports are lost; every
retry adds one slot time of delay.  The outputs — per-round loss mask and
delay statistics — plug into the same pipeline as the fault models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SlottedContentionMac", "MacRoundStats"]


@dataclass(frozen=True)
class MacRoundStats:
    """Outcome of one round of uplink contention."""

    delivered: np.ndarray  # (n,) bool
    delay_slots: np.ndarray  # (n,) slots waited by delivered reports (nan if lost)
    collisions: int
    attempts: int

    @property
    def delivery_rate(self) -> float:
        n = len(self.delivered)
        return float(self.delivered.sum() / n) if n else 0.0

    @property
    def mean_delay_slots(self) -> float:
        ok = self.delivered
        if not ok.any():
            return float("nan")
        return float(self.delay_slots[ok].mean())


@dataclass(frozen=True)
class SlottedContentionMac:
    """Slotted-ALOHA-style contention per localization round.

    Parameters
    ----------
    n_slots : uplink slots available per contention round.
    max_retries : how many extra contention rounds a collided sensor gets.
    """

    n_slots: int = 16
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.n_slots < 1:
            raise ValueError(f"need at least one slot, got {self.n_slots}")
        if self.max_retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.max_retries}")

    def contend(self, reporting: np.ndarray, rng: np.random.Generator) -> MacRoundStats:
        """Run contention for the sensors flagged in *reporting*."""
        reporting = np.asarray(reporting, dtype=bool)
        n = len(reporting)
        delivered = np.zeros(n, dtype=bool)
        delay = np.full(n, np.nan)
        backlog = np.flatnonzero(reporting)
        collisions = 0
        attempts = 0
        for attempt in range(self.max_retries + 1):
            if len(backlog) == 0:
                break
            slots = rng.integers(0, self.n_slots, size=len(backlog))
            attempts += len(backlog)
            unique, counts = np.unique(slots, return_counts=True)
            clean = set(unique[counts == 1].tolist())
            won = np.array([s in clean for s in slots])
            winners = backlog[won]
            delivered[winners] = True
            delay[winners] = attempt * self.n_slots + slots[won]
            collisions += int((~won).sum())
            backlog = backlog[~won]
        return MacRoundStats(
            delivered=delivered, delay_slots=delay, collisions=collisions, attempts=attempts
        )

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        """FaultModel-compatible adapter: True = report lost to contention."""
        stats = self.contend(np.ones(n, dtype=bool), rng)
        return ~stats.delivered

    def expected_delivery_rate(self, n_reporting: int) -> float:
        """Analytic single-attempt success p = (1 - 1/S)^(m-1), then retries.

        Approximation treating each retry round as independent thinning.
        """
        if n_reporting <= 0:
            return 1.0
        remaining = float(n_reporting)
        delivered = 0.0
        for _ in range(self.max_retries + 1):
            if remaining < 1e-9:
                break
            p = (1.0 - 1.0 / self.n_slots) ** max(remaining - 1.0, 0.0)
            delivered += remaining * p
            remaining *= 1.0 - p
        return min(delivered / n_reporting, 1.0)
