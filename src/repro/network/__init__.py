"""Network substrate: sensor nodes, deployments, sampling, and faults.

Models the WSN side of the system: where sensors sit (grid / random /
cross deployments), how grouping samplings are driven at the paper's
10 Hz sampling rate through a small discrete-event scheduler, which
sensors fail to report (fault models), and how the base station
aggregates rounds.
"""

from repro.network.node import SensorNode, NodeState
from repro.network.deployment import (
    grid_deployment,
    random_deployment,
    cross_deployment,
    perturbed_grid_deployment,
    deployment_stats,
)
from repro.network.sensing import GroupSampler
from repro.network.faults import (
    FaultModel,
    ValueFaultModel,
    NoFaults,
    IndependentDropout,
    CrashFailures,
    IntermittentFaults,
    RegionalOutage,
    Schedule,
    StuckReading,
    ByzantineRSS,
    CalibrationDrift,
    CompositeFaults,
)
from repro.network.basestation import BaseStation, LocalizationRound
from repro.network.events import EventScheduler, Event
from repro.network.sync import NodeClock, ClockEnsemble, ReferenceBroadcastSync
from repro.network.routing import RoutingTopology, build_routing_topology
from repro.network.mac import SlottedContentionMac, MacRoundStats
from repro.network.duty_cycle import LinearPredictor, DutyCycleController
from repro.network.aggregation import (
    ClusterAssignment,
    assign_clusters,
    DistributedVectorAssembly,
)

__all__ = [
    "SensorNode",
    "NodeState",
    "grid_deployment",
    "random_deployment",
    "cross_deployment",
    "perturbed_grid_deployment",
    "deployment_stats",
    "GroupSampler",
    "FaultModel",
    "ValueFaultModel",
    "NoFaults",
    "IndependentDropout",
    "CrashFailures",
    "IntermittentFaults",
    "RegionalOutage",
    "Schedule",
    "StuckReading",
    "ByzantineRSS",
    "CalibrationDrift",
    "CompositeFaults",
    "BaseStation",
    "LocalizationRound",
    "EventScheduler",
    "Event",
    "NodeClock",
    "ClockEnsemble",
    "ReferenceBroadcastSync",
    "RoutingTopology",
    "build_routing_topology",
    "SlottedContentionMac",
    "MacRoundStats",
    "LinearPredictor",
    "DutyCycleController",
    "ClusterAssignment",
    "assign_clusters",
    "DistributedVectorAssembly",
]
