"""Clock synchronization (paper ref [28]'s role in the system).

Grouping sampling assumes sensors sample "almost synchronously"; the paper
defers network timing to an adaptive synchronization protocol [28].  This
module provides that substrate: per-node clocks with offset and drift, a
reference-broadcast synchronization round (receivers timestamp a common
beacon; pairwise offsets follow), and the resulting residual jitter that
:class:`~repro.network.sensing.GroupSampler` consumes as ``clock_jitter_s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rng import ensure_rng

__all__ = ["NodeClock", "ClockEnsemble", "ReferenceBroadcastSync"]


@dataclass
class NodeClock:
    """A drifting local clock: ``local(t) = t + offset + drift * t``."""

    offset_s: float = 0.0
    drift_ppm: float = 0.0  # parts per million

    def local_time(self, true_time: float) -> float:
        return true_time + self.offset_s + self.drift_ppm * 1e-6 * true_time

    def true_to_local_delta(self, true_time: float) -> float:
        """How far this clock has wandered from true time at *true_time*."""
        return self.local_time(true_time) - true_time


@dataclass
class ClockEnsemble:
    """All node clocks in a deployment, with synchronization state."""

    clocks: list[NodeClock]
    corrections_s: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if not self.clocks:
            raise ValueError("ensemble needs at least one clock")
        self.corrections_s = np.zeros(len(self.clocks))

    @classmethod
    def random(
        cls,
        n: int,
        rng: "np.random.Generator | int | None" = None,
        *,
        offset_sigma_s: float = 0.05,
        drift_sigma_ppm: float = 30.0,
    ) -> "ClockEnsemble":
        """Typical mote hardware: tens-of-ms boot offsets, tens-of-ppm drift."""
        if n < 1:
            raise ValueError(f"need at least one clock, got {n}")
        rng = ensure_rng(rng)
        return cls(
            [
                NodeClock(
                    offset_s=float(rng.normal(0.0, offset_sigma_s)),
                    drift_ppm=float(rng.normal(0.0, drift_sigma_ppm)),
                )
                for _ in range(n)
            ]
        )

    def apparent_offsets(self, true_time: float) -> np.ndarray:
        """Each node's deviation from true time, after current corrections."""
        raw = np.array([c.true_to_local_delta(true_time) for c in self.clocks])
        return raw - self.corrections_s

    def residual_jitter(self, true_time: float) -> float:
        """Peak-to-peak sampling skew across the network right now."""
        off = self.apparent_offsets(true_time)
        return float(off.max() - off.min())


@dataclass(frozen=True)
class ReferenceBroadcastSync:
    """RBS-style synchronization: one beacon, receiver-side timestamping.

    Every node timestamps the same physical broadcast; differences of those
    timestamps estimate pairwise offsets up to receive-side jitter
    (``timestamp_sigma_s``).  A round aligns every node to the ensemble
    mean; the residual is the timestamping noise — the quantity that ends
    up as ``GroupSampler.clock_jitter_s``.
    """

    timestamp_sigma_s: float = 2e-3

    def __post_init__(self) -> None:
        if self.timestamp_sigma_s < 0:
            raise ValueError(f"timestamp sigma must be non-negative, got {self.timestamp_sigma_s}")

    def run_round(
        self,
        ensemble: ClockEnsemble,
        true_time: float,
        rng: "np.random.Generator | int | None" = None,
    ) -> float:
        """Execute one sync round; returns the post-round residual jitter."""
        rng = ensure_rng(rng)
        # receivers timestamp the beacon on their (uncorrected) local clocks
        raw = np.array([c.true_to_local_delta(true_time) for c in ensemble.clocks])
        observed = raw + rng.normal(0.0, self.timestamp_sigma_s, size=len(raw))
        # align to the ensemble mean of the observed timestamps
        ensemble.corrections_s = observed - observed.mean()
        return ensemble.residual_jitter(true_time)

    def recommended_resync_period(
        self, ensemble: ClockEnsemble, jitter_budget_s: float
    ) -> float:
        """How often to resync so drift stays within the jitter budget."""
        if jitter_budget_s <= 0:
            raise ValueError(f"budget must be positive, got {jitter_budget_s}")
        drifts = np.array([c.drift_ppm for c in ensemble.clocks]) * 1e-6
        spread = float(drifts.max() - drifts.min())
        if spread <= 0:
            return float("inf")
        return jitter_budget_s / spread
