"""Grouping-sampling driver (Definition 3).

For each localization, every sensor samples k times "almost synchronously"
within a short interval delta-t.  :class:`GroupSampler` generates those
samples along a moving-target trace, with optional per-node clock jitter —
samples are taken at each node's own (slightly offset) instants, against
the target position at that instant, exactly like a real unsynchronized
network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.rf.channel import RssChannel, SampleBatch

__all__ = ["GroupSampler"]

PathFn = Callable[[np.ndarray], np.ndarray]  # times (m,) -> positions (m, 2)


@dataclass(frozen=True)
class GroupSampler:
    """Produces grouping samplings for a moving target.

    Parameters
    ----------
    channel : the RSS observation channel (deployment + propagation + noise).
    k : samples per grouping (paper: 3-9).
    sampling_rate_hz : intra-group sample spacing is ``1/rate`` (Table 1: 10 Hz).
    clock_jitter_s : per-node clock offset, drawn uniformly in
        ``[0, clock_jitter_s]`` fresh for every group; 0 = perfectly
        synchronous sampling.
    """

    channel: RssChannel
    k: int = 5
    sampling_rate_hz: float = 10.0
    clock_jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.sampling_rate_hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {self.sampling_rate_hz}")
        if self.clock_jitter_s < 0:
            raise ValueError(f"clock jitter must be non-negative, got {self.clock_jitter_s}")

    @property
    def group_duration_s(self) -> float:
        """Wall-clock span of one grouping sampling."""
        return self.k / self.sampling_rate_hz

    def sample_group(
        self,
        path_fn: PathFn,
        t0: float,
        rng: np.random.Generator,
        *,
        drop_mask: np.ndarray | None = None,
    ) -> SampleBatch:
        """One grouping sampling starting at *t0* along the trace *path_fn*.

        With clock jitter enabled, node *j*'s i-th sample observes the
        target where it actually is at ``t0 + i/rate + offset_j``; the
        returned batch's ``positions`` are the nominal (un-jittered)
        instants' true positions, which is what tracking error is measured
        against.
        """
        k, n = self.k, self.channel.n_sensors
        base_times = t0 + np.arange(k) / self.sampling_rate_hz
        nominal_positions = np.atleast_2d(path_fn(base_times))
        if nominal_positions.shape != (k, 2):
            raise ValueError(
                f"path_fn returned shape {nominal_positions.shape}, expected ({k}, 2)"
            )

        if self.clock_jitter_s == 0.0:
            return self.channel.observe(nominal_positions, base_times, rng, drop_mask=drop_mask)

        offsets = rng.uniform(0.0, self.clock_jitter_s, size=n)
        t_matrix = base_times[:, None] + offsets[None, :]  # (k, n)
        pos_flat = np.atleast_2d(path_fn(t_matrix.ravel()))  # (k*n, 2)
        positions = pos_flat.reshape(k, n, 2)
        diff = positions - self.channel.nodes[None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])  # (k, n)
        rss = self.channel.pathloss.rss_dbm(dist) + self.channel.noise.sample(dist.shape, rng)
        if self.channel.sensing_range_m is not None:
            rss = np.where(dist <= self.channel.sensing_range_m, rss, np.nan)
        if drop_mask is not None:
            drop = np.asarray(drop_mask, dtype=bool)
            if drop.ndim == 1:
                drop = np.broadcast_to(drop, rss.shape)
            rss = np.where(drop, np.nan, rss)
        return SampleBatch(rss=rss, times=base_times, positions=nominal_positions)

    def sample_static(
        self,
        position: np.ndarray,
        rng: np.random.Generator,
        *,
        t0: float = 0.0,
        drop_mask: np.ndarray | None = None,
    ) -> SampleBatch:
        """Grouping sampling of a stationary target."""
        position = np.asarray(position, dtype=float).reshape(2)

        def path_fn(times: np.ndarray) -> np.ndarray:
            return np.broadcast_to(position, (len(np.atleast_1d(times)), 2)).copy()

        return self.sample_group(path_fn, t0, rng, drop_mask=drop_mask)
