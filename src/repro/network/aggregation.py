"""Distributed sampling-vector assembly at cluster heads.

§4.3-2: "information is real-time aggregated and stored in the base
stations or in the cluster heads".  Centralized assembly ships every raw
sample to the base station; the distributed variant computes what it can
where the data lives:

* each cluster head receives its members' raw sample columns and computes
  the pair values for *intra-cluster* pairs exactly (Algorithm 1 on the
  local submatrix);
* for *cross-cluster* pairs, heads forward only each member's per-round
  summary (mean RSS over the group), and the base station compares means.

Cross-cluster pairs therefore lose flip information — a mean comparison
can't see that an ordering flipped within the group — which is a genuine
accuracy/traffic trade-off this module makes measurable.  Uplink traffic
drops from ``k`` samples per sensor to one summary per sensor plus the
(small) intra-cluster pair values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.vectors import extended_sampling_vector, sampling_vector
from repro.geometry.primitives import enumerate_pairs

__all__ = ["ClusterAssignment", "assign_clusters", "DistributedVectorAssembly"]


@dataclass(frozen=True)
class ClusterAssignment:
    """Which sensors belong to which cluster head."""

    head_of: np.ndarray  # (n,) cluster index per sensor
    heads: np.ndarray  # (H,) sensor index acting as head of each cluster

    @property
    def n_clusters(self) -> int:
        return len(self.heads)

    def members(self, cluster: int) -> np.ndarray:
        return np.flatnonzero(self.head_of == cluster)


def assign_clusters(nodes: np.ndarray, n_clusters: int, *, seed: int = 0, iters: int = 20) -> ClusterAssignment:
    """Geographic k-means clustering; the head is the member nearest the
    cluster centre (it pays the aggregation energy, cf. routing relay load)."""
    nodes = np.atleast_2d(np.asarray(nodes, dtype=float))
    n = len(nodes)
    if not (1 <= n_clusters <= n):
        raise ValueError(f"n_clusters must be in [1, {n}], got {n_clusters}")
    rng = np.random.default_rng(seed)
    centres = nodes[rng.choice(n, size=n_clusters, replace=False)].copy()
    assign = np.zeros(n, dtype=np.int64)
    for _ in range(iters):
        d = np.hypot(
            nodes[:, 0][:, None] - centres[:, 0][None, :],
            nodes[:, 1][:, None] - centres[:, 1][None, :],
        )
        new_assign = d.argmin(axis=1)
        if np.array_equal(new_assign, assign) and _ > 0:
            break
        assign = new_assign
        for c in range(n_clusters):
            members = nodes[assign == c]
            if len(members):
                centres[c] = members.mean(axis=0)
    heads = np.empty(n_clusters, dtype=np.int64)
    for c in range(n_clusters):
        members = np.flatnonzero(assign == c)
        if len(members) == 0:
            # claim the globally nearest unused sensor to keep heads valid
            free = np.setdiff1d(np.arange(n), heads[:c])
            members = free[:1]
            assign[members] = c
        dd = np.hypot(*(nodes[members] - centres[c]).T)
        heads[c] = members[int(np.argmin(dd))]
    return ClusterAssignment(head_of=assign, heads=heads)


@dataclass
class DistributedVectorAssembly:
    """Assemble a sampling vector from cluster-local computations.

    Parameters
    ----------
    clusters : the cluster assignment.
    n_sensors : total sensor count (vector layout).
    mode : ``"basic"`` or ``"extended"`` for the intra-cluster pair values.
    comparator_eps : RSS comparator deadband.
    """

    clusters: ClusterAssignment
    n_sensors: int
    mode: str = "basic"
    comparator_eps: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("basic", "extended"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if len(self.clusters.head_of) != self.n_sensors:
            raise ValueError("cluster assignment size does not match sensor count")
        i_idx, j_idx = enumerate_pairs(self.n_sensors)
        self._i_idx, self._j_idx = i_idx, j_idx
        same = self.clusters.head_of[i_idx] == self.clusters.head_of[j_idx]
        self._intra = same

    @property
    def intra_cluster_fraction(self) -> float:
        """Fraction of pairs computed exactly (inside one cluster)."""
        return float(self._intra.mean())

    def uplink_traffic_ratio(self, k: int) -> float:
        """Distributed uplink volume relative to centralized raw shipping.

        Centralized: n·k samples.  Distributed: n summaries + the
        intra-cluster pair values (1 value per intra pair).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        centralized = self.n_sensors * k
        distributed = self.n_sensors + int(self._intra.sum())
        return distributed / centralized

    def assemble(self, rss: np.ndarray) -> np.ndarray:
        """Build the vector the base station sees under distributed assembly.

        Intra-cluster pair values come from the full local submatrices
        (exact); cross-cluster values from group-mean comparisons (no flip
        information — a pair straddling clusters reads ±1 or, only when a
        silent sensor is involved, the Eq. 6 fill).
        """
        rss = np.atleast_2d(np.asarray(rss, dtype=float))
        if rss.shape[1] != self.n_sensors:
            raise ValueError(
                f"rss has {rss.shape[1]} sensors, expected {self.n_sensors}"
            )
        # exact values as-if-centralized, for the intra-cluster entries
        if self.mode == "extended":
            full = extended_sampling_vector(rss, comparator_eps=self.comparator_eps)
        else:
            full = sampling_vector(rss, comparator_eps=self.comparator_eps)

        out = np.empty_like(full)
        out[self._intra] = full[self._intra]

        # cross-cluster: compare forwarded group means
        all_nan = np.isnan(rss).all(axis=0)
        counts = np.maximum((~np.isnan(rss)).sum(axis=0), 1)
        sums = np.where(np.isnan(rss), 0.0, rss).sum(axis=0)
        means = np.where(all_nan, np.nan, sums / counts)
        cross = ~self._intra
        mi = means[self._i_idx[cross]]
        mj = means[self._j_idx[cross]]
        with np.errstate(invalid="ignore"):
            # -inf - -inf = nan where both are silent; masked right after
            diff = np.where(np.isnan(mi), -np.inf, mi) - np.where(np.isnan(mj), -np.inf, mj)
            vals = np.where(np.isnan(mi) & np.isnan(mj), np.nan, np.sign(diff))
        # respect the comparator deadband on the mean comparison
        both = ~np.isnan(mi) & ~np.isnan(mj)
        with np.errstate(invalid="ignore"):
            tie = both & (np.abs(mi - mj) <= self.comparator_eps)
        vals = np.where(tie, 0.0, vals)
        out[cross] = vals
        return out
