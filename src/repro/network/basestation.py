"""Base-station aggregation.

Sensors report their grouping-sampling columns to a base station (the
paper aggregates "in the base stations or in the cluster heads", §4.3-2).
The base station adds the last unreliability layer — report packets can be
lost in transit — and hands complete rounds to whatever tracker is
attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rf.channel import SampleBatch

__all__ = ["LocalizationRound", "BaseStation"]


@dataclass(frozen=True)
class LocalizationRound:
    """One aggregated localization round as seen by the base station."""

    round_index: int
    t0: float
    batch: SampleBatch
    lost_reports: np.ndarray  # (n,) bool — report packet lost in transit

    @property
    def effective_rss(self) -> np.ndarray:
        """RSS matrix with lost reports blanked to NaN."""
        rss = self.batch.rss.copy()
        rss[:, self.lost_reports] = np.nan
        return rss

    @property
    def n_reporting(self) -> int:
        return int((~np.isnan(self.effective_rss).all(axis=0)).sum())


@dataclass
class BaseStation:
    """Collects sensor reports round by round.

    Parameters
    ----------
    packet_loss_p : probability that a sensor's whole report for a round is
        lost on the uplink (independent per sensor per round).
    """

    packet_loss_p: float = 0.0
    rounds: list[LocalizationRound] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not (0.0 <= self.packet_loss_p <= 1.0):
            raise ValueError(f"packet loss must be in [0, 1], got {self.packet_loss_p}")

    def aggregate(self, batch: SampleBatch, t0: float, rng: np.random.Generator) -> LocalizationRound:
        """Receive one grouping sampling, applying uplink packet loss."""
        n = batch.n_sensors
        if self.packet_loss_p > 0.0:
            lost = rng.random(n) < self.packet_loss_p
        else:
            lost = np.zeros(n, dtype=bool)
        rnd = LocalizationRound(
            round_index=len(self.rounds),
            t0=t0,
            batch=batch,
            lost_reports=lost,
        )
        self.rounds.append(rnd)
        return rnd

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def reporting_history(self) -> np.ndarray:
        """(rounds, n) matrix of which sensors delivered data each round."""
        if not self.rounds:
            return np.zeros((0, 0), dtype=bool)
        return np.stack([~np.isnan(r.effective_rss).all(axis=0) for r in self.rounds])

    def reset(self) -> None:
        self.rounds.clear()
