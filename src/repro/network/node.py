"""Sensor node model.

Nodes are deliberately thin: the tracking algorithms only ever see RSS
matrices, so a node is its identity, position, and health state.  Energy
book-keeping is included because deployment density trade-offs (paper
§5.2: "too dense deployment will worsen the communication ability") are
exercised by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

__all__ = ["NodeState", "SensorNode"]


class NodeState(Enum):
    """Health state of a sensor node."""

    ACTIVE = "active"
    FAILED = "failed"  # crashed; never reports again
    SLEEPING = "sleeping"  # duty-cycled off; temporarily not reporting


@dataclass
class SensorNode:
    """One deployed sensor.

    Parameters
    ----------
    node_id:
        Stable identity; pair enumeration (Definition 5) orders by id.
    position:
        (x, y) in metres.
    state:
        Current health state.
    energy_j:
        Remaining energy budget in joules (simplified linear model).
    """

    node_id: int
    position: np.ndarray
    state: NodeState = NodeState.ACTIVE
    energy_j: float = 100.0
    sample_cost_j: float = 1e-4
    report_cost_j: float = 5e-4
    samples_taken: int = field(default=0, repr=False)
    reports_sent: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be non-negative, got {self.node_id}")
        pos = np.asarray(self.position, dtype=float).reshape(2)
        self.position = pos
        if self.energy_j < 0:
            raise ValueError(f"energy must be non-negative, got {self.energy_j}")

    @property
    def is_reporting(self) -> bool:
        return self.state is NodeState.ACTIVE and self.energy_j > 0

    def charge_sampling(self, k: int) -> None:
        """Account for one grouping sampling of k samples plus one report."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        cost = k * self.sample_cost_j + self.report_cost_j
        self.energy_j = max(0.0, self.energy_j - cost)
        self.samples_taken += k
        self.reports_sent += 1
        if self.energy_j == 0.0:
            self.state = NodeState.FAILED

    def fail(self) -> None:
        self.state = NodeState.FAILED

    def sleep(self) -> None:
        if self.state is NodeState.ACTIVE:
            self.state = NodeState.SLEEPING

    def wake(self) -> None:
        if self.state is NodeState.SLEEPING:
            self.state = NodeState.ACTIVE


def positions_of(nodes: "list[SensorNode]") -> np.ndarray:
    """Stack node positions into an (n, 2) array ordered by list position."""
    if not nodes:
        return np.empty((0, 2))
    return np.stack([n.position for n in nodes])
