"""Tracking-aware duty cycling.

The paper defers "energy management ... of the target tracking sensor
networks" to ref [28]; this module supplies that subsystem as the natural
extension: sensors far from the target sleep, sensors the target is
heading toward wake up.  The controller predicts the next target position
by linear extrapolation of recent estimates and keeps awake exactly the
sensors within a guard radius of the prediction — everyone else's silence
flows through the normal Eq. 6 fault-tolerance path, which is what makes
duty cycling *compatible with FTTT by construction*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LinearPredictor", "DutyCycleController"]


@dataclass
class LinearPredictor:
    """Constant-velocity extrapolation over the recent estimate window."""

    window: int = 4
    _times: list[float] = field(default_factory=list, repr=False)
    _points: list[np.ndarray] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")

    def observe(self, t: float, position: np.ndarray) -> None:
        self._times.append(float(t))
        self._points.append(np.asarray(position, dtype=float).reshape(2))
        if len(self._times) > self.window:
            self._times.pop(0)
            self._points.pop(0)

    @property
    def n_observations(self) -> int:
        return len(self._times)

    def velocity(self) -> "np.ndarray | None":
        """Least-squares velocity over the window; None with < 2 points."""
        if len(self._times) < 2:
            return None
        t = np.asarray(self._times)
        p = np.stack(self._points)
        t_c = t - t.mean()
        denom = float((t_c**2).sum())
        if denom <= 0:
            return np.zeros(2)
        return (t_c[:, None] * (p - p.mean(axis=0))).sum(axis=0) / denom

    def predict(self, t: float) -> "np.ndarray | None":
        """Predicted position at time *t*; None before two observations."""
        v = self.velocity()
        if v is None:
            return None
        return self._points[-1] + v * (t - self._times[-1])

    def reset(self) -> None:
        self._times.clear()
        self._points.clear()


@dataclass
class DutyCycleController:
    """Wake the sensors that can plausibly hear the target; sleep the rest.

    Parameters
    ----------
    nodes : (n, 2) sensor positions.
    sensing_range_m : hearing radius R.
    guard_m : extra wake radius beyond R around the predicted position —
        absorbs prediction error and target manoeuvres.
    min_awake : never sleep below this many sensors (keeps localization
        alive even when the prediction is lost).
    predictor : position predictor fed by ``update``.
    """

    nodes: np.ndarray
    sensing_range_m: float = 40.0
    guard_m: float = 15.0
    min_awake: int = 4
    predictor: LinearPredictor = field(default_factory=LinearPredictor)
    _sleep_rounds: int = field(default=0, repr=False)
    _total_rounds: int = field(default=0, repr=False)
    _slept_sensor_rounds: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self.nodes = np.atleast_2d(np.asarray(self.nodes, dtype=float))
        if self.sensing_range_m <= 0 or self.guard_m < 0:
            raise ValueError("ranges must be positive / non-negative")
        if self.min_awake < 2:
            raise ValueError(f"min_awake must be >= 2 (pairwise tracking), got {self.min_awake}")

    def update(self, t: float, estimate: np.ndarray) -> None:
        """Feed the latest localization estimate into the predictor."""
        self.predictor.observe(t, estimate)

    def sleep_mask(self, t_next: float) -> np.ndarray:
        """(n,) bool — True = sensor sleeps through the next round.

        With no usable prediction, everyone stays awake (cold start /
        reacquisition behaviour).
        """
        n = len(self.nodes)
        self._total_rounds += 1
        predicted = self.predictor.predict(t_next)
        if predicted is None:
            return np.zeros(n, dtype=bool)
        dist = np.hypot(self.nodes[:, 0] - predicted[0], self.nodes[:, 1] - predicted[1])
        wake = dist <= self.sensing_range_m + self.guard_m
        if wake.sum() < self.min_awake:
            nearest = np.argsort(dist)[: self.min_awake]
            wake = np.zeros(n, dtype=bool)
            wake[nearest] = True
        sleep = ~wake
        self._sleep_rounds += int(sleep.any())
        self._slept_sensor_rounds += int(sleep.sum())
        return sleep

    @property
    def duty_cycle(self) -> float:
        """Fraction of sensor-rounds spent awake so far (1.0 = no savings)."""
        n = len(self.nodes)
        total = self._total_rounds * n
        if total == 0:
            return 1.0
        return 1.0 - self._slept_sensor_rounds / total

    def energy_saved_fraction(self) -> float:
        """Sensor-rounds slept / total — the headline savings figure."""
        return 1.0 - self.duty_cycle

    def reset(self) -> None:
        self.predictor.reset()
        self._sleep_rounds = 0
        self._total_rounds = 0
        self._slept_sensor_rounds = 0
