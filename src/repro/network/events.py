"""A minimal discrete-event scheduler.

Drives time-ordered sampling in the simulation layer: each sensor's sample
instants inside a grouping interval are *almost* synchronous (the paper's
wording) — the scheduler lets us add per-node clock jitter and still
process events in global time order, which is how a real base station
receives them.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventScheduler"]


@dataclass(frozen=True, order=False)
class Event:
    """A scheduled occurrence: fires *action(time, payload)* at *time*."""

    time: float
    action: Callable[[float, Any], None]
    payload: Any = None


class EventScheduler:
    """Heap-based event queue with stable FIFO ordering for equal times."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last processed event)."""
        return self._now

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        return self._processed

    def schedule(self, time: float, action: Callable[[float, Any], None], payload: Any = None) -> None:
        """Enqueue an event; scheduling into the past is an error."""
        if time < self._now:
            raise ValueError(f"cannot schedule at t={time} before current time t={self._now}")
        heapq.heappush(self._heap, (time, next(self._counter), Event(time, action, payload)))

    def schedule_periodic(
        self,
        start: float,
        period: float,
        count: int,
        action: Callable[[float, Any], None],
        payload: Any = None,
    ) -> None:
        """Enqueue *count* events spaced *period* apart from *start*."""
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        for i in range(count):
            self.schedule(start + i * period, action, payload)

    def step(self) -> Event | None:
        """Process one event; returns it, or None when the queue is empty."""
        if not self._heap:
            return None
        time, _, event = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        event.action(time, event.payload)
        return event

    def run_until(self, t_end: float) -> int:
        """Process all events with time <= t_end; returns how many fired."""
        fired = 0
        while self._heap and self._heap[0][0] <= t_end:
            self.step()
            fired += 1
        self._now = max(self._now, t_end)
        return fired

    def run(self) -> int:
        """Drain the queue completely."""
        fired = 0
        while self._heap:
            self.step()
            fired += 1
        return fired
