"""Sensor deployment generators.

The paper evaluates with sensors "deployed in grid" and "randomly deployed
under uniform distribution" (Fig. 10), and the outdoor testbed places nine
motes "as a cross '+' shape" (Fig. 13).  All three are provided, plus a
jittered grid for positioning-error studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.rng import ensure_rng

__all__ = [
    "grid_deployment",
    "random_deployment",
    "perturbed_grid_deployment",
    "cross_deployment",
    "deployment_stats",
    "DeploymentStats",
]


def grid_deployment(n: int, field_size: float, *, margin_frac: float = 0.1) -> np.ndarray:
    """Place *n* sensors on the most-square grid that holds them.

    The grid is inset from the field edge by ``margin_frac * field_size``
    so boundary sensors still have two-sided coverage.  If *n* is not a
    perfect rectangle the last row is centred.
    """
    if n < 1:
        raise ValueError(f"need at least one sensor, got {n}")
    if field_size <= 0:
        raise ValueError(f"field_size must be positive, got {field_size}")
    cols = int(math.ceil(math.sqrt(n)))
    rows = int(math.ceil(n / cols))
    margin = margin_frac * field_size
    span = field_size - 2 * margin
    xs = np.linspace(0.0, span, cols) + margin if cols > 1 else np.array([field_size / 2])
    ys = np.linspace(0.0, span, rows) + margin if rows > 1 else np.array([field_size / 2])
    pts = []
    for r in range(rows):
        row_count = min(cols, n - r * cols)
        if row_count == cols:
            row_x = xs
        else:  # centre a partial last row
            offset = (span - (row_count - 1) * (span / max(cols - 1, 1))) / 2 if cols > 1 else 0.0
            row_x = (np.arange(row_count) * (span / max(cols - 1, 1)) + margin + offset)
        for x in row_x[:row_count]:
            pts.append((float(x), float(ys[r])))
    return np.asarray(pts[:n], dtype=float)


def random_deployment(
    n: int,
    field_size: float,
    rng: "np.random.Generator | int | None" = None,
    *,
    min_separation: float = 0.0,
    max_tries: int = 10_000,
) -> np.ndarray:
    """Uniform random deployment over the square field.

    ``min_separation`` optionally rejects draws closer than that distance
    to an already-placed sensor (Poisson-disk-ish), which avoids degenerate
    co-located pairs in small random topologies.
    """
    if n < 1:
        raise ValueError(f"need at least one sensor, got {n}")
    if field_size <= 0:
        raise ValueError(f"field_size must be positive, got {field_size}")
    if min_separation < 0:
        raise ValueError(f"min_separation must be non-negative, got {min_separation}")
    rng = ensure_rng(rng)
    if min_separation == 0.0:
        return rng.uniform(0.0, field_size, size=(n, 2))
    placed: list[np.ndarray] = []
    tries = 0
    while len(placed) < n:
        tries += 1
        if tries > max_tries:
            raise RuntimeError(
                f"could not place {n} sensors with min separation {min_separation} "
                f"in a {field_size} m field after {max_tries} tries"
            )
        cand = rng.uniform(0.0, field_size, size=2)
        if all(np.hypot(*(cand - p)) >= min_separation for p in placed):
            placed.append(cand)
    return np.stack(placed)


def perturbed_grid_deployment(
    n: int,
    field_size: float,
    jitter_m: float,
    rng: "np.random.Generator | int | None" = None,
) -> np.ndarray:
    """Grid deployment with Gaussian placement error.

    Models imprecise node positioning (one of the paper's motivating
    uncertainty sources); positions are clipped back into the field.
    """
    if jitter_m < 0:
        raise ValueError(f"jitter must be non-negative, got {jitter_m}")
    rng = ensure_rng(rng)
    pts = grid_deployment(n, field_size)
    pts = pts + rng.normal(0.0, jitter_m, size=pts.shape)
    return np.clip(pts, 0.0, field_size)


def cross_deployment(field_size: float, arm_nodes: int = 2, *, spacing: float | None = None) -> np.ndarray:
    """The outdoor testbed's "+" deployment (Fig. 13).

    One sensor at the field centre and ``arm_nodes`` sensors along each of
    the four cardinal arms — ``4 * arm_nodes + 1`` sensors total (nine with
    the default, matching the paper's nine IRIS motes).
    """
    if field_size <= 0:
        raise ValueError(f"field_size must be positive, got {field_size}")
    if arm_nodes < 1:
        raise ValueError(f"arm_nodes must be >= 1, got {arm_nodes}")
    centre = field_size / 2.0
    if spacing is None:
        spacing = (field_size / 2.0 - 0.1 * field_size) / arm_nodes
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    pts = [(centre, centre)]
    for step in range(1, arm_nodes + 1):
        d = step * spacing
        pts.extend(
            [
                (centre + d, centre),
                (centre - d, centre),
                (centre, centre + d),
                (centre, centre - d),
            ]
        )
    arr = np.asarray(pts, dtype=float)
    if np.any(arr < 0) or np.any(arr > field_size):
        raise ValueError("cross deployment spills outside the field; reduce spacing or arm_nodes")
    return arr


@dataclass(frozen=True)
class DeploymentStats:
    """Summary statistics of a deployment used by the error-bound analysis."""

    n_sensors: int
    density_per_m2: float
    mean_nn_distance: float
    min_pair_distance: float
    expected_sensing_count: float  # n = pi R^2 rho of §5.2


def deployment_stats(nodes: np.ndarray, field_size: float, sensing_range: float) -> DeploymentStats:
    """Compute the quantities §5.2's error bound depends on (rho, n = pi R^2 rho)."""
    nodes = np.atleast_2d(np.asarray(nodes, dtype=float))
    n = len(nodes)
    if n < 2:
        raise ValueError(f"need at least two nodes for statistics, got {n}")
    diff = nodes[:, None, :] - nodes[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    np.fill_diagonal(dist, np.inf)
    density = n / field_size**2
    return DeploymentStats(
        n_sensors=n,
        density_per_m2=density,
        mean_nn_distance=float(dist.min(axis=1).mean()),
        min_pair_distance=float(dist.min()),
        expected_sensing_count=float(np.pi * sensing_range**2 * density),
    )
