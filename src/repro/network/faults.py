"""Fault models: which sensors fail to report a grouping sampling.

§4.4-3 of the paper motivates fault tolerance with "breakdown of sensors
or fault occurrence"; these models decide, per localization round, the set
of non-reporting sensors (the paper's ``N_r-bar``).  They compose, so a
scenario can combine permanent crashes with transient dropouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = [
    "FaultModel",
    "NoFaults",
    "IndependentDropout",
    "CrashFailures",
    "IntermittentFaults",
    "CompositeFaults",
]


@runtime_checkable
class FaultModel(Protocol):
    """Decides which of *n* sensors do not report in a given round."""

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean (n,) mask — True means the sensor does NOT report."""
        ...


@dataclass(frozen=True)
class NoFaults:
    """Every sensor always reports (baseline behaviour)."""

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        return np.zeros(n, dtype=bool)


@dataclass(frozen=True)
class IndependentDropout:
    """Each sensor independently misses each round with probability *p*.

    Models transient losses: collisions, fading, queue overflow.
    """

    p: float = 0.1

    def __post_init__(self) -> None:
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"dropout probability must be in [0, 1], got {self.p}")

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        if self.p == 0.0:
            return np.zeros(n, dtype=bool)
        return rng.random(n) < self.p


@dataclass
class CrashFailures:
    """Sensors crash permanently at pre-drawn rounds.

    ``crash_fraction`` of the sensors crash, each at a round chosen
    uniformly in ``[0, horizon_rounds)``; once crashed a sensor never
    reports again.  Crash times are drawn lazily on first use so the model
    can be declared before the deployment size is known.
    """

    crash_fraction: float = 0.2
    horizon_rounds: int = 120
    _crash_round: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not (0.0 <= self.crash_fraction <= 1.0):
            raise ValueError(f"crash fraction must be in [0, 1], got {self.crash_fraction}")
        if self.horizon_rounds < 1:
            raise ValueError(f"horizon must be >= 1 round, got {self.horizon_rounds}")

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        if self._crash_round is None or len(self._crash_round) != n:
            crash_round = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
            n_crash = int(round(self.crash_fraction * n))
            if n_crash > 0:
                victims = rng.choice(n, size=n_crash, replace=False)
                crash_round[victims] = rng.integers(0, self.horizon_rounds, size=n_crash)
            self._crash_round = crash_round
        return round_index >= self._crash_round


@dataclass
class IntermittentFaults:
    """Sensors toggle between healthy and faulty bursts (Gilbert-Elliott style).

    A healthy sensor becomes faulty each round with probability ``p_fail``
    and recovers with probability ``p_recover``; while faulty it does not
    report.  Captures obstacle shadowing and periodic interference.
    """

    p_fail: float = 0.05
    p_recover: float = 0.3
    _faulty: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        for name, p in (("p_fail", self.p_fail), ("p_recover", self.p_recover)):
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {p}")

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        if self._faulty is None or len(self._faulty) != n:
            self._faulty = np.zeros(n, dtype=bool)
        u = rng.random(n)
        healthy = ~self._faulty
        self._faulty = np.where(healthy, u < self.p_fail, u >= self.p_recover)
        return self._faulty.copy()


@dataclass(frozen=True)
class CompositeFaults:
    """Union of several fault models: a sensor is silent if any model drops it."""

    models: Sequence[FaultModel] = ()

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        mask = np.zeros(n, dtype=bool)
        for model in self.models:
            mask |= model.drop_mask(n, round_index, rng)
        return mask
