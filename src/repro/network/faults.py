"""Fault models: unreliable sensing beyond simple omission.

§4.4-3 of the paper motivates fault tolerance with "breakdown of sensors
or fault occurrence".  Two kinds of model live here:

* **Omission (drop) models** decide, per localization round, the set of
  non-reporting sensors (the paper's ``N_r-bar``) via :meth:`drop_mask`:
  :class:`IndependentDropout`, :class:`CrashFailures`,
  :class:`IntermittentFaults`, :class:`RegionalOutage`, :class:`Schedule`.

* **Value-fault models** corrupt the readings of sensors that *do* report
  via :meth:`corrupt` — the harder failure modes real RSS deployments see:
  :class:`StuckReading` (a sensor freezes on one value),
  :class:`ByzantineRSS` (adversarial per-sample replacement), and
  :class:`CalibrationDrift` (slow per-sensor bias growth).

All models are deterministic functions of a shared
:class:`numpy.random.Generator` stream, and :class:`CompositeFaults`
composes any mixture: drop masks union, value corruptions chain in order.

Stateful models (crash times, stuck values, outage state, drift rates)
re-draw their hidden state whenever they see ``round_index == 0`` — the
start of a run — so one model instance can be reused across replications
(and shipped to pool workers) without one run's state leaking into the
next; serial and parallel sweeps stay bit-identical.

``corrupt`` never mutates its input: it either returns the *same* array
object untouched (no corruption this round, no rng consumed — important
for replaying pinned traces) or a fresh copy with the faults applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = [
    "FaultModel",
    "ValueFaultModel",
    "NoFaults",
    "IndependentDropout",
    "CrashFailures",
    "IntermittentFaults",
    "RegionalOutage",
    "Schedule",
    "StuckReading",
    "ByzantineRSS",
    "CalibrationDrift",
    "CompositeFaults",
]


@runtime_checkable
class FaultModel(Protocol):
    """Decides which of *n* sensors do not report in a given round."""

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean (n,) mask — True means the sensor does NOT report."""
        ...


@runtime_checkable
class ValueFaultModel(Protocol):
    """Corrupts the readings of reporting sensors in a given round."""

    def corrupt(self, rss: np.ndarray, round_index: int, rng: np.random.Generator) -> np.ndarray:
        """Return a corrupted copy of the ``(k, n)`` RSS matrix.

        Must never modify *rss* in place; returning *rss* itself means
        "nothing corrupted this round".
        """
        ...


def _validate_fraction(name: str, value: float) -> None:
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class NoFaults:
    """Every sensor always reports (baseline behaviour)."""

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        return np.zeros(n, dtype=bool)


@dataclass(frozen=True)
class IndependentDropout:
    """Each sensor independently misses each round with probability *p*.

    Models transient losses: collisions, fading, queue overflow.
    ``p == 0`` consumes no rng (so adding a disabled dropout to a
    composite cannot shift the other models' streams).
    """

    p: float = 0.1

    def __post_init__(self) -> None:
        _validate_fraction("dropout probability", self.p)

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        if self.p == 0.0:
            return np.zeros(n, dtype=bool)
        return rng.random(n) < self.p


@dataclass
class CrashFailures:
    """Sensors crash permanently at pre-drawn rounds.

    ``crash_fraction`` of the sensors crash, each at a round chosen
    uniformly in ``[0, horizon_rounds)``; once crashed a sensor never
    reports again.  Crash times are drawn on first use — and re-drawn at
    every ``round_index == 0`` — so the model can be declared before the
    deployment size is known and reused across runs.
    """

    crash_fraction: float = 0.2
    horizon_rounds: int = 120
    _crash_round: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        _validate_fraction("crash fraction", self.crash_fraction)
        if self.horizon_rounds < 1:
            raise ValueError(f"horizon must be >= 1 round, got {self.horizon_rounds}")

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        if self._crash_round is None or len(self._crash_round) != n or round_index == 0:
            crash_round = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
            n_crash = int(round(self.crash_fraction * n))
            if n_crash > 0:
                victims = rng.choice(n, size=n_crash, replace=False)
                crash_round[victims] = rng.integers(0, self.horizon_rounds, size=n_crash)
            self._crash_round = crash_round
        return round_index >= self._crash_round


@dataclass
class IntermittentFaults:
    """Sensors toggle between healthy and faulty bursts (Gilbert-Elliott style).

    A healthy sensor becomes faulty each round with probability ``p_fail``
    and recovers with probability ``p_recover``; while faulty it does not
    report.  Captures obstacle shadowing and periodic interference.
    """

    p_fail: float = 0.05
    p_recover: float = 0.3
    _faulty: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        for name, p in (("p_fail", self.p_fail), ("p_recover", self.p_recover)):
            _validate_fraction(name, p)

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        if self._faulty is None or len(self._faulty) != n or round_index == 0:
            self._faulty = np.zeros(n, dtype=bool)
        u = rng.random(n)
        healthy = ~self._faulty
        self._faulty = np.where(healthy, u < self.p_fail, u >= self.p_recover)
        return self._faulty.copy()


@dataclass
class RegionalOutage:
    """Spatially correlated dropouts: a whole region goes dark at once.

    Models the failures omission-independence misses — a jammer, a downed
    relay, local weather: with probability ``p_start`` per round an outage
    opens at a point drawn uniformly over the deployment's bounding box,
    silencing every sensor within ``radius_m`` for ``duration_rounds``
    rounds.  Needs the sensor positions: pass ``nodes`` at construction or
    let the runner call :meth:`bind` (it does so automatically).
    """

    radius_m: float = 25.0
    p_start: float = 0.1
    duration_rounds: int = 5
    nodes: np.ndarray | None = None
    _center: np.ndarray | None = field(default=None, repr=False)
    _remaining: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError(f"outage radius must be positive, got {self.radius_m}")
        _validate_fraction("p_start", self.p_start)
        if self.duration_rounds < 1:
            raise ValueError(f"outage duration must be >= 1 round, got {self.duration_rounds}")
        if self.nodes is not None:
            self.nodes = np.atleast_2d(np.asarray(self.nodes, dtype=float))

    def bind(self, nodes: np.ndarray) -> None:
        """Attach the deployment geometry (called by the runner)."""
        self.nodes = np.atleast_2d(np.asarray(nodes, dtype=float))

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        if self.nodes is None or len(self.nodes) != n:
            raise RuntimeError(
                "RegionalOutage needs sensor positions: pass nodes= at construction "
                "or bind(nodes) before use (sim.runner.generate_batches does this)"
            )
        if round_index == 0:
            self._center = None
            self._remaining = 0
        if self._remaining == 0:
            if rng.random() < self.p_start:
                lo = self.nodes.min(axis=0)
                hi = self.nodes.max(axis=0)
                self._center = rng.uniform(lo, hi)
                self._remaining = self.duration_rounds
        if self._remaining == 0:
            return np.zeros(n, dtype=bool)
        self._remaining -= 1
        d = np.hypot(
            self.nodes[:, 0] - self._center[0], self.nodes[:, 1] - self._center[1]
        )
        return d <= self.radius_m


@dataclass(frozen=True)
class Schedule:
    """Scripted death/revival timeline — fully deterministic, no rng.

    ``outages`` is a sequence of ``(sensor, down_from, up_at)`` triples:
    sensor *sensor* does not report during rounds ``[down_from, up_at)``.
    A sensor may appear in several triples (die, revive, die again), but
    its intervals must be disjoint and in increasing order, so the scripted
    state transitions are monotone in round order.
    """

    outages: tuple[tuple[int, int, int], ...] = ()

    def __post_init__(self) -> None:
        normalized = []
        for triple in self.outages:
            if len(triple) != 3:
                raise ValueError(f"outage entries are (sensor, down_from, up_at), got {triple!r}")
            s, down, up = (int(v) for v in triple)
            if s < 0:
                raise ValueError(f"sensor index must be >= 0, got {s}")
            if down < 0 or up <= down:
                raise ValueError(f"need 0 <= down_from < up_at, got ({down}, {up})")
            normalized.append((s, down, up))
        per_sensor: dict[int, int] = {}
        for s, down, up in sorted(normalized):
            if down < per_sensor.get(s, 0):
                raise ValueError(f"overlapping outage intervals for sensor {s}")
            per_sensor[s] = up
        object.__setattr__(self, "outages", tuple(normalized))

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        mask = np.zeros(n, dtype=bool)
        for s, down, up in self.outages:
            if s >= n:
                raise ValueError(f"schedule names sensor {s} but the deployment has {n}")
            if down <= round_index < up:
                mask[s] = True
        return mask


@dataclass
class StuckReading:
    """A fraction of sensors freeze: from a random round on, every sample
    they deliver repeats the first reading they took while stuck.

    The classic s-a-X transducer fault: the radio still reports, so Eq. 6
    never sees an omission, but the value carries no information about the
    target any more.  Victims and stick rounds are drawn like
    :class:`CrashFailures` crash times; the held value is captured from
    the sensor's first finite sample at or after its stick round.
    """

    fraction: float = 0.2
    horizon_rounds: int = 120
    _stick_round: np.ndarray | None = field(default=None, repr=False)
    _held: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        _validate_fraction("stuck fraction", self.fraction)
        if self.horizon_rounds < 1:
            raise ValueError(f"horizon must be >= 1 round, got {self.horizon_rounds}")

    def corrupt(self, rss: np.ndarray, round_index: int, rng: np.random.Generator) -> np.ndarray:
        rss = np.asarray(rss, dtype=float)
        n = rss.shape[1]
        if self._stick_round is None or len(self._stick_round) != n or round_index == 0:
            stick = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
            n_stuck = int(round(self.fraction * n))
            if n_stuck > 0:
                victims = rng.choice(n, size=n_stuck, replace=False)
                stick[victims] = rng.integers(0, self.horizon_rounds, size=n_stuck)
            self._stick_round = stick
            self._held = np.full(n, np.nan)
        stuck = round_index >= self._stick_round
        if not stuck.any():
            return rss
        out = rss.copy()
        for s in np.nonzero(stuck)[0]:
            if np.isnan(self._held[s]):
                finite = rss[:, s][np.isfinite(rss[:, s])]
                if len(finite) == 0:
                    continue  # silent this round; capture on its next report
                self._held[s] = float(finite[0])
            col = out[:, s]
            col[np.isfinite(col)] = self._held[s]
        return out


@dataclass
class ByzantineRSS:
    """A fraction of sensors report adversarial readings.

    Each Byzantine sensor's samples are *replaced* per-sample by uniform
    draws over ``rss_range_dbm`` — values inside the plausible RSS range
    (so a receiver cannot reject them by range checking alone) but
    carrying no information about the target, which scrambles the pair
    orderings the sampling vector is built from.  Additive perturbations
    of a few dB barely move those orderings (RSS spans tens of dB across
    a deployment); full replacement is the attack that actually hurts.
    Victims are drawn once per run.
    """

    fraction: float = 0.2
    rss_range_dbm: tuple[float, float] = (-110.0, -40.0)
    _victims: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        _validate_fraction("byzantine fraction", self.fraction)
        lo, hi = (float(v) for v in self.rss_range_dbm)
        if not lo < hi:
            raise ValueError(f"rss_range_dbm must be (low, high) with low < high, got {self.rss_range_dbm}")
        self.rss_range_dbm = (lo, hi)

    def corrupt(self, rss: np.ndarray, round_index: int, rng: np.random.Generator) -> np.ndarray:
        rss = np.asarray(rss, dtype=float)
        if self.fraction == 0.0:
            return rss  # disabled: consume no rng
        n = rss.shape[1]
        if self._victims is None or len(self._victims) != n or round_index == 0:
            victims = np.zeros(n, dtype=bool)
            n_byz = int(round(self.fraction * n))
            if n_byz > 0:
                victims[rng.choice(n, size=n_byz, replace=False)] = True
            self._victims = victims
        if not self._victims.any():
            return rss
        k = rss.shape[0]
        n_byz = int(self._victims.sum())
        lo, hi = self.rss_range_dbm
        # fixed-shape draw: the stream advances identically whatever the
        # NaN pattern, keeping runs comparable across drop-model mixes
        fake = rng.uniform(lo, hi, size=(k, n_byz))
        out = rss.copy()
        cols = out[:, self._victims]
        out[:, self._victims] = np.where(np.isfinite(cols), fake, cols)
        return out


@dataclass
class CalibrationDrift:
    """Slow per-sensor calibration bias, growing linearly with time.

    Every sensor gets a drift rate drawn from
    ``Normal(0, drift_db_per_round)`` at the start of a run; at round *r*
    its readings are offset by ``rate * r`` dB.  Models aging ADCs and
    temperature-dependent gain — the error budget term RSS-localization
    studies single out as dominant in long deployments.
    """

    drift_db_per_round: float = 0.1
    _rates: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.drift_db_per_round < 0:
            raise ValueError(f"drift scale must be non-negative, got {self.drift_db_per_round}")

    def corrupt(self, rss: np.ndarray, round_index: int, rng: np.random.Generator) -> np.ndarray:
        rss = np.asarray(rss, dtype=float)
        if self.drift_db_per_round == 0.0:
            return rss  # disabled: consume no rng
        n = rss.shape[1]
        if self._rates is None or len(self._rates) != n or round_index == 0:
            self._rates = rng.normal(0.0, self.drift_db_per_round, size=n)
        if round_index == 0:
            return rss
        bias = self._rates * round_index
        out = rss + bias[None, :]  # NaN + bias stays NaN
        return out


@dataclass(frozen=True)
class CompositeFaults:
    """Any mixture of omission and value faults, drawn from one stream.

    A sensor is silent if *any* member drop model silences it (mask
    union); value corruptions chain in declaration order over whatever
    the previous members produced.  Models are polled in order, so the
    rng consumption sequence — hence every number downstream — is fixed
    by the declaration, and nesting composites associates: ``(a, (b, c))``
    and ``((a, b), c)`` consume the stream identically.
    """

    models: Sequence[FaultModel | ValueFaultModel] = ()

    def drop_mask(self, n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
        mask = np.zeros(n, dtype=bool)
        for model in self.models:
            if hasattr(model, "drop_mask"):
                mask |= model.drop_mask(n, round_index, rng)
        return mask

    def corrupt(self, rss: np.ndarray, round_index: int, rng: np.random.Generator) -> np.ndarray:
        for model in self.models:
            if hasattr(model, "corrupt"):
                rss = model.corrupt(rss, round_index, rng)
        return rss

    def bind(self, nodes: np.ndarray) -> None:
        for model in self.models:
            if hasattr(model, "bind"):
                model.bind(nodes)
