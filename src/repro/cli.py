"""Command-line interface: regenerate any experiment as a text table.

    fttt list                         # what can be regenerated
    fttt fig11 --reps 3 --out results/
    fttt fig12a --quick
    fttt outdoor
    fttt sampling-times --sensors 20 --confidence 0.99
    fttt stats paper-baseline         # run a preset under repro.obs, print metrics
    fttt run sparse --stats --obs-out obs/

Every experiment prints the series the corresponding paper figure plots
and (with ``--out``) writes CSV next to it.  ``--stats`` runs any
command under :mod:`repro.obs` and prints the metrics table afterwards;
``--obs-out DIR`` additionally writes ``metrics.json`` + ``trace.jsonl``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.analysis.metrics import format_table
from repro.analysis.sampling_times import all_flips_probability, required_sampling_times
from repro.config import GridConfig, SimulationConfig
from repro.sim.experiments import (
    sweep_basic_vs_extended,
    sweep_n_sensors,
    sweep_resolution,
    sweep_sampling_times,
)
from repro.sim.io import records_to_csv

__all__ = ["main", "build_parser"]

EXPERIMENTS = {
    "fig3": "face structure vs uncertainty: certain faces shrink, then vanish",
    "fig10": "example tracking traces, FTTT vs PM (grid & random deployment)",
    "fig11": "mean error and std vs number of sensors (FTTT / PM / Direct MLE)",
    "fig12a": "error vs sensing resolution (model-mode; physical mode printed too)",
    "fig12b": "error vs sensors for sampling times k in {3,5,7,9}",
    "fig12cd": "basic vs extended FTTT mean error and std",
    "fig13": "outdoor acoustic testbed simulation (basic & extended FTTT)",
    "sampling-times": "required grouping-sampling count (paper §5.1)",
    "ablations": "design-choice ablations: C calibration, matcher hops, soft signatures, noise structure",
    "density": "the §5.2 density trade-off: accuracy vs relay load / lifetime",
    "faultlab": "fault-injection campaign: robustness curves per fault family x intensity",
    "fuzz": "differential fuzzing: optimized kernels vs the oracle tier",
    "bench": "scale benchmark: tiled build, packed signatures, shared-memory sweeps -> BENCH_scale.json",
}


def _base_config(args: argparse.Namespace) -> SimulationConfig:
    cell = 4.0 if args.quick else 2.0
    duration = 20.0 if args.quick else 60.0
    return SimulationConfig(duration_s=duration, grid=GridConfig(cell_size_m=cell))


def _emit(records, args, name: str) -> None:
    if args.out:
        path = records_to_csv(records, Path(args.out) / f"{name}.csv")
        print(f"\nwrote {path}")


def cmd_list(args: argparse.Namespace) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for name, desc in EXPERIMENTS.items():
        print(f"{name.ljust(width)}  {desc}")
    return 0


def cmd_fig11(args: argparse.Namespace) -> int:
    n_values = [5, 10, 15, 20, 25, 30, 35, 40] if not args.quick else [5, 10, 20]
    recs = sweep_n_sensors(
        n_values,
        ["fttt", "pm", "direct-mle"],
        base_config=_base_config(args),
        n_reps=args.reps,
        seed=args.seed,
    )
    rows = {}
    for r in recs:
        rows[f'{r.tracker}@n={r.params["n_sensors"]}'] = [r.mean_error, r.std_error]
    print(format_table(rows, header=["mean", "std"], title="Fig. 11(b,c): error vs sensors"))
    _emit(recs, args, "fig11")
    return 0


def cmd_fig12a(args: argparse.Namespace) -> int:
    from repro.sim.figures import fig12a_series

    eps_values = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0] if not args.quick else [0.5, 3.0]
    n_values = [10, 15, 20, 25] if not args.quick else [10]
    table = fig12a_series(eps_values, n_values, n_reps=args.reps, seed=args.seed)
    rows = {
        f"n={n},eps={eps}": [table[n][i]]
        for n in n_values
        for i, eps in enumerate(eps_values)
    }
    print(format_table(rows, header=["mean"], title="Fig. 12(a): error vs resolution (model mode)"))
    recs = sweep_resolution(
        eps_values[:2], n_values[:1], base_config=_base_config(args), n_reps=min(args.reps, 2), seed=args.seed
    )
    rows2 = {f'physical eps={r.params["resolution_dbm"]}': [r.mean_error, r.std_error] for r in recs}
    print()
    print(format_table(rows2, header=["mean", "std"], title="physical channel (documented: eps is second-order)"))
    return 0


def cmd_fig12b(args: argparse.Namespace) -> int:
    k_values = [3, 5, 7, 9] if not args.quick else [3, 9]
    n_values = [10, 20, 30, 40] if not args.quick else [10]
    recs = sweep_sampling_times(
        k_values, n_values, base_config=_base_config(args), n_reps=args.reps, seed=args.seed
    )
    rows = {
        f'k={r.params["sampling_times"]},n={r.params["n_sensors"]}': [r.mean_error, r.std_error]
        for r in recs
    }
    print(format_table(rows, header=["mean", "std"], title="Fig. 12(b): error vs sampling times"))
    _emit(recs, args, "fig12b")
    return 0


def cmd_fig12cd(args: argparse.Namespace) -> int:
    n_values = [10, 15, 20, 25, 30] if not args.quick else [10]
    recs = sweep_basic_vs_extended(
        n_values, base_config=_base_config(args), n_reps=args.reps, seed=args.seed
    )
    rows = {
        f'{r.tracker}@n={r.params["n_sensors"]}': [r.mean_error, r.std_error] for r in recs
    }
    print(format_table(rows, header=["mean", "std"], title="Fig. 12(c,d): basic vs extended FTTT"))
    _emit(recs, args, "fig12cd")
    return 0


def cmd_fig10(args: argparse.Namespace) -> int:
    from repro.analysis.metrics import compare_trackers, summarize_errors
    from repro.sim.runner import run_all_trackers
    from repro.sim.scenario import make_scenario

    cfg = _base_config(args).with_(n_sensors=10)
    for deployment in ("grid", "random"):
        scenario = make_scenario(cfg, deployment=deployment, seed=args.seed)
        results = run_all_trackers(scenario, ["fttt", "pm"], args.seed + 1)
        print(f"\ndeployment = {deployment}")
        print(format_table(compare_trackers(results)))
        if args.trace:
            res = results["fttt"]
            for t, est, tru in zip(res.times, res.positions, res.truth):
                print(f"  t={t:6.2f}  est=({est[0]:6.2f},{est[1]:6.2f})  true=({tru[0]:6.2f},{tru[1]:6.2f})")
    return 0


def cmd_fig13(args: argparse.Namespace) -> int:
    from repro.analysis.metrics import summarize_errors
    from repro.testbed.outdoor import build_outdoor_system

    system = build_outdoor_system(seed=args.seed)
    rows = {}
    for mode in ("basic", "extended"):
        res = system.run(mode=mode, rng=args.seed + 1)
        s = summarize_errors(res)
        rows[mode] = s
    print(format_table(rows, title="Fig. 13: outdoor testbed simulation (9 IRIS motes, '+' deployment)"))
    print(f"gateway frame-loss rate: {system.gateway.loss_rate:.3f}")
    return 0


def cmd_fig3(args: argparse.Namespace) -> int:
    from repro.geometry.faces import build_certain_face_map, build_face_map
    from repro.geometry.grid import Grid
    from repro.network.deployment import grid_deployment

    nodes = grid_deployment(4, 100.0, margin_frac=0.3)
    grid = Grid.square(100.0, 2.0 if args.quick else 1.0)
    certain = build_certain_face_map(nodes, grid)
    print(f"(a) bisector-only division: {certain.n_faces} faces")
    print("(b,c) uncertain-boundary division:")
    for c in (1.05, 1.1, 1.2, 1.4, 1.8, 2.5):
        fm = build_face_map(nodes, grid, c)
        print(
            f"  C={c:4.2f}: {fm.n_faces:4d} faces, {fm.n_certain_faces:3d} all-certain, "
            f"uncertain-area fraction {(fm.signatures[fm.cell_face] == 0).mean():.3f}"
        )
    return 0


def cmd_ablations(args: argparse.Namespace) -> int:
    from repro.sim.ablations import (
        ablate_matcher_hops,
        ablate_noise_structure,
        ablate_soft_signatures,
        ablate_uncertainty_constant,
    )

    cfg = _base_config(args)
    studies = {
        "uncertainty constant (Eq.3 vs calibrated)": ablate_uncertainty_constant,
        "matcher (1-hop / 2-hop / exhaustive)": ablate_matcher_hops,
        "extended signatures (hard vs soft)": ablate_soft_signatures,
        "noise structure (iid / temporal / common-mode)": ablate_noise_structure,
    }
    for title, fn in studies.items():
        out = fn(cfg, n_reps=args.reps, seed=args.seed)
        keys = [k for k in out if not k.endswith("/std")]
        rows = {k: [out[k], out[k + "/std"]] for k in keys}
        print()
        print(format_table(rows, header=["mean", "std"], title=title))
    return 0


def cmd_density(args: argparse.Namespace) -> int:
    from repro.analysis.coverage import density_tradeoff

    rows = density_tradeoff([5, 10, 20, 40], 100.0, 40.0, seed=args.seed)
    print("   n  hearing  2-cov  max-relay  lifetime  disconnected")
    for r in rows:
        print(
            f"{r['n_sensors']:4d}  {r['mean_hearing']:7.2f}  {r['two_coverage']:5.2f}  "
            f"{r['max_relay_load']:9d}  {r['lifetime_rounds']:8.0f}  {r['disconnected']:12d}"
        )
    return 0


def cmd_faultlab(args: argparse.Namespace) -> int:
    from repro.faultlab.campaign import FAULT_FAMILIES, campaign_config, run_campaign

    families = [f.strip() for f in args.families.split(",") if f.strip()]
    for f in families:
        if f not in FAULT_FAMILIES:
            print(f"unknown fault family {f!r}; choose from {sorted(FAULT_FAMILIES)}")
            return 2
    intensities = [float(v) for v in args.intensities.split(",") if v.strip()]
    trackers = [t.strip() for t in args.trackers.split(",") if t.strip()]
    out = Path(args.out)
    result = run_campaign(
        families,
        intensities,
        trackers,
        config=campaign_config(quick=args.quick),
        n_reps=args.reps,
        seed=args.seed,
        out_dir=out,
        n_workers=args.workers,
    )
    for family in families:
        rows = {}
        for tracker in trackers:
            for r in result.curve(family, tracker):
                rows[f'{tracker}@{r.params["intensity"]:.2f}'] = [
                    r.mean_error,
                    r.p95_error,
                    r.lost_track_rate,
                ]
        print()
        print(
            format_table(
                rows,
                header=["mean", "p95", "lost"],
                title=f"robustness: {family} (error m / lost-track rate vs intensity)",
            )
        )
    print(f"\nwrote {result.csv_path}")
    print(f"wrote {result.metrics_path}")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.oracle.fuzz import run_fuzz

    summary = run_fuzz(
        args.scenarios,
        seed=args.seed,
        n_workers=args.workers,
        artifact_dir=args.out,
        shrink=not args.no_shrink,
    )
    print(
        f"fuzz: {summary['n_scenarios']} scenarios, {summary['n_checks']} checks, "
        f"{summary['n_workers']} worker(s), seed {summary['seed']}"
    )
    print(f"digest: {summary['digest']}")
    first = summary["first_divergence"]
    if first is None:
        print("no divergences: optimized kernels agree with the oracle tier")
        return 0
    print(
        f"DIVERGENCE at scenario {first['index']} (check: {first['check']}), "
        f"{summary['n_divergent']} scenario(s) affected"
    )
    print(f"shrunk repro written to {first['artifact']}")
    print(f"replay with: fttt replay-divergence {first['artifact']}")
    return 1


def cmd_replay_divergence(args: argparse.Namespace) -> int:
    from repro.oracle.fuzz import replay_divergence

    result = replay_divergence(args.artifact)
    report = result["report"]
    spec = report["spec"]
    print(
        f"spec: {spec['n_nodes']} nodes, cell {spec['cell_size']}m, C implied by "
        f"(beta={spec['beta']:.3f}, sigma={spec['sigma']:.3f}, eps={spec['resolution_eps']:.3f}), "
        f"mode {spec['mode']}, k={spec['k']}, {spec['n_rounds']} round(s), "
        f"fault {spec['value_fault']}, degradation {spec['degradation']}"
    )
    print(f"recorded check: {result['recorded_check']}")
    if not report["divergences"]:
        print("scenario is clean: the recorded divergence no longer reproduces")
        return 0
    for d in report["divergences"]:
        print(f"  diverged: {d['check']}" + (f" (round {d['round']})" if "round" in d else ""))
    print("reproduced" if result["reproduced"] else "different check diverged")
    return 1


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.scalebench import run_scale_bench

    sizes = tuple(int(v) for v in args.sizes.split(",") if v.strip())
    workers = tuple(int(v) for v in args.workers.split(",") if v.strip())
    if args.quick:
        sizes = sizes[:1]
        workers = workers[:2]
    result = run_scale_bench(
        sizes,
        workers,
        cell=args.cell,
        seed=args.seed,
        repeats=args.repeats,
        out=args.out,
    )
    print(f"cpu_count = {result['cpu_count']}")
    for rec in result["build"]:
        speedups = "  ".join(
            f"w={w}: {rec['tiled_s'][w]:.3f}s ({rec['speedup'][w]:.2f}x)"
            for w in sorted(rec["tiled_s"], key=int)
        )
        print(
            f"build n={rec['n_sensors']:4d} ({rec['n_faces']} faces): "
            f"serial {rec['serial_s']:.3f}s  {speedups}  "
            f"memory {rec['memory_ratio']:.2f}x  identical={rec['identical']}"
        )
    sw = result["sweep"]
    print(
        f"sweep ({sw['workers']} workers, {sw['n_points']} points): "
        f"pickled {sw['pickled_s']:.2f}s, shared {sw['shared_s']:.2f}s "
        f"({sw['speedup']:.2f}x)  identical={sw['identical']}  "
        f"leaked_segments={sw['leaked_segments']}"
    )
    if not all(rec["identical"] for rec in result["build"]) or not sw["identical"]:
        print("BIT-IDENTITY VIOLATION: tiled/packed/shared results differ from serial")
        return 1
    if "path" in result:
        print(f"wrote {result['path']}")
    return 0


def cmd_sampling_times(args: argparse.Namespace) -> int:
    n = args.sensors
    n_pairs = n * (n - 1) // 2
    k = required_sampling_times(n_pairs, args.confidence)
    print(f"sensors = {n}  ->  node pairs N = {n_pairs}")
    print(f"confidence target = {args.confidence}")
    print(f"required sampling times k = {k}")
    print(f"capture probability at k:   {all_flips_probability(k, n_pairs):.6f}")
    print(f"capture probability at k-1: {all_flips_probability(max(k - 1, 1), n_pairs):.6f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fttt",
        description="Regenerate the FTTT paper's experiments (Xie et al., 2012).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(func=cmd_list)

    def common(p):
        p.add_argument("--reps", type=int, default=3, help="replications per point")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--quick", action="store_true", help="coarse grid, short runs")
        p.add_argument("--out", type=str, default=None, help="directory for CSV output")
        _obs_options(p)

    p10 = sub.add_parser("fig10", help=EXPERIMENTS["fig10"])
    common(p10)
    p10.add_argument("--trace", action="store_true", help="print the full estimated trace")
    p10.set_defaults(func=cmd_fig10)

    for name, fn in (("fig11", cmd_fig11), ("fig12a", cmd_fig12a), ("fig12b", cmd_fig12b), ("fig12cd", cmd_fig12cd)):
        p = sub.add_parser(name, help=EXPERIMENTS[name])
        common(p)
        p.set_defaults(func=fn)

    p13 = sub.add_parser("fig13", help=EXPERIMENTS["fig13"])
    common(p13)
    p13.set_defaults(func=cmd_fig13)

    p3 = sub.add_parser("fig3", help=EXPERIMENTS["fig3"])
    common(p3)
    p3.set_defaults(func=cmd_fig3)

    pab = sub.add_parser("ablations", help=EXPERIMENTS["ablations"])
    common(pab)
    pab.set_defaults(func=cmd_ablations)

    pde = sub.add_parser("density", help=EXPERIMENTS["density"])
    common(pde)
    pde.set_defaults(func=cmd_density)

    pfl = sub.add_parser("faultlab", help=EXPERIMENTS["faultlab"])
    pfl.add_argument(
        "--families",
        type=str,
        default="dropout,byzantine,stuck,drift,regional",
        help="comma-separated fault families to inject",
    )
    pfl.add_argument(
        "--intensities",
        type=str,
        default="0.0,0.1,0.2,0.3",
        help="comma-separated intensity grid (0 = clean anchor)",
    )
    pfl.add_argument("--trackers", type=str, default="fttt,fttt-robust,fttt-zero")
    pfl.add_argument("--reps", type=int, default=2, help="replications per cell")
    pfl.add_argument("--seed", type=int, default=0)
    pfl.add_argument("--quick", action="store_true", help="coarse grid, short runs")
    pfl.add_argument(
        "--out",
        type=str,
        default="results/faultlab",
        help="directory for robustness.csv + metrics.json + trace.jsonl",
    )
    pfl.add_argument("--workers", type=int, default=None, help="pool size (default: auto)")
    pfl.set_defaults(func=cmd_faultlab)

    pfz = sub.add_parser("fuzz", help=EXPERIMENTS["fuzz"])
    pfz.add_argument(
        "--scenarios",
        type=int,
        default=None,
        help="scenario budget (default: REPRO_FUZZ_BUDGET env, else 200)",
    )
    pfz.add_argument("--seed", type=int, default=0, help="campaign master seed")
    pfz.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size (default: REPRO_WORKERS env, else 1); results are identical either way",
    )
    pfz.add_argument(
        "--out",
        type=str,
        default=None,
        help="directory for divergence artifacts (default: results/fuzz)",
    )
    pfz.add_argument(
        "--no-shrink", action="store_true", help="report the raw spec without minimizing it"
    )
    pfz.set_defaults(func=cmd_fuzz)

    prd = sub.add_parser(
        "replay-divergence", help="re-run a recorded fuzz divergence artifact"
    )
    prd.add_argument("artifact", help="path to a divergence_*.json written by fttt fuzz")
    prd.set_defaults(func=cmd_replay_divergence)

    pbe = sub.add_parser("bench", help=EXPERIMENTS["bench"])
    pbe.add_argument(
        "--sizes", type=str, default="20,50,100", help="comma-separated deployment sizes"
    )
    pbe.add_argument(
        "--workers", type=str, default="1,4", help="comma-separated tiled-build worker counts"
    )
    pbe.add_argument("--cell", type=float, default=2.5, help="grid cell size (m)")
    pbe.add_argument("--seed", type=int, default=0)
    pbe.add_argument("--repeats", type=int, default=1, help="timing repeats (best-of)")
    pbe.add_argument("--quick", action="store_true", help="first size, first two worker counts")
    pbe.add_argument(
        "--out", type=str, default="BENCH_scale.json", help="result JSON path"
    )
    pbe.set_defaults(func=cmd_bench)

    pst = sub.add_parser("sampling-times", help=EXPERIMENTS["sampling-times"])
    pst.add_argument("--sensors", type=int, default=20)
    pst.add_argument("--confidence", type=float, default=0.99)
    pst.set_defaults(func=cmd_sampling_times)

    prep = sub.add_parser("report", help="collect benchmarks/results/*.csv into a markdown report")
    prep.add_argument("--results", type=str, default="benchmarks/results")
    prep.add_argument("--out", type=str, default="benchmarks/results/REPORT.md")
    prep.set_defaults(func=cmd_report)

    prun = sub.add_parser("run", help="run a preset scenario through a set of trackers")
    prun.add_argument("preset", help="preset name, or 'list' to enumerate presets")
    prun.add_argument("--trackers", type=str, default="fttt,fttt-extended,pm,direct-mle")
    prun.add_argument("--seed", type=int, default=0)
    prun.add_argument("--rounds", type=int, default=None)
    _obs_options(prun)
    prun.set_defaults(func=cmd_run)

    pstat = sub.add_parser(
        "stats", help="run a preset under repro.obs and print the metrics table"
    )
    pstat.add_argument(
        "preset", nargs="?", default="paper-baseline", help="preset name (see 'run list')"
    )
    pstat.add_argument("--trackers", type=str, default="fttt,fttt-exhaustive")
    pstat.add_argument("--seed", type=int, default=0)
    pstat.add_argument("--rounds", type=int, default=20)
    pstat.add_argument(
        "--dropout", type=float, default=0.0, help="per-round sensor dropout probability"
    )
    pstat.add_argument(
        "--obs-out", type=str, default=None, help="directory for metrics.json + trace.jsonl"
    )
    pstat.set_defaults(func=cmd_stats, stats=True)

    return parser


def _obs_options(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--stats",
        action="store_true",
        help="run under repro.obs and print the metrics table afterwards",
    )
    p.add_argument(
        "--obs-out",
        type=str,
        default=None,
        help="directory for metrics.json + trace.jsonl (implies --stats)",
    )


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import write_report

    path = write_report(args.results, args.out)
    print(f"wrote {path}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis.metrics import compare_trackers
    from repro.sim.presets import list_presets, make_preset
    from repro.sim.runner import run_all_trackers

    if args.preset == "list":
        for name, desc in list_presets():
            print(f"{name:18s} {desc}")
        return 0
    scenario = make_preset(args.preset, seed=args.seed)
    trackers = args.trackers.split(",")
    results = run_all_trackers(
        scenario, trackers, args.seed + 1, n_rounds=args.rounds
    )
    print(
        f"preset {args.preset}: {scenario.n_sensors} sensors, "
        f"C = {scenario.uncertainty_c:.3f}, {scenario.face_map.n_faces} faces"
    )
    print(format_table(compare_trackers(results), title="tracking error (metres)"))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run a preset under observability; main() prints/writes the metrics."""
    from repro.analysis.metrics import compare_trackers
    from repro.network.faults import IndependentDropout
    from repro.sim.presets import make_preset
    from repro.sim.runner import run_all_trackers

    scenario = make_preset(args.preset, seed=args.seed)
    faults = IndependentDropout(p=args.dropout) if args.dropout > 0 else None
    results = run_all_trackers(
        scenario, args.trackers.split(","), args.seed + 1, faults=faults, n_rounds=args.rounds
    )
    print(
        f"preset {args.preset}: {scenario.n_sensors} sensors, "
        f"{scenario.face_map.n_faces} faces, dropout p = {args.dropout}"
    )
    print(format_table(compare_trackers(results), title="tracking error (metres)"))
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    obs_out = getattr(args, "obs_out", None)
    if not (getattr(args, "stats", False) or obs_out):
        return args.func(args)

    import repro.obs as obs

    trace_path = str(Path(obs_out) / "trace.jsonl") if obs_out else None
    with obs.observe(trace_path=trace_path) as reg:
        rc = args.func(args)
    if obs_out:
        path = obs.write_metrics(Path(obs_out) / "metrics.json", reg)
        print(f"\nwrote {path}")
    print()
    print(obs.format_metrics(reg.snapshot()))
    return rc


if __name__ == "__main__":
    sys.exit(main())
