"""The outdoor playground scenario (Fig. 13) end to end.

Nine motes in a "+" on a square playground, a walker carrying the 4 kHz
tone source along a "⌐"-shaped trace at changeable 1-5 m/s, gateway frame
loss — and the unmodified FTTT stack on top.  The uncertainty constant is
derived from the acoustic channel's effective path-loss exponent at the
deployment scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tracker import FTTTracker, TrackResult
from repro.geometry.apollonius import uncertainty_constant
from repro.geometry.faces import FaceMap, build_face_map
from repro.geometry.grid import Grid
from repro.mobility.paths import PiecewiseLinearPath, l_shape_path
from repro.network.deployment import cross_deployment
from repro.rf.acoustic import AcousticToneChannel
from repro.rf.channel import SampleBatch
from repro.rng import ensure_rng
from repro.testbed.gateway import Mib520Gateway
from repro.testbed.motes import IrisMote, MoteReading

__all__ = ["OutdoorSystem", "build_outdoor_system"]


@dataclass
class OutdoorSystem:
    """A complete simulated outdoor deployment."""

    field_size: float
    motes: list[IrisMote]
    channel: AcousticToneChannel
    gateway: Mib520Gateway
    path: PiecewiseLinearPath
    k: int
    sampling_rate_hz: float
    grid_cell_m: float = 0.5
    _face_map: FaceMap | None = field(default=None, repr=False)

    @property
    def positions(self) -> np.ndarray:
        return np.stack([m.position for m in self.motes])

    @property
    def face_map(self) -> FaceMap:
        if self._face_map is None:
            # effective beta at the typical mote-target distance scale
            typical_d = self.field_size / 4.0
            beta = self.channel.effective_pathloss_exponent(typical_d)
            c = uncertainty_constant(
                resolution_dbm=max(m.adc_step_db for m in self.motes),
                path_loss_exponent=beta,
                noise_sigma_dbm=self.channel.noise_sigma_db,
            )
            grid = Grid.square(self.field_size, self.grid_cell_m)
            self._face_map = build_face_map(self.positions, grid, c)
        return self._face_map

    def sample_round(self, t0: float, rng: np.random.Generator) -> SampleBatch:
        """One grouping sampling: every mote samples k times, frames radioed in."""
        times = t0 + np.arange(self.k) / self.sampling_rate_hz
        positions = self.path.position(times)
        readings: list[list[MoteReading | None]] = []
        for row, t in enumerate(times):
            readings.append(
                [m.sense(positions[row], self.channel, float(t), rng) for m in self.motes]
            )
        matrix = self.gateway.collect_round(readings, rng)
        return SampleBatch(rss=matrix, times=times, positions=positions)

    def run(
        self,
        *,
        mode: str = "basic",
        rng: "np.random.Generator | int | None" = None,
        n_rounds: "int | None" = None,
    ) -> TrackResult:
        """Track the walker over the whole trace with basic or extended FTTT."""
        rng = ensure_rng(rng)
        period = self.k / self.sampling_rate_hz
        if n_rounds is None:
            n_rounds = max(1, int(self.path.duration_s / period))
        if mode == "extended":
            from repro.core.extended import attach_soft_signatures

            typical_d = self.field_size / 4.0
            attach_soft_signatures(
                self.face_map,
                path_loss_exponent=self.channel.effective_pathloss_exponent(typical_d),
                noise_sigma_dbm=self.channel.noise_sigma_db,
                resolution_dbm=max(m.adc_step_db for m in self.motes),
            )
        tracker = FTTTracker(self.face_map, mode=mode, matcher="heuristic")
        batches = [self.sample_round(r * period, rng) for r in range(n_rounds)]
        return tracker.track(batches)


def build_outdoor_system(
    *,
    field_size: float = 40.0,
    n_arm_motes: int = 2,
    k: int = 5,
    sampling_rate_hz: float = 10.0,
    frame_loss_p: float = 0.05,
    noise_sigma_db: float = 4.0,
    adc_step_db: float = 0.5,
    gain_spread_db: float = 1.0,
    seed: "int | np.random.Generator | None" = 0,
) -> OutdoorSystem:
    """Assemble the Fig. 13 system: 4*n_arm_motes+1 motes (9 by default)
    in a "+", walker on the "⌐" trace at changeable 1-5 m/s."""
    rng = ensure_rng(seed)
    positions = cross_deployment(field_size, arm_nodes=n_arm_motes)
    motes = [
        IrisMote(
            mote_id=i,
            position=p,
            adc_step_db=adc_step_db,
            gain_offset_db=float(rng.normal(0.0, gain_spread_db)),
        )
        for i, p in enumerate(positions)
    ]
    channel = AcousticToneChannel(noise_sigma_db=noise_sigma_db)
    gateway = Mib520Gateway(n_motes=len(motes), frame_loss_p=frame_loss_p)
    path = l_shape_path(field_size, rng=rng)
    return OutdoorSystem(
        field_size=field_size,
        motes=motes,
        channel=channel,
        gateway=gateway,
        path=path,
        k=k,
        sampling_rate_hz=sampling_rate_hz,
    )
