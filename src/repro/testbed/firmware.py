"""Mote firmware: the sampling/reporting state machine.

The outdoor system's motes are not functions — they are little programs:
sample on a timer, queue the group, transmit with retries, back off on
failure, drop the oldest report when the queue overflows.  This module
models that loop on top of the discrete-event scheduler, with the radio
represented by a Bernoulli link (per-try delivery probability) and
acknowledgements.  The gateway-side counterpart assembles rounds by
sequence number and reports delivery latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.events import EventScheduler
from repro.rng import ensure_rng
from repro.testbed.packets import ReportFrame

__all__ = ["FirmwareConfig", "MoteFirmware", "GatewayCollector", "run_reporting_epoch"]


@dataclass(frozen=True)
class FirmwareConfig:
    """Timing and radio parameters of the report loop."""

    k: int = 5  # samples per grouping
    sample_period_s: float = 0.1  # 10 Hz
    tx_delay_s: float = 0.01  # transmit + ack turnaround
    backoff_s: float = 0.05  # wait after a failed try
    max_tries: int = 3  # tries per report before giving up
    queue_depth: int = 4  # pending reports kept

    def __post_init__(self) -> None:
        if self.k < 1 or self.max_tries < 1 or self.queue_depth < 1:
            raise ValueError("k, max_tries and queue_depth must be >= 1")
        if self.sample_period_s <= 0 or self.tx_delay_s <= 0 or self.backoff_s < 0:
            raise ValueError("timing parameters must be positive (backoff >= 0)")


@dataclass
class MoteFirmware:
    """One mote's report loop.

    The mote samples ``k`` levels per round (values supplied by a callback
    so the physics stays outside), packs them into a
    :class:`~repro.testbed.packets.ReportFrame`, and pushes the frame
    through a lossy acknowledged link.
    """

    mote_id: int
    config: FirmwareConfig
    link_delivery_p: float = 0.9
    sent: int = field(default=0, repr=False)
    delivered: int = field(default=0, repr=False)
    dropped_overflow: int = field(default=0, repr=False)
    dropped_retries: int = field(default=0, repr=False)
    _queue: list[ReportFrame] = field(default_factory=list, repr=False)
    _sequence: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not (0.0 < self.link_delivery_p <= 1.0):
            raise ValueError(f"link delivery must be in (0, 1], got {self.link_delivery_p}")

    def enqueue_round(self, levels_db: "list[float]") -> ReportFrame:
        """Finish a grouping sampling: pack and queue its report."""
        frame = ReportFrame(
            mote_id=self.mote_id,
            sequence=self._sequence & 0xFFFF,
            levels_db=tuple(float(x) for x in levels_db),
        )
        self._sequence += 1
        if len(self._queue) >= self.config.queue_depth:
            self._queue.pop(0)  # oldest report is the least useful
            self.dropped_overflow += 1
        self._queue.append(frame)
        return frame

    def try_transmit(self, rng: np.random.Generator, collector: "GatewayCollector", now: float) -> bool:
        """One acknowledged transmission attempt of the head-of-queue report.

        Returns True when the queue head was resolved (delivered or
        abandoned), False when it stays queued for another backoff.
        """
        if not self._queue:
            return True
        frame = self._queue[0]
        self.sent += 1
        if rng.random() < self.link_delivery_p:
            collector.receive(frame, now)
            self.delivered += 1
            self._queue.pop(0)
            return True
        return False

    def transmit_with_retries(
        self, rng: np.random.Generator, collector: "GatewayCollector", now: float
    ) -> float:
        """Blocking retry loop (used by the epoch driver); returns the time
        consumed.  A report that exhausts its tries is abandoned."""
        if not self._queue:
            return 0.0
        elapsed = 0.0
        for attempt in range(self.config.max_tries):
            elapsed += self.config.tx_delay_s
            if self.try_transmit(rng, collector, now + elapsed):
                return elapsed
            elapsed += self.config.backoff_s
        self._queue.pop(0)
        self.dropped_retries += 1
        return elapsed

    @property
    def queue_length(self) -> int:
        return len(self._queue)


@dataclass
class GatewayCollector:
    """Gateway side: frames in, per-round matrices out."""

    n_motes: int
    k: int
    _rounds: dict[int, np.ndarray] = field(default_factory=dict, repr=False)
    _latency: list[float] = field(default_factory=list, repr=False)
    _round_start: dict[int, float] = field(default_factory=dict, repr=False)

    def expect_round(self, sequence: int, t_start: float) -> None:
        self._round_start[sequence] = t_start

    def receive(self, frame: ReportFrame, now: float) -> None:
        seq = frame.sequence
        if seq not in self._rounds:
            self._rounds[seq] = np.full((self.k, self.n_motes), np.nan)
        levels = np.asarray(frame.levels_db[: self.k])
        self._rounds[seq][: len(levels), frame.mote_id] = levels
        if seq in self._round_start:
            self._latency.append(now - self._round_start[seq])

    def round_matrix(self, sequence: int) -> np.ndarray:
        """(k, n) matrix for the round; all-NaN if nothing arrived."""
        return self._rounds.get(sequence, np.full((self.k, self.n_motes), np.nan)).copy()

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean(self._latency)) if self._latency else float("nan")

    @property
    def rounds_seen(self) -> int:
        return len(self._rounds)


def run_reporting_epoch(
    motes: "list[MoteFirmware]",
    level_fn,
    n_rounds: int,
    rng: "np.random.Generator | int | None" = None,
    *,
    collector: "GatewayCollector | None" = None,
) -> GatewayCollector:
    """Drive every mote's sample/report loop for *n_rounds* via the
    event scheduler.

    ``level_fn(mote_id, t) -> float`` supplies the sensed level at each
    sample instant (the acoustic channel in the full testbed; anything in
    tests).
    """
    if n_rounds < 1:
        raise ValueError(f"need at least one round, got {n_rounds}")
    if not motes:
        raise ValueError("need at least one mote")
    rng = ensure_rng(rng)
    cfg = motes[0].config
    if collector is None:
        collector = GatewayCollector(n_motes=len(motes), k=cfg.k)
    sched = EventScheduler()
    round_period = cfg.k * cfg.sample_period_s
    buffers: dict[int, list[float]] = {m.mote_id: [] for m in motes}

    def sample(t: float, payload) -> None:
        mote, idx = payload
        buffers[mote.mote_id].append(level_fn(mote.mote_id, t))
        if idx == cfg.k - 1:
            mote.enqueue_round(buffers[mote.mote_id])
            buffers[mote.mote_id].clear()
            sched.schedule(t + 1e-6, report, mote)

    def report(t: float, mote) -> None:
        mote.transmit_with_retries(rng, collector, t)

    for r in range(n_rounds):
        t0 = r * round_period
        collector.expect_round(r, t0)
        for m in motes:
            for i in range(cfg.k):
                sched.schedule(t0 + i * cfg.sample_period_s, sample, (m, i))
    sched.run()
    return collector
