"""MIB520 gateway model.

Motes radio their readings to the base station through the MIB520 USB
interface board; radio frames are lost independently per report.  The
gateway assembles per-round (k, n) level matrices — the exact input shape
the FTTT stack consumes — with NaN for missing frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.testbed.motes import MoteReading

__all__ = ["Mib520Gateway"]


@dataclass
class Mib520Gateway:
    """Collects mote readings into grouping-sampling matrices.

    Parameters
    ----------
    n_motes : number of deployed sensing motes.
    frame_loss_p : independent probability that a reading's radio frame is
        lost before reaching the gateway.
    """

    n_motes: int
    frame_loss_p: float = 0.05
    frames_received: int = field(default=0, repr=False)
    frames_lost: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.n_motes < 2:
            raise ValueError(f"need at least two motes, got {self.n_motes}")
        if not (0.0 <= self.frame_loss_p <= 1.0):
            raise ValueError(f"frame loss must be in [0, 1], got {self.frame_loss_p}")

    def collect_round(
        self,
        readings: "list[list[MoteReading | None]]",
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Assemble one round's (k, n) level matrix from per-instant readings.

        *readings* is a list of k sample instants, each a list over motes
        (None for a mote that produced nothing).  Frame loss is applied
        here, independently per reading.
        """
        k = len(readings)
        if k < 1:
            raise ValueError("need at least one sample instant")
        matrix = np.full((k, self.n_motes), np.nan)
        for row, instant in enumerate(readings):
            for reading in instant:
                if reading is None:
                    continue
                if not (0 <= reading.mote_id < self.n_motes):
                    raise ValueError(f"mote id {reading.mote_id} out of range")
                if self.frame_loss_p > 0.0 and rng.random() < self.frame_loss_p:
                    self.frames_lost += 1
                    continue
                matrix[row, reading.mote_id] = reading.level_db
                self.frames_received += 1
        return matrix

    @property
    def loss_rate(self) -> float:
        total = self.frames_received + self.frames_lost
        return self.frames_lost / total if total else 0.0
