"""Outdoor-testbed simulator (paper §7.3, Fig. 13).

The paper's outdoor system — nine Crossbow IRIS motes with MTS300 boards
in a "+" deployment, a walker carrying a 4 kHz piezo tone, an MIB520
gateway — is simulated end-to-end: acoustic tone propagation, mote ADC
quantization and calibration offsets, and gateway packet loss.  The
tracking stack is byte-for-byte the same FTTT code the RF simulations use.
"""

from repro.testbed.motes import IrisMote, MoteReading
from repro.testbed.gateway import Mib520Gateway
from repro.testbed.outdoor import OutdoorSystem, build_outdoor_system
from repro.testbed.packets import ReportFrame, encode_frame, decode_frame, corrupt, crc16
from repro.testbed.firmware import (
    FirmwareConfig,
    MoteFirmware,
    GatewayCollector,
    run_reporting_epoch,
)

__all__ = [
    "IrisMote",
    "MoteReading",
    "Mib520Gateway",
    "OutdoorSystem",
    "build_outdoor_system",
    "ReportFrame",
    "encode_frame",
    "decode_frame",
    "corrupt",
    "crc16",
    "FirmwareConfig",
    "MoteFirmware",
    "GatewayCollector",
    "run_reporting_epoch",
]
