"""TinyOS-style report frames for the testbed radio path.

The outdoor system's motes radio their readings to the MIB520 gateway as
small frames.  This codec models that path at byte level: a fixed header
(sync byte, mote id, sequence number, sample count), fixed-point payload
of sound levels, and a CRC-16 trailer.  Channel bit errors corrupt frames;
the gateway drops frames whose CRC fails — which is exactly where the
frame-loss probability of :class:`~repro.testbed.gateway.Mib520Gateway`
comes from physically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReportFrame", "encode_frame", "decode_frame", "corrupt", "crc16"]

SYNC_BYTE = 0x7E
LEVEL_SCALE = 16.0  # fixed point: 1/16 dB resolution
LEVEL_OFFSET = 128.0  # encode [-128, +128) dB range


def crc16(data: bytes, poly: int = 0x1021, init: int = 0xFFFF) -> int:
    """CRC-16-CCITT over *data* (the TinyOS serial stack's checksum)."""
    crc = init
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ poly) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


@dataclass(frozen=True)
class ReportFrame:
    """One mote's report for one grouping sampling."""

    mote_id: int
    sequence: int
    levels_db: tuple[float, ...]

    def __post_init__(self) -> None:
        if not (0 <= self.mote_id <= 0xFF):
            raise ValueError(f"mote id must fit a byte, got {self.mote_id}")
        if not (0 <= self.sequence <= 0xFFFF):
            raise ValueError(f"sequence must fit 16 bits, got {self.sequence}")
        if not self.levels_db:
            raise ValueError("frame needs at least one level")
        if len(self.levels_db) > 0xFF:
            raise ValueError("too many samples for one frame")


def encode_frame(frame: ReportFrame) -> bytes:
    """Serialize a report frame (header + fixed-point payload + CRC)."""
    header = bytes(
        [
            SYNC_BYTE,
            frame.mote_id,
            (frame.sequence >> 8) & 0xFF,
            frame.sequence & 0xFF,
            len(frame.levels_db),
        ]
    )
    payload = bytearray()
    for level in frame.levels_db:
        raw = int(round((level + LEVEL_OFFSET) * LEVEL_SCALE))
        raw = max(0, min(raw, 0xFFFF))
        payload += bytes([(raw >> 8) & 0xFF, raw & 0xFF])
    body = header + bytes(payload)
    checksum = crc16(body)
    return body + bytes([(checksum >> 8) & 0xFF, checksum & 0xFF])


def decode_frame(data: bytes) -> "ReportFrame | None":
    """Parse a frame; None when the frame is malformed or fails its CRC."""
    if len(data) < 7:  # header + at least CRC
        return None
    if data[0] != SYNC_BYTE:
        return None
    body, trailer = data[:-2], data[-2:]
    if crc16(body) != (trailer[0] << 8 | trailer[1]):
        return None
    mote_id = data[1]
    sequence = data[2] << 8 | data[3]
    count = data[4]
    expected_len = 5 + 2 * count + 2
    if len(data) != expected_len:
        return None
    levels = []
    for i in range(count):
        hi, lo = data[5 + 2 * i], data[6 + 2 * i]
        raw = hi << 8 | lo
        levels.append(raw / LEVEL_SCALE - LEVEL_OFFSET)
    return ReportFrame(mote_id=mote_id, sequence=sequence, levels_db=tuple(levels))


def corrupt(data: bytes, bit_error_rate: float, rng: np.random.Generator) -> bytes:
    """Flip each bit independently with probability *bit_error_rate*."""
    if not (0.0 <= bit_error_rate <= 1.0):
        raise ValueError(f"BER must be in [0, 1], got {bit_error_rate}")
    if bit_error_rate == 0.0:
        return data
    arr = np.frombuffer(data, dtype=np.uint8).copy()
    bits = rng.random((len(arr), 8)) < bit_error_rate
    if bits.any():
        masks = (bits * (1 << np.arange(8))).sum(axis=1).astype(np.uint8)
        arr ^= masks
    return arr.tobytes()
