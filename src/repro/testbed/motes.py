"""IRIS mote + MTS300 acoustic-board model.

Each mote measures the received level of the target's 4 kHz tone through
an ADC with finite resolution, plus a fixed per-mote calibration offset
(microphone gain spread) — the hardware realities that make outdoor
sensing "ultimately unreliable".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.acoustic import AcousticToneChannel

__all__ = ["MoteReading", "IrisMote"]


@dataclass(frozen=True)
class MoteReading:
    """One acoustic sample reported by a mote."""

    mote_id: int
    t: float
    level_db: float


@dataclass
class IrisMote:
    """A simulated IRIS mote with an MTS300 sensor board.

    Parameters
    ----------
    mote_id : stable identity (pair enumeration orders by id).
    position : (x, y) in metres.
    adc_step_db : quantization step of the sound-level measurement; the
        MTS300's microphone/ADC chain resolves on the order of half a dB
        after the standard TinyOS integration window.
    gain_offset_db : fixed calibration error of this mote's microphone.
    failed : crashed motes return no readings.
    """

    mote_id: int
    position: np.ndarray
    adc_step_db: float = 0.5
    gain_offset_db: float = 0.0
    failed: bool = False

    def __post_init__(self) -> None:
        if self.mote_id < 0:
            raise ValueError(f"mote_id must be non-negative, got {self.mote_id}")
        if self.adc_step_db < 0:
            raise ValueError(f"adc step must be non-negative, got {self.adc_step_db}")
        self.position = np.asarray(self.position, dtype=float).reshape(2)

    def sense(
        self,
        target_position: np.ndarray,
        channel: AcousticToneChannel,
        t: float,
        rng: np.random.Generator,
    ) -> "MoteReading | None":
        """Measure the tone level; None when the mote is down."""
        if self.failed:
            return None
        target = np.asarray(target_position, dtype=float).reshape(2)
        distance = float(np.hypot(*(target - self.position)))
        level = float(channel.observe(np.array([distance]), rng)[0]) + self.gain_offset_db
        if self.adc_step_db > 0:
            level = round(level / self.adc_step_db) * self.adc_step_db
        return MoteReading(mote_id=self.mote_id, t=t, level_db=level)
