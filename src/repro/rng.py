"""Deterministic random-number management.

Every stochastic component in this library accepts a
:class:`numpy.random.Generator`.  Experiments that replicate a simulation
many times need statistically independent, reproducible streams; the
helpers here wrap :class:`numpy.random.SeedSequence` spawning so that a
single integer seed fans out into any number of independent generators.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "rng_stream",
    "derive_rng",
]

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(seed: "int | np.random.Generator | np.random.SeedSequence | None" = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: "int | np.random.SeedSequence | None", n: int) -> list[np.random.Generator]:
    """Spawn *n* independent generators from a single seed.

    Uses :meth:`numpy.random.SeedSequence.spawn`, which guarantees
    non-overlapping streams regardless of how much randomness each child
    consumes.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def rng_stream(seed: "int | np.random.SeedSequence | None") -> Iterator[np.random.Generator]:
    """Yield an unbounded stream of independent generators.

    Useful when the number of replications is not known up front::

        stream = rng_stream(1234)
        for trial in trials:
            run(trial, rng=next(stream))
    """
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    while True:
        (child,) = ss.spawn(1)
        yield np.random.default_rng(child)


def derive_rng(rng: np.random.Generator, *keys: "int | str") -> np.random.Generator:
    """Derive a child generator from *rng*, namespaced by *keys*.

    The same parent state and keys always produce the same child, letting
    components carve private streams out of a shared generator without
    coupling their draw counts.
    """
    material: list[int] = list(rng.bit_generator.state["state"].get("key", []))
    if not material:
        material = [int(rng.integers(0, 2**32))]
    for key in keys:
        if isinstance(key, str):
            material.extend(key.encode("utf-8"))
        else:
            material.append(int(key) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(material))


def check_rngs_independent(rngs: Sequence[np.random.Generator], n_draws: int = 8) -> bool:
    """Cheap sanity check that generators do not emit identical streams."""
    draws = [tuple(r.integers(0, 2**63, size=n_draws).tolist()) for r in rngs]
    return len(set(draws)) == len(draws)
