"""Central configuration objects.

:class:`PaperDefaults` encodes Table 1 of the paper verbatim so that every
experiment harness starts from the published parameter set, and
:class:`SimulationConfig` is the validated, mutable bundle the simulation
layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict, replace
from typing import Any

__all__ = ["PaperDefaults", "SimulationConfig", "GridConfig"]


@dataclass(frozen=True)
class PaperDefaults:
    """Table 1 — System Parameters and Settings (verbatim from the paper)."""

    field_size_m: float = 100.0          # 100 x 100 m^2 monitor area
    path_loss_exponent: float = 4.0      # beta = 4
    noise_sigma_dbm: float = 6.0         # sigma_X = 6
    n_sensors_min: int = 5               # n in 5..40
    n_sensors_max: int = 40
    sensing_range_m: float = 40.0        # R = 40 m
    resolution_min_dbm: float = 0.5      # epsilon in 0.5..3 dBm
    resolution_max_dbm: float = 3.0
    sampling_rate_hz: float = 10.0       # lambda = 10 Hz
    target_speed_min_mps: float = 1.0    # 1..5 m/s
    target_speed_max_mps: float = 5.0
    sampling_times_min: int = 3          # k in 3..9
    sampling_times_max: int = 9
    sim_duration_s: float = 60.0         # "each tracking simulation lasts 60s"

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)


PAPER = PaperDefaults()


@dataclass(frozen=True)
class GridConfig:
    """Approximate grid division settings (paper §4.3-2, ref [29])."""

    cell_size_m: float = 1.0
    split_components: bool = False  # split equal-signature faces into connected parts

    def __post_init__(self) -> None:
        if self.cell_size_m <= 0:
            raise ValueError(f"cell_size_m must be positive, got {self.cell_size_m}")


@dataclass(frozen=True)
class SimulationConfig:
    """Validated parameter bundle for one tracking simulation.

    Defaults reproduce the paper's baseline operating point
    (k = 5, epsilon = 1 dBm, n = 10) used in Figs. 10-12.
    """

    field_size_m: float = PAPER.field_size_m
    n_sensors: int = 10
    sensing_range_m: float = PAPER.sensing_range_m
    path_loss_exponent: float = PAPER.path_loss_exponent
    noise_sigma_dbm: float = PAPER.noise_sigma_dbm
    resolution_dbm: float = 1.0
    sampling_times: int = 5
    sampling_rate_hz: float = PAPER.sampling_rate_hz
    target_speed_min_mps: float = PAPER.target_speed_min_mps
    target_speed_max_mps: float = PAPER.target_speed_max_mps
    duration_s: float = PAPER.sim_duration_s
    tx_power_dbm: float = -40.0  # PL(d0)+A at the 1 m reference distance
    grid: GridConfig = field(default_factory=GridConfig)

    def __post_init__(self) -> None:
        if self.field_size_m <= 0:
            raise ValueError(f"field_size_m must be positive, got {self.field_size_m}")
        if self.n_sensors < 2:
            raise ValueError(f"need at least 2 sensors for pairwise tracking, got {self.n_sensors}")
        if self.sensing_range_m <= 0:
            raise ValueError(f"sensing_range_m must be positive, got {self.sensing_range_m}")
        if self.path_loss_exponent <= 0:
            raise ValueError(f"path_loss_exponent must be positive, got {self.path_loss_exponent}")
        if self.noise_sigma_dbm < 0:
            raise ValueError(f"noise_sigma_dbm must be non-negative, got {self.noise_sigma_dbm}")
        if self.resolution_dbm < 0:
            raise ValueError(f"resolution_dbm must be non-negative, got {self.resolution_dbm}")
        if self.sampling_times < 1:
            raise ValueError(f"sampling_times must be >= 1, got {self.sampling_times}")
        if self.sampling_rate_hz <= 0:
            raise ValueError(f"sampling_rate_hz must be positive, got {self.sampling_rate_hz}")
        if not (0 < self.target_speed_min_mps <= self.target_speed_max_mps):
            raise ValueError(
                "target speed range invalid: "
                f"[{self.target_speed_min_mps}, {self.target_speed_max_mps}]"
            )
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")

    @property
    def localization_period_s(self) -> float:
        """Wall-clock time consumed by one grouping sampling (k samples at rate lambda)."""
        return self.sampling_times / self.sampling_rate_hz

    @property
    def n_localizations(self) -> int:
        """Number of grouping samplings that fit in the simulation."""
        return max(1, int(self.duration_s / self.localization_period_s))

    def with_(self, **kwargs: Any) -> "SimulationConfig":
        """Return a copy with the given fields replaced (re-validated)."""
        return replace(self, **kwargs)

    def as_dict(self) -> dict[str, Any]:
        d = asdict(self)
        d["grid"] = asdict(self.grid)
        return d
