"""repro — Fault-Tolerant Target Tracking under unreliable sensing.

A complete, from-scratch reproduction of

    Xie, Tang, Wang, Xiao, Tang & Tang,
    "Rethinking of the Uncertainty: A Fault-Tolerant Target-Tracking
    Strategy Based on Unreliable Sensing in Wireless Sensor Networks"
    (2012; preliminary version at IEEE IPDPS HPDIC Workshop 2012).

Quickstart
----------
>>> from repro import SimulationConfig, make_scenario, run_all_trackers
>>> scenario = make_scenario(SimulationConfig(n_sensors=10), seed=42)
>>> results = run_all_trackers(scenario, ["fttt", "pm", "direct-mle"], 43)

Package layout
--------------
``repro.core``      — the FTTT strategy (sampling vectors, matching, tracker)
``repro.geometry``  — uncertain boundaries, grid division, face maps
``repro.rf``        — path-loss / noise / acoustic channels
``repro.network``   — deployments, grouping sampling, faults, base station
``repro.mobility``  — random waypoint and deterministic paths
``repro.baselines`` — PM, Direct MLE, range MLE, nearest node
``repro.analysis``  — §5 formulas and tracking metrics
``repro.sim``       — scenarios, runners, replicated sweeps
``repro.testbed``   — the simulated outdoor IRIS-mote system
"""

from repro.config import PaperDefaults, SimulationConfig, GridConfig
from repro.core import (
    FTTTracker,
    TrackEstimate,
    TrackResult,
    sampling_vector,
    extended_sampling_vector,
    similarity,
)
from repro.geometry import (
    Grid,
    FaceMap,
    build_face_map,
    uncertainty_constant,
)
from repro.sim import (
    Scenario,
    make_scenario,
    run_tracking,
    run_all_trackers,
    generate_batches,
)
from repro.analysis import summarize_errors, required_sampling_times

__version__ = "1.0.0"

__all__ = [
    "PaperDefaults",
    "SimulationConfig",
    "GridConfig",
    "FTTTracker",
    "TrackEstimate",
    "TrackResult",
    "sampling_vector",
    "extended_sampling_vector",
    "similarity",
    "Grid",
    "FaceMap",
    "build_face_map",
    "uncertainty_constant",
    "Scenario",
    "make_scenario",
    "run_tracking",
    "run_all_trackers",
    "generate_batches",
    "summarize_errors",
    "required_sampling_times",
    "__version__",
]
