"""Mobility substrate: target motion models.

Provides the random-waypoint model the paper generates traces with
(ref [30]), plus deterministic piecewise-linear paths including the
"⌐"-shaped outdoor trace of Fig. 13.
"""

from repro.mobility.base import MobilityModel, StationaryTarget
from repro.mobility.waypoint import RandomWaypoint
from repro.mobility.gauss_markov import GaussMarkov
from repro.mobility.paths import PiecewiseLinearPath, l_shape_path, lawnmower_path
from repro.mobility.trace_io import RecordedTrace, save_trace, load_trace, record_model

__all__ = [
    "MobilityModel",
    "StationaryTarget",
    "RandomWaypoint",
    "GaussMarkov",
    "PiecewiseLinearPath",
    "l_shape_path",
    "lawnmower_path",
    "RecordedTrace",
    "save_trace",
    "load_trace",
    "record_model",
]
