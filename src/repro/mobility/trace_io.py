"""Trace persistence and replay.

Lets a mobility trace be captured to CSV and replayed later — the
mechanism for substituting *recorded* target trajectories (GPS logs,
motion-capture exports) for the synthetic models, and for pinning the
exact trace a figure was generated with.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["RecordedTrace", "save_trace", "load_trace", "record_model"]


@dataclass
class RecordedTrace:
    """A time-stamped position series acting as a mobility model."""

    times: np.ndarray
    points: np.ndarray
    name: str = "recorded"

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.points = np.atleast_2d(np.asarray(self.points, dtype=float))
        if self.times.ndim != 1 or len(self.times) < 2:
            raise ValueError("need at least two timestamped samples")
        if self.points.shape != (len(self.times), 2):
            raise ValueError(
                f"points shape {self.points.shape} does not match {len(self.times)} times"
            )
        if np.any(np.diff(self.times) <= 0):
            raise ValueError("timestamps must be strictly increasing")

    @property
    def duration_s(self) -> float:
        return float(self.times[-1] - self.times[0])

    def position(self, times: np.ndarray) -> np.ndarray:
        """Linear interpolation, clamped at the recording's ends."""
        times = np.atleast_1d(np.asarray(times, dtype=float))
        t = np.clip(times, self.times[0], self.times[-1])
        idx = np.clip(np.searchsorted(self.times, t, side="right") - 1, 0, len(self.times) - 2)
        t0, t1 = self.times[idx], self.times[idx + 1]
        frac = ((t - t0) / (t1 - t0))[:, None]
        return self.points[idx] * (1.0 - frac) + self.points[idx + 1] * frac


def record_model(model, duration_s: float, *, sample_hz: float = 10.0, name: str = "recorded") -> RecordedTrace:
    """Materialize any mobility model into a RecordedTrace."""
    if duration_s <= 0 or sample_hz <= 0:
        raise ValueError("duration and rate must be positive")
    times = np.arange(0.0, duration_s + 1e-9, 1.0 / sample_hz)
    return RecordedTrace(times=times, points=model.position(times), name=name)


def save_trace(trace: RecordedTrace, path: "str | Path") -> Path:
    """Write a trace as ``t,x,y`` CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["t", "x", "y"])
        for t, (x, y) in zip(trace.times, trace.points):
            writer.writerow([f"{t:.6f}", f"{x:.6f}", f"{y:.6f}"])
    return path


def load_trace(path: "str | Path", *, name: "str | None" = None) -> RecordedTrace:
    """Read a ``t,x,y`` CSV back into a replayable trace."""
    path = Path(path)
    times, points = [], []
    with path.open() as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or not {"t", "x", "y"} <= set(reader.fieldnames):
            raise ValueError(f"{path} is not a t,x,y trace file")
        for row in reader:
            times.append(float(row["t"]))
            points.append((float(row["x"]), float(row["y"])))
    return RecordedTrace(
        times=np.asarray(times),
        points=np.asarray(points),
        name=name or path.stem,
    )
