"""Mobility model interface.

A mobility model is a function from time to position; every model here is
*pre-materialized* — the whole trace is generated once (deterministically,
from an RNG) and then queried at arbitrary times.  That makes the trace
identical no matter how many trackers sample it, which is essential for
fair baseline comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["MobilityModel", "StationaryTarget"]


@runtime_checkable
class MobilityModel(Protocol):
    """Time-indexed target position."""

    @property
    def duration_s(self) -> float:
        """Length of the materialized trace in seconds."""
        ...

    def position(self, times: np.ndarray) -> np.ndarray:
        """Positions (m, 2) at the given times (m,); clamped to the trace ends."""
        ...


@dataclass(frozen=True)
class StationaryTarget:
    """A target that never moves — the degenerate case used by localization
    (as opposed to tracking) tests and by the one-shot error analyses."""

    point: np.ndarray
    duration_s: float = np.inf

    def __post_init__(self) -> None:
        object.__setattr__(self, "point", np.asarray(self.point, dtype=float).reshape(2))

    def position(self, times: np.ndarray) -> np.ndarray:
        times = np.atleast_1d(np.asarray(times, dtype=float))
        return np.broadcast_to(self.point, (len(times), 2)).copy()
