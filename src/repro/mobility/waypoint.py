"""Random-waypoint mobility (paper ref [30]).

The target repeatedly picks a uniform random waypoint in the field and a
uniform random speed in ``[v_min, v_max]``, travels there in a straight
line, optionally pauses, and repeats.  The trace is materialized up front
(waypoints, speeds, segment times) so that ``position(t)`` is a pure
vectorized lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rng import ensure_rng

__all__ = ["RandomWaypoint"]


@dataclass
class RandomWaypoint:
    """Materialized random-waypoint trace.

    Parameters
    ----------
    field_size : side of the square field in metres.
    duration_s : trace length to materialize.
    speed_range : (v_min, v_max) in m/s — Table 1 uses 1..5.
    pause_s : pause duration at each waypoint (0 in the paper's setup).
    margin : keep waypoints this many metres inside the field border.
    rng / seed : randomness source.
    """

    field_size: float = 100.0
    duration_s: float = 60.0
    speed_range: tuple[float, float] = (1.0, 5.0)
    pause_s: float = 0.0
    margin: float = 0.0
    seed: "int | np.random.Generator | None" = None
    _times: np.ndarray = field(init=False, repr=False)
    _points: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        v_min, v_max = self.speed_range
        if not (0 < v_min <= v_max):
            raise ValueError(f"speed range invalid: {self.speed_range}")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if self.pause_s < 0:
            raise ValueError(f"pause must be non-negative, got {self.pause_s}")
        if not (0 <= self.margin < self.field_size / 2):
            raise ValueError(f"margin {self.margin} incompatible with field {self.field_size}")
        rng = ensure_rng(self.seed)
        lo, hi = self.margin, self.field_size - self.margin

        times = [0.0]
        points = [rng.uniform(lo, hi, size=2)]
        t = 0.0
        while t < self.duration_s:
            nxt = rng.uniform(lo, hi, size=2)
            speed = rng.uniform(v_min, v_max)
            leg = float(np.hypot(*(nxt - points[-1])))
            if leg < 1e-9:
                continue  # re-draw coincident waypoint
            t += leg / speed
            times.append(t)
            points.append(nxt)
            if self.pause_s > 0:
                t += self.pause_s
                times.append(t)
                points.append(nxt)
        self._times = np.asarray(times)
        self._points = np.stack(points)

    @property
    def waypoints(self) -> np.ndarray:
        """The materialized waypoint list (V, 2)."""
        return self._points.copy()

    def position(self, times: np.ndarray) -> np.ndarray:
        """Linear interpolation along the materialized trace; clamped at ends."""
        times = np.atleast_1d(np.asarray(times, dtype=float))
        t = np.clip(times, self._times[0], self._times[-1])
        idx = np.clip(np.searchsorted(self._times, t, side="right") - 1, 0, len(self._times) - 2)
        t0 = self._times[idx]
        t1 = self._times[idx + 1]
        span = np.where(t1 > t0, t1 - t0, 1.0)
        frac = ((t - t0) / span)[:, None]
        return self._points[idx] * (1.0 - frac) + self._points[idx + 1] * frac

    def speed(self, times: np.ndarray) -> np.ndarray:
        """Instantaneous speed at the given times (0 while pausing/clamped)."""
        times = np.atleast_1d(np.asarray(times, dtype=float))
        t = np.clip(times, self._times[0], self._times[-1])
        idx = np.clip(np.searchsorted(self._times, t, side="right") - 1, 0, len(self._times) - 2)
        seg = self._points[idx + 1] - self._points[idx]
        dt = self._times[idx + 1] - self._times[idx]
        dt = np.where(dt > 0, dt, np.inf)
        return np.hypot(seg[:, 0], seg[:, 1]) / dt
