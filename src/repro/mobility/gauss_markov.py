"""Gauss-Markov mobility model.

Random waypoint (the paper's trace generator) produces straight legs with
sharp turns; Gauss-Markov produces smooth, momentum-carrying motion — a
tougher test of whether a tracker merely interpolates straight lines.
Velocity evolves as an AR(1) process around a mean speed and is reflected
at the field boundary.  Materialized up front like every mobility model
here (see :mod:`repro.mobility.base`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rng import ensure_rng

__all__ = ["GaussMarkov"]


@dataclass
class GaussMarkov:
    """Materialized Gauss-Markov trace.

    Parameters
    ----------
    field_size : side of the square field (metres).
    duration_s : trace length.
    mean_speed : long-run speed the process reverts to (m/s).
    alpha : memory parameter in [0, 1); 0 = fresh random velocity each
        step (Brownian-ish), near 1 = nearly straight-line motion.
    step_s : internal integration step.
    speed_sigma / heading_sigma : innovation scales for speed (m/s) and
        heading (radians) per step.
    margin : reflection boundary inset.
    """

    field_size: float = 100.0
    duration_s: float = 60.0
    mean_speed: float = 3.0
    alpha: float = 0.85
    step_s: float = 0.1
    speed_sigma: float = 0.5
    heading_sigma: float = 0.4
    margin: float = 1.0
    seed: "int | np.random.Generator | None" = None
    _times: np.ndarray = field(init=False, repr=False)
    _points: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.field_size <= 0 or self.duration_s <= 0 or self.step_s <= 0:
            raise ValueError("field, duration and step must be positive")
        if not (0.0 <= self.alpha < 1.0):
            raise ValueError(f"alpha must be in [0, 1), got {self.alpha}")
        if self.mean_speed <= 0:
            raise ValueError(f"mean speed must be positive, got {self.mean_speed}")
        if not (0 <= self.margin < self.field_size / 2):
            raise ValueError(f"margin {self.margin} incompatible with field")
        rng = ensure_rng(self.seed)
        lo, hi = self.margin, self.field_size - self.margin

        n_steps = int(np.ceil(self.duration_s / self.step_s)) + 1
        pts = np.empty((n_steps, 2))
        pts[0] = rng.uniform(lo, hi, size=2)
        speed = self.mean_speed
        heading = rng.uniform(0, 2 * np.pi)
        root = np.sqrt(1.0 - self.alpha**2)
        for i in range(1, n_steps):
            speed = (
                self.alpha * speed
                + (1 - self.alpha) * self.mean_speed
                + root * rng.normal(0.0, self.speed_sigma)
            )
            speed = max(speed, 0.1)
            # heading is a random walk whose innovation shrinks with memory
            # (no fixed mean direction: the walker has momentum, not a goal)
            heading = heading + root * rng.normal(0.0, self.heading_sigma)
            step = speed * self.step_s
            cand = pts[i - 1] + step * np.array([np.cos(heading), np.sin(heading)])
            # reflect at the boundary, flipping the corresponding heading part
            if cand[0] < lo or cand[0] > hi:
                heading = np.pi - heading
                cand[0] = np.clip(2 * np.clip(cand[0], lo, hi) - cand[0], lo, hi)
            if cand[1] < lo or cand[1] > hi:
                heading = -heading
                cand[1] = np.clip(2 * np.clip(cand[1], lo, hi) - cand[1], lo, hi)
            pts[i] = cand
        self._points = pts
        self._times = np.arange(n_steps) * self.step_s

    def position(self, times: np.ndarray) -> np.ndarray:
        times = np.atleast_1d(np.asarray(times, dtype=float))
        t = np.clip(times, 0.0, self._times[-1])
        idx = np.clip(np.searchsorted(self._times, t, side="right") - 1, 0, len(self._times) - 2)
        t0 = self._times[idx]
        frac = ((t - t0) / self.step_s)[:, None]
        return self._points[idx] * (1.0 - frac) + self._points[idx + 1] * frac

    def speed(self, times: np.ndarray) -> np.ndarray:
        """Instantaneous speed along the materialized trace."""
        times = np.atleast_1d(np.asarray(times, dtype=float))
        t = np.clip(times, 0.0, self._times[-1])
        idx = np.clip(np.searchsorted(self._times, t, side="right") - 1, 0, len(self._times) - 2)
        seg = self._points[idx + 1] - self._points[idx]
        return np.hypot(seg[:, 0], seg[:, 1]) / self.step_s
