"""Deterministic piecewise-linear paths.

Used for the outdoor evaluation (the person walks a "⌐"-shaped trace,
Fig. 13) and for controlled tests where the ground truth must be exactly
known.  Speeds may vary per segment — the paper's walker moves "at
changeable velocity in 1~5 m/s".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.primitives import polyline_length
from repro.rng import ensure_rng

__all__ = ["PiecewiseLinearPath", "l_shape_path", "lawnmower_path"]


@dataclass
class PiecewiseLinearPath:
    """Motion along fixed vertices with per-segment speeds.

    Parameters
    ----------
    vertices : (V, 2) path corners, traversed in order.
    speeds : scalar or (V-1,) per-segment speeds in m/s.
    """

    vertices: np.ndarray
    speeds: "float | np.ndarray" = 1.0
    _times: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        v = np.atleast_2d(np.asarray(self.vertices, dtype=float))
        if v.shape[0] < 2 or v.shape[1] != 2:
            raise ValueError(f"need at least two (x, y) vertices, got shape {v.shape}")
        self.vertices = v
        seg = np.diff(v, axis=0)
        seg_len = np.hypot(seg[:, 0], seg[:, 1])
        if np.any(seg_len <= 0):
            raise ValueError("path contains a zero-length segment")
        speeds = np.broadcast_to(np.asarray(self.speeds, dtype=float), seg_len.shape).copy()
        if np.any(speeds <= 0):
            raise ValueError("all segment speeds must be positive")
        self.speeds = speeds
        self._times = np.concatenate([[0.0], np.cumsum(seg_len / speeds)])

    @property
    def duration_s(self) -> float:
        return float(self._times[-1])

    @property
    def length_m(self) -> float:
        return polyline_length(self.vertices)

    def position(self, times: np.ndarray) -> np.ndarray:
        times = np.atleast_1d(np.asarray(times, dtype=float))
        t = np.clip(times, 0.0, self.duration_s)
        idx = np.clip(np.searchsorted(self._times, t, side="right") - 1, 0, len(self._times) - 2)
        t0, t1 = self._times[idx], self._times[idx + 1]
        frac = ((t - t0) / np.where(t1 > t0, t1 - t0, 1.0))[:, None]
        return self.vertices[idx] * (1.0 - frac) + self.vertices[idx + 1] * frac


def l_shape_path(
    field_size: float,
    *,
    inset_frac: float = 0.25,
    speeds: "float | np.ndarray | None" = None,
    rng: "np.random.Generator | int | None" = None,
    speed_range: tuple[float, float] = (1.0, 5.0),
) -> PiecewiseLinearPath:
    """The outdoor "⌐" trace of Fig. 13: up one side, then across the top.

    With ``speeds=None``, per-segment speeds are drawn uniformly from
    *speed_range* — the paper's "changeable velocity in 1~5 m/s".  The two
    legs are subdivided so the speed actually changes along each leg.
    """
    inset = inset_frac * field_size
    # vertical leg (bottom-left, going up) then horizontal leg (going right)
    leg1 = np.column_stack(
        [np.full(4, inset), np.linspace(inset, field_size - inset, 4)]
    )
    leg2 = np.column_stack(
        [np.linspace(inset, field_size - inset, 4)[1:], np.full(3, field_size - inset)]
    )
    vertices = np.vstack([leg1, leg2])
    if speeds is None:
        gen = ensure_rng(rng)
        speeds = gen.uniform(*speed_range, size=len(vertices) - 1)
    return PiecewiseLinearPath(vertices, speeds)


def lawnmower_path(
    field_size: float,
    *,
    n_sweeps: int = 4,
    inset_frac: float = 0.15,
    speed: float = 2.0,
) -> PiecewiseLinearPath:
    """Boustrophedon coverage path — a demanding tracking workload with
    many sharp turns, used by the examples and stress tests."""
    if n_sweeps < 2:
        raise ValueError(f"need at least two sweeps, got {n_sweeps}")
    inset = inset_frac * field_size
    xs = np.linspace(inset, field_size - inset, n_sweeps)
    lo, hi = inset, field_size - inset
    pts: list[tuple[float, float]] = []
    for i, x in enumerate(xs):
        if i % 2 == 0:
            pts.extend([(x, lo), (x, hi)])
        else:
            pts.extend([(x, hi), (x, lo)])
    return PiecewiseLinearPath(np.asarray(pts), speed)
