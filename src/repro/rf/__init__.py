"""RF substrate: signal propagation and sampling channels.

Implements the log-distance path-loss model with Gaussian shadowing that
the paper's uncertainty analysis starts from (Eq. 1), plus the acoustic
tone channel used by the outdoor-testbed simulator.
"""

from repro.rf.pathloss import LogDistancePathLoss
from repro.rf.noise import GaussianNoise, NoNoise, StudentTNoise, MixtureNoise
from repro.rf.channel import RssChannel, SampleBatch
from repro.rf.acoustic import AcousticToneChannel
from repro.rf.shadowing import (
    TemporallyCorrelatedNoise,
    CommonModeNoise,
    gudmundson_covariance,
)

__all__ = [
    "LogDistancePathLoss",
    "GaussianNoise",
    "NoNoise",
    "StudentTNoise",
    "MixtureNoise",
    "RssChannel",
    "SampleBatch",
    "AcousticToneChannel",
    "TemporallyCorrelatedNoise",
    "CommonModeNoise",
    "gudmundson_covariance",
]
