"""Noise models for the sensing channel.

The paper's analysis assumes i.i.d. Gaussian shadowing ``X ~ N(0, sigma^2)``
per node per sample (Eq. 1).  The alternatives here (heavy-tailed Student-t,
contaminated mixture) exist to stress-test FTTT's robustness beyond the
paper's assumptions — they are used by the failure-injection tests and the
ablation benchmarks, not by the headline reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["NoiseModel", "GaussianNoise", "NoNoise", "StudentTNoise", "MixtureNoise"]


@runtime_checkable
class NoiseModel(Protocol):
    """Anything that can draw additive dB-domain noise of a given shape."""

    def sample(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Draw noise values (dB) of the given shape."""
        ...


@dataclass(frozen=True)
class GaussianNoise:
    """i.i.d. Gaussian shadowing — the paper's model (sigma_X = 6 dB in Table 1)."""

    sigma_dbm: float = 6.0

    def __post_init__(self) -> None:
        if self.sigma_dbm < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma_dbm}")

    def sample(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        if self.sigma_dbm == 0.0:
            return np.zeros(shape)
        return rng.normal(0.0, self.sigma_dbm, size=shape)


@dataclass(frozen=True)
class NoNoise:
    """Deterministic channel; useful for geometry-only unit tests."""

    def sample(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.zeros(shape)


@dataclass(frozen=True)
class StudentTNoise:
    """Heavy-tailed noise, scaled so the standard deviation matches sigma.

    Requires ``dof > 2`` for the variance to exist.
    """

    sigma_dbm: float = 6.0
    dof: float = 3.0

    def __post_init__(self) -> None:
        if self.sigma_dbm < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma_dbm}")
        if self.dof <= 2:
            raise ValueError(f"dof must exceed 2 for finite variance, got {self.dof}")

    def sample(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        if self.sigma_dbm == 0.0:
            return np.zeros(shape)
        scale = self.sigma_dbm / np.sqrt(self.dof / (self.dof - 2.0))
        return scale * rng.standard_t(self.dof, size=shape)


@dataclass(frozen=True)
class MixtureNoise:
    """Contaminated Gaussian: baseline noise plus occasional large outliers.

    Models intermittent interference bursts (the "in-the-field factors"
    the paper alludes to): with probability ``outlier_prob`` a sample's
    noise is drawn from the wide component instead.
    """

    sigma_dbm: float = 6.0
    outlier_sigma_dbm: float = 18.0
    outlier_prob: float = 0.05

    def __post_init__(self) -> None:
        if self.sigma_dbm < 0 or self.outlier_sigma_dbm < 0:
            raise ValueError("sigmas must be non-negative")
        if not (0.0 <= self.outlier_prob <= 1.0):
            raise ValueError(f"outlier_prob must lie in [0, 1], got {self.outlier_prob}")

    def sample(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        base = rng.normal(0.0, self.sigma_dbm, size=shape) if self.sigma_dbm else np.zeros(shape)
        if self.outlier_prob == 0.0 or self.outlier_sigma_dbm == 0.0:
            return base
        outliers = rng.normal(0.0, self.outlier_sigma_dbm, size=shape)
        mask = rng.random(size=shape) < self.outlier_prob
        return np.where(mask, outliers, base)
