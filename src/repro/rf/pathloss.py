"""Log-distance path-loss model (paper Eq. 1).

    PL(d) = PL(d0) + A - 10 * beta * log10(d / d0)        with d0 = 1 m

``PL(d0) + A`` is bundled into a single reference power ``p0_dbm`` — only
differences of RSS matter to every algorithm in this library, so the split
between transmit power and reference loss is irrelevant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LogDistancePathLoss"]


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Deterministic part of the received-signal model.

    Parameters
    ----------
    exponent:
        Path-loss exponent beta; 2 is free space, 3-4 models reflective /
        refractive environments (the paper evaluates with beta = 4).
    p0_dbm:
        Received power at the reference distance ``d0``.
    d0:
        Reference distance in metres (1 m in the paper).
    min_distance:
        Distances are clamped below to this value — the log model diverges
        at d = 0 and physical antennas cannot be co-located with the target.
    """

    exponent: float = 4.0
    p0_dbm: float = -40.0
    d0: float = 1.0
    min_distance: float = 1e-3

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ValueError(f"path-loss exponent must be positive, got {self.exponent}")
        if self.d0 <= 0:
            raise ValueError(f"reference distance must be positive, got {self.d0}")
        if self.min_distance <= 0:
            raise ValueError(f"min_distance must be positive, got {self.min_distance}")

    def rss_dbm(self, distance_m: np.ndarray) -> np.ndarray:
        """Mean RSS at the given distances (no noise)."""
        d = np.maximum(np.asarray(distance_m, dtype=float), self.min_distance)
        return self.p0_dbm - 10.0 * self.exponent * np.log10(d / self.d0)

    def distance_from_rss(self, rss_dbm: np.ndarray) -> np.ndarray:
        """Invert the mean model: maximum-likelihood distance given RSS.

        This is what range-based baselines use to turn a (noisy) RSS into a
        distance estimate; noise makes the estimate log-normally biased,
        which is precisely the unreliability the paper exploits.
        """
        rss = np.asarray(rss_dbm, dtype=float)
        return self.d0 * 10.0 ** ((self.p0_dbm - rss) / (10.0 * self.exponent))

    def rss_gradient_magnitude(self, distance_m: np.ndarray) -> np.ndarray:
        """|d RSS / d distance| in dB per metre — resolution analysis helper."""
        d = np.maximum(np.asarray(distance_m, dtype=float), self.min_distance)
        return 10.0 * self.exponent / (d * np.log(10.0))
