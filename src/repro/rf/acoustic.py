"""Acoustic tone propagation for the outdoor-testbed simulator (Fig. 13).

The paper's outdoor system tracks a person carrying a mote whose 4 kHz
piezoelectric resonator emits a fixed tone; MTS300 sensor boards measure
the received sound level.  We model the received level as spherical
spreading plus frequency-dependent atmospheric absorption plus Gaussian
ambient noise — in dB space this has exactly the same mathematical shape
as the RF log-distance model (a log term with additive noise), which is
why the same tracking stack works on both and why this substitution
preserves the paper's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AcousticToneChannel", "atmospheric_absorption_db_per_m"]


def atmospheric_absorption_db_per_m(frequency_hz: float, *, temperature_c: float = 20.0, humidity_pct: float = 50.0) -> float:
    """Approximate atmospheric absorption coefficient for a pure tone.

    A simplified ISO 9613-1-shaped fit, adequate for the few kilohertz and
    tens of metres the testbed covers: absorption grows roughly with f^2
    and is of order 0.02 dB/m at 4 kHz in temperate conditions.
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    f_khz = frequency_hz / 1000.0
    base = 0.0012 * f_khz**2  # dB per metre, classical + molecular, rough fit
    humidity_factor = 1.0 + 0.3 * (50.0 - min(max(humidity_pct, 10.0), 90.0)) / 50.0
    temp_factor = 1.0 + 0.01 * (temperature_c - 20.0)
    return float(base * humidity_factor * max(temp_factor, 0.5))


@dataclass(frozen=True)
class AcousticToneChannel:
    """Received sound level of a fixed-frequency tone.

        L(d) = L0 - 20 log10(d / d0) - alpha * d + noise

    where ``alpha`` is the atmospheric absorption (dB/m).  ``L0`` is the
    level at the 1 m reference.
    """

    l0_db: float = 90.0
    frequency_hz: float = 4000.0
    noise_sigma_db: float = 4.0
    temperature_c: float = 20.0
    humidity_pct: float = 50.0
    d0: float = 1.0
    min_distance: float = 1e-3

    def __post_init__(self) -> None:
        if self.noise_sigma_db < 0:
            raise ValueError(f"noise sigma must be non-negative, got {self.noise_sigma_db}")
        if self.d0 <= 0 or self.min_distance <= 0:
            raise ValueError("reference and minimum distances must be positive")
        if self.frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_hz}")

    @property
    def absorption_db_per_m(self) -> float:
        return atmospheric_absorption_db_per_m(
            self.frequency_hz, temperature_c=self.temperature_c, humidity_pct=self.humidity_pct
        )

    def level_db(self, distance_m: np.ndarray) -> np.ndarray:
        """Mean received level (no noise)."""
        d = np.maximum(np.asarray(distance_m, dtype=float), self.min_distance)
        return self.l0_db - 20.0 * np.log10(d / self.d0) - self.absorption_db_per_m * d

    def observe(self, distance_m: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Noisy received level samples."""
        mean = self.level_db(distance_m)
        if self.noise_sigma_db == 0.0:
            return mean
        return mean + rng.normal(0.0, self.noise_sigma_db, size=mean.shape)

    def effective_pathloss_exponent(self, distance_m: float) -> float:
        """Local slope of the level curve expressed as an equivalent RF beta.

        Spherical spreading alone is beta = 2; absorption steepens the curve
        with distance.  The FTTT uncertainty constant for the acoustic
        channel is computed with this effective exponent.
        """
        d = max(float(distance_m), self.min_distance)
        # dL/d(log10 d) = -20 - alpha * d * ln(10)
        return (20.0 + self.absorption_db_per_m * d * np.log(10.0)) / 10.0
