"""Correlated shadowing models.

The paper assumes i.i.d. per-sample noise (Eq. 1).  Real shadowing is
correlated — in time (the environment changes slower than 10 Hz sampling)
and across nodes (nearby sensors see the same obstacles).  These models
exist for robustness studies:

* temporal correlation makes a grouping sampling's k looks-at-the-channel
  redundant, weakening flip capture — FTTT's k budget must grow;
* cross-node correlation *cancels* in pairwise comparisons (FTTT only ever
  differences two sensors' RSS), so FTTT is naturally immune to the
  common-mode part — an advantage the ablation bench quantifies.

Both implement the :class:`~repro.rf.noise.NoiseModel` protocol by keeping
state across ``sample`` calls (they are deliberately *not* frozen).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TemporallyCorrelatedNoise", "CommonModeNoise", "gudmundson_covariance"]


def gudmundson_covariance(positions: np.ndarray, sigma_dbm: float, decorrelation_m: float) -> np.ndarray:
    """Gudmundson's exponential spatial-correlation model.

    cov[i, j] = sigma^2 * exp(-d_ij / d_corr) — the standard empirical model
    for shadowing correlation between receiver locations.
    """
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    if sigma_dbm < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma_dbm}")
    if decorrelation_m <= 0:
        raise ValueError(f"decorrelation distance must be positive, got {decorrelation_m}")
    diff = positions[:, None, :] - positions[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    return sigma_dbm**2 * np.exp(-dist / decorrelation_m)


@dataclass
class TemporallyCorrelatedNoise:
    """AR(1) shadowing per sensor: successive samples share most of their noise.

    ``x_t = rho * x_{t-1} + sqrt(1 - rho^2) * N(0, sigma^2)`` per column,
    stationary at N(0, sigma^2).  ``rho = 0`` recovers the paper's i.i.d.
    model; ``rho -> 1`` freezes the noise within a grouping sampling, which
    is the worst case for flip capture (every sample repeats the same
    comparison outcome).
    """

    sigma_dbm: float = 6.0
    rho: float = 0.8
    _state: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.sigma_dbm < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma_dbm}")
        if not (0.0 <= self.rho < 1.0):
            raise ValueError(f"rho must be in [0, 1), got {self.rho}")

    def reset(self) -> None:
        self._state = None

    def sample(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        if len(shape) != 2:
            raise ValueError(f"expected a (k, n) sample shape, got {shape}")
        k, n = shape
        if self.sigma_dbm == 0.0:
            return np.zeros(shape)
        out = np.empty(shape)
        if self._state is None or len(self._state) != n:
            self._state = rng.normal(0.0, self.sigma_dbm, size=n)
        innov_scale = self.sigma_dbm * np.sqrt(1.0 - self.rho**2)
        state = self._state
        for t in range(k):
            state = self.rho * state + rng.normal(0.0, innov_scale, size=n)
            out[t] = state
        self._state = state
        return out


@dataclass
class CommonModeNoise:
    """Per-sample noise with a shared common-mode component across sensors.

    ``x[t, i] = alpha * g[t] + sqrt(1 - alpha^2) * e[t, i]`` with both parts
    N(0, sigma^2): ``alpha`` is the fraction of the noise *amplitude* every
    sensor sees identically (interference bursts, wide-area fading).  The
    common part cancels exactly in any pairwise RSS difference, so
    comparison-based trackers see an effective sigma of
    ``sigma * sqrt(1 - alpha^2)``.
    """

    sigma_dbm: float = 6.0
    alpha: float = 0.7

    def __post_init__(self) -> None:
        if self.sigma_dbm < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma_dbm}")
        if not (0.0 <= self.alpha <= 1.0):
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")

    @property
    def effective_pairwise_sigma(self) -> float:
        """Noise std seen by a pairwise comparison (common mode cancelled)."""
        return self.sigma_dbm * float(np.sqrt(1.0 - self.alpha**2))

    def sample(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        if len(shape) != 2:
            raise ValueError(f"expected a (k, n) sample shape, got {shape}")
        k, n = shape
        if self.sigma_dbm == 0.0:
            return np.zeros(shape)
        common = rng.normal(0.0, self.sigma_dbm, size=(k, 1))
        private = rng.normal(0.0, self.sigma_dbm, size=(k, n))
        return self.alpha * common + np.sqrt(1.0 - self.alpha**2) * private
