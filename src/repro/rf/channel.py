"""The sampling channel: RSS observations of a target by many sensors.

Combines the deterministic path-loss law with a noise model and produces
the grouping-sampling matrices of Definition 3: ``k`` rows (time instants)
by ``n`` columns (sensors), with NaN marking sensors that did not report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rf.noise import GaussianNoise, NoiseModel
from repro.rf.pathloss import LogDistancePathLoss

__all__ = ["RssChannel", "SampleBatch"]


@dataclass(frozen=True)
class SampleBatch:
    """One grouping sampling (Definition 3).

    Attributes
    ----------
    rss : (k, n) RSS matrix in dBm; NaN where a sensor failed to report.
    times : (k,) sample timestamps in seconds.
    positions : (k, 2) true target positions at each sample instant.
    """

    rss: np.ndarray
    times: np.ndarray
    positions: np.ndarray

    def __post_init__(self) -> None:
        if self.rss.ndim != 2:
            raise ValueError(f"rss must be (k, n), got shape {self.rss.shape}")
        if len(self.times) != len(self.rss):
            raise ValueError("times and rss must agree on k")
        if self.positions.shape != (len(self.rss), 2):
            raise ValueError("positions must be (k, 2)")

    @property
    def k(self) -> int:
        return self.rss.shape[0]

    @property
    def n_sensors(self) -> int:
        return self.rss.shape[1]

    @property
    def responding(self) -> np.ndarray:
        """Boolean mask of sensors that reported every sample of the group."""
        return ~np.isnan(self.rss).any(axis=0)

    @property
    def mean_position(self) -> np.ndarray:
        """Centroid of the true positions during the group (quasi-stationary target)."""
        return self.positions.mean(axis=0)

    def mean_rss(self) -> np.ndarray:
        """Per-sensor mean RSS over the group, NaN for non-responders."""
        out = np.full(self.n_sensors, np.nan)
        ok = self.responding
        if ok.any():
            out[ok] = self.rss[:, ok].mean(axis=0)
        return out


@dataclass(frozen=True)
class RssChannel:
    """RSS observation channel for a fixed sensor deployment.

    Parameters
    ----------
    nodes : (n, 2) sensor positions.
    pathloss : deterministic propagation law.
    noise : additive dB-domain noise model, fresh per node per sample.
    sensing_range_m : sensors farther than this from the target return no
        sample (NaN) — the paper's sensing range R.  ``None`` disables gating.
    """

    nodes: np.ndarray
    pathloss: LogDistancePathLoss = field(default_factory=LogDistancePathLoss)
    noise: NoiseModel = field(default_factory=GaussianNoise)
    sensing_range_m: float | None = 40.0

    def __post_init__(self) -> None:
        nodes = np.atleast_2d(np.asarray(self.nodes, dtype=float))
        if nodes.shape[1] != 2:
            raise ValueError(f"nodes must be (n, 2), got {nodes.shape}")
        object.__setattr__(self, "nodes", nodes)
        if self.sensing_range_m is not None and self.sensing_range_m <= 0:
            raise ValueError(f"sensing range must be positive, got {self.sensing_range_m}")

    @property
    def n_sensors(self) -> int:
        return len(self.nodes)

    def distances(self, positions: np.ndarray) -> np.ndarray:
        """Distances from target positions ``(k, 2)`` to all sensors -> ``(k, n)``."""
        positions = np.atleast_2d(np.asarray(positions, dtype=float))
        diff = positions[:, None, :] - self.nodes[None, :, :]
        return np.hypot(diff[..., 0], diff[..., 1])

    def observe(
        self,
        positions: np.ndarray,
        times: np.ndarray,
        rng: np.random.Generator,
        *,
        drop_mask: np.ndarray | None = None,
    ) -> SampleBatch:
        """Produce one grouping sampling for target positions at sample times.

        Parameters
        ----------
        positions : (k, 2) true target positions at each instant.
        times : (k,) timestamps.
        rng : random source for the noise draws.
        drop_mask : optional (n,) or (k, n) boolean mask of *additional*
            non-reports injected by a fault model; combined with the
            sensing-range gating.
        """
        positions = np.atleast_2d(np.asarray(positions, dtype=float))
        times = np.asarray(times, dtype=float)
        dist = self.distances(positions)  # (k, n)
        rss = self.pathloss.rss_dbm(dist) + self.noise.sample(dist.shape, rng)
        if self.sensing_range_m is not None:
            rss = np.where(dist <= self.sensing_range_m, rss, np.nan)
        if drop_mask is not None:
            drop = np.asarray(drop_mask, dtype=bool)
            if drop.ndim == 1:
                drop = np.broadcast_to(drop, rss.shape)
            rss = np.where(drop, np.nan, rss)
        return SampleBatch(rss=rss, times=times, positions=positions)

    def observe_static(
        self, position: np.ndarray, k: int, rng: np.random.Generator, *, t0: float = 0.0, dt: float = 0.1
    ) -> SampleBatch:
        """Grouping sampling of a stationary target (k samples at one point)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        position = np.asarray(position, dtype=float).reshape(2)
        times = t0 + dt * np.arange(k)
        positions = np.broadcast_to(position, (k, 2)).copy()
        return self.observe(positions, times, rng)
