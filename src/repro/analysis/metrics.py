"""Tracking-error metrics and tracker comparison tables.

The paper's headline metrics: per-round geographic error, mean tracking
error over a trace, and its standard deviation (Fig. 11-12).  Percentiles
and RMSE are added because the extended-FTTT claim ("smoother trajectory")
shows up most clearly in the tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.tracker import TrackResult

__all__ = ["TrackingErrorSummary", "summarize_errors", "compare_trackers", "format_table"]


@dataclass(frozen=True)
class TrackingErrorSummary:
    """Distribution summary of per-round tracking errors (metres)."""

    n_rounds: int
    mean: float
    std: float
    rmse: float
    median: float
    p90: float
    max: float

    def row(self) -> list[float]:
        return [self.mean, self.std, self.rmse, self.median, self.p90, self.max]

    @staticmethod
    def header() -> list[str]:
        return ["mean", "std", "rmse", "median", "p90", "max"]


def summarize_errors(errors: "np.ndarray | TrackResult") -> TrackingErrorSummary:
    """Summarize per-round errors (or pull them from a :class:`TrackResult`)."""
    if isinstance(errors, TrackResult):
        errors = errors.errors
    errors = np.asarray(errors, dtype=float)
    if errors.ndim != 1:
        raise ValueError(f"errors must be 1-D, got shape {errors.shape}")
    if len(errors) == 0:
        raise ValueError("cannot summarize an empty error series")
    return TrackingErrorSummary(
        n_rounds=len(errors),
        mean=float(errors.mean()),
        std=float(errors.std()),
        rmse=float(np.sqrt((errors**2).mean())),
        median=float(np.median(errors)),
        p90=float(np.percentile(errors, 90)),
        max=float(errors.max()),
    )


def compare_trackers(results: Mapping[str, TrackResult]) -> dict[str, TrackingErrorSummary]:
    """Summaries for several trackers run on the same trace."""
    if not results:
        raise ValueError("no tracker results to compare")
    return {name: summarize_errors(res) for name, res in results.items()}


def format_table(
    rows: Mapping[str, "TrackingErrorSummary | list[float]"],
    *,
    header: "list[str] | None" = None,
    title: str = "",
    float_fmt: str = "{:8.3f}",
) -> str:
    """Plain-text table: one row per key — the benches' printable artifact."""
    if header is None:
        header = TrackingErrorSummary.header()
    name_width = max([len(k) for k in rows] + [len("tracker"), 8])
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "tracker".ljust(name_width) + " | " + " ".join(h.rjust(8) for h in header)
    )
    lines.append("-" * (name_width + 3 + 9 * len(header)))
    for name, summary in rows.items():
        values = summary.row() if isinstance(summary, TrackingErrorSummary) else list(summary)
        lines.append(
            name.ljust(name_width)
            + " | "
            + " ".join(float_fmt.format(v) for v in values)
        )
    return "\n".join(lines)
