"""Determination of grouping-sampling times (paper §5.1, Appendix I).

When the target sits in a pair's uncertain area, each individual sample
shows either order with probability 1/2; a group of k samples *misses* the
flip (looks ordinal) with probability

    f = (1/2)^(k-1).

For N simultaneously-uncertain pairs, the probability that the group
captures *every* flip is ``f_N = (1 - f)^(N-1)`` (Appendix I resolves the
inclusion-exclusion recurrence; the paper states the N-1 exponent next to
its ``f_N = (1-f)^N`` appendix line — we implement the main-text form and
the Monte-Carlo validator confirms the per-pair independence picture).
Requiring ``f_N > lambda`` gives the sampling-times rule

    k > 1 - log2(1 - lambda^(1/(N-1))).
"""

from __future__ import annotations

import math

import numpy as np

from repro.rng import ensure_rng

__all__ = [
    "miss_probability",
    "all_flips_probability",
    "required_sampling_times",
    "simulate_flip_capture",
]


def miss_probability(k: int) -> float:
    """f = (1/2)^(k-1): a k-sample group shows a flipped pair as ordinal."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return 0.5 ** (k - 1)


def all_flips_probability(k: int, n_pairs: int) -> float:
    """f_N = (1 - f)^(N-1): a group captures every one of N flipped pairs.

    ``n_pairs = 1`` returns ``1 - f`` (the base case the paper states
    explicitly).
    """
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
    f = miss_probability(k)
    if n_pairs == 1:
        return 1.0 - f
    return (1.0 - f) ** (n_pairs - 1)


def required_sampling_times(n_pairs: int, confidence: float) -> int:
    """Smallest integer k with ``all_flips_probability(k, N) > confidence``.

    Implements ``k > 1 - log2(1 - lambda^(1/(N-1)))`` and reproduces the
    paper's worked example: 20 sensors (N = C(20,2) = 190 pairs) at 99 %
    confidence need k = 16.
    """
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
    exponent = 1.0 if n_pairs == 1 else 1.0 / (n_pairs - 1)
    bound = 1.0 - math.log2(1.0 - confidence**exponent)
    k = max(1, math.ceil(bound))
    # ceil of an exact-integer bound still violates the strict inequality
    while all_flips_probability(k, n_pairs) <= confidence:
        k += 1
    return k


def simulate_flip_capture(
    k: int,
    n_pairs: int,
    n_trials: int = 10_000,
    rng: "np.random.Generator | int | None" = None,
) -> float:
    """Monte-Carlo estimate of the all-flips capture probability.

    Each of *n_pairs* flipped pairs independently shows a uniform random
    order per sample; a pair is captured iff both orders appear within the
    k samples.  Returns the fraction of trials capturing every pair —
    the quantity the closed form approximates.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if k < 1 or n_pairs < 1:
        raise ValueError("k and n_pairs must be >= 1")
    rng = ensure_rng(rng)
    # draws: (trials, pairs, k) booleans; captured = not all-equal along k
    draws = rng.random((n_trials, n_pairs, k)) < 0.5
    all_same = np.all(draws, axis=2) | np.all(~draws, axis=2)
    captured_all = ~all_same.any(axis=1)
    return float(captured_all.mean())
