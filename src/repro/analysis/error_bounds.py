"""Tracking-error analysis (paper §5.2, Appendix II).

Inter-face error: when the target sits inside the intersection of N pairs'
uncertain areas and M of them are missed by the grouping sampling, the
matched face is M vector-units away; Appendix II shows the expectation is
exactly

    E_N = N * f,          f = (1/2)^(k-1).

The worst-case geographic error combines the inter-face expectation with
the O(n^4) face count over the pi R^2 sensing disc:

    E = O( 1 / (2^((k-1)/2) * rho * R) ).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.sampling_times import miss_probability
from repro.rng import ensure_rng

__all__ = [
    "expected_interface_error",
    "worst_case_error_bound",
    "simulate_interface_error",
]


def expected_interface_error(k: int, n_pairs: int) -> float:
    """E_N = N * f — expected vector distance to the true face (Appendix II)."""
    if n_pairs < 0:
        raise ValueError(f"n_pairs must be non-negative, got {n_pairs}")
    return n_pairs * miss_probability(k)


def worst_case_error_bound(
    k: int,
    density_per_m2: float,
    sensing_range_m: float,
    *,
    xi: float = 1.0,
) -> float:
    """Worst-case tracking error shape of Eq. 10.

    ``E < sqrt( C(n,2) * f * pi R^2 / (xi * n^4) )`` with
    ``n = pi R^2 rho`` sensors hearing the target.  The constant ``xi``
    absorbs face-geometry factors; only the scaling
    ``1 / (2^((k-1)/2) * rho * R)`` is meaningful, which is what the
    reproduction checks.
    """
    if density_per_m2 <= 0 or sensing_range_m <= 0:
        raise ValueError("density and sensing range must be positive")
    if xi <= 0:
        raise ValueError(f"xi must be positive, got {xi}")
    n = math.pi * sensing_range_m**2 * density_per_m2
    if n < 2:
        raise ValueError(
            f"fewer than two sensors in sensing range on average (n={n:.2f}); "
            "the bound is vacuous"
        )
    n_pairs = n * (n - 1) / 2.0
    f = miss_probability(k)
    area = math.pi * sensing_range_m**2
    return math.sqrt(n_pairs * f * area / (xi * n**4))


def simulate_interface_error(
    k: int,
    n_pairs: int,
    n_trials: int = 10_000,
    rng: "np.random.Generator | int | None" = None,
) -> float:
    """Monte-Carlo mean vector error when N pairs are simultaneously uncertain.

    Each pair is missed (reported ordinal instead of flipped) independently
    with probability f; a missed pair displaces the match by one vector
    unit.  Returns the mean total displacement — Appendix II's E_N.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if n_pairs < 0:
        raise ValueError(f"n_pairs must be non-negative, got {n_pairs}")
    if n_pairs == 0:
        return 0.0
    rng = ensure_rng(rng)
    f = miss_probability(k)
    misses = rng.random((n_trials, n_pairs)) < f
    return float(misses.sum(axis=1).mean())
