"""Performance analysis (paper §5).

Closed-form results for choosing the grouping-sampling count k (§5.1), the
inter-face error expectation and worst-case bound (§5.2), Monte-Carlo
validators for both, and the tracking-error metrics used throughout the
evaluation.
"""

from repro.analysis.sampling_times import (
    miss_probability,
    all_flips_probability,
    required_sampling_times,
    simulate_flip_capture,
)
from repro.analysis.error_bounds import (
    expected_interface_error,
    worst_case_error_bound,
    simulate_interface_error,
)
from repro.analysis.metrics import (
    TrackingErrorSummary,
    summarize_errors,
    compare_trackers,
)
from repro.analysis.coverage import (
    CoverageReport,
    coverage_field,
    coverage_report,
    density_tradeoff,
)
from repro.analysis.energy import EnergyModel, EnergyLedger, project_lifetime
from repro.analysis.statistics import (
    bootstrap_mean_ci,
    PairedComparison,
    paired_comparison,
    welch_test,
    required_replications,
)

__all__ = [
    "miss_probability",
    "all_flips_probability",
    "required_sampling_times",
    "simulate_flip_capture",
    "expected_interface_error",
    "worst_case_error_bound",
    "simulate_interface_error",
    "TrackingErrorSummary",
    "summarize_errors",
    "compare_trackers",
    "CoverageReport",
    "coverage_field",
    "coverage_report",
    "density_tradeoff",
    "bootstrap_mean_ci",
    "PairedComparison",
    "paired_comparison",
    "welch_test",
    "required_replications",
    "EnergyModel",
    "EnergyLedger",
    "project_lifetime",
]
