"""Reproduction report generator.

Collects the per-figure CSVs the benchmark harness writes under
``benchmarks/results/`` into one markdown report — the machine-written
companion to EXPERIMENTS.md.  Exposed as ``fttt report``.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

__all__ = ["ResultFile", "collect_results", "render_report", "write_report"]

# figure id -> (title, one-line shape claim) for everything the harness emits
KNOWN_RESULTS: dict[str, tuple[str, str]] = {
    "fig03": ("Fig. 3 — face structure vs uncertainty", "certain faces shrink, then vanish"),
    "fig10_grid": ("Fig. 10(a,b) — example trace, grid deployment", "FTTT hugs the trace at least as tightly as PM"),
    "fig10_random": ("Fig. 10(c,d) — example trace, random deployment", "FTTT hugs the trace at least as tightly as PM"),
    "fig11a": ("Fig. 11(a) — dynamic error time series", "FTTT below the baselines along the run"),
    "fig11bc": ("Fig. 11(b,c) — error vs sensor count", "FTTT < PM, Direct MLE; error falls with n"),
    "fig12a": ("Fig. 12(a) — error vs sensing resolution", "error grows with eps below n=20, flat above"),
    "fig12b": ("Fig. 12(b) — error vs sampling times", "larger k, lower error"),
    "fig12cd": ("Fig. 12(c,d) — basic vs extended FTTT", "same mean, smaller deviation"),
    "fig13_basic": ("Fig. 13(c) — outdoor, basic FTTT", "tracks the walker"),
    "fig13_extended": ("Fig. 13(d) — outdoor, extended FTTT", "smoother than basic"),
    "table1": ("Table 1 — system parameters", "encoded verbatim"),
    "sec51": ("§5.1 — required sampling times", "k=16 at 20 sensors / 99%"),
    "sec52_interface": ("§5.2 — inter-face error expectation", "E_N = N·f, Monte-Carlo confirmed"),
    "alg1_scaling": ("Algorithm 1 — vector construction scaling", "O(n^2·k)"),
    "alg2_matching": ("Algorithm 2 — heuristic vs exhaustive", "fraction of the visits, same accuracy"),
    "fault_tolerance": ("§4.4-3 — fault-tolerance ablation", "Eq. 6/7 beats naive zeroing"),
    "ablation_c": ("Ablation — uncertainty-constant calibration", "calibrated C beats Eq. 3 verbatim"),
    "ablation_hops": ("Ablation — matcher hops", "2-hop ≈ exhaustive"),
    "ablation_soft": ("Ablation — soft signatures", "soft beats hard for extended vectors"),
    "ablation_noise": ("Ablation — noise structure", "temporal correlation hurts; common-mode cancels"),
    "adaptive_grid": ("Adaptive double-level division", "identical maps, work saved at low density"),
    "density_tradeoff": ("§5.2 — density trade-off", "accuracy up, lifetime down"),
    "tracker_field": ("Extended tracker field", "FTTT leads the model-free spectrum"),
    "duty_cycle": ("Duty-cycling extension", "sensor-rounds saved at ~no error cost"),
}


@dataclass(frozen=True)
class ResultFile:
    """One regenerated result series."""

    result_id: str
    path: Path
    header: list[str]
    rows: list[list[str]]

    @property
    def title(self) -> str:
        return KNOWN_RESULTS.get(self.result_id, (self.result_id, ""))[0]

    @property
    def claim(self) -> str:
        return KNOWN_RESULTS.get(self.result_id, ("", ""))[1]


def collect_results(results_dir: "str | Path") -> list[ResultFile]:
    """Load every CSV the benchmark harness wrote, sorted by id."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(
            f"no results directory at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    out = []
    for path in sorted(results_dir.glob("*.csv")):
        with path.open() as fh:
            reader = csv.reader(fh)
            rows = [row for row in reader if row]
        if not rows:
            continue
        out.append(
            ResultFile(result_id=path.stem, path=path, header=rows[0], rows=rows[1:])
        )
    return out


def render_report(results: "list[ResultFile]") -> str:
    """Markdown report: one section per regenerated figure."""
    lines = [
        "# Reproduction report",
        "",
        "Auto-generated from `benchmarks/results/`; regenerate with",
        "`pytest benchmarks/ --benchmark-only` followed by `fttt report`.",
        "",
        f"Results collected: {len(results)}",
        "",
    ]
    for res in results:
        lines.append(f"## {res.title}")
        if res.claim:
            lines.append(f"*Shape claim: {res.claim}.*")
        lines.append("")
        lines.append("| " + " | ".join(res.header) + " |")
        lines.append("|" + "---|" * len(res.header))
        for row in res.rows[:12]:
            lines.append("| " + " | ".join(row) + " |")
        if len(res.rows) > 12:
            lines.append(f"| … ({len(res.rows) - 12} more rows in {res.path.name}) |")
        lines.append("")
    return "\n".join(lines)


def write_report(results_dir: "str | Path", out_path: "str | Path") -> Path:
    """Collect, render, and write the report; returns the path written."""
    results = collect_results(results_dir)
    if not results:
        raise FileNotFoundError(f"no result CSVs found under {results_dir}")
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(render_report(results))
    return out_path
