"""Network energy ledger.

Pulls the scattered energy facts into one budget: per-round sampling and
report costs (sensor side), relay forwarding (routing side), and duty-
cycle savings — projecting network lifetime under a tracking workload.
This is the quantitative backing for §5.2's deployment-density caution
and for the duty-cycling extension's headline number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EnergyModel", "EnergyLedger", "project_lifetime"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy costs (joules) — mote-class defaults."""

    sample_j: float = 1e-4  # one ADC sample + processing
    report_tx_j: float = 5e-4  # transmit one report
    relay_tx_j: float = 5e-4  # forward someone else's report
    idle_listen_j: float = 1e-4  # per round awake but idle
    sleep_j: float = 1e-6  # per round asleep
    battery_j: float = 100.0

    def __post_init__(self) -> None:
        for name in ("sample_j", "report_tx_j", "relay_tx_j", "idle_listen_j", "sleep_j"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.battery_j <= 0:
            raise ValueError("battery must be positive")


@dataclass
class EnergyLedger:
    """Accumulates per-sensor energy spending round by round."""

    n_sensors: int
    model: EnergyModel

    def __post_init__(self) -> None:
        if self.n_sensors < 1:
            raise ValueError("need at least one sensor")
        self.spent_j = np.zeros(self.n_sensors)
        self.rounds = 0

    def charge_round(
        self,
        k: int,
        *,
        awake: "np.ndarray | None" = None,
        reported: "np.ndarray | None" = None,
        relay_counts: "np.ndarray | None" = None,
    ) -> None:
        """Account one localization round.

        Parameters
        ----------
        k : samples taken by each awake sensor.
        awake : (n,) bool — sensors awake this round (default: all).
        reported : (n,) bool — sensors that transmitted a report
            (default: the awake set).
        relay_counts : (n,) int — reports each sensor forwarded for others.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        m = self.model
        awake = np.ones(self.n_sensors, dtype=bool) if awake is None else np.asarray(awake, bool)
        reported = awake if reported is None else np.asarray(reported, bool)
        cost = np.where(awake, k * m.sample_j + m.idle_listen_j, m.sleep_j)
        cost = cost + np.where(reported, m.report_tx_j, 0.0)
        if relay_counts is not None:
            cost = cost + np.asarray(relay_counts, dtype=float) * m.relay_tx_j
        self.spent_j += cost
        self.rounds += 1

    @property
    def remaining_j(self) -> np.ndarray:
        return np.maximum(self.model.battery_j - self.spent_j, 0.0)

    @property
    def dead(self) -> np.ndarray:
        return self.remaining_j <= 0.0

    @property
    def mean_spend_per_round_j(self) -> np.ndarray:
        if self.rounds == 0:
            return np.zeros(self.n_sensors)
        return self.spent_j / self.rounds

    def projected_lifetime_rounds(self) -> float:
        """Rounds until first sensor death, extrapolating current spending."""
        per_round = self.mean_spend_per_round_j
        busiest = per_round.max()
        if busiest <= 0:
            return float("inf")
        return float(self.model.battery_j / busiest)


def project_lifetime(
    n_sensors: int,
    k: int,
    *,
    model: "EnergyModel | None" = None,
    duty_cycle: float = 1.0,
    max_relay_load: int = 0,
) -> dict:
    """Closed-form lifetime projection for a homogeneous workload.

    ``duty_cycle`` is the fraction of sensor-rounds spent awake (1.0 = no
    sleeping); ``max_relay_load`` is the bottleneck node's forwarded
    reports per round (from the routing topology).
    """
    if not (0.0 < duty_cycle <= 1.0):
        raise ValueError(f"duty cycle must be in (0, 1], got {duty_cycle}")
    if max_relay_load < 0:
        raise ValueError("relay load must be non-negative")
    model = model or EnergyModel()
    awake_cost = k * model.sample_j + model.idle_listen_j + model.report_tx_j
    mean_cost = duty_cycle * awake_cost + (1.0 - duty_cycle) * model.sleep_j
    bottleneck_cost = awake_cost + max_relay_load * model.relay_tx_j
    return {
        "mean_rounds": float(model.battery_j / mean_cost),
        "bottleneck_rounds": float(model.battery_j / bottleneck_cost),
        "duty_cycle_gain": float(awake_cost / mean_cost),
    }
