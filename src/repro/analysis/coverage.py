"""Sensing-coverage analysis.

§5.2 builds its error bound on ``n = pi R^2 rho`` — how many sensors hear
the target.  These utilities compute the actual coverage field of a
deployment: per-point hearing counts, k-coverage fractions, and the
density/communication trade-off the paper's discussion raises ("too dense
deployment will worsen the communication ability ... as well as the
delay").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.grid import Grid
from repro.geometry.primitives import pairwise_distances

__all__ = ["CoverageReport", "coverage_field", "coverage_report", "density_tradeoff"]


@dataclass(frozen=True)
class CoverageReport:
    """Summary of a deployment's sensing coverage."""

    n_sensors: int
    sensing_range_m: float
    mean_hearing_count: float
    min_hearing_count: int
    max_hearing_count: int
    k_coverage_fraction: dict[int, float]  # fraction of area heard by >= k sensors
    uncovered_fraction: float

    def supports_pairwise_tracking(self) -> bool:
        """Tracking needs >= 2 hearing sensors (one pair) essentially everywhere."""
        return self.k_coverage_fraction.get(2, 0.0) > 0.95


def coverage_field(nodes: np.ndarray, grid: Grid, sensing_range: float) -> np.ndarray:
    """Hearing count per grid cell, shape ``(n_cells,)``."""
    if sensing_range <= 0:
        raise ValueError(f"sensing range must be positive, got {sensing_range}")
    dist = pairwise_distances(grid.cell_centers, np.atleast_2d(nodes))
    return (dist <= sensing_range).sum(axis=1)


def coverage_report(
    nodes: np.ndarray,
    grid: Grid,
    sensing_range: float,
    *,
    k_levels: tuple[int, ...] = (1, 2, 3, 5),
) -> CoverageReport:
    """Full coverage summary for a deployment over a rasterized field."""
    counts = coverage_field(nodes, grid, sensing_range)
    return CoverageReport(
        n_sensors=len(np.atleast_2d(nodes)),
        sensing_range_m=sensing_range,
        mean_hearing_count=float(counts.mean()),
        min_hearing_count=int(counts.min()),
        max_hearing_count=int(counts.max()),
        k_coverage_fraction={k: float((counts >= k).mean()) for k in k_levels},
        uncovered_fraction=float((counts == 0).mean()),
    )


def density_tradeoff(
    n_values: "list[int] | np.ndarray",
    field_size: float,
    sensing_range: float,
    *,
    radio_range: float = 30.0,
    report_cost_j: float = 5e-4,
    energy_j: float = 100.0,
    seed: int = 0,
    cell_size: float = 4.0,
) -> list[dict]:
    """The §5.2 trade-off, quantified: accuracy-side coverage vs
    communication-side relay load as density grows.

    For each n: deploy randomly, report mean hearing count (more = finer
    faces = better accuracy per Eq. 10) and the routing tree's bottleneck
    relay load / first-death lifetime (more sensors = more traffic through
    the nodes near the base station).
    """
    from repro.network.deployment import random_deployment
    from repro.network.routing import build_routing_topology

    grid = Grid.square(field_size, cell_size)
    rows = []
    for i, n in enumerate(n_values):
        nodes = random_deployment(int(n), field_size, seed + i, min_separation=2.0)
        report = coverage_report(nodes, grid, sensing_range)
        topo = build_routing_topology(nodes, radio_range=radio_range)
        rows.append(
            {
                "n_sensors": int(n),
                "mean_hearing": report.mean_hearing_count,
                "two_coverage": report.k_coverage_fraction[2],
                "max_relay_load": int(topo.relay_counts.max()),
                "lifetime_rounds": topo.network_lifetime_rounds(
                    energy_j=energy_j, report_cost_j=report_cost_j
                ),
                "disconnected": int((~topo.connected).sum()),
            }
        )
    return rows
