"""Statistical comparison of trackers.

Figure-level claims ("FTTT < PM") need more than two means: these helpers
provide bootstrap confidence intervals on mean tracking error, a paired
comparison over shared worlds (the strongest design — both trackers see
identical observations), Welch's t-test for unpaired runs, and a
replication-count advisor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.rng import ensure_rng

__all__ = [
    "bootstrap_mean_ci",
    "PairedComparison",
    "paired_comparison",
    "welch_test",
    "required_replications",
]


def bootstrap_mean_ci(
    values: np.ndarray,
    *,
    confidence: float = 0.95,
    n_boot: int = 5000,
    rng: "np.random.Generator | int | None" = 0,
) -> tuple[float, float, float]:
    """(mean, lo, hi) percentile-bootstrap CI for the mean of *values*."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or len(values) < 2:
        raise ValueError("need a 1-D sample of at least two values")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = ensure_rng(rng)
    idx = rng.integers(0, len(values), size=(n_boot, len(values)))
    boot_means = values[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(boot_means, [alpha, 1.0 - alpha])
    return float(values.mean()), float(lo), float(hi)


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired per-world tracker comparison."""

    mean_diff: float  # mean(b - a); negative = a better
    ci_lo: float
    ci_hi: float
    p_value: float  # paired t-test, two-sided
    n_pairs: int
    win_rate_a: float  # fraction of worlds where a beat b

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05

    @property
    def a_is_better(self) -> bool:
        return self.mean_diff > 0 and self.significant


def paired_comparison(
    errors_a: np.ndarray,
    errors_b: np.ndarray,
    *,
    confidence: float = 0.95,
    rng: "np.random.Generator | int | None" = 0,
) -> PairedComparison:
    """Compare per-world mean errors of two trackers on *shared* worlds.

    Positive ``mean_diff`` means tracker *a* has lower error (b − a > 0).
    """
    a = np.asarray(errors_a, dtype=float)
    b = np.asarray(errors_b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("paired samples must be 1-D with equal length")
    if len(a) < 2:
        raise ValueError("need at least two paired worlds")
    diff = b - a
    _, lo, hi = bootstrap_mean_ci(diff, confidence=confidence, rng=rng)
    t = sps.ttest_rel(b, a)
    return PairedComparison(
        mean_diff=float(diff.mean()),
        ci_lo=lo,
        ci_hi=hi,
        p_value=float(t.pvalue),
        n_pairs=len(a),
        win_rate_a=float((a < b).mean()),
    )


def welch_test(sample_a: np.ndarray, sample_b: np.ndarray) -> tuple[float, float]:
    """(t, p) of Welch's unequal-variance t-test (unpaired runs)."""
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if len(a) < 2 or len(b) < 2:
        raise ValueError("need at least two values per sample")
    res = sps.ttest_ind(a, b, equal_var=False)
    return float(res.statistic), float(res.pvalue)


def required_replications(
    pilot_values: np.ndarray,
    *,
    target_halfwidth: float,
    confidence: float = 0.95,
) -> int:
    """How many replications shrink the mean's CI half-width to the target.

    Uses the pilot sample's variance with the normal approximation —
    the standard sample-size formula ``n = (z * s / h)^2``.
    """
    values = np.asarray(pilot_values, dtype=float)
    if len(values) < 2:
        raise ValueError("need a pilot sample of at least two values")
    if target_halfwidth <= 0:
        raise ValueError(f"target half-width must be positive, got {target_halfwidth}")
    z = sps.norm.ppf(0.5 + confidence / 2.0)
    s = values.std(ddof=1)
    n = int(np.ceil((z * s / target_halfwidth) ** 2))
    return max(n, 2)
