"""Zero-copy shared-memory transport for face maps.

Parallel sweeps used to pickle every :class:`~repro.geometry.faces.FaceMap`
into each pool worker — a full copy of the signature matrix, adjacency CSR
and cell→face array per task.  This module instead publishes each map once
into a ``multiprocessing.shared_memory`` segment; workers *attach* and wrap
the buffers in read-only numpy views, so the only per-worker cost is a page
table mapping.

Lifecycle guarantees
--------------------
* every segment this process creates is recorded in a module registry and
  unlinked by an ``atexit`` hook — a KeyboardInterrupt or crash in the
  parent cannot leak ``/dev/shm`` entries;
* :class:`SharedFaceMapSet` is a context manager whose ``__exit__`` (and
  the ``finally`` in ``sim.parallel``) unlinks eagerly on the normal path;
* workers attach *untracked* so Python's ``resource_tracker`` neither
  double-unlinks nor warns when a worker exits (the creator owns cleanup).

The published signature matrix is the 2-bit packed store
(:mod:`repro.geometry.packing`), so a segment is ~4x smaller than the
dense map it replaces.
"""

from __future__ import annotations

import atexit
import os
import uuid
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.geometry.faces import FaceMap
from repro.geometry.grid import Grid
from repro.geometry.packing import PackedSignatures, packed_row_bytes

__all__ = [
    "SharedFaceMap",
    "SharedFaceMapSet",
    "create_segment",
    "attach_segment",
    "release_segment",
    "install_shared_face_maps",
    "shared_face_map",
    "clear_shared_face_maps",
]

SEGMENT_PREFIX = "reprofm"

#: Segments created (and therefore owned) by this process, by name.
_owned_segments: dict[str, shared_memory.SharedMemory] = {}
_atexit_installed = False

_ALIGN = 64


def _cleanup_owned_segments() -> None:
    for name in list(_owned_segments):
        seg = _owned_segments.pop(name)
        try:
            seg.close()
        except OSError:  # pragma: no cover - defensive
            pass
        try:
            seg.unlink()
        except FileNotFoundError:
            pass


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create a leak-guarded shared-memory segment owned by this process."""
    global _atexit_installed
    if not _atexit_installed:
        atexit.register(_cleanup_owned_segments)
        _atexit_installed = True
    name = f"{SEGMENT_PREFIX}_{os.getpid()}_{uuid.uuid4().hex[:10]}"
    seg = shared_memory.SharedMemory(name=name, create=True, size=max(1, int(nbytes)))
    _owned_segments[seg.name] = seg
    return seg


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it for cleanup.

    The creator owns unlinking; an attaching worker must not let Python's
    per-process ``resource_tracker`` claim the segment, or worker exit
    triggers spurious leak warnings and double-unlinks.  Python 3.13 has
    ``track=False`` for this; on 3.11/3.12 we unregister by hand.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: suppress registration during attach
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


def release_segment(seg: shared_memory.SharedMemory) -> None:
    """Close and unlink a segment created by :func:`create_segment`."""
    _owned_segments.pop(seg.name, None)
    try:
        seg.close()
    except OSError:  # pragma: no cover - defensive
        pass
    try:
        seg.unlink()
    except FileNotFoundError:
        pass


def owned_segment_names() -> list[str]:
    """Names of live segments owned by this process (for leak tests)."""
    return sorted(_owned_segments)


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


#: Arrays shipped verbatim; signatures travel packed and are listed apart.
_FM_ARRAYS = ("nodes", "centroids", "cell_face", "cell_counts", "adj_indptr", "adj_indices")


class SharedFaceMap:
    """One face map published into (or attached from) a shared segment.

    The creator lays every array into a single segment with a manifest —
    a plain picklable dict of ``{name, offsets, dtypes, shapes, grid, c,
    n_pairs, key}`` — that is the only thing sent to workers.
    """

    def __init__(
        self, segment: shared_memory.SharedMemory, manifest: dict, *, owner: bool
    ) -> None:
        self.segment = segment
        self.manifest = manifest
        self.owner = owner

    @classmethod
    def create(cls, face_map: FaceMap, key: str) -> "SharedFaceMap":
        packed = face_map.packed_store()
        arrays: dict[str, np.ndarray] = {
            name: np.ascontiguousarray(getattr(face_map, name)) for name in _FM_ARRAYS
        }
        arrays["packed_signatures"] = packed.data
        layout: dict[str, dict] = {}
        offset = 0
        for name, arr in arrays.items():
            offset = _align(offset)
            layout[name] = {
                "offset": offset,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
            }
            offset += arr.nbytes
        segment = create_segment(offset)
        for name, arr in arrays.items():
            spec = layout[name]
            dst = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=segment.buf, offset=spec["offset"]
            )
            dst[...] = arr
        manifest = {
            "name": segment.name,
            "key": key,
            "grid": [face_map.grid.width, face_map.grid.height, face_map.grid.cell_size],
            "c": float(face_map.c),
            "n_pairs": int(packed.n_pairs),
            "layout": layout,
        }
        return cls(segment, manifest, owner=True)

    @classmethod
    def attach(cls, manifest: dict) -> "SharedFaceMap":
        return cls(attach_segment(manifest["name"]), manifest, owner=False)

    def _array(self, name: str) -> np.ndarray:
        spec = self.manifest["layout"][name]
        arr = np.ndarray(
            tuple(spec["shape"]),
            dtype=np.dtype(spec["dtype"]),
            buffer=self.segment.buf,
            offset=spec["offset"],
        )
        arr.flags.writeable = False
        return arr

    def face_map(self) -> FaceMap:
        """A :class:`FaceMap` whose arrays are read-only views into the segment."""
        manifest = self.manifest
        n_pairs = int(manifest["n_pairs"])
        packed_data = self._array("packed_signatures")
        if packed_data.shape[1] != packed_row_bytes(n_pairs):
            raise ValueError("shared segment layout inconsistent with n_pairs")
        width, height, cell_size = manifest["grid"]
        return FaceMap(
            nodes=self._array("nodes"),
            grid=Grid(width, height, cell_size),
            c=float(manifest["c"]),
            signatures=None,
            centroids=self._array("centroids"),
            cell_face=self._array("cell_face"),
            cell_counts=self._array("cell_counts"),
            adj_indptr=self._array("adj_indptr"),
            adj_indices=self._array("adj_indices"),
            packed=PackedSignatures(packed_data, n_pairs),
        )

    def close(self) -> None:
        """Detach; the creator also unlinks (removing the ``/dev/shm`` entry)."""
        if self.owner:
            release_segment(self.segment)
        else:
            try:
                self.segment.close()
            except OSError:  # pragma: no cover - defensive
                pass


class SharedFaceMapSet:
    """Creator-side bundle of published maps with guaranteed cleanup.

    >>> with SharedFaceMapSet() as shared:
    ...     shared.publish(key, face_map)
    ...     run_pool(initargs=(shared.manifests(),))
    ... # segments unlinked here, and again (idempotently) at exit
    """

    def __init__(self) -> None:
        self._maps: dict[str, SharedFaceMap] = {}

    def publish(self, key: str, face_map: FaceMap) -> None:
        if key not in self._maps:
            self._maps[key] = SharedFaceMap.create(face_map, key)

    def manifests(self) -> list[dict]:
        return [m.manifest for m in self._maps.values()]

    def __len__(self) -> int:
        return len(self._maps)

    def __contains__(self, key: str) -> bool:
        return key in self._maps

    def close(self) -> None:
        for m in self._maps.values():
            m.close()
        self._maps.clear()

    def __enter__(self) -> "SharedFaceMapSet":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# -- worker-side registry -------------------------------------------------
#
# Pool workers receive the manifest list once via the pool initializer and
# resolve cache keys against it lazily: the first lookup attaches the
# segment, builds one master FaceMap (with the float32 matching matrix
# materialized), and every subsequent lookup hands out a fresh view.

_installed_manifests: dict[str, dict] = {}
_attached: dict[str, tuple[SharedFaceMap, FaceMap]] = {}


def install_shared_face_maps(manifests: list[dict]) -> None:
    """Register shared-map manifests for :func:`shared_face_map` lookups."""
    for manifest in manifests:
        _installed_manifests[manifest["key"]] = manifest


def shared_face_map(key: str) -> FaceMap | None:
    """A fresh view of the shared map published under *key*, or None."""
    manifest = _installed_manifests.get(key)
    if manifest is None:
        return None
    entry = _attached.get(key)
    if entry is None:
        try:
            handle = SharedFaceMap.attach(manifest)
            master = handle.face_map()
            master._sig_f32()  # materialize once; every view shares it
        except (FileNotFoundError, ValueError, OSError):
            # creator already unlinked (or manifest is stale): fall back to
            # the normal cache/build path rather than failing the task
            _installed_manifests.pop(key, None)
            return None
        entry = (handle, master)
        _attached[key] = entry
    return entry[1].view()


def clear_shared_face_maps() -> None:
    """Detach every attached map and forget installed manifests."""
    for handle, _ in _attached.values():
        handle.close()
    _attached.clear()
    _installed_manifests.clear()
