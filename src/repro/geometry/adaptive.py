"""Double-level adaptive grid division (paper ref [29]).

The flat grid of §4.3-2 pays the fine-cell cost everywhere; the paper's
companion work ("Target Localization Based on Double-level Grid Division")
observes that signatures are constant across the interior of a face, so
only cells straddling an uncertain boundary need refinement.  This module
implements that scheme:

1. classify the *corners* of a coarse grid;
2. coarse cells whose four corners agree are uniform — they take the
   corner signature at coarse resolution;
3. the remaining (boundary) cells are subdivided into fine cells, each
   classified at its own centre.

The result is returned as a standard :class:`~repro.geometry.faces.FaceMap`
over the fine grid (uniform blocks broadcast their signature), so every
consumer — matching, adjacency, centroids — works unchanged, while the
classification work drops by roughly the uniform-area fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.apollonius import classify_points_pairwise
from repro.geometry.faces import FaceMap, _build_adjacency, _faces_from_signatures
from repro.geometry.grid import Grid
from repro.geometry.primitives import enumerate_pairs

__all__ = ["AdaptiveDivisionStats", "build_adaptive_face_map"]


@dataclass(frozen=True)
class AdaptiveDivisionStats:
    """Work accounting for one adaptive division."""

    coarse_cells: int
    uniform_cells: int
    refined_cells: int
    fine_cells_classified: int
    fine_cells_total: int

    @property
    def classification_savings(self) -> float:
        """Fraction of fine-cell classifications avoided vs a flat grid."""
        if self.fine_cells_total == 0:
            return 0.0
        return 1.0 - self.fine_cells_classified / self.fine_cells_total


def build_adaptive_face_map(
    nodes: np.ndarray,
    field_size: float,
    c: float,
    *,
    coarse_cell: float = 8.0,
    refine_factor: int = 4,
    sensing_range: float | None = None,
    split_components: bool = False,
    chunk_pairs: int = 256,
) -> tuple[FaceMap, AdaptiveDivisionStats]:
    """Adaptive double-level division of a square field.

    Parameters
    ----------
    nodes : (n, 2) sensor positions.
    field_size : side of the square field (metres).
    c : uncertainty constant (>= 1).
    coarse_cell : coarse-level cell size; must be ``refine_factor`` times
        the fine cell size implied by it.
    refine_factor : fine cells per coarse cell side (>= 2).
    sensing_range / split_components / chunk_pairs : as in
        :func:`~repro.geometry.faces.build_face_map`.

    Returns
    -------
    (face_map, stats) — the face map is over the *fine* grid and is
    interchangeable with a flat :func:`build_face_map` at that resolution;
    stats reports how much classification work the two-level scheme saved.
    """
    nodes = np.atleast_2d(np.asarray(nodes, dtype=float))
    if len(nodes) < 2:
        raise ValueError(f"need at least two nodes, got {len(nodes)}")
    if refine_factor < 2:
        raise ValueError(f"refine_factor must be >= 2, got {refine_factor}")
    if coarse_cell <= 0:
        raise ValueError(f"coarse_cell must be positive, got {coarse_cell}")
    fine_cell = coarse_cell / refine_factor
    coarse = Grid.square(field_size, coarse_cell)
    fine = Grid.square(field_size, fine_cell)
    pairs = enumerate_pairs(len(nodes))
    n_pairs = len(pairs[0])

    # 1. classify the coarse-cell corner lattice
    nx, ny = coarse.nx, coarse.ny
    xs = np.arange(nx + 1) * coarse_cell
    ys = np.arange(ny + 1) * coarse_cell
    gx, gy = np.meshgrid(np.minimum(xs, field_size), np.minimum(ys, field_size))
    corners = np.column_stack([gx.ravel(), gy.ravel()])
    corner_sigs = classify_points_pairwise(
        corners, nodes, c, pairs, sensing_range=sensing_range, chunk_pairs=chunk_pairs
    ).reshape(ny + 1, nx + 1, n_pairs)

    # 2. uniform coarse cells: all four corners share a signature
    tl = corner_sigs[:-1, :-1]
    tr = corner_sigs[:-1, 1:]
    bl = corner_sigs[1:, :-1]
    br = corner_sigs[1:, 1:]
    uniform = (
        np.all(tl == tr, axis=2) & np.all(tl == bl, axis=2) & np.all(tl == br, axis=2)
    )  # (ny, nx)

    # 3. assemble the fine-grid signature matrix
    fine_sigs = np.empty((fine.ny, fine.nx, n_pairs), dtype=np.int8)
    # broadcast uniform blocks
    block_sig = tl  # (ny, nx, P) — representative corner signature
    expanded = np.repeat(np.repeat(block_sig, refine_factor, axis=0), refine_factor, axis=1)
    fine_sigs[...] = expanded[: fine.ny, : fine.nx]

    # refine boundary cells: classify their fine centres exactly
    boundary_cells = np.argwhere(~uniform)
    fine_classified = 0
    if len(boundary_cells):
        centres = []
        spans = []
        for cy, cx in boundary_cells:
            y0 = cy * refine_factor
            x0 = cx * refine_factor
            y1 = min(y0 + refine_factor, fine.ny)
            x1 = min(x0 + refine_factor, fine.nx)
            yy, xx = np.mgrid[y0:y1, x0:x1]
            centres.append(
                np.column_stack(
                    [(xx.ravel() + 0.5) * fine_cell, (yy.ravel() + 0.5) * fine_cell]
                )
            )
            spans.append((y0, y1, x0, x1))
        all_centres = np.vstack(centres)
        fine_classified = len(all_centres)
        sigs = classify_points_pairwise(
            all_centres, nodes, c, pairs, sensing_range=sensing_range, chunk_pairs=chunk_pairs
        )
        offset = 0
        for (y0, y1, x0, x1) in spans:
            count = (y1 - y0) * (x1 - x0)
            fine_sigs[y0:y1, x0:x1] = sigs[offset : offset + count].reshape(
                y1 - y0, x1 - x0, n_pairs
            )
            offset += count

    cell_sigs = fine_sigs.reshape(fine.n_cells, n_pairs)
    signatures, centroids, cell_face, counts = _faces_from_signatures(
        cell_sigs, fine, split_components
    )
    indptr, indices = _build_adjacency(cell_face, fine, len(signatures))
    face_map = FaceMap(
        nodes=nodes,
        grid=fine,
        c=c,
        signatures=signatures,
        centroids=centroids,
        cell_face=cell_face,
        cell_counts=counts,
        adj_indptr=indptr,
        adj_indices=indices,
    )
    stats = AdaptiveDivisionStats(
        coarse_cells=coarse.n_cells,
        uniform_cells=int(uniform.sum()),
        refined_cells=int((~uniform).sum()),
        fine_cells_classified=fine_classified,
        fine_cells_total=fine.n_cells,
    )
    return face_map, stats
