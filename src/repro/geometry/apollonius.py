"""Uncertain boundaries of node pairs (paper §3.2).

From the log-distance path-loss model with Gaussian noise, the locus of
points where two sensors' RSS cannot be distinguished is bounded by two
axisymmetric Apollonius circles whose distance ratio is the constant

    C = exp( ln(10)/(10*beta) * eps  +  1/2 * (ln(10)/(10*beta) * sqrt(2)*sigma)^2 )  > 1

(Eq. 3).  A point p is *certainly* nearer node i than node j only when
``d_i(p) * C <= d_j(p)``; between the two circles the ordering of the pair
is unreliable and the signature value is 0.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.primitives import Circle

__all__ = [
    "uncertainty_constant",
    "effective_uncertainty_constant",
    "apollonius_circle",
    "uncertain_boundary_circles",
    "classify_points_pairwise",
    "classify_distances_pairwise",
    "uncertain_band_halfwidth",
]


def uncertainty_constant(resolution_dbm: float, path_loss_exponent: float, noise_sigma_dbm: float) -> float:
    """The constant ``C`` of Eq. 3.

    ``C > 1`` whenever the resolution or the noise is non-zero; ``C == 1``
    only in the ideal noiseless, infinitely-fine-resolution case, where the
    uncertain area degenerates to the perpendicular bisector itself.

    Parameters
    ----------
    resolution_dbm:
        Sensing resolution epsilon — the largest RSS difference the hardware
        cannot distinguish (dBm).
    path_loss_exponent:
        beta of the log-distance model (2 free space, 3-4 with reflections).
    noise_sigma_dbm:
        Standard deviation of the Gaussian shadowing term X ~ N(0, sigma^2).
    """
    if resolution_dbm < 0:
        raise ValueError(f"resolution must be non-negative, got {resolution_dbm}")
    if path_loss_exponent <= 0:
        raise ValueError(f"path-loss exponent must be positive, got {path_loss_exponent}")
    if noise_sigma_dbm < 0:
        raise ValueError(f"noise sigma must be non-negative, got {noise_sigma_dbm}")
    a = math.log(10.0) / (10.0 * path_loss_exponent)
    return math.exp(a * resolution_dbm + 0.5 * (a * math.sqrt(2.0) * noise_sigma_dbm) ** 2)


def effective_uncertainty_constant(
    resolution_dbm: float,
    path_loss_exponent: float,
    noise_sigma_dbm: float,
    k: int,
    *,
    capture_prob: float = 0.5,
) -> float:
    """Sampling-statistics-calibrated uncertainty constant.

    Eq. 3's expectation-based ``C`` describes where a *single expected*
    comparison is ambiguous; a k-sample grouping sampling keeps flipping
    much farther out (one discordant sample out of k suffices).  This
    variant returns the distance ratio at which a k-sample group still
    shows the pair as *flipped* with probability ``capture_prob``:

        C_eff = 10^( (eps + sqrt(2)*sigma * Phi^-1(q^(1/k))) / (10*beta) ),
        q = 1 - capture_prob,

    i.e. the ratio where the probability that all k samples agree (each
    sample exceeding the comparator deadband eps) is ``1 - capture_prob``.
    It preserves every qualitative dependency of Eq. 3 — grows with eps and
    sigma, shrinks with beta — adds the k-dependence real groups exhibit,
    and reduces to a hair above 1 in the noiseless fine-resolution limit.
    Face maps built with it line up with what sampling vectors actually
    report, which is what matters for matching accuracy.
    """
    from scipy.stats import norm

    if resolution_dbm < 0:
        raise ValueError(f"resolution must be non-negative, got {resolution_dbm}")
    if path_loss_exponent <= 0:
        raise ValueError(f"path-loss exponent must be positive, got {path_loss_exponent}")
    if noise_sigma_dbm < 0:
        raise ValueError(f"noise sigma must be non-negative, got {noise_sigma_dbm}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not (0.0 < capture_prob < 1.0):
        raise ValueError(f"capture_prob must be in (0, 1), got {capture_prob}")
    q = 1.0 - capture_prob
    z = float(norm.ppf(q ** (1.0 / k)))
    delta_mu = resolution_dbm + math.sqrt(2.0) * noise_sigma_dbm * z
    c = 10.0 ** (max(delta_mu, 0.0) / (10.0 * path_loss_exponent))
    return max(c, 1.0 + 1e-9)


def apollonius_circle(p_near: np.ndarray, p_far: np.ndarray, ratio: float) -> Circle:
    """Apollonius circle ``{ x : |x - p_near| / |x - p_far| = ratio }``.

    For ``ratio < 1`` the circle encloses *p_near*; for ``ratio > 1`` it
    encloses *p_far*.  ``ratio == 1`` is the perpendicular bisector (a
    degenerate "circle of infinite radius") and is rejected.
    """
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    if math.isclose(ratio, 1.0, rel_tol=0.0, abs_tol=1e-12):
        raise ValueError("ratio == 1 degenerates to the perpendicular bisector, not a circle")
    a = np.asarray(p_near, dtype=float)
    b = np.asarray(p_far, dtype=float)
    k2 = ratio * ratio
    center = (a - k2 * b) / (1.0 - k2)
    radius = ratio * float(np.hypot(*(a - b))) / abs(k2 - 1.0)
    return Circle(float(center[0]), float(center[1]), radius)


def uncertain_boundary_circles(p_i: np.ndarray, p_j: np.ndarray, c: float) -> tuple[Circle, Circle]:
    """The two axisymmetric boundary circles of a node pair (Definition 2).

    Returns ``(near_i, near_j)`` where ``near_i`` is the boundary
    ``d_i / d_j = 1/C`` (the target is certainly nearer ``n_i`` inside it)
    and ``near_j`` is ``d_i / d_j = C``.
    """
    if c <= 1.0:
        raise ValueError(f"uncertainty constant must exceed 1, got {c}")
    near_i = apollonius_circle(p_i, p_j, 1.0 / c)
    near_j = apollonius_circle(p_i, p_j, c)
    return near_i, near_j


def classify_distances_pairwise(
    d_i: np.ndarray, d_j: np.ndarray, c: float, out: np.ndarray | None = None
) -> np.ndarray:
    """Signature values from pre-computed distances.

    +1 where ``C*d_i <= d_j`` (certainly nearer the lower-ID node),
    -1 where ``d_i >= C*d_j`` (certainly nearer the higher-ID node),
     0 inside the uncertain band.
    """
    if c < 1.0:
        raise ValueError(f"uncertainty constant must be >= 1, got {c}")
    d_i = np.asarray(d_i, dtype=float)
    d_j = np.asarray(d_j, dtype=float)
    if out is None:
        out = np.zeros(np.broadcast_shapes(d_i.shape, d_j.shape), dtype=np.int8)
    else:
        out[...] = 0
    out[c * d_i <= d_j] = 1
    out[d_i >= c * d_j] = -1
    return out


def classify_points_pairwise(
    points: np.ndarray,
    nodes: np.ndarray,
    c: float,
    pairs: tuple[np.ndarray, np.ndarray] | None = None,
    *,
    sensing_range: float | None = None,
    chunk_pairs: int = 256,
) -> np.ndarray:
    """Signature matrix for *points* against all node pairs.

    Parameters
    ----------
    points : (M, 2)
    nodes : (n, 2)
    c : uncertainty constant (>= 1)
    pairs : optional pre-computed ``(i_idx, j_idx)`` in canonical order
    sensing_range : when given, the signature uses the same semantics as
        the Eq. 6 fault fill — a node farther than the range from the
        point does not hear the target, so a pair with exactly one
        in-range node is +1/-1 toward the hearing node regardless of the
        uncertain band, and a pair with neither node in range is 0 (its
        sampling value is ``*`` and masked at match time anyway).
    chunk_pairs : pairs processed per block, bounding peak memory at
        roughly ``M * chunk_pairs`` bytes.

    Returns
    -------
    (M, P) int8 matrix of {-1, 0, +1}, P = C(n, 2).
    """
    from repro.geometry.primitives import enumerate_pairs, pairwise_distances

    points = np.atleast_2d(np.asarray(points, dtype=float))
    nodes = np.atleast_2d(np.asarray(nodes, dtype=float))
    if pairs is None:
        pairs = enumerate_pairs(len(nodes))
    i_idx, j_idx = pairs
    dist = pairwise_distances(points, nodes)  # (M, n)
    n_pairs = len(i_idx)
    sig = np.empty((len(points), n_pairs), dtype=np.int8)
    for start in range(0, n_pairs, chunk_pairs):
        stop = min(start + chunk_pairs, n_pairs)
        di = dist[:, i_idx[start:stop]]
        dj = dist[:, j_idx[start:stop]]
        block = sig[:, start:stop]
        classify_distances_pairwise(di, dj, c, out=block)
        if sensing_range is not None:
            in_i = di <= sensing_range
            in_j = dj <= sensing_range
            block[in_i & ~in_j] = 1
            block[~in_i & in_j] = -1
            block[~in_i & ~in_j] = 0
    return sig


def uncertain_band_halfwidth(pair_separation: float, c: float) -> float:
    """Half-width of the uncertain band where it crosses the pair's axis.

    On the segment joining the two nodes (length ``2d``), the band spans
    from the ``d_i/d_j = 1/C`` crossing to the ``d_i/d_j = C`` crossing;
    this returns half that span — a convenient scalar for how "thick" the
    unreliable region is, used by tests and by the Fig. 3 analysis of when
    certain faces vanish.
    """
    if pair_separation <= 0:
        raise ValueError(f"pair separation must be positive, got {pair_separation}")
    if c < 1.0:
        raise ValueError(f"uncertainty constant must be >= 1, got {c}")
    # On the axis, with nodes at 0 and L: d_i = x, d_j = L - x.
    # d_i/d_j = 1/C  =>  x = L / (1 + C); d_i/d_j = C  =>  x = L*C / (1 + C).
    length = pair_separation
    x_lo = length / (1.0 + c)
    x_hi = length * c / (1.0 + c)
    return 0.5 * (x_hi - x_lo)
