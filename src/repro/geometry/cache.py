"""Content-addressed face-map cache (in-process LRU + optional disk store).

Building a face map is the dominant cost of every sweep: ``M`` grid cells
classified against ``C(n, 2)`` pair boundaries, repeated for every
replication of every parameter point.  Many sweeps revisit the *same*
world — ``fig12b`` sweeps k over common-random-number deployments, the
ablations rebuild one deployment per arm, and ``parallel_sweep`` workers
each rebuild maps the sibling tasks already built.  The division depends
only on ``(nodes, grid, c, sensing_range, split_components)``, none of
which involve randomness once the deployment is drawn, so a cached copy
is *bit-identical* to a rebuild and reuse cannot perturb any result.

Two tiers:

* an in-process LRU keyed by a SHA-256 over the exact node bytes and the
  build parameters (content-addressed: two deployments match only if
  every coordinate matches bit for bit).  Under ``fork`` start methods
  the parent's warm entries are inherited copy-on-write by pool workers.
* an optional on-disk ``.npz`` store (``REPRO_FACE_CACHE_DIR`` or
  :func:`configure_face_map_cache`) so repeated processes — sweep
  workers, CI shards, notebook restarts — share the build.  Writes are
  atomic (temp file + rename), so concurrent workers race benignly.

Every lookup returns a fresh :class:`~repro.geometry.faces.FaceMap`
wrapper sharing the (never-mutated) geometry arrays but with its own
``soft_signatures`` slot, so per-scenario soft attachments cannot leak
between cache users.  Disable entirely with ``REPRO_FACE_CACHE=0``.
"""

from __future__ import annotations

import hashlib
import os
import struct
import tempfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.geometry.faces import FaceMap, build_certain_face_map, build_face_map
from repro.geometry.grid import Grid
from repro.geometry.packing import PackedSignatures
from repro.obs import metrics as obs

__all__ = [
    "FaceMapCache",
    "face_map_cache_key",
    "get_face_map",
    "default_face_map_cache",
    "configure_face_map_cache",
    "face_map_cache_enabled",
]

_KEY_VERSION = 1  # bump when FaceMap construction semantics change


def face_map_cache_key(
    nodes: np.ndarray,
    grid: Grid,
    c: float,
    *,
    sensing_range: "float | None" = None,
    split_components: bool = False,
    kind: str = "uncertain",
) -> str:
    """Content hash of everything the face-map build depends on.

    The node array is hashed by its exact float64 bytes, the scalars by
    their exact IEEE bit patterns — two builds share a key iff they would
    produce identical maps.
    """
    if kind not in ("uncertain", "certain"):
        raise ValueError(f"unknown face-map kind {kind!r}")
    nodes = np.ascontiguousarray(np.atleast_2d(np.asarray(nodes, dtype=np.float64)))
    h = hashlib.sha256()
    h.update(struct.pack("<iii", _KEY_VERSION, nodes.shape[0], nodes.shape[1]))
    h.update(nodes.tobytes())
    h.update(
        struct.pack(
            "<dddd d i",
            float(grid.width),
            float(grid.height),
            float(grid.cell_size),
            float(c),
            float("nan") if sensing_range is None else float(sensing_range),
            int(bool(split_components)),
        )
    )
    h.update(kind.encode())
    return h.hexdigest()


_ARRAY_FIELDS = (
    "nodes",
    "signatures",
    "centroids",
    "cell_face",
    "cell_counts",
    "adj_indptr",
    "adj_indices",
)

#: Arrays common to every on-disk format (signatures are format-specific).
_COMMON_FIELDS = tuple(name for name in _ARRAY_FIELDS if name != "signatures")

#: On-disk ``.npz`` layout version.  v1 (PR 1, no ``format`` key) stored the
#: dense int8 signature matrix; v2 stores the 2-bit packed form (~4x
#: smaller files).  v1 entries still load and are transparently rewritten
#: as v2 on first touch.
_DISK_FORMAT = 2


class FaceMapCache:
    """LRU of built face maps, optionally backed by an ``.npz`` directory.

    Parameters
    ----------
    maxsize : in-process entries kept (LRU eviction); 0 disables the
        memory tier (disk tier, if any, still works).
    disk_dir : directory for the on-disk ``.npz`` store; created on first
        write.  ``None`` disables the disk tier.
    """

    def __init__(self, maxsize: int = 64, disk_dir: "str | os.PathLike | None" = None) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        self.maxsize = maxsize
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._entries: "OrderedDict[str, FaceMap]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.shm_hits = 0
        self.evictions = 0
        self.migrations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "shm_hits": self.shm_hits,
            "evictions": self.evictions,
            "migrations": self.migrations,
        }

    def clear(self) -> None:
        self._entries.clear()

    # -- views -------------------------------------------------------------

    @staticmethod
    def _view(fm: FaceMap) -> FaceMap:
        """Fresh FaceMap sharing arrays but owning its soft-signature slot."""
        fm._sig_f32()  # materialize the shared float32 matrix once
        return fm.view()

    # -- disk tier ---------------------------------------------------------

    def _disk_path(self, key: str) -> "Path | None":
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"facemap-{key}.npz"

    def _disk_store(self, key: str, fm: FaceMap) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        packed = fm.packed_store()
        arrays = {name: getattr(fm, name) for name in _COMMON_FIELDS}
        arrays["signatures_packed"] = packed.data
        arrays["n_pairs"] = np.array([packed.n_pairs], dtype=np.int64)
        arrays["format"] = np.array([_DISK_FORMAT], dtype=np.int64)
        arrays["grid_spec"] = np.array([fm.grid.width, fm.grid.height, fm.grid.cell_size])
        arrays["c"] = np.array([fm.c])
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(fh, **arrays)
            os.replace(tmp, path)  # atomic: concurrent writers race benignly
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _disk_load(self, key: str) -> "FaceMap | None":
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with np.load(path) as data:
                grid_spec = data["grid_spec"]
                grid = Grid(float(grid_spec[0]), float(grid_spec[1]), float(grid_spec[2]))
                common = {name: data[name] for name in _COMMON_FIELDS}
                if "format" in data.files:
                    version = int(data["format"][0])
                    if version != _DISK_FORMAT:
                        return None  # future format: treat as a miss
                    fm = FaceMap(
                        grid=grid,
                        c=float(data["c"][0]),
                        signatures=None,
                        packed=PackedSignatures(data["signatures_packed"], int(data["n_pairs"][0])),
                        **common,
                    )
                    return fm
                # v1 (PR 1): dense signatures, no format marker
                fm = FaceMap(
                    grid=grid,
                    c=float(data["c"][0]),
                    signatures=data["signatures"],
                    **common,
                )
        except (OSError, KeyError, ValueError):
            return None  # truncated/foreign file: treat as a miss and rebuild
        # transparent migration: rewrite the legacy entry packed (atomic, so
        # a concurrent reader sees either the old or the new valid file)
        try:
            self._disk_store(key, fm)
            self.migrations += 1
        except OSError:  # pragma: no cover - read-only cache dir
            pass
        return fm

    # -- main entry --------------------------------------------------------

    def get_or_build(
        self,
        nodes: np.ndarray,
        grid: Grid,
        c: float,
        *,
        sensing_range: "float | None" = None,
        split_components: bool = False,
        kind: str = "uncertain",
        chunk_pairs: int = 256,
        workers: "int | None" = None,
        tile_cells: "int | None" = None,
        packed: bool = False,
    ) -> FaceMap:
        """Return the face map for these inputs, building at most once.

        ``kind="uncertain"`` routes to :func:`build_face_map`,
        ``kind="certain"`` to :func:`build_certain_face_map` (which takes
        no ``c`` / ``sensing_range``; pass ``c=1.0`` for a stable key).
        ``workers``/``tile_cells``/``packed`` only shape *how* a miss is
        built (bit-identically), so they are not part of the key.
        """
        key = face_map_cache_key(
            nodes, grid, c, sensing_range=sensing_range, split_components=split_components, kind=kind
        )
        record = obs.enabled()
        fm = self._entries.get(key)
        if fm is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            if record:
                obs.counter("geometry.cache.hits").inc()
            return self._view(fm)
        # zero-copy tier: a map published into shared memory by the sweep
        # parent (repro.geometry.shm); views attach instead of rebuilding
        from repro.geometry.shm import shared_face_map

        shared = shared_face_map(key)
        if shared is not None:
            self.shm_hits += 1
            if record:
                obs.counter("geometry.cache.shm_hits").inc()
            return shared
        fm = self._disk_load(key)
        if fm is not None:
            self.disk_hits += 1
            if record:
                obs.counter("geometry.cache.disk_hits").inc()
        else:
            self.misses += 1
            if record:
                obs.counter("geometry.cache.misses").inc()
            if kind == "uncertain":
                fm = build_face_map(
                    nodes,
                    grid,
                    c,
                    sensing_range=sensing_range,
                    split_components=split_components,
                    chunk_pairs=chunk_pairs,
                    workers=workers,
                    tile_cells=tile_cells,
                    packed=packed,
                )
            else:
                fm = build_certain_face_map(
                    nodes,
                    grid,
                    split_components=split_components,
                    chunk_pairs=chunk_pairs,
                    workers=workers,
                    tile_cells=tile_cells,
                    packed=packed,
                )
            self._disk_store(key, fm)
        if self.maxsize > 0:
            self._entries[key] = fm
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                if record:
                    obs.counter("geometry.cache.evictions").inc()
        return self._view(fm)


_default_cache: "FaceMapCache | None" = None
_enabled_override: "bool | None" = None


def face_map_cache_enabled() -> bool:
    """Caching is on unless ``REPRO_FACE_CACHE=0`` or configured off."""
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get("REPRO_FACE_CACHE", "1") != "0"


def default_face_map_cache() -> FaceMapCache:
    """The process-global cache (created lazily from the environment)."""
    global _default_cache
    if _default_cache is None:
        raw = os.environ.get("REPRO_FACE_CACHE_SIZE", "64")
        try:
            maxsize = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_FACE_CACHE_SIZE must be an integer, got {raw!r}"
            ) from None
        if maxsize < 0:
            raise ValueError(f"REPRO_FACE_CACHE_SIZE must be >= 0, got {maxsize}")
        _default_cache = FaceMapCache(
            maxsize=maxsize,
            disk_dir=os.environ.get("REPRO_FACE_CACHE_DIR") or None,
        )
    return _default_cache


_KEEP = object()  # sentinel: "leave this setting as it is"


def configure_face_map_cache(
    *,
    maxsize: "int | None" = None,
    disk_dir: "str | os.PathLike | None" = _KEEP,
    enabled: "bool | None" = None,
) -> FaceMapCache:
    """Replace the process-global cache; returns the new instance.

    ``enabled=False`` makes :func:`get_face_map` bypass the cache (builds
    are then exactly the uncached code path); ``enabled=None`` restores
    environment-variable control.  ``disk_dir=None`` removes the disk
    tier; omitting it keeps the current directory.
    """
    global _default_cache, _enabled_override
    _enabled_override = enabled
    current = default_face_map_cache()
    _default_cache = FaceMapCache(
        maxsize=current.maxsize if maxsize is None else maxsize,
        disk_dir=current.disk_dir if disk_dir is _KEEP else disk_dir,
    )
    return _default_cache


def get_face_map(
    nodes: np.ndarray,
    grid: Grid,
    c: float,
    *,
    sensing_range: "float | None" = None,
    split_components: bool = False,
    kind: str = "uncertain",
    workers: "int | None" = None,
    tile_cells: "int | None" = None,
    packed: bool = False,
) -> FaceMap:
    """Cache-aware face-map constructor (the :class:`Scenario` entry point).

    Bit-identical to calling :func:`build_face_map` /
    :func:`build_certain_face_map` directly; with the cache disabled it
    *is* that call.  ``workers``/``tile_cells``/``packed`` route a cache
    miss through the tiled builder (see :func:`build_face_map`).
    """
    if not face_map_cache_enabled():
        if kind == "uncertain":
            return build_face_map(
                nodes,
                grid,
                c,
                sensing_range=sensing_range,
                split_components=split_components,
                workers=workers,
                tile_cells=tile_cells,
                packed=packed,
            )
        if kind == "certain":
            return build_certain_face_map(
                nodes,
                grid,
                split_components=split_components,
                workers=workers,
                tile_cells=tile_cells,
                packed=packed,
            )
        raise ValueError(f"unknown face-map kind {kind!r}")
    return default_face_map_cache().get_or_build(
        nodes,
        grid,
        c,
        sensing_range=sensing_range,
        split_components=split_components,
        kind=kind,
        workers=workers,
        tile_cells=tile_cells,
        packed=packed,
    )
