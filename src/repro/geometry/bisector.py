"""Perpendicular-bisector classification (certain-sequence world).

The baselines the paper compares against ([22], [24]) divide the field by
the perpendicular bisectors of node pairs and assume every RSS comparison
is reliable.  This module provides that classification — it is exactly the
``C -> 1`` limit of the Apollonius machinery.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.primitives import enumerate_pairs, pairwise_distances

__all__ = ["bisector_side", "certain_signatures", "rank_sequence_of_points"]


def bisector_side(points: np.ndarray, p_i: np.ndarray, p_j: np.ndarray) -> np.ndarray:
    """Which side of the (i, j) bisector each point falls on.

    Returns +1 where the point is strictly nearer ``p_i``, -1 where strictly
    nearer ``p_j``, and 0 exactly on the bisector.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    d_i = np.hypot(points[:, 0] - p_i[0], points[:, 1] - p_i[1])
    d_j = np.hypot(points[:, 0] - p_j[0], points[:, 1] - p_j[1])
    return np.sign(d_j - d_i).astype(np.int8)


def certain_signatures(
    points: np.ndarray,
    nodes: np.ndarray,
    pairs: tuple[np.ndarray, np.ndarray] | None = None,
    *,
    chunk_pairs: int = 256,
) -> np.ndarray:
    """Signature matrix under the *certain* (no-uncertainty) assumption.

    Identical layout to
    :func:`repro.geometry.apollonius.classify_points_pairwise` but with the
    uncertain band collapsed to the bisector line itself: values are ±1
    almost everywhere (0 only exactly on a bisector).
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    nodes = np.atleast_2d(np.asarray(nodes, dtype=float))
    if pairs is None:
        pairs = enumerate_pairs(len(nodes))
    i_idx, j_idx = pairs
    dist = pairwise_distances(points, nodes)
    n_pairs = len(i_idx)
    sig = np.empty((len(points), n_pairs), dtype=np.int8)
    for start in range(0, n_pairs, chunk_pairs):
        stop = min(start + chunk_pairs, n_pairs)
        di = dist[:, i_idx[start:stop]]
        dj = dist[:, j_idx[start:stop]]
        sig[:, start:stop] = np.sign(dj - di)
    return sig


def rank_sequence_of_points(points: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Distance rank vector of each point w.r.t. all nodes.

    Rank 0 is the nearest node.  This is the "detection node sequence" of
    the sequence-based baselines, expressed as a rank vector so that two
    sequences can be compared with rank correlation.
    """
    dist = pairwise_distances(points, nodes)
    order = np.argsort(dist, axis=1, kind="stable")
    ranks = np.empty_like(order)
    m, n = order.shape
    rows = np.repeat(np.arange(m), n)
    ranks[rows, order.ravel()] = np.tile(np.arange(n), m)
    return ranks
