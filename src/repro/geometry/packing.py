"""Bit-packed signature storage: four {-1, 0, +1} pair values per byte.

A face map at n sensors carries ``C(n, 2)`` pair values per face (and per
grid cell during the build), stored as int8 — one byte each for a
three-valued symbol.  Packing each value into 2 bits cuts that resident
volume 4x, which is what makes n ≈ 200 maps buildable on ordinary
hardware and shrinks every downstream copy (LRU entries, ``.npz`` cache
files, shared-memory segments, worker transport).

The encoding is chosen so packing is **order-preserving** under the byte
comparison ``np.unique`` applies to the void-view rows in
:func:`repro.geometry.faces._unique_rows`:

* codes are ``0 -> 0b00``, ``+1 -> 0b01``, ``-1 -> 0b11`` — monotone in
  the *unsigned* byte order of the int8 values (``0x00 < 0x01 < 0xFF``);
* the first pair of each 4-pair group sits in the **most significant**
  bits, so a memcmp of packed rows ranks them exactly like a memcmp of
  the dense int8 rows (trailing pad bits are always zero and therefore
  neutral).

Grouping cells by unique *packed* rows therefore yields the same face
ids, in the same order, as grouping by dense rows — packed builds are
bit-identical to dense builds, not merely equivalent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PackedSignatures", "pack_signatures", "unpack_signatures", "packed_row_bytes"]

_CODE_OF = np.zeros(256, dtype=np.uint8)
_CODE_OF[0] = 0b00
_CODE_OF[1] = 0b01
_CODE_OF[np.uint8(np.int8(-1))] = 0b11  # 0xFF

# decode LUT: byte -> its four int8 values, MSB-first
_DECODE = np.zeros((256, 4), dtype=np.int8)
_VALUE_OF = np.zeros(4, dtype=np.int8)
_VALUE_OF[0b00] = 0
_VALUE_OF[0b01] = 1
_VALUE_OF[0b11] = -1
_VALUE_OF[0b10] = -2  # never produced by pack(); visible if a buffer is corrupt
for _b in range(256):
    _DECODE[_b] = _VALUE_OF[[(_b >> 6) & 3, (_b >> 4) & 3, (_b >> 2) & 3, _b & 3]]
_DECODE_F32 = _DECODE.astype(np.float32)


def packed_row_bytes(n_pairs: int) -> int:
    """Bytes per packed signature row (4 pair values per byte, zero-padded)."""
    if n_pairs < 0:
        raise ValueError(f"n_pairs must be non-negative, got {n_pairs}")
    return (n_pairs + 3) // 4


def pack_signatures(signatures: np.ndarray) -> np.ndarray:
    """Pack ``(F, P)`` int8 signatures in {-1, 0, +1} to ``(F, ceil(P/4))`` uint8.

    MSB-first, order-preserving (see the module docstring); trailing pad
    bits are zero so equal packed rows imply equal dense rows and vice
    versa.
    """
    sig = np.ascontiguousarray(signatures, dtype=np.int8)
    if sig.ndim != 2:
        raise ValueError(f"expected a (F, P) signature matrix, got shape {sig.shape}")
    n_rows, n_pairs = sig.shape
    bad = (sig < -1) | (sig > 1)
    if bad.any():
        raise ValueError(
            f"signature values must be in {{-1, 0, +1}}; found {sig[bad][0]}"
        )
    codes = _CODE_OF[sig.view(np.uint8)]
    pad = (-n_pairs) % 4
    if pad:
        codes = np.concatenate([codes, np.zeros((n_rows, pad), dtype=np.uint8)], axis=1)
    codes = codes.reshape(n_rows, packed_row_bytes(n_pairs), 4)
    packed = (
        (codes[:, :, 0] << 6) | (codes[:, :, 1] << 4) | (codes[:, :, 2] << 2) | codes[:, :, 3]
    )
    return np.ascontiguousarray(packed, dtype=np.uint8)


def unpack_signatures(
    packed: np.ndarray, n_pairs: int, *, dtype: np.dtype = np.int8
) -> np.ndarray:
    """Inverse of :func:`pack_signatures`: ``(F, ceil(P/4))`` uint8 -> ``(F, P)``.

    ``dtype=np.float32`` decodes straight to the matching-kernel dtype
    without materializing the dense int8 intermediate.
    """
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.ndim != 2:
        raise ValueError(f"expected a (F, B) packed matrix, got shape {packed.shape}")
    if packed.shape[1] != packed_row_bytes(n_pairs):
        raise ValueError(
            f"packed row has {packed.shape[1]} bytes, expected "
            f"{packed_row_bytes(n_pairs)} for {n_pairs} pairs"
        )
    lut = _DECODE_F32 if np.dtype(dtype) == np.float32 else _DECODE
    out = lut[packed].reshape(len(packed), 4 * packed.shape[1])[:, :n_pairs]
    return np.ascontiguousarray(out)


class PackedSignatures:
    """A packed ``(F, P)`` qualitative signature matrix.

    Thin value object around the packed buffer plus the true pair count
    (the buffer alone cannot distinguish P from P+1..P+3 because of the
    zero padding).
    """

    __slots__ = ("data", "n_pairs")

    def __init__(self, data: np.ndarray, n_pairs: int) -> None:
        data = np.ascontiguousarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[1] != packed_row_bytes(n_pairs):
            raise ValueError(
                f"packed buffer shape {data.shape} inconsistent with {n_pairs} pairs"
            )
        self.data = data
        self.n_pairs = int(n_pairs)

    @classmethod
    def from_dense(cls, signatures: np.ndarray) -> "PackedSignatures":
        signatures = np.atleast_2d(np.asarray(signatures))
        return cls(pack_signatures(signatures), signatures.shape[1])

    @property
    def n_rows(self) -> int:
        return self.data.shape[0]

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def dense(self, *, dtype: np.dtype = np.int8) -> np.ndarray:
        return unpack_signatures(self.data, self.n_pairs, dtype=dtype)

    def rows(self, indices: np.ndarray) -> np.ndarray:
        """Dense int8 rows for *indices* without unpacking the full matrix."""
        return unpack_signatures(self.data[np.asarray(indices)], self.n_pairs)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PackedSignatures)
            and self.n_pairs == other.n_pairs
            and np.array_equal(self.data, other.data)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PackedSignatures(rows={self.n_rows}, n_pairs={self.n_pairs})"
