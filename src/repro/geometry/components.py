"""Connected-component labelling for equal-signature regions.

Lemma 1 of the paper identifies faces with signature vectors; on a raster
the discretization can occasionally leave two disconnected cell groups with
the same signature.  :func:`label_equal_regions` splits them with a simple
array-based union-find over the 4-connected grid graph, restricted to edges
whose endpoints share a signature id.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UnionFind", "label_equal_regions"]


class UnionFind:
    """Array-backed disjoint-set with path halving and union by size.

    Vectorization note: ``union_many`` accepts edge arrays so that callers
    never loop in Python over individual grid cells — only over edges that
    actually merge components.
    """

    __slots__ = ("parent", "size")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"size must be non-negative, got {n}")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def union_many(self, a: np.ndarray, b: np.ndarray) -> int:
        """Union each edge ``(a[k], b[k])``; returns the number of merges."""
        merges = 0
        for x, y in zip(np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)):
            if self.union(int(x), int(y)):
                merges += 1
        return merges

    def labels(self) -> np.ndarray:
        """Canonical component label (0..n_components-1) for every element."""
        n = len(self.parent)
        roots = np.empty(n, dtype=np.int64)
        for i in range(n):
            roots[i] = self.find(i)
        _, labels = np.unique(roots, return_inverse=True)
        return labels

    @property
    def n_components(self) -> int:
        n = len(self.parent)
        return int(sum(1 for i in range(n) if self.find(i) == i))


def label_equal_regions(
    value_ids: np.ndarray,
    neighbor_a: np.ndarray,
    neighbor_b: np.ndarray,
) -> np.ndarray:
    """Split equal-value regions into connected components.

    Parameters
    ----------
    value_ids : (M,) integer id per cell (e.g. signature id).
    neighbor_a, neighbor_b : adjacency edge lists over cells.

    Returns
    -------
    (M,) component labels, contiguous from 0.  Two cells share a label iff
    they have equal ``value_ids`` *and* are connected through cells of the
    same value.
    """
    value_ids = np.asarray(value_ids)
    neighbor_a = np.asarray(neighbor_a, dtype=np.int64)
    neighbor_b = np.asarray(neighbor_b, dtype=np.int64)
    if neighbor_a.shape != neighbor_b.shape:
        raise ValueError("edge lists must have equal length")
    same = value_ids[neighbor_a] == value_ids[neighbor_b]
    uf = UnionFind(len(value_ids))
    uf.union_many(neighbor_a[same], neighbor_b[same])
    return uf.labels()
