"""Approximate grid division of the monitor area (paper §4.3-2).

The exact arrangement of O(n^2) circles is "a very complex geometry
problem" (the paper's words); like the paper, we rasterize the field into
square cells, classify each cell centre, and treat equal-signature groups
of cells as the faces.  Localization error introduced by the grid is
bounded by half the cell diagonal and is controlled via ``cell_size``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = ["Grid"]


@dataclass(frozen=True)
class Grid:
    """A square raster over the rectangular field ``[0, width] x [0, height]``.

    Cell ``(ix, iy)`` has centre ``((ix + 0.5) * cell, (iy + 0.5) * cell)``;
    flattened cell ids are row-major in ``iy`` then ``ix``
    (``flat = iy * nx + ix``).
    """

    width: float
    height: float
    cell_size: float = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"field must have positive extent, got {self.width} x {self.height}")
        if self.cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {self.cell_size}")
        if self.cell_size > min(self.width, self.height):
            raise ValueError(
                f"cell_size {self.cell_size} exceeds the field extent "
                f"{self.width} x {self.height}"
            )

    @classmethod
    def square(cls, side: float, cell_size: float = 1.0) -> "Grid":
        return cls(side, side, cell_size)

    @property
    def nx(self) -> int:
        return int(np.ceil(self.width / self.cell_size - 1e-9))

    @property
    def ny(self) -> int:
        return int(np.ceil(self.height / self.cell_size - 1e-9))

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny

    @property
    def shape(self) -> tuple[int, int]:
        """(ny, nx) — image-style shape for reshaping flat cell arrays."""
        return (self.ny, self.nx)

    @cached_property
    def cell_centers(self) -> np.ndarray:
        """All cell centres, flattened row-major, shape ``(n_cells, 2)``."""
        xs = (np.arange(self.nx) + 0.5) * self.cell_size
        ys = (np.arange(self.ny) + 0.5) * self.cell_size
        gx, gy = np.meshgrid(xs, ys)
        return np.column_stack([gx.ravel(), gy.ravel()])

    def cell_of(self, points: np.ndarray) -> np.ndarray:
        """Flat cell index of each point; points are clipped into the field."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ix = np.clip((points[:, 0] / self.cell_size).astype(np.int64), 0, self.nx - 1)
        iy = np.clip((points[:, 1] / self.cell_size).astype(np.int64), 0, self.ny - 1)
        return iy * self.nx + ix

    def center_of(self, flat_idx: np.ndarray) -> np.ndarray:
        """Centre coordinates of flat cell indices."""
        flat_idx = np.asarray(flat_idx, dtype=np.int64)
        if np.any((flat_idx < 0) | (flat_idx >= self.n_cells)):
            raise IndexError("flat cell index out of range")
        iy, ix = np.divmod(flat_idx, self.nx)
        return np.column_stack([(ix + 0.5) * self.cell_size, (iy + 0.5) * self.cell_size])

    def neighbor_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """4-connected adjacent cell pairs ``(a, b)`` with ``a < b``.

        Used to build face adjacency: two faces are neighbors iff some cell
        of one is 4-adjacent to some cell of the other.
        """
        idx = np.arange(self.n_cells, dtype=np.int64).reshape(self.shape)
        horiz_a = idx[:, :-1].ravel()
        horiz_b = idx[:, 1:].ravel()
        vert_a = idx[:-1, :].ravel()
        vert_b = idx[1:, :].ravel()
        return (
            np.concatenate([horiz_a, vert_a]),
            np.concatenate([horiz_b, vert_b]),
        )

    @property
    def max_quantization_error(self) -> float:
        """Worst-case distance from a point to its cell centre (half diagonal)."""
        return float(self.cell_size * np.sqrt(2.0) / 2.0)
