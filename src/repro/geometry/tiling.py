"""Tiled (and optionally multiprocess) grid-cell signature classification.

``build_face_map`` classifies every grid cell against all C(n, 2) pair
boundaries — an embarrassingly parallel ``cells x pairs`` volume that the
serial builder walks in one pass.  This module splits the cell axis into
tiles and classifies them either in-process (bounding peak memory to one
tile) or across worker processes that write their tiles directly into a
single preallocated ``multiprocessing.shared_memory`` buffer, so there is
no per-tile result pickling and no merge copy.

Bit-identity: classification is elementwise per cell
(:func:`~repro.geometry.primitives.pairwise_distances` is pure
broadcasting, no reductions across cells), so any tiling of the cell axis
produces byte-for-byte the same signature volume as the serial pass.  With
``packed=True`` each tile is packed with the order-preserving 2-bit
encoding of :mod:`repro.geometry.packing`, which keeps the downstream
unique-row face grouping bit-identical too.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.geometry.apollonius import classify_points_pairwise
from repro.geometry.bisector import certain_signatures
from repro.geometry.grid import Grid
from repro.geometry.packing import PackedSignatures, pack_signatures, packed_row_bytes
from repro.geometry.shm import attach_segment, create_segment, release_segment

__all__ = ["classify_cells_tiled", "default_tile_cells"]

#: Cap on one tile's dense int8 signature block (cells x pairs bytes).
_TILE_BYTES = 16 * 1024 * 1024


def default_tile_cells(n_cells: int, n_pairs: int, workers: int) -> int:
    """Tile size balancing scheduling granularity against per-tile overhead:
    ~4 tiles per worker, but never a dense tile block over ``_TILE_BYTES``."""
    by_workers = -(-n_cells // max(1, 4 * workers))  # ceil
    by_memory = max(1, _TILE_BYTES // max(1, n_pairs))
    return max(1, min(by_workers, by_memory))


def _classify_tile(
    centers: np.ndarray,
    nodes: np.ndarray,
    c: float,
    kind: str,
    sensing_range: float | None,
    chunk_pairs: int,
) -> np.ndarray:
    if kind == "uncertain":
        return classify_points_pairwise(
            centers, nodes, c, None, sensing_range=sensing_range, chunk_pairs=chunk_pairs
        )
    if kind == "certain":
        return certain_signatures(centers, nodes, None, chunk_pairs=chunk_pairs)
    raise ValueError(f"unknown signature kind {kind!r}")


# Worker state installed once per process by the pool initializer; tasks
# then carry only a (start, stop) cell span.
_WORKER: dict = {}


def _init_worker(
    shm_name: str,
    buf_shape: tuple[int, int],
    grid: Grid,
    nodes: np.ndarray,
    c: float,
    kind: str,
    sensing_range: float | None,
    chunk_pairs: int,
    packed: bool,
) -> None:
    segment = attach_segment(shm_name)
    _WORKER.update(
        segment=segment,
        buf=np.ndarray(buf_shape, dtype=np.uint8 if packed else np.int8, buffer=segment.buf),
        grid=grid,
        nodes=nodes,
        c=c,
        kind=kind,
        sensing_range=sensing_range,
        chunk_pairs=chunk_pairs,
        packed=packed,
    )


def _run_tile(span: tuple[int, int]) -> int:
    start, stop = span
    st = _WORKER
    sigs = _classify_tile(
        st["grid"].cell_centers[start:stop],
        st["nodes"],
        st["c"],
        st["kind"],
        st["sensing_range"],
        st["chunk_pairs"],
    )
    st["buf"][start:stop] = pack_signatures(sigs) if st["packed"] else sigs
    return stop - start


def _pool_context() -> mp.context.BaseContext:
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return mp.get_context("spawn")


def classify_cells_tiled(
    grid: Grid,
    nodes: np.ndarray,
    *,
    c: float,
    kind: str,
    sensing_range: float | None,
    chunk_pairs: int | None,
    workers: int,
    tile_cells: int | None,
    packed: bool,
) -> np.ndarray | PackedSignatures:
    """Classify every grid cell, tile by tile.

    Returns the dense ``(M, P)`` int8 signature volume, or its
    :class:`PackedSignatures` form when ``packed=True`` — in either case
    bit-identical to the one-pass serial classification.
    """
    if chunk_pairs is None:
        chunk_pairs = 256  # the build_face_map default
    n = len(nodes)
    n_pairs = n * (n - 1) // 2
    n_cells = grid.n_cells
    if tile_cells is None:
        tile_cells = default_tile_cells(n_cells, n_pairs, workers)
    tile_cells = int(tile_cells)
    if tile_cells < 1:
        raise ValueError(f"tile_cells must be >= 1, got {tile_cells}")
    spans = [(start, min(start + tile_cells, n_cells)) for start in range(0, n_cells, tile_cells)]
    row_bytes = packed_row_bytes(n_pairs) if packed else n_pairs
    out_shape = (n_cells, row_bytes)
    out_dtype = np.uint8 if packed else np.int8

    if workers <= 1 or len(spans) < 2:
        out = np.empty(out_shape, dtype=out_dtype)
        for start, stop in spans:
            sigs = _classify_tile(
                grid.cell_centers[start:stop], nodes, c, kind, sensing_range, chunk_pairs
            )
            out[start:stop] = pack_signatures(sigs) if packed else sigs
        return PackedSignatures(out, n_pairs) if packed else out

    segment = create_segment(int(np.prod(out_shape, dtype=np.int64)))
    try:
        ctx = _pool_context()
        with ctx.Pool(
            processes=min(workers, len(spans)),
            initializer=_init_worker,
            initargs=(
                segment.name,
                out_shape,
                grid,
                nodes,
                c,
                kind,
                sensing_range,
                chunk_pairs,
                packed,
            ),
        ) as pool:
            done = sum(pool.map(_run_tile, spans, chunksize=1))
        if done != n_cells:  # pragma: no cover - worker protocol violation
            raise RuntimeError(f"tiled classification covered {done}/{n_cells} cells")
        buf = np.ndarray(out_shape, dtype=out_dtype, buffer=segment.buf)
        out = buf.copy()
        del buf
    finally:
        release_segment(segment)
    return PackedSignatures(out, n_pairs) if packed else out
