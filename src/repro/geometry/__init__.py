"""Geometry substrate.

Implements the computational geometry the paper builds on: Apollonius
uncertain boundaries of node pairs (Eq. 3-4), perpendicular-bisector
classification for the certain-sequence baselines, the approximate grid
division of the monitor area (paper §4.3-2), and the face map with
signature vectors and neighbor-face links (Definitions 6 & 8, Theorem 1).
"""

from repro.geometry.primitives import (
    Circle,
    pairwise_distances,
    point_in_circle,
    enumerate_pairs,
)
from repro.geometry.apollonius import (
    uncertainty_constant,
    effective_uncertainty_constant,
    apollonius_circle,
    uncertain_boundary_circles,
    classify_points_pairwise,
    uncertain_band_halfwidth,
)
from repro.geometry.bisector import bisector_side, certain_signatures
from repro.geometry.grid import Grid
from repro.geometry.components import UnionFind, label_equal_regions
from repro.geometry.faces import Face, FaceMap, build_face_map, build_certain_face_map
from repro.geometry.cache import (
    FaceMapCache,
    face_map_cache_key,
    get_face_map,
    default_face_map_cache,
    configure_face_map_cache,
    face_map_cache_enabled,
)
from repro.geometry.adaptive import AdaptiveDivisionStats, build_adaptive_face_map
from repro.geometry.exact import (
    circle_intersections,
    RefinedFace,
    refine_face,
    boundary_cell_fraction,
)

__all__ = [
    "Circle",
    "pairwise_distances",
    "point_in_circle",
    "enumerate_pairs",
    "uncertainty_constant",
    "effective_uncertainty_constant",
    "apollonius_circle",
    "uncertain_boundary_circles",
    "classify_points_pairwise",
    "uncertain_band_halfwidth",
    "bisector_side",
    "certain_signatures",
    "Grid",
    "UnionFind",
    "label_equal_regions",
    "Face",
    "FaceMap",
    "build_face_map",
    "build_certain_face_map",
    "FaceMapCache",
    "face_map_cache_key",
    "get_face_map",
    "default_face_map_cache",
    "configure_face_map_cache",
    "face_map_cache_enabled",
    "AdaptiveDivisionStats",
    "build_adaptive_face_map",
    "circle_intersections",
    "RefinedFace",
    "refine_face",
    "boundary_cell_fraction",
]
