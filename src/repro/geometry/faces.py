"""Face map: the divided monitor area with signature vectors (paper §4.3).

The uncertain boundaries of all node pairs divide the field into faces;
each face carries a unique signature vector (Definition 6, Lemma 1) and
links to its neighbor faces (Definition 8) so the tracker can hill-climb
instead of scanning all O(n^4) faces (Theorem 1, Algorithm 2).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from repro.geometry.apollonius import classify_points_pairwise
from repro.geometry.bisector import certain_signatures
from repro.geometry.components import label_equal_regions
from repro.geometry.grid import Grid
from repro.geometry.packing import PackedSignatures
from repro.geometry.primitives import enumerate_pairs
from repro.obs import metrics as obs

__all__ = ["Face", "FaceMap", "build_face_map", "build_certain_face_map"]

#: Bound on the float32 temporaries one `distances_to_many` GEMM block may
#: allocate; the default ``chunk_rows`` keeps each block under this.
_GEMM_TEMP_BYTES = 256 * 1024 * 1024


def _resolve_build_workers(workers: "int | None") -> int:
    """Build parallelism: explicit argument, else ``REPRO_BUILD_WORKERS``, else 1."""
    if workers is None:
        env = os.environ.get("REPRO_BUILD_WORKERS")
        if env is None or env == "":
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_BUILD_WORKERS must be an integer, got {env!r}"
            ) from None
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class Face:
    """One face of the divided monitor area."""

    face_id: int
    signature: np.ndarray  # (P,) int8 in {-1, 0, +1}
    centroid: np.ndarray  # (2,) metres — centroid of member cell centres (Eq. 5)
    n_cells: int
    area_m2: float

    @property
    def n_uncertain_pairs(self) -> int:
        """How many pair boundaries this face sits inside (zeros in the signature)."""
        return int(np.count_nonzero(self.signature == 0))

    @property
    def is_certain(self) -> bool:
        """True when every pair ordering is certain inside the face (no zeros)."""
        return self.n_uncertain_pairs == 0


class FaceMap:
    """The complete division of the field plus matching accelerators.

    Attributes
    ----------
    nodes : (n, 2) sensor positions.
    grid : the raster used for the approximate division.
    c : uncertainty constant used for the boundaries (1.0 = certain/bisector map).
    signatures : (F, P) int8 — one signature vector per face.  May be backed
        lazily by ``packed`` (2 bits per pair) and unpacked on first access.
    centroids : (F, 2) face centroids.
    cell_face : (M,) face id of every grid cell.
    cell_counts : (F,) number of cells per face.
    adjacency : CSR-style neighbor-face links (``adj_indptr``/``adj_indices``).
    packed : optional :class:`~repro.geometry.packing.PackedSignatures`
        holding the same signatures at 2 bits per pair.
    """

    _FIELDS = (
        "nodes",
        "grid",
        "c",
        "signatures",
        "centroids",
        "cell_face",
        "cell_counts",
        "adj_indptr",
        "adj_indices",
        "soft_signatures",
        "packed",
    )

    def __init__(
        self,
        nodes: np.ndarray,
        grid: Grid,
        c: float,
        signatures: np.ndarray | None,
        centroids: np.ndarray,
        cell_face: np.ndarray,
        cell_counts: np.ndarray,
        adj_indptr: np.ndarray,
        adj_indices: np.ndarray,
        soft_signatures: np.ndarray | None = None,
        packed: PackedSignatures | None = None,
    ) -> None:
        if signatures is None and packed is None:
            raise ValueError("FaceMap needs dense signatures, packed signatures, or both")
        if (
            signatures is not None
            and packed is not None
            and (packed.n_pairs != signatures.shape[1] or packed.n_rows != signatures.shape[0])
        ):
            raise ValueError(
                f"dense {signatures.shape} and packed ({packed.n_rows}, {packed.n_pairs}) "
                "signature shapes disagree"
            )
        self.nodes = nodes
        self.grid = grid
        self.c = c
        self._signatures = signatures
        self.packed = packed
        self.centroids = centroids
        self.cell_face = cell_face
        self.cell_counts = cell_counts
        self.adj_indptr = adj_indptr
        self.adj_indices = adj_indices
        self.soft_signatures = soft_signatures
        self._signatures_f32: np.ndarray | None = None
        self._qual_sq_rows: np.ndarray | None = None
        self._qual_sq_t: np.ndarray | None = None
        if signatures is not None:
            self._n_faces, self._n_pairs = signatures.shape
        else:
            self._n_faces, self._n_pairs = packed.n_rows, packed.n_pairs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        backing = "packed" if (self._signatures is None and self.packed is not None) else "dense"
        return (
            f"FaceMap(n_nodes={self.n_nodes}, n_faces={self.n_faces}, "
            f"n_pairs={self.n_pairs}, c={self.c}, storage={backing})"
        )

    @property
    def signatures(self) -> np.ndarray:
        """(F, P) int8 face signatures, unpacked (and cached) on demand."""
        if self._signatures is None:
            self._signatures = self.packed.dense()
        return self._signatures

    def packed_store(self) -> PackedSignatures:
        """The 2-bit packed signature store, packing (and caching) on demand."""
        if self.packed is None:
            self.packed = PackedSignatures.from_dense(self._signatures)
        return self.packed

    @property
    def signature_storage_nbytes(self) -> int:
        """Resident bytes currently held by the signature store (dense + packed)."""
        total = 0
        if self._signatures is not None:
            total += int(self._signatures.nbytes)
        if self.packed is not None:
            total += self.packed.nbytes
        return total

    def view(self) -> "FaceMap":
        """A shallow copy sharing every (never-mutated) array but owning its
        own ``soft_signatures`` slot, so callers can attach soft signatures
        without leaking them into other holders of the same map."""
        clone = FaceMap.__new__(FaceMap)
        clone.__dict__.update(self.__dict__)
        clone.soft_signatures = None
        return clone

    def replace(self, **changes: object) -> "FaceMap":
        """A new ``FaceMap`` with *changes* applied (dataclasses.replace spirit)."""
        kwargs = {name: getattr(self, name) for name in self._FIELDS if name != "signatures"}
        kwargs["signatures"] = self._signatures
        if "signatures" in changes and "packed" not in changes:
            kwargs["packed"] = None
        kwargs.update(changes)
        return FaceMap(**kwargs)

    # -- basic queries ----------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_pairs(self) -> int:
        return self._n_pairs

    @property
    def n_faces(self) -> int:
        return self._n_faces

    def face(self, face_id: int) -> Face:
        if not (0 <= face_id < self.n_faces):
            raise IndexError(f"face id {face_id} out of range [0, {self.n_faces})")
        n_cells = int(self.cell_counts[face_id])
        return Face(
            face_id=face_id,
            signature=self.signatures[face_id],
            centroid=self.centroids[face_id],
            n_cells=n_cells,
            area_m2=n_cells * self.grid.cell_size**2,
        )

    def faces(self) -> list[Face]:
        return [self.face(i) for i in range(self.n_faces)]

    def face_of_point(self, point: np.ndarray) -> int:
        """Face id containing *point* (via its grid cell)."""
        return int(self.cell_face[self.grid.cell_of(np.asarray(point))[0]])

    def signature_of_point(self, point: np.ndarray) -> np.ndarray:
        return self.signatures[self.face_of_point(point)]

    def neighbors(self, face_id: int) -> np.ndarray:
        """Neighbor face ids of *face_id* (Definition 8)."""
        if not (0 <= face_id < self.n_faces):
            raise IndexError(f"face id {face_id} out of range [0, {self.n_faces})")
        return self.adj_indices[self.adj_indptr[face_id] : self.adj_indptr[face_id + 1]]

    @property
    def n_certain_faces(self) -> int:
        """Faces with no uncertain pair (Fig. 3: these vanish as C or spacing grows)."""
        return int(np.count_nonzero(np.all(self.signatures != 0, axis=1)))

    # -- matching ---------------------------------------------------------

    def _sig_f32(self) -> np.ndarray:
        if self._signatures_f32 is None:
            if self._signatures is not None:
                self._signatures_f32 = self._signatures.astype(np.float32)
            else:
                # decode straight to float32 — skip the dense int8 intermediate
                self._signatures_f32 = self.packed.dense(dtype=np.float32)
        return self._signatures_f32

    def signature_matrix(self, *, soft: bool = False) -> np.ndarray:
        """(F, P) float32 signatures — qualitative, or the soft/expected
        quantitative variant when attached (see ``repro.core.extended``)."""
        if soft:
            if self.soft_signatures is None:
                raise ValueError(
                    "no soft signatures attached; call "
                    "repro.core.extended.attach_soft_signatures first"
                )
            return self.soft_signatures
        return self._sig_f32()

    def distances_to(self, vector: np.ndarray, *, soft: bool = False) -> np.ndarray:
        """Squared vector distance from *vector* to every face signature.

        NaN components of *vector* are the ``*`` fault values of Eq. 7 and
        contribute zero difference.
        """
        v = np.asarray(vector, dtype=np.float32)
        if v.shape != (self.n_pairs,):
            raise ValueError(f"vector has shape {v.shape}, expected ({self.n_pairs},)")
        sigs = self.signature_matrix(soft=soft)
        diff = sigs - v  # one (F, P) temporary; NaN columns zeroed in place below
        mask = np.isnan(v)
        if mask.any():
            diff[:, mask] = 0.0
        return np.einsum("fp,fp->f", diff, diff)

    def _qual_sq(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``sum_p s^2`` per face and ``(s^2)^T`` for the GEMM expansion."""
        if self._qual_sq_rows is None:
            sq = np.square(self._sig_f32())
            self._qual_sq_rows = sq.sum(axis=1)
            self._qual_sq_t = np.ascontiguousarray(sq.T)
        return self._qual_sq_rows, self._qual_sq_t

    def _resolve_chunk_rows(self, chunk_rows: int | None) -> int:
        """Trace-axis block size; the default bounds one block's (B, F)
        float32 temporaries by ``_GEMM_TEMP_BYTES``."""
        if chunk_rows is None:
            return max(1, _GEMM_TEMP_BYTES // (4 * max(1, self.n_faces)))
        chunk_rows = int(chunk_rows)
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        return chunk_rows

    def distances_to_many(
        self, vectors: np.ndarray, *, soft: bool = False, chunk_rows: int | None = None
    ) -> np.ndarray:
        """Squared vector distance from each of ``(B, P)`` *vectors* to every face.

        Bit-identical to calling :meth:`distances_to` per row.  When the
        signatures are the qualitative ``{-1, 0, +1}`` set and every vector
        component is a small integer (the basic Definition-4 values), the
        batch is computed as one GEMM via the expansion
        ``|a - b|^2 = |a|^2 - 2 a.b + |b|^2`` — every product and partial
        sum is then a small exact integer in float32, so the result is
        exactly the per-row einsum regardless of BLAS summation order.  NaN
        fault components (Eq. 7) are handled by zeroing them and
        subtracting the masked signature energy, again exactly.  Rows with
        fractional components (extended vectors, soft signatures) fall
        back to the per-row path to preserve bit-identity.

        The batch is processed in blocks of ``chunk_rows`` traces so peak
        temporary allocation stays bounded however large B grows; because
        both the GEMM expansion and the per-row path are exact per row,
        the block size cannot change a single output bit.
        """
        V = np.asarray(vectors, dtype=np.float32)
        if V.ndim != 2 or V.shape[1] != self.n_pairs:
            raise ValueError(f"vectors have shape {V.shape}, expected (B, {self.n_pairs})")
        step = self._resolve_chunk_rows(chunk_rows)
        if len(V) > step:
            out = np.empty((len(V), self.n_faces), dtype=np.float32)
            for start in range(0, len(V), step):
                out[start : start + step] = self._distances_block(V[start : start + step], soft)
            return out
        return self._distances_block(V, soft)

    def _distances_block(self, V: np.ndarray, soft: bool) -> np.ndarray:
        mask = np.isnan(V)
        v0 = np.where(mask, np.float32(0.0), V)
        exact = (
            not soft
            and bool(np.all(v0 == np.rint(v0)))
            and bool(np.all(np.abs(v0) <= 8.0))
        )
        if not exact:
            out = np.empty((len(V), self.n_faces), dtype=np.float32)
            for b in range(len(V)):
                out[b] = self.distances_to(V[b], soft=soft)
            return out
        sigs = self._sig_f32()
        sq_rows, sq_t = self._qual_sq()
        v_sq = np.einsum("bp,bp->b", v0, v0)
        d2 = v_sq[:, None] - np.float32(2.0) * (v0 @ sigs.T) + sq_rows[None, :]
        if mask.any():
            # masked columns must contribute zero, not s^2: subtract their energy
            d2 -= mask.astype(np.float32) @ sq_t
        return d2

    def tie_tolerance(self, best: float) -> float:
        """Tie threshold for :meth:`match`, relative to the distance scale.

        Two faces tie when their squared distances agree to within float32
        accumulation error over P = C(n, 2) terms — ``eps32 * sqrt(P)``
        relative — floored at the legacy absolute ``1e-6``.

        An exact match (``best == 0``) is special: its Definition 7
        similarity is infinite, so no other face can tie with it.  The
        relative tolerance is naturally 0 there, and applying the
        absolute floor instead would admit soft-signature faces a genuine
        ``~1e-8`` away — two bit-equal faces must tie with each other and
        with nothing else.
        """
        best = float(best)
        if best == 0.0:
            return 0.0
        eps32 = float(np.finfo(np.float32).eps)
        return max(1e-6, best * eps32 * math.sqrt(self.n_pairs))

    def match(self, vector: np.ndarray, *, soft: bool = False) -> tuple[np.ndarray, float]:
        """Exhaustive maximum-likelihood matching (paper §4.4-1).

        Returns ``(face_ids, sq_distance)`` — all faces tying at the minimum
        squared vector distance.  Similarity of Definition 7 is
        ``1/sqrt(sq_distance)`` (infinite on exact match).
        """
        d2 = self.distances_to(vector, soft=soft)
        best = float(d2.min())
        ties = np.flatnonzero(d2 <= best + self.tie_tolerance(best))
        if obs.enabled():
            obs.counter("geometry.match.rounds").inc()
            obs.histogram("geometry.match.ties").observe(len(ties))
            obs.gauge("geometry.match.candidate_faces").set(self.n_faces)
        return ties, best

    def match_many(
        self, vectors: np.ndarray, *, soft: bool = False, chunk_rows: int | None = None
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Batched :meth:`match` over ``(B, P)`` *vectors*.

        Returns ``(ties_per_row, best_sq_distances)`` — identical, row for
        row, to calling :meth:`match` in a loop (see
        :meth:`distances_to_many` for why).  Processed in ``chunk_rows``
        blocks so only one (chunk, F) distance block is live at a time.
        """
        V = np.asarray(vectors, dtype=np.float32)
        if V.ndim != 2 or V.shape[1] != self.n_pairs:
            raise ValueError(f"vectors have shape {V.shape}, expected (B, {self.n_pairs})")
        step = self._resolve_chunk_rows(chunk_rows)
        ties: list[np.ndarray] = []
        bests = np.empty(len(V), dtype=float)
        for start in range(0, len(V), step):
            d2 = self.distances_to_many(V[start : start + step], soft=soft, chunk_rows=step)
            for b, row in enumerate(d2, start=start):
                best = float(row.min())
                ties.append(np.flatnonzero(row <= best + self.tie_tolerance(best)))
                bests[b] = best
        if obs.enabled():
            obs.counter("geometry.match.rounds").inc(len(ties))
            obs.counter("geometry.match.batched_rounds").inc(len(ties))
            h = obs.histogram("geometry.match.ties")
            for t in ties:
                h.observe(len(t))
            obs.gauge("geometry.match.candidate_faces").set(self.n_faces)
        return ties, bests

    def match_positions_many(self, vectors: np.ndarray, *, soft: bool = False) -> np.ndarray:
        """Batched :meth:`match_position`: ``(B, 2)`` mean tie centroids."""
        ties, _ = self.match_many(vectors, soft=soft)
        return np.stack([self.centroids[t].mean(axis=0) for t in ties])

    def match_position(self, vector: np.ndarray, *, soft: bool = False) -> np.ndarray:
        """Position estimate: mean centroid of all maximum-similarity faces.

        The paper's §6 rule — "the mean value of all the candidate faces
        which have the maximum similarity".
        """
        ties, _ = self.match(vector, soft=soft)
        return self.centroids[ties].mean(axis=0)

    # -- ground truth helpers ----------------------------------------------

    def expected_vector_for_point(self, point: np.ndarray) -> np.ndarray:
        """Noise-free expected sampling vector at *point* (== its face signature)."""
        return self.signature_of_point(point).astype(np.float64)


def _build_adjacency(cell_face: np.ndarray, grid: Grid, n_faces: int) -> tuple[np.ndarray, np.ndarray]:
    a, b = grid.neighbor_pairs()
    fa, fb = cell_face[a], cell_face[b]
    diff = fa != fb
    fa, fb = fa[diff], fb[diff]
    lo = np.minimum(fa, fb)
    hi = np.maximum(fa, fb)
    edges = np.unique(lo.astype(np.int64) * n_faces + hi.astype(np.int64))
    lo = (edges // n_faces).astype(np.int64)
    hi = (edges % n_faces).astype(np.int64)
    # symmetric CSR
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    indptr = np.zeros(n_faces + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, dst


def _unique_rows(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique rows + inverse indices via a void view (one memcmp per compare,
    ~10x faster than ``np.unique(axis=0)`` on wide int8 signature matrices)."""
    a = np.ascontiguousarray(a)
    void = a.view([("bytes", f"V{a.shape[1] * a.itemsize}")]).ravel()
    _, first_idx, inverse = np.unique(void, return_index=True, return_inverse=True)
    return a[first_idx], inverse.ravel()


def _faces_from_signatures(
    cell_sigs: np.ndarray | PackedSignatures, grid: Grid, split_components: bool
) -> tuple[np.ndarray | PackedSignatures, np.ndarray, np.ndarray, np.ndarray]:
    """Group cells into faces; returns (signatures, centroids, cell_face, counts).

    *cell_sigs* may be a dense ``(M, P)`` int8 matrix or a
    :class:`PackedSignatures` over the cells.  The packed encoding is
    order-preserving under the void-view memcmp (see
    ``repro.geometry.packing``), so grouping by unique packed rows yields
    the same face ids, in the same order, as grouping by dense rows —
    and the matching per-face store is returned in the same form.
    """
    is_packed = isinstance(cell_sigs, PackedSignatures)
    rows = cell_sigs.data if is_packed else cell_sigs
    unique_rows, sig_ids = _unique_rows(rows)
    if split_components:
        a, b = grid.neighbor_pairs()
        face_ids = label_equal_regions(sig_ids, a, b)
        n_faces = int(face_ids.max()) + 1 if len(face_ids) else 0
        # representative signature per face
        first_cell = np.full(n_faces, -1, dtype=np.int64)
        seen = np.zeros(n_faces, dtype=bool)
        order = np.arange(len(face_ids))
        # first occurrence of each face id
        uniq, first_idx = np.unique(face_ids, return_index=True)
        first_cell[uniq] = order[first_idx]
        seen[uniq] = True
        if not seen.all():
            raise AssertionError("face labelling produced unused labels")
        face_rows = rows[first_cell]
    else:
        face_ids = sig_ids
        n_faces = len(unique_rows)
        face_rows = unique_rows
    counts = np.bincount(face_ids, minlength=n_faces).astype(np.int64)
    centers = grid.cell_centers
    cx = np.bincount(face_ids, weights=centers[:, 0], minlength=n_faces)
    cy = np.bincount(face_ids, weights=centers[:, 1], minlength=n_faces)
    centroids = np.column_stack([cx, cy]) / counts[:, None]
    if is_packed:
        signatures: np.ndarray | PackedSignatures = PackedSignatures(
            np.ascontiguousarray(face_rows), cell_sigs.n_pairs
        )
    else:
        signatures = face_rows.astype(np.int8)
    return signatures, centroids, face_ids.astype(np.int64), counts


def _assemble_face_map(
    nodes: np.ndarray,
    grid: Grid,
    c: float,
    cell_sigs: np.ndarray | PackedSignatures,
    split_components: bool,
) -> FaceMap:
    signatures, centroids, cell_face, counts = _faces_from_signatures(cell_sigs, grid, split_components)
    if isinstance(signatures, PackedSignatures):
        n_faces, dense, packed = signatures.n_rows, None, signatures
    else:
        n_faces, dense, packed = len(signatures), signatures, None
    indptr, indices = _build_adjacency(cell_face, grid, n_faces)
    return FaceMap(
        nodes=nodes,
        grid=grid,
        c=c,
        signatures=dense,
        centroids=centroids,
        cell_face=cell_face,
        cell_counts=counts,
        adj_indptr=indptr,
        adj_indices=indices,
        packed=packed,
    )


def build_face_map(
    nodes: np.ndarray,
    grid: Grid,
    c: float,
    *,
    sensing_range: float | None = None,
    split_components: bool = False,
    chunk_pairs: int = 256,
    workers: int | None = None,
    tile_cells: int | None = None,
    packed: bool = False,
) -> FaceMap:
    """Divide the field by all pairwise uncertain boundaries (Definition 2).

    Parameters
    ----------
    nodes : (n, 2) sensor positions.
    grid : raster for the approximate division (paper §4.3-2).
    c : uncertainty constant from
        :func:`repro.geometry.apollonius.uncertainty_constant`.
    sensing_range : sensor hearing radius R; when given, signatures apply
        the Eq. 6 semantics for pairs whose nodes cannot hear a face
        (see :func:`~repro.geometry.apollonius.classify_points_pairwise`).
    split_components : also split equal-signature regions that are not
        connected (strict face semantics).  Off by default — matching
        semantics are identical and the paper's own evaluation groups by
        signature.
    workers : classify grid tiles in this many worker processes, writing
        into one shared output buffer (default 1, or
        ``REPRO_BUILD_WORKERS``).  Bit-identical to the serial build for
        any worker count — classification is elementwise per cell.
    tile_cells : cells per tile for the tiled classification path
        (default: chosen automatically).  Forces the tiled path even at
        ``workers=1``.
    packed : store cell/face signatures 2-bit packed (4 pair values per
        byte, ~4x smaller).  The resulting map unpacks lazily on dense
        access and matches the dense build bit for bit.
    """
    nodes = np.atleast_2d(np.asarray(nodes, dtype=float))
    if len(nodes) < 2:
        raise ValueError(f"need at least two nodes, got {len(nodes)}")
    workers = _resolve_build_workers(workers)
    if workers > 1 or tile_cells is not None or packed:
        from repro.geometry.tiling import classify_cells_tiled

        cell_sigs: np.ndarray | PackedSignatures = classify_cells_tiled(
            grid,
            nodes,
            c=c,
            kind="uncertain",
            sensing_range=sensing_range,
            chunk_pairs=chunk_pairs,
            workers=workers,
            tile_cells=tile_cells,
            packed=packed,
        )
    else:
        pairs = enumerate_pairs(len(nodes))
        cell_sigs = classify_points_pairwise(
            grid.cell_centers, nodes, c, pairs, sensing_range=sensing_range, chunk_pairs=chunk_pairs
        )
    return _assemble_face_map(nodes, grid, c, cell_sigs, split_components)


def build_certain_face_map(
    nodes: np.ndarray,
    grid: Grid,
    *,
    split_components: bool = False,
    chunk_pairs: int = 256,
    workers: int | None = None,
    tile_cells: int | None = None,
    packed: bool = False,
) -> FaceMap:
    """Face map of the certain-sequence baselines: bisector division only.

    This is the classic division of [22]/[24] — Fig. 3(a) of the paper —
    obtained in the ``C -> 1`` limit.  ``c`` is recorded as 1.0.
    ``workers``/``tile_cells``/``packed`` behave as in
    :func:`build_face_map`.
    """
    nodes = np.atleast_2d(np.asarray(nodes, dtype=float))
    if len(nodes) < 2:
        raise ValueError(f"need at least two nodes, got {len(nodes)}")
    workers = _resolve_build_workers(workers)
    if workers > 1 or tile_cells is not None or packed:
        from repro.geometry.tiling import classify_cells_tiled

        cell_sigs: np.ndarray | PackedSignatures = classify_cells_tiled(
            grid,
            nodes,
            c=1.0,
            kind="certain",
            sensing_range=None,
            chunk_pairs=chunk_pairs,
            workers=workers,
            tile_cells=tile_cells,
            packed=packed,
        )
    else:
        pairs = enumerate_pairs(len(nodes))
        cell_sigs = certain_signatures(grid.cell_centers, nodes, pairs, chunk_pairs=chunk_pairs)
    return _assemble_face_map(nodes, grid, 1.0, cell_sigs, split_components)
