"""Basic geometric primitives shared across the geometry layer.

All point arrays follow the convention ``(..., 2)`` with columns ``x, y``
in metres.  Functions are vectorized over leading dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Circle",
    "pairwise_distances",
    "point_in_circle",
    "enumerate_pairs",
    "pair_index",
    "polyline_length",
    "resample_polyline",
]


@dataclass(frozen=True)
class Circle:
    """A circle in the plane (centre ``(cx, cy)``, radius ``r``)."""

    cx: float
    cy: float
    r: float

    def __post_init__(self) -> None:
        if self.r < 0:
            raise ValueError(f"circle radius must be non-negative, got {self.r}")

    @property
    def center(self) -> np.ndarray:
        return np.array([self.cx, self.cy])

    def contains(self, points: np.ndarray, *, strict: bool = False) -> np.ndarray:
        """Vectorized membership test for ``points`` of shape ``(..., 2)``."""
        return point_in_circle(points, self, strict=strict)

    def circumference_points(self, n: int = 128) -> np.ndarray:
        """Sample ``n`` points on the circle, for tests and visual dumps."""
        theta = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
        return np.stack(
            [self.cx + self.r * np.cos(theta), self.cy + self.r * np.sin(theta)],
            axis=-1,
        )


def point_in_circle(points: np.ndarray, circle: Circle, *, strict: bool = False) -> np.ndarray:
    """Return a boolean mask of points inside *circle*.

    ``strict=True`` excludes the boundary (up to floating-point epsilon).
    """
    points = np.asarray(points, dtype=float)
    d2 = (points[..., 0] - circle.cx) ** 2 + (points[..., 1] - circle.cy) ** 2
    r2 = circle.r**2
    return d2 < r2 if strict else d2 <= r2


def pairwise_distances(points: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Distance matrix between ``points (M,2)`` and ``nodes (n,2)`` -> ``(M,n)``.

    Uses direct broadcasting; for the grid sizes this library works with
    (1e4 cells x 40 nodes) that is both the fastest and the most accurate
    option.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    nodes = np.atleast_2d(np.asarray(nodes, dtype=float))
    if points.shape[-1] != 2 or nodes.shape[-1] != 2:
        raise ValueError(
            f"expected (...,2) coordinate arrays, got {points.shape} and {nodes.shape}"
        )
    diff = points[:, None, :] - nodes[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])


def enumerate_pairs(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Canonical node-pair enumeration of Definition 5.

    Returns index arrays ``(i_idx, j_idx)`` with ``i < j`` ordered
    ``(0,1),(0,2),...,(0,n-1),(1,2),...`` — exactly the ascending
    enumeration the paper uses for both sampling and signature vectors.
    """
    if n < 2:
        raise ValueError(f"need at least two nodes to enumerate pairs, got n={n}")
    return np.triu_indices(n, k=1)


def pair_index(i: int, j: int, n: int) -> int:
    """Position of pair ``(i, j)`` (``i < j``) in the canonical enumeration."""
    if not (0 <= i < j < n):
        raise ValueError(f"invalid pair ({i}, {j}) for n={n}")
    # pairs before row i: n-1 + n-2 + ... + n-i, then offset within row i
    return i * n - i * (i + 1) // 2 + (j - i - 1)


def polyline_length(vertices: np.ndarray) -> float:
    """Total length of a piecewise-linear path given as ``(V, 2)`` vertices."""
    vertices = np.asarray(vertices, dtype=float)
    if vertices.ndim != 2 or vertices.shape[1] != 2:
        raise ValueError(f"expected (V,2) vertices, got {vertices.shape}")
    if len(vertices) < 2:
        return 0.0
    seg = np.diff(vertices, axis=0)
    return float(np.hypot(seg[:, 0], seg[:, 1]).sum())


def resample_polyline(vertices: np.ndarray, arclengths: np.ndarray) -> np.ndarray:
    """Positions along a polyline at the given arc-length offsets.

    Offsets beyond the path are clamped to the endpoints; this is what the
    mobility layer uses to sample a trace at localization instants.
    """
    vertices = np.asarray(vertices, dtype=float)
    arclengths = np.asarray(arclengths, dtype=float)
    if len(vertices) < 2:
        return np.broadcast_to(vertices[0], arclengths.shape + (2,)).copy()
    seg = np.diff(vertices, axis=0)
    seg_len = np.hypot(seg[:, 0], seg[:, 1])
    cum = np.concatenate([[0.0], np.cumsum(seg_len)])
    s = np.clip(arclengths, 0.0, cum[-1])
    idx = np.clip(np.searchsorted(cum, s, side="right") - 1, 0, len(seg_len) - 1)
    denom = np.where(seg_len[idx] > 0, seg_len[idx], 1.0)
    frac = (s - cum[idx]) / denom
    return vertices[idx] + frac[..., None] * seg[idx]
