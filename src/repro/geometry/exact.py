"""Exact-geometry utilities complementing the raster approximation.

The paper punts on the exact arrangement ("very complex geometry
problem"); the raster division is the production path.  These helpers
bound and refine what the raster gets wrong:

* circle-circle intersections — the vertices of the exact arrangement;
* per-face refinement — re-rasterize one face's bounding box at a finer
  resolution to tighten its centroid and area;
* boundary-cell detection — which cells the raster may have misassigned
  (their corners disagree with their centre), giving a certified error
  bound on the division.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.apollonius import classify_points_pairwise
from repro.geometry.faces import FaceMap
from repro.geometry.primitives import Circle, enumerate_pairs

__all__ = [
    "circle_intersections",
    "RefinedFace",
    "refine_face",
    "boundary_cell_fraction",
]


def circle_intersections(a: Circle, b: Circle) -> np.ndarray:
    """Intersection points of two circles, shape (0|1|2, 2).

    Tangency returns one point; separate/contained circles return none.
    """
    d = float(np.hypot(b.cx - a.cx, b.cy - a.cy))
    if d < 1e-12:
        return np.empty((0, 2))  # concentric: none or infinitely many
    if d > a.r + b.r + 1e-12 or d < abs(a.r - b.r) - 1e-12:
        return np.empty((0, 2))
    # distance from a's centre to the radical line
    x = (d**2 + a.r**2 - b.r**2) / (2 * d)
    h2 = a.r**2 - x**2
    ux, uy = (b.cx - a.cx) / d, (b.cy - a.cy) / d
    px, py = a.cx + x * ux, a.cy + x * uy
    if h2 <= 1e-12:
        return np.array([[px, py]])
    h = float(np.sqrt(h2))
    return np.array(
        [[px - h * uy, py + h * ux], [px + h * uy, py - h * ux]]
    )


@dataclass(frozen=True)
class RefinedFace:
    """Tightened geometry of one face."""

    face_id: int
    centroid: np.ndarray
    area_m2: float
    n_fine_cells: int
    centroid_shift_m: float  # how far refinement moved the raster centroid


def refine_face(face_map: FaceMap, face_id: int, *, factor: int = 4) -> RefinedFace:
    """Re-rasterize one face's bounding box ``factor`` times finer.

    Uses the exact (non-raster) classification at the fine centres, so the
    returned centroid/area converge to the true face geometry as *factor*
    grows.
    """
    if not (0 <= face_id < face_map.n_faces):
        raise IndexError(f"face id {face_id} out of range")
    if factor < 2:
        raise ValueError(f"factor must be >= 2, got {factor}")
    grid = face_map.grid
    cells = np.flatnonzero(face_map.cell_face == face_id)
    centers = grid.cell_centers[cells]
    half = grid.cell_size / 2.0
    lo = centers.min(axis=0) - half
    hi = centers.max(axis=0) + half
    fine = grid.cell_size / factor
    xs = np.arange(lo[0] + fine / 2, hi[0], fine)
    ys = np.arange(lo[1] + fine / 2, hi[1], fine)
    gx, gy = np.meshgrid(xs, ys)
    pts = np.column_stack([gx.ravel(), gy.ravel()])

    sig = face_map.signatures[face_id]
    pairs = enumerate_pairs(face_map.n_nodes)
    # sensing-range semantics were baked into the signatures at build time;
    # refinement reuses the plain band classification, which matches except
    # for the range-gated overrides — restrict to cells already in the face
    fine_sigs = classify_points_pairwise(pts, face_map.nodes, face_map.c, pairs)
    member = np.all(fine_sigs == sig[None, :], axis=1)
    # also require the fine point to fall in a cell of this face, which
    # keeps range-gated faces correct without re-deriving the gating
    in_cells = face_map.cell_face[grid.cell_of(pts)] == face_id
    member &= in_cells
    if not member.any():
        # degenerate (face thinner than the fine grid): fall back to raster
        raster_centroid = face_map.centroids[face_id]
        return RefinedFace(
            face_id=face_id,
            centroid=raster_centroid.copy(),
            area_m2=float(face_map.cell_counts[face_id] * grid.cell_size**2),
            n_fine_cells=0,
            centroid_shift_m=0.0,
        )
    chosen = pts[member]
    centroid = chosen.mean(axis=0)
    area = float(member.sum()) * fine**2
    shift = float(np.hypot(*(centroid - face_map.centroids[face_id])))
    return RefinedFace(
        face_id=face_id,
        centroid=centroid,
        area_m2=area,
        n_fine_cells=int(member.sum()),
        centroid_shift_m=shift,
    )


def boundary_cell_fraction(face_map: FaceMap) -> float:
    """Fraction of cells whose corners straddle a face boundary.

    A cell whose four corners all classify like its centre is certainly
    interior; the rest may be misassigned by up to one cell — this is the
    certified error mass of the raster division (drives cell-size choice).
    """
    grid = face_map.grid
    pairs = enumerate_pairs(face_map.n_nodes)
    centers = grid.cell_centers
    half = grid.cell_size / 2.0
    agree = np.ones(grid.n_cells, dtype=bool)
    center_sig = face_map.signatures[face_map.cell_face]
    for dx, dy in ((-half, -half), (-half, half), (half, -half), (half, half)):
        corners = centers + np.array([dx, dy])
        corner_sig = classify_points_pairwise(corners, face_map.nodes, face_map.c, pairs)
        agree &= np.all(corner_sig == center_sig, axis=1)
    return float((~agree).mean())
