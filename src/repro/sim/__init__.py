"""Simulation harness: scenarios, runs, and replicated experiments.

Glues the substrates together: a :class:`Scenario` is a deployment, a
channel, a mobility trace, and the face maps; :func:`run_tracking`
generates the grouping-sampling stream and drives any tracker over it;
``experiments`` provides the replicated sweeps behind every figure.
"""

from repro.sim.scenario import Scenario, make_scenario, TRACKER_NAMES
from repro.sim.runner import (
    generate_batches,
    run_tracking,
    run_all_trackers,
    run_tracking_with_duty_cycle,
)
from repro.sim.experiments import (
    SweepRecord,
    replicate_mean_error,
    sweep_n_sensors,
    sweep_resolution,
    sweep_sampling_times,
    sweep_basic_vs_extended,
)
from repro.sim.io import records_to_csv, records_to_json, load_records_json
from repro.sim.modelmode import ModelSampler, run_model_tracking
from repro.sim.ablations import (
    ablate_uncertainty_constant,
    ablate_matcher_hops,
    ablate_soft_signatures,
    ablate_noise_structure,
)
from repro.sim.parallel import parallel_sweep, recommended_workers
from repro.sim.presets import PRESETS, list_presets, make_preset

__all__ = [
    "Scenario",
    "make_scenario",
    "TRACKER_NAMES",
    "generate_batches",
    "run_tracking",
    "run_all_trackers",
    "run_tracking_with_duty_cycle",
    "SweepRecord",
    "replicate_mean_error",
    "sweep_n_sensors",
    "sweep_resolution",
    "sweep_sampling_times",
    "sweep_basic_vs_extended",
    "records_to_csv",
    "records_to_json",
    "load_records_json",
    "ModelSampler",
    "run_model_tracking",
    "ablate_uncertainty_constant",
    "ablate_matcher_hops",
    "ablate_soft_signatures",
    "ablate_noise_structure",
    "parallel_sweep",
    "recommended_workers",
    "PRESETS",
    "list_presets",
    "make_preset",
]
