"""Parallel execution of replicated sweeps.

Replications are embarrassingly parallel: each builds its own world from a
spawned seed and shares nothing.  This module fans sweep points out over a
``multiprocessing`` pool while keeping results **bit-identical** to the
serial path — every task carries its own explicitly-spawned seed, so the
schedule cannot affect the streams (the determinism rule the HPC guides
insist on).

Workers re-import ``repro`` (fork or spawn both work); tasks are coarse
(one full parameter point per task) so IPC overhead is negligible next to
the seconds-long tracking runs inside.

With ``obs_dir`` set, the sweep runs under :mod:`repro.obs`: workers
enable the metrics registry (via the ``REPRO_OBS`` environment variable,
which both fork and spawn children inherit), snapshot it per task, and
ship the snapshot back with the records; the parent merges every
snapshot and writes ``metrics.json`` + ``trace.jsonl`` into ``obs_dir``.
Pool workers do not write to the parent's trace file — inline runs
(``n_workers=1``) emit full per-round events, pooled runs emit
sweep-level events only.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Sequence

from repro.config import SimulationConfig
from repro.network.faults import FaultModel
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.io import write_metrics
from repro.obs.tracing import trace_event
from repro.sim.experiments import SweepRecord, replicate_mean_error

__all__ = ["parallel_sweep", "recommended_workers"]


def recommended_workers(n_tasks: int) -> int:
    """A sane pool size: no more workers than tasks or cores.

    The ``REPRO_WORKERS`` environment variable overrides the core count —
    CI and users can pin the pool size without threading a parameter
    through every call site (still clamped to the task count; there is
    never a reason to fork more workers than tasks).
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None and env != "":
        try:
            forced = int(env)
        except ValueError:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}") from None
        if forced < 1:
            raise ValueError(f"REPRO_WORKERS must be >= 1, got {forced}")
        return max(1, min(n_tasks, forced))
    cores = os.cpu_count() or 1
    return max(1, min(n_tasks, cores))


def _pool_init_shared_maps(manifests: list[dict]) -> None:
    """Pool initializer: register shared face-map manifests in this worker.

    Installed once per worker process; every task's cache lookups then
    resolve against the parent's published segments (zero-copy attach)
    before falling back to disk or a rebuild.
    """
    from repro.geometry.shm import install_shared_face_maps

    install_shared_face_maps(manifests)


def _run_point(args: tuple) -> "tuple[list[SweepRecord], dict | None]":
    config_dict, tracker_names, n_reps, seed, params, deployment, faults = args
    grid_cfg = config_dict.pop("grid")
    from repro.config import GridConfig

    # per-task metrics: reset before, snapshot after, so a reused worker
    # (or the inline path) reports each point exactly once
    observing = obs_metrics.enabled()
    if observing:
        obs_metrics.reset()
    config = SimulationConfig(**config_dict, grid=GridConfig(**grid_cfg))
    records = replicate_mean_error(
        config,
        tracker_names,
        n_reps=n_reps,
        seed=seed,
        deployment=deployment,
        params=params,
        faults=faults,
    )
    return records, obs_metrics.snapshot() if observing else None


@contextmanager
def _sweep_environment(cache_dir, obs_dir):
    """Scoped env/config for one sweep: disk cache dir + observability.

    Everything mutated here — ``REPRO_FACE_CACHE_DIR``, ``REPRO_OBS``,
    the process cache configuration, the active tracer — is restored on
    exit, so repeated sweeps (and tests using ``tmp_path``) cannot leak
    state into each other.
    """
    from repro.geometry.cache import configure_face_map_cache, default_face_map_cache

    prev_cache_env = os.environ.get("REPRO_FACE_CACHE_DIR")
    prev_obs_env = os.environ.get("REPRO_OBS")
    prev_disk_dir = default_face_map_cache().disk_dir
    prev_tracer = obs_tracing._tracer
    prev_tracer_checked = obs_tracing._env_tracer_checked
    out: "Path | None" = None
    try:
        if cache_dir is not None:
            # environment propagates to fork and spawn workers alike, and
            # reconfiguring the parent cache covers the inline path too
            os.environ["REPRO_FACE_CACHE_DIR"] = str(cache_dir)
            configure_face_map_cache(disk_dir=str(cache_dir))
        if obs_dir is not None:
            out = Path(obs_dir)
            out.mkdir(parents=True, exist_ok=True)
            os.environ["REPRO_OBS"] = "1"
            # install directly (not via set_tracer) so the previous tracer
            # stays open and can be restored on exit
            obs_tracing._tracer = obs_tracing.Tracer(out / "trace.jsonl")
            obs_tracing._env_tracer_checked = True
        yield out
    finally:
        if cache_dir is not None:
            if prev_cache_env is None:
                os.environ.pop("REPRO_FACE_CACHE_DIR", None)
            else:
                os.environ["REPRO_FACE_CACHE_DIR"] = prev_cache_env
            configure_face_map_cache(disk_dir=prev_disk_dir)
        if obs_dir is not None:
            if prev_obs_env is None:
                os.environ.pop("REPRO_OBS", None)
            else:
                os.environ["REPRO_OBS"] = prev_obs_env
            if obs_tracing._tracer is not None and obs_tracing._tracer is not prev_tracer:
                obs_tracing._tracer.close()
            obs_tracing._tracer = prev_tracer
            obs_tracing._env_tracer_checked = prev_tracer_checked


def parallel_sweep(
    points: "Sequence[tuple[SimulationConfig, dict]]",
    tracker_names: Sequence[str],
    *,
    n_reps: int = 3,
    seed: int = 0,
    deployment: str = "random",
    n_workers: "int | None" = None,
    seed_stride: int = 1000,
    cache_dir: "str | os.PathLike | None" = None,
    faults: "FaultModel | Sequence[FaultModel | None] | None" = None,
    obs_dir: "str | os.PathLike | None" = None,
    share_maps: bool = False,
    chunksize: "int | None" = None,
) -> list[SweepRecord]:
    """Run ``replicate_mean_error`` for every (config, params) point in a pool.

    Parameters
    ----------
    points : list of (config, params-dict) pairs; params tag the records.
    tracker_names : trackers evaluated at every point.
    n_reps / deployment : as in :func:`replicate_mean_error`.
    seed : base seed; point *i* uses ``seed + i * seed_stride`` — identical
        to a serial loop, so parallel and serial runs agree exactly.
    n_workers : pool size (default: min(cores, points), overridable via
        ``REPRO_WORKERS``); 1 = run inline (no pool, handy under coverage
        tools and debuggers).
    cache_dir : when given, workers share an on-disk face-map cache at
        this directory (see :mod:`repro.geometry.cache`): a deployment
        divided by one task is loaded, not rebuilt, by every other task —
        across workers and across repeated ``parallel_sweep`` calls.
        Results are bit-identical either way.  (Under ``fork`` start
        methods the parent's warm in-memory cache is additionally
        inherited copy-on-write for free.)  The environment mutation is
        scoped to this call.
    faults : optional fault model applied to every replication's batch
        stream (forwarded to :func:`replicate_mean_error`); a list or
        tuple instead assigns one model (or None) per point — the
        fault-campaign case, where each point injects a different model.
    obs_dir : when given, the sweep runs with :mod:`repro.obs` enabled
        (in workers too) and writes ``metrics.json`` — the merged
        registries of every task — plus ``trace.jsonl`` into this
        directory.  Results are bit-identical with or without it.  After
        the call the process registry holds the merged sweep metrics.
    share_maps : prebuild the distinct face maps the tasks will need and
        publish them into ``multiprocessing.shared_memory``
        (:mod:`repro.geometry.shm`); pool workers attach zero-copy
        instead of rebuilding or unpickling.  Segments are unlinked in a
        ``finally`` (and belt-and-braces at interpreter exit), so crashes
        and KeyboardInterrupt cannot leak ``/dev/shm`` entries.  Results
        are bit-identical — the shared map is byte-for-byte the built
        map.  Most effective when points revisit the same worlds
        (``seed_stride=0`` campaigns); ignored for inline runs.
    chunksize : tasks handed to a worker per dispatch (``pool.map``
        chunking); the default keeps the pre-existing pool heuristic.
        Larger chunks amortize per-dispatch IPC for many-point sweeps.
    """
    if not points:
        raise ValueError("no sweep points given")
    if isinstance(faults, (list, tuple)):
        if len(faults) != len(points):
            raise ValueError(
                f"per-point faults need one entry per point: "
                f"{len(faults)} models for {len(points)} points"
            )
        per_point_faults = list(faults)
    else:
        per_point_faults = [faults] * len(points)
    with _sweep_environment(cache_dir, obs_dir) as obs_out:
        tasks = [
            (
                {k: v for k, v in cfg.as_dict().items()},
                list(tracker_names),
                n_reps,
                seed + i * seed_stride,
                dict(params),
                deployment,
                per_point_faults[i],
            )
            for i, (cfg, params) in enumerate(points)
        ]
        if n_workers is None:
            n_workers = recommended_workers(len(tasks))
        shared_set = None
        initializer, initargs = None, ()
        if share_maps and n_workers > 1:
            from repro.geometry.shm import SharedFaceMapSet
            from repro.sim.scenario import replication_scenarios

            shared_set = SharedFaceMapSet()
            seen_worlds: set = set()
            for i, (cfg, _params) in enumerate(points):
                task_seed = seed + i * seed_stride
                world_id = (id(cfg), task_seed)
                if world_id in seen_worlds:
                    continue
                seen_worlds.add(world_id)
                for scenario in replication_scenarios(
                    cfg, n_reps=n_reps, seed=task_seed, deployment=deployment
                ):
                    key = scenario.face_map_key()
                    if key not in shared_set:
                        # .face_map builds (or cache-loads) here, once, in
                        # the parent; workers only ever attach
                        shared_set.publish(key, scenario.face_map)
            if len(shared_set):
                initializer, initargs = _pool_init_shared_maps, (shared_set.manifests(),)
        try:
            if n_workers == 1:
                nested = [_run_point(t) for t in tasks]
            else:
                ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
                with ctx.Pool(processes=n_workers, initializer=initializer, initargs=initargs) as pool:
                    nested = pool.map(_run_point, tasks, chunksize=chunksize)
        finally:
            if shared_set is not None:
                shared_set.close()
        records = [rec for group, _ in nested for rec in group]
        if obs_out is not None:
            merged = obs_metrics.MetricsRegistry()
            for _, snap in nested:
                if snap:
                    merged.merge(snap)
            merged.counter("sweep.points").inc(len(tasks))
            merged.counter("sweep.records").inc(len(records))
            merged.counter("sweep.workers").inc(n_workers)
            # stable schema: cache counters always present, even at zero
            for name in (
                "geometry.cache.hits",
                "geometry.cache.misses",
                "geometry.cache.disk_hits",
                "geometry.cache.shm_hits",
                "geometry.cache.evictions",
            ):
                merged.counter(name)
            trace_event(
                "sweep",
                points=len(tasks),
                workers=n_workers,
                records=len(records),
                trackers=list(tracker_names),
            )
            write_metrics(
                obs_out / "metrics.json",
                merged,
                extra={
                    "sweep": {
                        "points": len(tasks),
                        "n_reps": n_reps,
                        "seed": seed,
                        "workers": n_workers,
                        "trackers": list(tracker_names),
                    }
                },
            )
            # leave the merged totals in the process registry for callers
            # (the CLI prints them after the sweep returns)
            obs_metrics.reset()
            obs_metrics.registry().merge(merged.snapshot())
    return records
