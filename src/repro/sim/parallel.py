"""Parallel execution of replicated sweeps.

Replications are embarrassingly parallel: each builds its own world from a
spawned seed and shares nothing.  This module fans sweep points out over a
``multiprocessing`` pool while keeping results **bit-identical** to the
serial path — every task carries its own explicitly-spawned seed, so the
schedule cannot affect the streams (the determinism rule the HPC guides
insist on).

Workers re-import ``repro`` (fork or spawn both work); tasks are coarse
(one full parameter point per task) so IPC overhead is negligible next to
the seconds-long tracking runs inside.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Sequence

from repro.config import SimulationConfig
from repro.sim.experiments import SweepRecord, replicate_mean_error

__all__ = ["parallel_sweep", "recommended_workers"]


def recommended_workers(n_tasks: int) -> int:
    """A sane pool size: no more workers than tasks or cores.

    The ``REPRO_WORKERS`` environment variable overrides the core count —
    CI and users can pin the pool size without threading a parameter
    through every call site (still clamped to the task count; there is
    never a reason to fork more workers than tasks).
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None and env != "":
        try:
            forced = int(env)
        except ValueError:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}") from None
        if forced < 1:
            raise ValueError(f"REPRO_WORKERS must be >= 1, got {forced}")
        return max(1, min(n_tasks, forced))
    cores = os.cpu_count() or 1
    return max(1, min(n_tasks, cores))


def _run_point(args: tuple) -> list[SweepRecord]:
    config_dict, tracker_names, n_reps, seed, params, deployment = args
    grid_cfg = config_dict.pop("grid")
    from repro.config import GridConfig

    config = SimulationConfig(**config_dict, grid=GridConfig(**grid_cfg))
    return replicate_mean_error(
        config,
        tracker_names,
        n_reps=n_reps,
        seed=seed,
        deployment=deployment,
        params=params,
    )


def parallel_sweep(
    points: "Sequence[tuple[SimulationConfig, dict]]",
    tracker_names: Sequence[str],
    *,
    n_reps: int = 3,
    seed: int = 0,
    deployment: str = "random",
    n_workers: "int | None" = None,
    seed_stride: int = 1000,
    cache_dir: "str | os.PathLike | None" = None,
) -> list[SweepRecord]:
    """Run ``replicate_mean_error`` for every (config, params) point in a pool.

    Parameters
    ----------
    points : list of (config, params-dict) pairs; params tag the records.
    tracker_names : trackers evaluated at every point.
    n_reps / deployment : as in :func:`replicate_mean_error`.
    seed : base seed; point *i* uses ``seed + i * seed_stride`` — identical
        to a serial loop, so parallel and serial runs agree exactly.
    n_workers : pool size (default: min(cores, points), overridable via
        ``REPRO_WORKERS``); 1 = run inline (no pool, handy under coverage
        tools and debuggers).
    cache_dir : when given, workers share an on-disk face-map cache at
        this directory (see :mod:`repro.geometry.cache`): a deployment
        divided by one task is loaded, not rebuilt, by every other task —
        across workers and across repeated ``parallel_sweep`` calls.
        Results are bit-identical either way.  (Under ``fork`` start
        methods the parent's warm in-memory cache is additionally
        inherited copy-on-write for free.)
    """
    if not points:
        raise ValueError("no sweep points given")
    if cache_dir is not None:
        # environment propagates to fork and spawn workers alike, and
        # reconfiguring the parent cache covers the inline path too
        from repro.geometry.cache import configure_face_map_cache

        os.environ["REPRO_FACE_CACHE_DIR"] = str(cache_dir)
        configure_face_map_cache(disk_dir=str(cache_dir))
    tasks = [
        (
            {k: v for k, v in cfg.as_dict().items()},
            list(tracker_names),
            n_reps,
            seed + i * seed_stride,
            dict(params),
            deployment,
        )
        for i, (cfg, params) in enumerate(points)
    ]
    if n_workers is None:
        n_workers = recommended_workers(len(tasks))
    if n_workers == 1:
        nested = [_run_point(t) for t in tasks]
    else:
        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        with ctx.Pool(processes=n_workers) as pool:
            nested = pool.map(_run_point, tasks)
    return [rec for group in nested for rec in group]
