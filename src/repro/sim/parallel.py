"""Parallel execution of replicated sweeps.

Replications are embarrassingly parallel: each builds its own world from a
spawned seed and shares nothing.  This module fans sweep points out over a
``multiprocessing`` pool while keeping results **bit-identical** to the
serial path — every task carries its own explicitly-spawned seed, so the
schedule cannot affect the streams (the determinism rule the HPC guides
insist on).

Workers re-import ``repro`` (fork or spawn both work); tasks are coarse
(one full parameter point per task) so IPC overhead is negligible next to
the seconds-long tracking runs inside.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Sequence

from repro.config import SimulationConfig
from repro.sim.experiments import SweepRecord, replicate_mean_error

__all__ = ["parallel_sweep", "recommended_workers"]


def recommended_workers(n_tasks: int) -> int:
    """A sane pool size: no more workers than tasks or cores."""
    cores = os.cpu_count() or 1
    return max(1, min(n_tasks, cores))


def _run_point(args: tuple) -> list[SweepRecord]:
    config_dict, tracker_names, n_reps, seed, params, deployment = args
    grid_cfg = config_dict.pop("grid")
    from repro.config import GridConfig

    config = SimulationConfig(**config_dict, grid=GridConfig(**grid_cfg))
    return replicate_mean_error(
        config,
        tracker_names,
        n_reps=n_reps,
        seed=seed,
        deployment=deployment,
        params=params,
    )


def parallel_sweep(
    points: "Sequence[tuple[SimulationConfig, dict]]",
    tracker_names: Sequence[str],
    *,
    n_reps: int = 3,
    seed: int = 0,
    deployment: str = "random",
    n_workers: "int | None" = None,
    seed_stride: int = 1000,
) -> list[SweepRecord]:
    """Run ``replicate_mean_error`` for every (config, params) point in a pool.

    Parameters
    ----------
    points : list of (config, params-dict) pairs; params tag the records.
    tracker_names : trackers evaluated at every point.
    n_reps / deployment : as in :func:`replicate_mean_error`.
    seed : base seed; point *i* uses ``seed + i * seed_stride`` — identical
        to a serial loop, so parallel and serial runs agree exactly.
    n_workers : pool size (default: min(cores, points)); 1 = run inline
        (no pool, handy under coverage tools and debuggers).
    """
    if not points:
        raise ValueError("no sweep points given")
    tasks = [
        (
            {k: v for k, v in cfg.as_dict().items()},
            list(tracker_names),
            n_reps,
            seed + i * seed_stride,
            dict(params),
            deployment,
        )
        for i, (cfg, params) in enumerate(points)
    ]
    if n_workers is None:
        n_workers = recommended_workers(len(tasks))
    if n_workers == 1:
        nested = [_run_point(t) for t in tasks]
    else:
        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        with ctx.Pool(processes=n_workers) as pool:
            nested = pool.map(_run_point, tasks)
    return [rec for group in nested for rec in group]
