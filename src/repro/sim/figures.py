"""Reusable figure-data generators.

The model-mode series behind Figs. 12(a) and 12(b) are needed by the CLI,
the benchmark harness, and ad-hoc analysis; this module is their single
implementation.  Each generator returns plain nested dicts of floats so
callers can print, assert, or serialize without further plumbing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.apollonius import uncertainty_constant
from repro.geometry.faces import build_face_map
from repro.geometry.grid import Grid
from repro.mobility.waypoint import RandomWaypoint
from repro.network.deployment import random_deployment
from repro.sim.modelmode import ModelSampler, run_model_tracking

__all__ = ["model_mode_error", "fig12a_series", "fig12b_series"]


def model_mode_error(
    *,
    n_sensors: int,
    eps: float = 1.0,
    k: int = 5,
    n_reps: int = 5,
    seed: int = 0,
    field_size: float = 100.0,
    sensing_range: float = 40.0,
    beta: float = 4.0,
    sigma: float = 6.0,
    duration_s: float = 30.0,
    cell_size: float = 2.5,
) -> float:
    """Mean tracking error under the paper's flip-model semantics.

    One replication = fresh random deployment + random-waypoint trace +
    model-mode observations, matched against the Eq. 3 face map built with
    the same epsilon.
    """
    if n_reps < 1:
        raise ValueError(f"need at least one replication, got {n_reps}")
    c = uncertainty_constant(eps, beta, sigma)
    errs = []
    for rep in range(n_reps):
        rep_seed = seed + 31 * rep
        nodes = random_deployment(n_sensors, field_size, rep_seed, min_separation=4.0)
        fm = build_face_map(
            nodes, Grid.square(field_size, cell_size), c, sensing_range=sensing_range
        )
        mob = RandomWaypoint(field_size=field_size, duration_s=duration_s, seed=rep_seed + 1)
        times = np.arange(int(duration_s * 2)) * 0.5
        sampler = ModelSampler(nodes, c, k=k, sensing_range=sensing_range)
        errs.append(
            run_model_tracking(fm, sampler, mob.position(times), times, rep_seed + 2).mean_error
        )
    return float(np.mean(errs))


def fig12a_series(
    eps_values: Sequence[float],
    n_values: Sequence[int],
    *,
    k: int = 5,
    n_reps: int = 5,
    seed: int = 0,
    **kwargs,
) -> dict[int, list[float]]:
    """Fig. 12(a): per-n error series over the resolution axis."""
    if not eps_values or not n_values:
        raise ValueError("need at least one eps and one n value")
    return {
        int(n): [
            model_mode_error(n_sensors=int(n), eps=float(e), k=k, n_reps=n_reps, seed=seed, **kwargs)
            for e in eps_values
        ]
        for n in n_values
    }


def fig12b_series(
    k_values: Sequence[int],
    n_values: Sequence[int],
    *,
    eps: float = 1.0,
    n_reps: int = 5,
    seed: int = 0,
    **kwargs,
) -> dict[int, list[float]]:
    """Fig. 12(b): per-k error series over the sensor-count axis."""
    if not k_values or not n_values:
        raise ValueError("need at least one k and one n value")
    return {
        int(k): [
            model_mode_error(n_sensors=int(n), eps=eps, k=int(k), n_reps=n_reps, seed=seed, **kwargs)
            for n in n_values
        ]
        for k in k_values
    }
