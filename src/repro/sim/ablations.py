"""Ablation drivers for the design choices DESIGN.md calls out.

Each function isolates one decision and returns comparable records:

* ``ablate_uncertainty_constant`` — Eq. 3's expectation constant vs the
  sampling-calibrated constant (why calibration matters);
* ``ablate_matcher_hops`` — Algorithm 2 verbatim (1-hop) vs the shipped
  2-hop climb vs exhaustive;
* ``ablate_soft_signatures`` — extended vectors against qualitative vs
  expected-value signatures;
* ``ablate_noise_structure`` — i.i.d. vs temporally-correlated vs
  common-mode noise (FTTT's pairwise differencing cancels common mode).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.metrics import summarize_errors
from repro.config import SimulationConfig
from repro.core.extended import attach_soft_signatures
from repro.core.tracker import FTTTracker
from repro.rf.channel import RssChannel
from repro.rf.shadowing import CommonModeNoise, TemporallyCorrelatedNoise
from repro.rng import spawn_rngs
from repro.sim.runner import generate_batches
from repro.sim.scenario import Scenario, make_scenario

__all__ = [
    "ablate_uncertainty_constant",
    "ablate_matcher_hops",
    "ablate_soft_signatures",
    "ablate_noise_structure",
]


def _mean_over_reps(config: SimulationConfig, run_one, n_reps: int, seed: int) -> dict[str, float]:
    """Run ``run_one(scenario, rng) -> {variant: TrackResult}`` over reps."""
    rngs = spawn_rngs(seed, 2 * n_reps)
    sums: dict[str, list[float]] = {}
    stds: dict[str, list[float]] = {}
    for rep in range(n_reps):
        scenario = make_scenario(config, seed=rngs[2 * rep])
        results = run_one(scenario, rngs[2 * rep + 1])
        for name, res in results.items():
            s = summarize_errors(res)
            sums.setdefault(name, []).append(s.mean)
            stds.setdefault(name, []).append(s.std)
    out = {}
    for name in sums:
        out[name] = float(np.mean(sums[name]))
        out[name + "/std"] = float(np.mean(stds[name]))
    return out


def ablate_uncertainty_constant(
    config: "SimulationConfig | None" = None, *, n_reps: int = 3, seed: int = 0
) -> dict[str, float]:
    """Paper Eq. 3 constant vs sampling-calibrated constant, same worlds."""
    config = config or SimulationConfig(duration_s=30.0)
    out: dict[str, float] = {}
    for c_mode in ("paper", "calibrated"):
        rngs = spawn_rngs(seed, 2 * n_reps)
        means, stds = [], []
        for rep in range(n_reps):
            scenario = make_scenario(config, seed=rngs[2 * rep], c_mode=c_mode)
            batches = generate_batches(scenario, rngs[2 * rep + 1])
            tracker = scenario.make_tracker("fttt")
            s = summarize_errors(tracker.track(batches))
            means.append(s.mean)
            stds.append(s.std)
        out[c_mode] = float(np.mean(means))
        out[c_mode + "/std"] = float(np.mean(stds))
    return out


def ablate_matcher_hops(
    config: "SimulationConfig | None" = None, *, n_reps: int = 3, seed: int = 0
) -> dict[str, float]:
    """1-hop (Algorithm 2 verbatim) vs 2-hop vs exhaustive matching."""
    config = config or SimulationConfig(n_sensors=20, duration_s=30.0)

    def run_one(scenario: Scenario, rng) -> dict:
        from repro.core.heuristic import HeuristicMatcher

        batches = generate_batches(scenario, rng)
        results = {}
        for label, kind in (("hops=1", 1), ("hops=2", 2)):
            tracker = scenario.make_tracker("fttt")
            tracker.matcher = HeuristicMatcher(scenario.face_map, hops=kind)
            results[label] = tracker.track(batches)
        ex = scenario.make_tracker("fttt-exhaustive")
        results["exhaustive"] = ex.track(batches)
        return results

    return _mean_over_reps(config, run_one, n_reps, seed)


def ablate_soft_signatures(
    config: "SimulationConfig | None" = None, *, n_reps: int = 3, seed: int = 0
) -> dict[str, float]:
    """Extended vectors vs qualitative and expected-value signatures."""
    config = config or SimulationConfig(duration_s=30.0)

    def run_one(scenario: Scenario, rng) -> dict:
        batches = generate_batches(scenario, rng)
        results = {}
        hard = FTTTracker(
            scenario.face_map,
            mode="extended",
            comparator_eps=config.resolution_dbm,
            soft_signatures=False,
        )
        results["extended/hard-sig"] = hard.track(batches)
        attach_soft_signatures(
            scenario.face_map,
            path_loss_exponent=config.path_loss_exponent,
            noise_sigma_dbm=config.noise_sigma_dbm,
            resolution_dbm=config.resolution_dbm,
            sensing_range=config.sensing_range_m,
        )
        soft = FTTTracker(
            scenario.face_map, mode="extended", comparator_eps=config.resolution_dbm
        )
        results["extended/soft-sig"] = soft.track(batches)
        basic = scenario.make_tracker("fttt")
        results["basic"] = basic.track(batches)
        return results

    return _mean_over_reps(config, run_one, n_reps, seed)


def ablate_noise_structure(
    config: "SimulationConfig | None" = None, *, n_reps: int = 3, seed: int = 0
) -> dict[str, float]:
    """i.i.d. vs temporally-correlated vs common-mode shadowing.

    Same total noise power everywhere; what changes is its structure.
    Temporal correlation starves the grouping sampling of independent
    looks (flip capture degrades); common-mode noise cancels in pairwise
    comparisons (FTTT improves).
    """
    config = config or SimulationConfig(duration_s=30.0)
    sigma = config.noise_sigma_dbm
    variants = {
        "iid": None,  # scenario default
        "temporal rho=0.9": TemporallyCorrelatedNoise(sigma_dbm=sigma, rho=0.9),
        "common-mode a=0.7": CommonModeNoise(sigma_dbm=sigma, alpha=0.7),
    }
    out: dict[str, float] = {}
    for label, noise in variants.items():
        rngs = spawn_rngs(seed, 2 * n_reps)
        means, stds = [], []
        for rep in range(n_reps):
            scenario = make_scenario(config, seed=rngs[2 * rep])
            if noise is not None:
                if isinstance(noise, TemporallyCorrelatedNoise):
                    noise.reset()
                scenario.channel = RssChannel(
                    nodes=scenario.nodes,
                    pathloss=scenario.channel.pathloss,
                    noise=noise,
                    sensing_range_m=scenario.channel.sensing_range_m,
                )
                scenario.sampler = type(scenario.sampler)(
                    channel=scenario.channel,
                    k=scenario.sampler.k,
                    sampling_rate_hz=scenario.sampler.sampling_rate_hz,
                )
            batches = generate_batches(scenario, rngs[2 * rep + 1])
            tracker = scenario.make_tracker("fttt")
            s = summarize_errors(tracker.track(batches))
            means.append(s.mean)
            stds.append(s.std)
        out[label] = float(np.mean(means))
        out[label + "/std"] = float(np.mean(stds))
    return out
