"""Tracking-run driver.

Generates the stream of grouping samplings along a scenario's mobility
trace — applying fault models and base-station packet loss — and feeds it
to trackers.  All trackers in one call see the *same* batches (same noise
draws), so differences in their output are purely algorithmic.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.tracker import TrackResult
from repro.network.basestation import BaseStation
from repro.network.faults import FaultModel
from repro.obs import metrics as obs
from repro.rf.channel import SampleBatch
from repro.rng import ensure_rng
from repro.sim.scenario import Scenario

__all__ = [
    "generate_batches",
    "run_tracking",
    "run_all_trackers",
    "run_tracking_with_duty_cycle",
]


def generate_batches(
    scenario: Scenario,
    rng: "np.random.Generator | int | None" = None,
    *,
    faults: FaultModel | None = None,
    basestation: BaseStation | None = None,
    n_rounds: "int | None" = None,
) -> list[SampleBatch]:
    """Materialize every localization round of a tracking run.

    Rounds are spaced by the grouping duration (k samples at the sampling
    rate); each applies the fault model's drop mask, then any value
    corruption it defines (``corrupt``), and finally, if a base station
    is given, its uplink packet loss.  Geometry-aware fault models
    (``bind``) are bound to the scenario's deployment first.
    """
    rng = ensure_rng(rng)
    cfg = scenario.config
    if n_rounds is None:
        n_rounds = cfg.n_localizations
    if n_rounds < 1:
        raise ValueError(f"need at least one round, got {n_rounds}")
    period = scenario.sampler.group_duration_s
    record = obs.enabled()
    has_drop = faults is not None and hasattr(faults, "drop_mask")
    has_value = faults is not None and hasattr(faults, "corrupt")
    if faults is not None and hasattr(faults, "bind"):
        faults.bind(scenario.nodes)  # geometry-aware models (RegionalOutage)
    batches: list[SampleBatch] = []
    for r in range(n_rounds):
        t0 = r * period
        drop = faults.drop_mask(scenario.n_sensors, r, rng) if has_drop else None
        if record and drop is not None:
            obs.counter("faults.rounds").inc()
            obs.histogram("faults.dropped_sensors").observe(int(drop.sum()))
        batch = scenario.sampler.sample_group(scenario.mobility.position, t0, rng, drop_mask=drop)
        if has_value:
            corrupted = faults.corrupt(batch.rss, r, rng)
            if corrupted is not batch.rss:
                if record:
                    obs.counter("faults.value_rounds").inc()
                batch = SampleBatch(
                    rss=corrupted, times=batch.times, positions=batch.positions
                )
        if basestation is not None:
            rnd = basestation.aggregate(batch, t0, rng)
            batch = SampleBatch(rss=rnd.effective_rss, times=batch.times, positions=batch.positions)
        batches.append(batch)
    if record:
        obs.counter("runner.rounds").inc(n_rounds)
    return batches


def run_tracking(
    scenario: Scenario,
    tracker,
    rng: "np.random.Generator | int | None" = None,
    *,
    faults: FaultModel | None = None,
    basestation: BaseStation | None = None,
    n_rounds: "int | None" = None,
    batches: "Sequence[SampleBatch] | None" = None,
) -> TrackResult:
    """Run one tracker over a (generated or supplied) batch stream."""
    if batches is None:
        batches = generate_batches(
            scenario, rng, faults=faults, basestation=basestation, n_rounds=n_rounds
        )
    tracker.reset()
    return tracker.track(batches)


def run_tracking_with_duty_cycle(
    scenario: Scenario,
    tracker,
    controller,
    rng: "np.random.Generator | int | None" = None,
    *,
    n_rounds: "int | None" = None,
):
    """Closed-loop tracking with duty-cycled sensing.

    Each round the controller decides who sleeps (from its prediction of
    the target), the sleepers appear as non-reporters (Eq. 6 handles
    them), and the resulting estimate feeds the controller's predictor.

    Returns ``(TrackResult, controller)`` — the controller carries the
    duty-cycle statistics.
    """
    from repro.core.tracker import TrackResult

    rng = ensure_rng(rng)
    cfg = scenario.config
    if n_rounds is None:
        n_rounds = cfg.n_localizations
    period = scenario.sampler.group_duration_s
    tracker.reset()
    controller.reset()
    result = TrackResult()
    for r in range(n_rounds):
        t0 = r * period
        sleep = controller.sleep_mask(t0)
        batch = scenario.sampler.sample_group(
            scenario.mobility.position, t0, rng, drop_mask=sleep
        )
        est = tracker.localize_batch(batch)
        controller.update(t0, est.position)
        result.append(est, batch.mean_position)
    return result, controller


def run_all_trackers(
    scenario: Scenario,
    tracker_names: Sequence[str],
    rng: "np.random.Generator | int | None" = None,
    *,
    faults: FaultModel | None = None,
    basestation: BaseStation | None = None,
    n_rounds: "int | None" = None,
) -> Mapping[str, TrackResult]:
    """Run several trackers over the *same* batch stream (shared noise)."""
    batches = generate_batches(
        scenario, rng, faults=faults, basestation=basestation, n_rounds=n_rounds
    )
    results: dict[str, TrackResult] = {}
    for name in tracker_names:
        tracker = scenario.make_tracker(name)
        tracker.reset()
        results[name] = tracker.track(batches)
    return results
