"""Scenario assembly: one self-consistent simulated world.

A scenario fixes the deployment, propagation, mobility trace, and both
face maps (uncertain for FTTT, certain/bisector for the baselines), and
manufactures trackers bound to those maps.  All trackers built from the
same scenario therefore see *identical* physics — the comparisons in the
paper's figures are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any

import numpy as np

from repro.baselines.direct_mle import DirectMLETracker
from repro.baselines.nearest import NearestNodeTracker
from repro.baselines.path_matching import PathMatchingTracker
from repro.baselines.pknn import PkNNTracker
from repro.baselines.range_mle import RangeMLETracker
from repro.baselines.weighted_centroid import WeightedCentroidTracker
from repro.config import SimulationConfig
from repro.core.tracker import FTTTracker
from repro.geometry.apollonius import effective_uncertainty_constant, uncertainty_constant
from repro.geometry.cache import get_face_map
from repro.geometry.faces import FaceMap
from repro.geometry.grid import Grid
from repro.mobility.base import MobilityModel
from repro.mobility.waypoint import RandomWaypoint
from repro.network.deployment import cross_deployment, grid_deployment, random_deployment
from repro.network.sensing import GroupSampler
from repro.rf.channel import RssChannel
from repro.rf.noise import GaussianNoise
from repro.rf.pathloss import LogDistancePathLoss
from repro.rng import ensure_rng

__all__ = ["Scenario", "make_scenario", "replication_scenarios", "TRACKER_NAMES"]

TRACKER_NAMES = (
    "fttt",
    "fttt-extended",
    "fttt-exhaustive",
    "fttt-robust",
    "fttt-zero",
    "pm",
    "direct-mle",
    "range-mle",
    "pknn",
    "weighted-centroid",
    "kalman",
    "particle",
    "nearest",
)


@dataclass
class Scenario:
    """A fully-specified simulated world plus tracker factory."""

    config: SimulationConfig
    nodes: np.ndarray
    channel: RssChannel
    sampler: GroupSampler
    mobility: MobilityModel
    uncertainty_c: float
    _face_map: FaceMap | None = field(default=None, repr=False)
    _certain_map: FaceMap | None = field(default=None, repr=False)

    @property
    def n_sensors(self) -> int:
        return len(self.nodes)

    @cached_property
    def grid(self) -> Grid:
        return Grid.square(self.config.field_size_m, self.config.grid.cell_size_m)

    @property
    def face_map(self) -> FaceMap:
        """Uncertain-boundary face map (built lazily; served from the
        content-addressed cache when the same world was divided before —
        see :mod:`repro.geometry.cache`)."""
        if self._face_map is None:
            self._face_map = get_face_map(
                self.nodes,
                self.grid,
                self.uncertainty_c,
                sensing_range=self.config.sensing_range_m,
                split_components=self.config.grid.split_components,
                kind="uncertain",
            )
        return self._face_map

    def face_map_key(self) -> str:
        """Content-addressed cache key of the uncertain face map.

        The same key :func:`~repro.geometry.cache.get_face_map` derives —
        used to publish prebuilt maps into shared memory so pool workers
        attach instead of rebuilding (see :mod:`repro.geometry.shm`).
        """
        from repro.geometry.cache import face_map_cache_key

        return face_map_cache_key(
            self.nodes,
            self.grid,
            self.uncertainty_c,
            sensing_range=self.config.sensing_range_m,
            split_components=self.config.grid.split_components,
            kind="uncertain",
        )

    @property
    def certain_map(self) -> FaceMap:
        """Bisector-only face map for the certain-sequence baselines."""
        if self._certain_map is None:
            self._certain_map = get_face_map(
                self.nodes,
                self.grid,
                1.0,
                sensing_range=None,
                split_components=self.config.grid.split_components,
                kind="certain",
            )
        return self._certain_map

    def make_tracker(self, name: str, **overrides: Any):
        """Build a tracker bound to this scenario's maps.

        Names: ``fttt`` (basic, heuristic matching), ``fttt-extended``
        (quantitative vectors), ``fttt-exhaustive`` (basic, full scan),
        ``fttt-robust`` (basic + the fault-lab degradation policy),
        ``fttt-zero`` (naive-zeroing strawman: ``*`` becomes 0),
        ``pm``, ``direct-mle``, ``range-mle``, ``pknn``,
        ``weighted-centroid``, ``nearest``.
        """
        if name.startswith("fttt"):
            overrides.setdefault("comparator_eps", self.config.resolution_dbm)
        if name == "fttt":
            return FTTTracker(self.face_map, mode="basic", matcher="heuristic", **overrides)
        if name == "fttt-robust":
            from repro.core.tracker import DegradationPolicy

            overrides.setdefault("degradation", DegradationPolicy())
            return FTTTracker(self.face_map, mode="basic", matcher="heuristic", **overrides)
        if name == "fttt-zero":
            from repro.faultlab.strawmen import ZeroFillFTTT

            return ZeroFillFTTT(self.face_map, mode="basic", matcher="heuristic", **overrides)
        if name == "fttt-extended":
            from repro.core.extended import attach_soft_signatures

            attach_soft_signatures(
                self.face_map,
                path_loss_exponent=self.config.path_loss_exponent,
                noise_sigma_dbm=self.config.noise_sigma_dbm,
                resolution_dbm=self.config.resolution_dbm,
                sensing_range=self.config.sensing_range_m,
            )
            return FTTTracker(self.face_map, mode="extended", matcher="heuristic", **overrides)
        if name == "fttt-exhaustive":
            return FTTTracker(self.face_map, mode="basic", matcher="exhaustive", **overrides)
        if name == "pm":
            overrides.setdefault("vmax_mps", self.config.target_speed_max_mps)
            return PathMatchingTracker(self.certain_map, **overrides)
        if name == "direct-mle":
            return DirectMLETracker(self.certain_map, **overrides)
        if name == "range-mle":
            overrides.setdefault("field_size", self.config.field_size_m)
            return RangeMLETracker(self.nodes, self.channel.pathloss, **overrides)
        if name == "kalman":
            from repro.baselines.kalman import KalmanTracker

            inner = RangeMLETracker(
                self.nodes, self.channel.pathloss, field_size=self.config.field_size_m
            )
            overrides.setdefault("field_size", self.config.field_size_m)
            return KalmanTracker(inner, **overrides)
        if name == "particle":
            from repro.baselines.particle import ParticleFilterTracker

            overrides.setdefault("noise_sigma_dbm", self.config.noise_sigma_dbm)
            overrides.setdefault("field_size", self.config.field_size_m)
            overrides.setdefault("sensing_range_m", self.config.sensing_range_m)
            return ParticleFilterTracker(self.nodes, self.channel.pathloss, **overrides)
        if name == "pknn":
            return PkNNTracker(self.nodes, **overrides)
        if name == "weighted-centroid":
            return WeightedCentroidTracker(self.nodes, **overrides)
        if name == "nearest":
            return NearestNodeTracker(self.nodes)
        raise ValueError(f"unknown tracker {name!r}; choose from {TRACKER_NAMES}")


def make_scenario(
    config: SimulationConfig | None = None,
    *,
    deployment: str = "random",
    seed: "int | np.random.Generator | None" = None,
    nodes: np.ndarray | None = None,
    mobility: MobilityModel | None = None,
    c_mode: str = "calibrated",
) -> Scenario:
    """Build a scenario from a config.

    Parameters
    ----------
    config : simulation parameters (defaults to the paper's baseline point).
    deployment : ``"random"`` (uniform, Fig. 10c-d), ``"grid"``
        (Fig. 10a-b), or ``"cross"`` (the Fig. 13 "+" shape); ignored when
        explicit *nodes* are given.
    seed : drives deployment and the mobility trace (observation noise uses
        the separate RNG passed to the runner).
    mobility : override the default random-waypoint trace.
    c_mode : how the uncertainty constant is derived — ``"calibrated"``
        (default) matches the k-sample flip statistics
        (:func:`~repro.geometry.apollonius.effective_uncertainty_constant`);
        ``"paper"`` uses the paper's Eq. 3 expectation form verbatim.
    """
    config = config or SimulationConfig()
    rng = ensure_rng(seed)
    if nodes is None:
        if deployment == "random":
            nodes = random_deployment(
                config.n_sensors, config.field_size_m, rng, min_separation=2.0 * config.grid.cell_size_m
            )
        elif deployment == "grid":
            nodes = grid_deployment(config.n_sensors, config.field_size_m)
        elif deployment == "cross":
            nodes = cross_deployment(config.field_size_m, arm_nodes=max(1, (config.n_sensors - 1) // 4))
        else:
            raise ValueError(f"unknown deployment {deployment!r}")
    else:
        nodes = np.atleast_2d(np.asarray(nodes, dtype=float))

    pathloss = LogDistancePathLoss(
        exponent=config.path_loss_exponent, p0_dbm=config.tx_power_dbm
    )
    channel = RssChannel(
        nodes=nodes,
        pathloss=pathloss,
        noise=GaussianNoise(config.noise_sigma_dbm),
        sensing_range_m=config.sensing_range_m,
    )
    sampler = GroupSampler(
        channel=channel,
        k=config.sampling_times,
        sampling_rate_hz=config.sampling_rate_hz,
    )
    if mobility is None:
        mobility = RandomWaypoint(
            field_size=config.field_size_m,
            duration_s=config.duration_s,
            speed_range=(config.target_speed_min_mps, config.target_speed_max_mps),
            seed=rng,
        )
    if c_mode == "calibrated":
        c = effective_uncertainty_constant(
            config.resolution_dbm,
            config.path_loss_exponent,
            config.noise_sigma_dbm,
            config.sampling_times,
        )
    elif c_mode == "paper":
        c = uncertainty_constant(
            config.resolution_dbm, config.path_loss_exponent, config.noise_sigma_dbm
        )
    else:
        raise ValueError(f"unknown c_mode {c_mode!r}")
    return Scenario(
        config=config,
        nodes=nodes,
        channel=channel,
        sampler=sampler,
        mobility=mobility,
        uncertainty_c=c,
    )


def replication_scenarios(
    config: SimulationConfig,
    *,
    n_reps: int,
    seed: int,
    deployment: str = "random",
) -> list[Scenario]:
    """The exact worlds ``replicate_mean_error(config, seed=seed, ...)`` visits.

    Replicates its RNG protocol — ``spawn_rngs(seed, 2 * n_reps)`` with the
    even streams driving the scenarios — so a sweep parent can prebuild the
    face maps its pool tasks will need and publish them into shared memory.
    Maps are *not* built here; access ``scenario.face_map`` to build.
    """
    from repro.rng import spawn_rngs

    rngs = spawn_rngs(seed, 2 * n_reps)
    return [
        make_scenario(config, deployment=deployment, seed=rngs[2 * rep])
        for rep in range(n_reps)
    ]
