"""Named scenario presets.

One-line access to the operating points the repository discusses: the
paper's Table-1 baseline, density extremes, degraded-network stress, the
outdoor-scale world, and a momentum target.  Presets are plain functions
of a seed so call sites stay explicit about randomness.
"""

from __future__ import annotations

from typing import Callable

from repro.config import GridConfig, SimulationConfig
from repro.sim.scenario import Scenario, make_scenario

__all__ = ["PRESETS", "list_presets", "make_preset"]


def _paper_baseline(seed) -> Scenario:
    """Table-1 defaults: 10 random sensors, k=5, eps=1, sigma=6, 60 s."""
    return make_scenario(SimulationConfig(), seed=seed)


def _dense_grid(seed) -> Scenario:
    """36 sensors on a grid — the accuracy-saturated regime of Fig. 11."""
    cfg = SimulationConfig(n_sensors=36, grid=GridConfig(cell_size_m=2.0))
    return make_scenario(cfg, deployment="grid", seed=seed)


def _sparse(seed) -> Scenario:
    """5 sensors — the steep left edge of Fig. 11, coverage holes included."""
    cfg = SimulationConfig(n_sensors=5)
    return make_scenario(cfg, seed=seed)


def _noisy_coarse(seed) -> Scenario:
    """Worst Table-1 corner: eps = 3 dBm, k = 3."""
    cfg = SimulationConfig(resolution_dbm=3.0, sampling_times=3)
    return make_scenario(cfg, seed=seed)


def _outdoor_scale(seed) -> Scenario:
    """A 40 m playground with the cross deployment (RF twin of Fig. 13)."""
    cfg = SimulationConfig(
        field_size_m=40.0,
        n_sensors=9,
        sensing_range_m=30.0,
        grid=GridConfig(cell_size_m=0.5),
    )
    return make_scenario(cfg, deployment="cross", seed=seed)


def _momentum_target(seed) -> Scenario:
    """Gauss-Markov walker instead of random waypoint."""
    from repro.mobility.gauss_markov import GaussMarkov
    from repro.rng import ensure_rng

    rng = ensure_rng(seed)
    cfg = SimulationConfig(n_sensors=15)
    mobility = GaussMarkov(
        field_size=cfg.field_size_m, duration_s=cfg.duration_s, seed=rng
    )
    return make_scenario(cfg, seed=rng, mobility=mobility)


PRESETS: dict[str, Callable] = {
    "paper-baseline": _paper_baseline,
    "dense-grid": _dense_grid,
    "sparse": _sparse,
    "noisy-coarse": _noisy_coarse,
    "outdoor-scale": _outdoor_scale,
    "momentum-target": _momentum_target,
}


def list_presets() -> list[tuple[str, str]]:
    """(name, description) for every preset."""
    return [(name, (fn.__doc__ or "").strip().split("\n")[0]) for name, fn in PRESETS.items()]


def make_preset(name: str, seed: "int | None" = 0) -> Scenario:
    """Build a preset scenario by name."""
    if name not in PRESETS:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(f"unknown preset {name!r}; choose from: {known}")
    return PRESETS[name](seed)
