"""Result serialization: sweep records to CSV / JSON and back.

The benchmark harness writes every figure's regenerated series next to the
printed table so results can be diffed across runs and plotted externally.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence

from repro.sim.experiments import SweepRecord

__all__ = ["records_to_csv", "records_to_json", "load_records_json"]


def _rows(records: Sequence[SweepRecord]) -> tuple[list[str], list[dict]]:
    if not records:
        raise ValueError("no records to serialize")
    dicts = [r.as_dict() for r in records]
    keys: list[str] = []
    for d in dicts:
        for k in d:
            if k not in keys:
                keys.append(k)
    return keys, dicts


def records_to_csv(records: Sequence[SweepRecord], path: "str | Path") -> Path:
    """Write sweep records as CSV; returns the path written."""
    path = Path(path)
    keys, dicts = _rows(records)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=keys)
        writer.writeheader()
        for d in dicts:
            writer.writerow(d)
    return path


def records_to_json(records: Sequence[SweepRecord], path: "str | Path") -> Path:
    """Write sweep records as JSON; returns the path written."""
    path = Path(path)
    _, dicts = _rows(records)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(dicts, indent=2, sort_keys=True))
    return path


def load_records_json(path: "str | Path") -> list[dict]:
    """Load records previously written by :func:`records_to_json`."""
    return json.loads(Path(path).read_text())
