"""Model-coupled observation semantics (the paper's simulator model).

The paper's analysis (§5) generates pair flips *from the geometry*: a pair
whose uncertain area contains the target flips, and a k-sample grouping
captures that flip with probability ``1 - (1/2)^(k-1)``; outside the area
the ordering is read correctly.  Its evaluation figures are consistent
with this coupling — in particular the Fig. 12(a) sensitivity to the
sensing resolution epsilon, which a faithful physical-noise channel at
Table 1's sigma = 6 dB washes out (noise, not the comparator, dominates;
see EXPERIMENTS.md).

This module reproduces those semantics: observations are sampling vectors
drawn directly from the Eq. 3/4 uncertain-area model, with no separate
RSS noise process.  The physical RSS channel remains the default for all
other experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.sampling_times import miss_probability
from repro.core.tracker import TrackEstimate, TrackResult
from repro.geometry.apollonius import classify_points_pairwise
from repro.geometry.faces import FaceMap
from repro.geometry.primitives import enumerate_pairs
from repro.rng import ensure_rng

__all__ = ["ModelSampler", "run_model_tracking"]


@dataclass
class ModelSampler:
    """Draws sampling vectors from the paper's flip model.

    Parameters
    ----------
    nodes : (n, 2) sensor positions.
    c : uncertainty constant defining the pair bands (paper Eq. 3).
    k : grouping-sampling size; the flip-miss probability is (1/2)^(k-1).
    sensing_range : optional hearing radius (Eq. 6 semantics for silent pairs).
    """

    nodes: np.ndarray
    c: float
    k: int = 5
    sensing_range: "float | None" = None

    def __post_init__(self) -> None:
        self.nodes = np.atleast_2d(np.asarray(self.nodes, dtype=float))
        if self.c < 1.0:
            raise ValueError(f"uncertainty constant must be >= 1, got {self.c}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        self._pairs = enumerate_pairs(len(self.nodes))

    @property
    def miss_prob(self) -> float:
        return miss_probability(self.k)

    def true_signature(self, position: np.ndarray) -> np.ndarray:
        """Exact (non-rasterized) signature of the target position."""
        return classify_points_pairwise(
            np.asarray(position, dtype=float).reshape(1, 2),
            self.nodes,
            self.c,
            self._pairs,
            sensing_range=self.sensing_range,
        )[0].astype(float)

    def sample_group_vector(self, position: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """FTTT grouping-sampling vector under the model.

        Certain pairs read correctly; uncertain pairs are captured as
        flipped (0) with probability ``1 - f`` and otherwise appear ordinal
        in a uniformly random direction (§5.1's miss event).
        """
        sig = self.true_signature(position)
        out = sig.copy()
        uncertain = sig == 0.0
        n_unc = int(uncertain.sum())
        if n_unc:
            missed = rng.random(n_unc) < self.miss_prob
            directions = rng.choice([-1.0, 1.0], size=n_unc)
            out[uncertain] = np.where(missed, directions, 0.0)
        return out

    def sample_oneshot_vector(self, position: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One-shot detection-sequence vector (what the certain-sequence
        baselines observe): uncertain pairs are a fair coin every time."""
        sig = self.true_signature(position)
        out = sig.copy()
        uncertain = sig == 0.0
        n_unc = int(uncertain.sum())
        if n_unc:
            out[uncertain] = rng.choice([-1.0, 1.0], size=n_unc)
        return out


def run_model_tracking(
    face_map: FaceMap,
    sampler: ModelSampler,
    positions: np.ndarray,
    times: np.ndarray,
    rng: "np.random.Generator | int | None" = None,
    *,
    observation: str = "group",
    matcher: str = "exhaustive",
) -> TrackResult:
    """Track a position sequence under model-mode observations.

    Parameters
    ----------
    face_map : map whose signatures the vectors are matched against.
    sampler : the model-mode observation source.
    positions : (T, 2) true target positions per round.
    times : (T,) round times.
    observation : ``"group"`` (FTTT grouping vectors) or ``"oneshot"``
        (baseline detection-sequence vectors).
    matcher : ``"exhaustive"`` or ``"heuristic"``.
    """
    from repro.core.heuristic import HeuristicMatcher
    from repro.core.matching import ExhaustiveMatcher

    rng = ensure_rng(rng)
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    times = np.asarray(times, dtype=float)
    if len(positions) != len(times):
        raise ValueError("positions and times must have equal length")
    if observation not in ("group", "oneshot"):
        raise ValueError(f"unknown observation {observation!r}")
    if matcher == "heuristic":
        m = HeuristicMatcher(face_map)
    elif matcher == "exhaustive":
        m = ExhaustiveMatcher(face_map)
    else:
        raise ValueError(f"unknown matcher {matcher!r}")

    result = TrackResult()
    for t, p in zip(times, positions):
        if observation == "group":
            v = sampler.sample_group_vector(p, rng)
        else:
            v = sampler.sample_oneshot_vector(p, rng)
        match = m.match(v)
        result.append(
            TrackEstimate(
                t=float(t),
                position=match.position,
                face_ids=match.face_ids,
                sq_distance=match.sq_distance,
                n_reporting=len(sampler.nodes),
                visited_faces=match.visited,
            ),
            p,
        )
    return result
