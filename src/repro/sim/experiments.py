"""Replicated parameter sweeps — the engines behind Figs. 11 and 12.

Every sweep replicates each parameter point over several independent
worlds (fresh deployment, trace, and noise per replication via spawned
RNG streams) and aggregates mean tracking error and its standard
deviation, which is exactly what the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis.metrics import summarize_errors
from repro.config import SimulationConfig
from repro.network.faults import FaultModel
from repro.obs.tracing import span
from repro.rng import spawn_rngs
from repro.sim.runner import run_all_trackers
from repro.sim.scenario import Scenario, make_scenario

__all__ = [
    "SweepRecord",
    "replicate_mean_error",
    "sweep_n_sensors",
    "sweep_resolution",
    "sweep_sampling_times",
    "sweep_basic_vs_extended",
]


@dataclass(frozen=True)
class SweepRecord:
    """One (parameter point, tracker) cell of a sweep."""

    tracker: str
    params: dict
    mean_error: float
    std_error: float
    mean_of_std: float  # mean per-run std (trajectory roughness)
    n_reps: int
    p95_error: float = float("nan")  # pooled 95th-percentile round error
    lost_track_rate: float = float("nan")  # rounds beyond the lost-track radius
    per_rep_means: tuple[float, ...] = field(default=(), repr=False)

    def as_dict(self) -> dict:
        d = {
            "tracker": self.tracker,
            "mean_error": self.mean_error,
            "std_error": self.std_error,
            "mean_of_std": self.mean_of_std,
            "p95_error": self.p95_error,
            "lost_track_rate": self.lost_track_rate,
            "n_reps": self.n_reps,
        }
        d.update(self.params)
        return d


def replicate_mean_error(
    config: SimulationConfig,
    tracker_names: Sequence[str],
    *,
    n_reps: int = 3,
    seed: int = 0,
    deployment: str = "random",
    params: "dict | None" = None,
    faults: "FaultModel | None" = None,
    lost_track_threshold_m: "float | None" = None,
) -> list[SweepRecord]:
    """Run every tracker over *n_reps* independent worlds; aggregate errors.

    ``mean_error`` averages each replication's mean tracking error;
    ``std_error`` is the pooled standard deviation of *all* per-round
    errors across replications (the quantity of Figs. 11c / 12d);
    ``mean_of_std`` averages the per-run stds.  ``p95_error`` is the
    95th percentile of the pooled per-round errors, and
    ``lost_track_rate`` the fraction of rounds whose error exceeds
    ``lost_track_threshold_m`` (default: a quarter of the field side —
    an estimate that far off is tracking a different part of the field).
    ``faults`` applies the given fault model to every replication's
    batch stream (the Eq. 6-7 masking then shows up in the per-round
    observability metrics).
    """
    if n_reps < 1:
        raise ValueError(f"need at least one replication, got {n_reps}")
    if lost_track_threshold_m is None:
        lost_track_threshold_m = config.field_size_m / 4.0
    params = dict(params or {})
    # two independent streams per rep: world construction and observation noise
    rngs = spawn_rngs(seed, 2 * n_reps)
    per_tracker_means: dict[str, list[float]] = {n: [] for n in tracker_names}
    per_tracker_all_errors: dict[str, list[np.ndarray]] = {n: [] for n in tracker_names}
    per_tracker_stds: dict[str, list[float]] = {n: [] for n in tracker_names}
    for rep in range(n_reps):
        with span("replication", rep=rep, seed=seed, **params):
            scenario = make_scenario(config, deployment=deployment, seed=rngs[2 * rep])
            results = run_all_trackers(scenario, tracker_names, rngs[2 * rep + 1], faults=faults)
        for name, res in results.items():
            summary = summarize_errors(res)
            per_tracker_means[name].append(summary.mean)
            per_tracker_stds[name].append(summary.std)
            per_tracker_all_errors[name].append(res.errors)
    records = []
    for name in tracker_names:
        pooled = np.concatenate(per_tracker_all_errors[name])
        records.append(
            SweepRecord(
                tracker=name,
                params=params,
                mean_error=float(np.mean(per_tracker_means[name])),
                std_error=float(pooled.std()),
                mean_of_std=float(np.mean(per_tracker_stds[name])),
                n_reps=n_reps,
                p95_error=float(np.quantile(pooled, 0.95)) if len(pooled) else float("nan"),
                lost_track_rate=(
                    float((pooled > lost_track_threshold_m).mean()) if len(pooled) else float("nan")
                ),
                per_rep_means=tuple(per_tracker_means[name]),
            )
        )
    return records


def sweep_n_sensors(
    n_values: Sequence[int],
    tracker_names: Sequence[str],
    *,
    base_config: "SimulationConfig | None" = None,
    n_reps: int = 3,
    seed: int = 0,
) -> list[SweepRecord]:
    """Fig. 11(b,c): tracking error vs number of sensors (k=5, eps=1)."""
    base = base_config or SimulationConfig()
    records: list[SweepRecord] = []
    for i, n in enumerate(n_values):
        cfg = base.with_(n_sensors=int(n))
        records.extend(
            replicate_mean_error(
                cfg,
                tracker_names,
                n_reps=n_reps,
                seed=seed + 1000 * i,
                params={"n_sensors": int(n)},
            )
        )
    return records


def sweep_resolution(
    eps_values: Sequence[float],
    n_values: Sequence[int],
    *,
    base_config: "SimulationConfig | None" = None,
    n_reps: int = 3,
    seed: int = 0,
    tracker: str = "fttt",
) -> list[SweepRecord]:
    """Fig. 12(a): FTTT error vs sensing resolution for several n (k=5)."""
    base = base_config or SimulationConfig()
    records: list[SweepRecord] = []
    # common random numbers across the eps axis (see sweep_sampling_times)
    for i, n in enumerate(n_values):
        for eps in eps_values:
            cfg = base.with_(n_sensors=int(n), resolution_dbm=float(eps))
            records.extend(
                replicate_mean_error(
                    cfg,
                    [tracker],
                    n_reps=n_reps,
                    seed=seed + 1000 * i,
                    params={"n_sensors": int(n), "resolution_dbm": float(eps)},
                )
            )
    return records


def sweep_sampling_times(
    k_values: Sequence[int],
    n_values: Sequence[int],
    *,
    base_config: "SimulationConfig | None" = None,
    n_reps: int = 3,
    seed: int = 0,
    tracker: str = "fttt",
) -> list[SweepRecord]:
    """Fig. 12(b): FTTT error vs n for several sampling times k (eps=1)."""
    base = base_config or SimulationConfig()
    records: list[SweepRecord] = []
    # common random numbers: every k shares the same worlds per n, so the
    # k-trend is not confounded by deployment/trace luck
    for k in k_values:
        for j, n in enumerate(n_values):
            cfg = base.with_(sampling_times=int(k), n_sensors=int(n))
            records.extend(
                replicate_mean_error(
                    cfg,
                    [tracker],
                    n_reps=n_reps,
                    seed=seed + 97 * j,
                    params={"sampling_times": int(k), "n_sensors": int(n)},
                )
            )
    return records


def sweep_basic_vs_extended(
    n_values: Sequence[int],
    *,
    base_config: "SimulationConfig | None" = None,
    n_reps: int = 3,
    seed: int = 0,
) -> list[SweepRecord]:
    """Fig. 12(c,d): basic vs extended FTTT mean error and error std."""
    base = base_config or SimulationConfig()
    records: list[SweepRecord] = []
    for i, n in enumerate(n_values):
        cfg = base.with_(n_sensors=int(n))
        records.extend(
            replicate_mean_error(
                cfg,
                ["fttt", "fttt-extended"],
                n_reps=n_reps,
                seed=seed + 1000 * i,
                params={"n_sensors": int(n)},
            )
        )
    return records
