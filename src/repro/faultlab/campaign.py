"""Fault-injection campaign driver: robustness curves per fault family.

A campaign sweeps fault type × intensity over a fixed set of trackers,
fanning the points out through :func:`repro.sim.parallel.parallel_sweep`
(so campaigns inherit its scoped environment handling and its serial /
parallel bit-identity), and emits robustness curves — mean error, p95
error, and lost-track rate vs fault intensity — as ``robustness.csv``
plus the sweep's merged ``metrics.json``.

Every point runs with the *same* base seed (``seed_stride=0``): all
(family, intensity) cells share identical worlds and noise, so a curve's
shape is the fault's doing, not replication luck, and trackers within a
cell see byte-identical batch streams.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.config import GridConfig, SimulationConfig
from repro.network.faults import (
    ByzantineRSS,
    CalibrationDrift,
    IndependentDropout,
    RegionalOutage,
    StuckReading,
)
from repro.sim.experiments import SweepRecord
from repro.sim.io import records_to_csv
from repro.sim.parallel import parallel_sweep

__all__ = [
    "FAULT_FAMILIES",
    "VALUE_FAULT_FAMILIES",
    "DEFAULT_TRACKERS",
    "DEFAULT_INTENSITIES",
    "CampaignResult",
    "campaign_config",
    "build_fault",
    "run_campaign",
]

DEFAULT_TRACKERS = ("fttt", "fttt-robust", "fttt-zero")
DEFAULT_INTENSITIES = (0.0, 0.1, 0.2, 0.3)


def _dropout(intensity: float, config: SimulationConfig):
    return IndependentDropout(p=intensity)


def _byzantine(intensity: float, config: SimulationConfig):
    return ByzantineRSS(fraction=intensity)


def _stuck(intensity: float, config: SimulationConfig):
    # stick within the first third of the run, so the fault has time to bite
    return StuckReading(
        fraction=intensity, horizon_rounds=max(1, config.n_localizations // 3)
    )


def _drift(intensity: float, config: SimulationConfig):
    # intensity 0.3 -> 0.6 dB/round: a few dozen rounds in, biases rival
    # the RSS differences the pair orderings are built from
    return CalibrationDrift(drift_db_per_round=2.0 * intensity)


def _regional(intensity: float, config: SimulationConfig):
    return RegionalOutage(
        radius_m=0.2 * config.field_size_m, p_start=intensity, duration_rounds=4
    )


FAULT_FAMILIES: "dict[str, Callable[[float, SimulationConfig], object]]" = {
    "dropout": _dropout,
    "byzantine": _byzantine,
    "stuck": _stuck,
    "drift": _drift,
    "regional": _regional,
}

#: The families whose faults corrupt *values* (the sensors still report) —
#: the regime Eq. 6/7 alone cannot defend and the degradation policy targets.
VALUE_FAULT_FAMILIES = ("byzantine", "stuck", "drift")


def campaign_config(*, quick: bool = False) -> SimulationConfig:
    """The campaign's default world: every sensor hears the whole field.

    With the paper's 40 m sensing range, most pair values are already
    ``*`` from geometry and the curves mostly measure omission handling.
    Full coverage isolates what the campaign is after: faulty sensors
    that *keep reporting* plausible-looking values.
    """
    return SimulationConfig(
        n_sensors=12,
        duration_s=20.0 if quick else 40.0,
        sensing_range_m=150.0,
        grid=GridConfig(cell_size_m=4.0 if quick else 2.5),
    )


def build_fault(family: str, intensity: float, config: SimulationConfig):
    """Instantiate one family's model at the given intensity (None at 0 stays a model)."""
    try:
        builder = FAULT_FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown fault family {family!r}; choose from {sorted(FAULT_FAMILIES)}"
        ) from None
    if not (0.0 <= intensity <= 1.0):
        raise ValueError(f"intensity must be in [0, 1], got {intensity}")
    return builder(float(intensity), config)


@dataclass(frozen=True)
class CampaignResult:
    """A finished campaign: the records plus where the artifacts landed."""

    records: "list[SweepRecord]"
    csv_path: "Path | None" = None
    metrics_path: "Path | None" = None

    def curve(self, family: str, tracker: str) -> "list[SweepRecord]":
        """One robustness curve: records for (family, tracker), by intensity."""
        recs = [
            r
            for r in self.records
            if r.params.get("fault") == family and r.tracker == tracker
        ]
        return sorted(recs, key=lambda r: r.params["intensity"])


def run_campaign(
    families: "Sequence[str] | None" = None,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    trackers: Sequence[str] = DEFAULT_TRACKERS,
    *,
    config: "SimulationConfig | None" = None,
    n_reps: int = 2,
    seed: int = 0,
    deployment: str = "random",
    out_dir: "str | os.PathLike | None" = None,
    n_workers: "int | None" = None,
    cache_dir: "str | os.PathLike | None" = None,
    share_maps: bool = True,
    chunksize: "int | None" = None,
) -> CampaignResult:
    """Sweep fault type × intensity and emit robustness curves.

    Parameters
    ----------
    families : fault families to inject (default: all of
        :data:`FAULT_FAMILIES`).  Intensity semantics per family:
        dropout/regional — per-round probability; byzantine/stuck —
        victim fraction; drift — 2·intensity dB/round bias growth.
    intensities : shared intensity grid (include 0.0 for the clean anchor).
    trackers : tracker names evaluated at every cell, over shared batches.
    config : campaign world (default :func:`campaign_config`).
    n_reps / seed / deployment / n_workers / cache_dir : forwarded to
        :func:`parallel_sweep`; all cells share the same base seed.
    out_dir : when given, writes ``robustness.csv`` and the sweep's
        ``metrics.json`` + ``trace.jsonl`` there.
    share_maps : default True — every cell shares the same worlds
        (``seed_stride=0``), so the campaign prebuilds the ``n_reps``
        face maps once and pool workers attach them zero-copy via shared
        memory instead of rebuilding per task.  Bit-identical either way.
    chunksize : task chunking for the pool (see :func:`parallel_sweep`).
    """
    if families is None:
        families = tuple(FAULT_FAMILIES)
    if not families or not intensities or not trackers:
        raise ValueError("need at least one family, intensity, and tracker")
    config = config or campaign_config()
    points = []
    faults = []
    for family in families:
        for intensity in intensities:
            points.append(
                (config, {"fault": family, "intensity": float(intensity)})
            )
            faults.append(build_fault(family, intensity, config))
    records = parallel_sweep(
        points,
        list(trackers),
        n_reps=n_reps,
        seed=seed,
        deployment=deployment,
        n_workers=n_workers,
        seed_stride=0,  # matched worlds across every cell
        cache_dir=cache_dir,
        faults=faults,
        obs_dir=out_dir,
        share_maps=share_maps,
        chunksize=chunksize,
    )
    csv_path = metrics_path = None
    if out_dir is not None:
        out = Path(out_dir)
        csv_path = records_to_csv(records, out / "robustness.csv")
        metrics_path = out / "metrics.json"  # written by parallel_sweep
    return CampaignResult(records=records, csv_path=csv_path, metrics_path=metrics_path)
