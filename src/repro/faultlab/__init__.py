"""Fault lab: adversarial fault injection and robustness campaigns.

The fault models themselves live in :mod:`repro.network.faults` (they
are part of the network substrate); this package adds what surrounds
them — the strawman trackers the defenses are benchmarked against
(:mod:`repro.faultlab.strawmen`) and the campaign driver that sweeps
fault type × intensity into robustness curves
(:mod:`repro.faultlab.campaign`, surfaced as ``fttt faultlab``).
"""

from repro.faultlab.campaign import (
    DEFAULT_INTENSITIES,
    DEFAULT_TRACKERS,
    FAULT_FAMILIES,
    VALUE_FAULT_FAMILIES,
    CampaignResult,
    build_fault,
    campaign_config,
    run_campaign,
)
from repro.faultlab.strawmen import ZeroFillFTTT

__all__ = [
    "FAULT_FAMILIES",
    "VALUE_FAULT_FAMILIES",
    "DEFAULT_TRACKERS",
    "DEFAULT_INTENSITIES",
    "CampaignResult",
    "build_fault",
    "campaign_config",
    "run_campaign",
    "ZeroFillFTTT",
]
