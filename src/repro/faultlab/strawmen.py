"""Strawman trackers the fault lab benchmarks against.

These exist to quantify what the paper's Eq. 6/7 machinery (and the
degradation policy on top of it) actually buys: each strawman is FTTT
with one defense knocked out, run over the *same* batch streams.
"""

from __future__ import annotations

import numpy as np

from repro.core.tracker import FTTTracker

__all__ = ["ZeroFillFTTT"]


class ZeroFillFTTT(FTTTracker):
    """FTTT with naive zeroing instead of Eq. 7 masking.

    Every ``*`` pair value (non-reporting or suppressed sensors) is
    forced to a plain 0 before matching — what a port unaware of the
    masking semantics would do.  A 0 asserts "these two sensors heard
    the target equally", which actively pulls the match toward faces
    on the pair's bisector; the paper's ``*`` instead removes the pair
    from the distance entirely.
    """

    def build_vector(self, rss: np.ndarray) -> np.ndarray:
        v = super().build_vector(rss)
        return np.where(np.isnan(v), 0.0, v)

    def build_vectors(self, rss_stack: np.ndarray) -> np.ndarray:
        v = super().build_vectors(rss_stack)
        return np.where(np.isnan(v), 0.0, v)
