"""Matching oracle: per-pair loop vectors, scalar Eq. 7 masking, naive matching.

Three reference kernels, each a literal transcription:

* :func:`oracle_sampling_vector` — Algorithm 1 + Definition 10 + the
  Eq. 6 fault fill, one pair at a time, one sample instant at a time;
* :func:`oracle_masked_sq_distance` — the Eq. 7 masked vector distance,
  one component at a time in float64;
* :func:`oracle_match` — Definition 7 maximum-likelihood matching as the
  paper first states it: scan *every* face, keep the similarity maximum
  (the O(n^4)-faces scan Algorithm 2 exists to avoid).

All arithmetic is float64 scalar.  The basic (Definition 4) pair values
are small integers, exact in both float32 and float64, so the production
float32 kernels must agree *bit for bit* on them; the extended
(Definition 10) values are rationals ``m/k`` where float32 rounding makes
the production distances differ in the last bits — the differential
harness compares those structurally (see
:func:`repro.oracle.fuzz.run_spec`).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "oracle_sampling_vector",
    "oracle_masked_sq_distance",
    "oracle_match",
    "oracle_tie_tolerance",
]

_EPS32 = float(np.finfo(np.float32).eps)


def oracle_sampling_vector(
    rss: np.ndarray,
    *,
    mode: str = "basic",
    comparator_eps: float = 0.0,
) -> np.ndarray:
    """Sampling vector by scalar per-pair loops (Definitions 4/10, Eq. 6).

    For each pair ``(i, j), i < j`` (j innermost — the canonical order,
    re-derived locally):

    1. walk the k sample instants; skip instants where either sensor's
       sample is missing (NaN); count instants won by i (RSS difference
       beyond the comparator deadband), won by j, and valid instants;
    2. with at least one common valid instant: **basic** gives +1/-1 only
       for unanimous wins, else 0 (one discordant instant = a flip);
       **extended** gives ``(wins_i - wins_j) / n_valid``;
    3. with no common instant, the Eq. 6 fill: a reporting sensor beats a
       silent one (+1/-1), two silent sensors give ``*`` (NaN), and two
       sensors that reported but never simultaneously compare by their
       per-sensor mean RSS.
    """
    if mode not in ("basic", "extended"):
        raise ValueError(f"unknown mode {mode!r}")
    if comparator_eps < 0:
        raise ValueError(f"comparator_eps must be non-negative, got {comparator_eps}")
    rss = np.atleast_2d(np.asarray(rss, dtype=float))
    k, n = rss.shape
    if n < 2:
        raise ValueError(f"need at least two sensors, got {n}")
    values: list[float] = []
    for i in range(n):
        for j in range(i + 1, n):
            wins_i = wins_j = n_valid = 0
            for w in range(k):
                a, b = rss[w, i], rss[w, j]
                if math.isnan(a) or math.isnan(b):
                    continue
                n_valid += 1
                diff = a - b
                if diff > comparator_eps:
                    wins_i += 1
                elif diff < -comparator_eps:
                    wins_j += 1
            if n_valid > 0:
                if mode == "extended":
                    values.append((wins_i - wins_j) / n_valid)
                elif wins_i == n_valid:
                    values.append(1.0)
                elif wins_j == n_valid:
                    values.append(-1.0)
                else:
                    values.append(0.0)
                continue
            values.append(_eq6_fill(rss, i, j))
    return np.asarray(values, dtype=float)


def _eq6_fill(rss: np.ndarray, i: int, j: int) -> float:
    """The Eq. 6 pair value when sensors i and j share no valid instant."""
    reported_i = any(not math.isnan(x) for x in rss[:, i])
    reported_j = any(not math.isnan(x) for x in rss[:, j])
    if reported_i and not reported_j:
        return 1.0
    if reported_j and not reported_i:
        return -1.0
    if not reported_i and not reported_j:
        return float("nan")  # the ``*`` value, masked by Eq. 7
    # both reported but never simultaneously: compare mean RSS.  Zeros for
    # missing samples are added in column order, exactly like the
    # production ``np.where(nan, 0, rss).sum(axis=0)``, so the means (and
    # the sign of their difference) are bit-identical.
    mean_i = _column_mean(rss[:, i])
    mean_j = _column_mean(rss[:, j])
    return float(np.sign(mean_i - mean_j))


def _column_mean(column: np.ndarray) -> float:
    total = 0.0
    count = 0
    for x in column:
        if math.isnan(x):
            total += 0.0
        else:
            total += float(x)
            count += 1
    return total / max(count, 1)


def oracle_masked_sq_distance(vector: np.ndarray, signature: np.ndarray) -> float:
    """Squared vector distance with Eq. 7 masking, one component at a time.

    NaN components of *vector* are the ``*`` fault values and contribute
    zero; signature components are never NaN.
    """
    vector = np.asarray(vector, dtype=float)
    signature = np.asarray(signature, dtype=float)
    if vector.shape != signature.shape:
        raise ValueError(f"shape mismatch: {vector.shape} vs {signature.shape}")
    total = 0.0
    for v, s in zip(vector, signature):
        if math.isnan(v):
            continue
        d = float(s) - float(v)
        total += d * d
    return total


def oracle_tie_tolerance(best: float, n_pairs: int) -> float:
    """The documented tie rule of :meth:`repro.geometry.faces.FaceMap.match`.

    An exact match (``best == 0``) has infinite Definition 7 similarity
    — nothing else can tie with it; otherwise two faces tie when their
    squared distances agree to within float32 accumulation error over P
    terms, floored at the legacy absolute ``1e-6``.
    """
    if best == 0.0:
        return 0.0
    return max(1e-6, best * _EPS32 * math.sqrt(n_pairs))


def oracle_match(
    signatures: np.ndarray, vector: np.ndarray
) -> tuple[list[int], float]:
    """Exhaustive maximum-likelihood matching by full scalar scan (Def. 7).

    Returns ``(tied_face_ids, best_sq_distance)`` — every face whose
    masked distance ties at the minimum under the documented tolerance,
    ids ascending (the lowest id is the deterministic winner).
    """
    signatures = np.asarray(signatures)
    n_faces, n_pairs = signatures.shape
    distances = [
        oracle_masked_sq_distance(vector, signatures[f]) for f in range(n_faces)
    ]
    best = min(distances)
    tol = oracle_tie_tolerance(best, n_pairs)
    ties = [f for f, d in enumerate(distances) if d <= best + tol]
    return ties, best
