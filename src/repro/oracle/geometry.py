"""Geometry oracle: signatures from Apollonius *circle membership*.

The production classifier (:func:`repro.geometry.apollonius.
classify_points_pairwise`) never constructs a circle — it compares
``C*d_i <= d_j`` on chunked distance matrices.  This oracle takes the
other road the paper describes (Eq. 4, Definition 2): build the two
axisymmetric Apollonius boundary circles of every pair explicitly and
classify each point by which circle contains it.  The two derivations
agree everywhere except within float rounding of a boundary, so the
differential harness exempts points that
:func:`pair_value_is_ambiguous` flags.

Everything here is scalar, one point and one pair at a time.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.faces import FaceMap

__all__ = [
    "oracle_pair_value",
    "pair_value_is_ambiguous",
    "dense_signatures",
    "verify_face_map",
]


def _apollonius_center_radius(
    p_i: "tuple[float, float]", p_j: "tuple[float, float]", ratio: float
) -> tuple[float, float, float]:
    """Centre and radius of ``{x : |x - p_i| / |x - p_j| = ratio}`` (Eq. 4).

    Derived from scratch: writing ``|x - a|^2 = r^2 |x - b|^2`` and
    completing the square gives centre ``(a - r^2 b) / (1 - r^2)`` and
    radius ``r |a - b| / |1 - r^2|``.
    """
    ax, ay = float(p_i[0]), float(p_i[1])
    bx, by = float(p_j[0]), float(p_j[1])
    r2 = ratio * ratio
    cx = (ax - r2 * bx) / (1.0 - r2)
    cy = (ay - r2 * by) / (1.0 - r2)
    radius = ratio * math.hypot(ax - bx, ay - by) / abs(r2 - 1.0)
    return cx, cy, radius


def oracle_pair_value(
    point: "tuple[float, float]",
    p_i: "tuple[float, float]",
    p_j: "tuple[float, float]",
    c: float,
    *,
    sensing_range: "float | None" = None,
) -> int:
    """Signature value of one point for one node pair, via circle membership.

    +1 when the point lies inside (or on) the boundary circle that
    encloses ``n_i`` (``d_i/d_j = 1/C``), -1 when inside the one that
    encloses ``n_j`` (``d_i/d_j = C``), 0 in the uncertain band between
    them.  ``c == 1`` degenerates to the perpendicular bisector.  With a
    *sensing_range*, hearing gating overrides the band exactly as the
    production signatures do: one node in range forces +1/-1 toward it,
    neither in range forces 0.
    """
    if c < 1.0:
        raise ValueError(f"uncertainty constant must be >= 1, got {c}")
    x, y = float(point[0]), float(point[1])
    d_i = math.hypot(x - float(p_i[0]), y - float(p_i[1]))
    d_j = math.hypot(x - float(p_j[0]), y - float(p_j[1]))
    if c == 1.0:
        # bisector limit: the "circles" are the bisector line itself
        value = int(np.sign(d_j - d_i))
    else:
        near_i = _apollonius_center_radius(p_i, p_j, 1.0 / c)
        near_j = _apollonius_center_radius(p_i, p_j, c)
        value = 0
        if math.hypot(x - near_i[0], y - near_i[1]) <= near_i[2]:
            value = 1
        elif math.hypot(x - near_j[0], y - near_j[1]) <= near_j[2]:
            value = -1
    if sensing_range is not None:
        in_i = d_i <= sensing_range
        in_j = d_j <= sensing_range
        if in_i and not in_j:
            value = 1
        elif in_j and not in_i:
            value = -1
        elif not in_i and not in_j:
            value = 0
    return value


def pair_value_is_ambiguous(
    point: "tuple[float, float]",
    p_i: "tuple[float, float]",
    p_j: "tuple[float, float]",
    c: float,
    *,
    sensing_range: "float | None" = None,
    rtol: float = 1e-9,
) -> bool:
    """True when *point* sits within float rounding of a decision boundary.

    The circle-membership and distance-ratio formulations evaluate
    algebraically identical predicates through different float
    expressions; only points this close to a boundary can legitimately
    classify differently between the two.
    """
    x, y = float(point[0]), float(point[1])
    d_i = math.hypot(x - float(p_i[0]), y - float(p_i[1]))
    d_j = math.hypot(x - float(p_j[0]), y - float(p_j[1]))
    scale = max(d_i, d_j, 1.0)
    near_band = (
        abs(c * d_i - d_j) <= rtol * scale * max(c, 1.0)
        or abs(d_i - c * d_j) <= rtol * scale * max(c, 1.0)
    )
    if sensing_range is not None:
        near_band = (
            near_band
            or abs(d_i - sensing_range) <= rtol * scale
            or abs(d_j - sensing_range) <= rtol * scale
        )
    return near_band


def dense_signatures(
    points: np.ndarray,
    nodes: np.ndarray,
    c: float,
    *,
    sensing_range: "float | None" = None,
) -> np.ndarray:
    """(M, P) signature matrix computed point-by-point, pair-by-pair.

    The canonical pair order is re-derived locally (``(i, j)`` with
    ``i < j``, j innermost) rather than imported, so an enumeration bug
    in the production helpers would surface as a divergence here.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    nodes = np.atleast_2d(np.asarray(nodes, dtype=float))
    n = len(nodes)
    pair_list = [(i, j) for i in range(n) for j in range(i + 1, n)]
    sig = np.zeros((len(points), len(pair_list)), dtype=np.int8)
    for m, point in enumerate(points):
        for p, (i, j) in enumerate(pair_list):
            sig[m, p] = oracle_pair_value(
                point, nodes[i], nodes[j], c, sensing_range=sensing_range
            )
    return sig


def verify_face_map(
    face_map: FaceMap, *, sensing_range: "float | None" = None
) -> dict:
    """Cross-check every grid cell of a built face map against the oracle.

    Returns ``{"n_cells", "n_checked", "n_ambiguous", "mismatches"}``
    where *mismatches* lists ``(cell, pair, production, oracle)`` for
    cells whose production signature disagrees with circle membership
    *away from* any boundary (ambiguous boundary cells are counted but
    exempted — the two formulations round differently there).
    """
    centers = face_map.grid.cell_centers
    prod = face_map.signatures[face_map.cell_face]  # (M, P) per-cell view
    nodes = face_map.nodes
    n = len(nodes)
    pair_list = [(i, j) for i in range(n) for j in range(i + 1, n)]
    if len(pair_list) != prod.shape[1]:
        raise AssertionError(
            f"pair count mismatch: oracle {len(pair_list)}, production {prod.shape[1]}"
        )
    n_ambiguous = 0
    mismatches: list[tuple[int, int, int, int]] = []
    for m in range(len(centers)):
        point = centers[m]
        for p, (i, j) in enumerate(pair_list):
            want = oracle_pair_value(
                point, nodes[i], nodes[j], face_map.c, sensing_range=sensing_range
            )
            got = int(prod[m, p])
            if got == want:
                continue
            if pair_value_is_ambiguous(
                point, nodes[i], nodes[j], face_map.c, sensing_range=sensing_range
            ):
                n_ambiguous += 1
                continue
            mismatches.append((m, p, got, want))
    centroid_errors = _verify_face_grouping(face_map)
    return {
        "n_cells": int(len(centers)),
        "n_checked": int(len(centers) * len(pair_list)),
        "n_ambiguous": n_ambiguous,
        "mismatches": mismatches,
        "centroid_errors": centroid_errors,
    }


def _verify_face_grouping(face_map: FaceMap) -> list[tuple[int, str]]:
    """Re-derive each face's cell count and Eq. 5 centroid with scalar sums.

    Cells are accumulated in ascending cell order — the same order the
    production ``np.bincount`` consumes them in — so the floating-point
    centroid must be *bit-identical*, not merely close.
    """
    errors: list[tuple[int, str]] = []
    centers = face_map.grid.cell_centers
    sums_x = [0.0] * face_map.n_faces
    sums_y = [0.0] * face_map.n_faces
    counts = [0] * face_map.n_faces
    for m, fid in enumerate(face_map.cell_face):
        fid = int(fid)
        sums_x[fid] += float(centers[m, 0])
        sums_y[fid] += float(centers[m, 1])
        counts[fid] += 1
    for fid in range(face_map.n_faces):
        if counts[fid] != int(face_map.cell_counts[fid]):
            errors.append((fid, f"cell count {face_map.cell_counts[fid]} != {counts[fid]}"))
            continue
        if counts[fid] == 0:
            errors.append((fid, "empty face"))
            continue
        cx = sums_x[fid] / counts[fid]
        cy = sums_y[fid] / counts[fid]
        gx, gy = float(face_map.centroids[fid, 0]), float(face_map.centroids[fid, 1])
        if cx != gx or cy != gy:
            errors.append((fid, f"centroid ({gx}, {gy}) != oracle ({cx}, {cy})"))
    return errors
