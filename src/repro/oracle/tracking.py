"""Tracking oracle: the Fig. 4 round loop re-derived scalar-style.

Mirrors :meth:`repro.core.tracker.FTTTracker.localize` round by round —
including the PR-3 degradation policy (flip-rate suppression, reporting
quorum, Definition 10 tie-break) — but builds every sampling vector with
the per-pair loops of :func:`repro.oracle.matching.oracle_sampling_vector`
and matches with the naive full scan of
:func:`repro.oracle.matching.oracle_match`.

Bit-identity contract: in **basic** mode every pair value is a small
integer, every masked distance an exact small integer, and every
aggregation either elementwise or a short in-order sum — so the oracle's
anchor faces, tie sets and positions must equal the production tracker's
exactly.  (Extended-mode distances round differently in float32 and are
compared structurally by the fuzz harness instead.)  Aggregations that
are orchestration rather than kernels — tie centroids, tie-break
agreement sums — deliberately reuse the same numpy expressions the
production tracker uses, so the comparison isolates the kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.tracker import DegradationPolicy
from repro.geometry.faces import FaceMap
from repro.oracle.matching import oracle_match, oracle_sampling_vector

__all__ = ["OracleEstimate", "oracle_track"]


@dataclass(frozen=True)
class OracleEstimate:
    """One oracle localization round."""

    t: float
    face_ids: tuple[int, ...]
    position: tuple[float, float]
    sq_distance: float
    n_reporting: int
    held: bool  # True when the quorum fallback re-used the previous face


def oracle_track(
    face_map: FaceMap,
    rss_rounds: "list[np.ndarray]",
    times: "list[float] | None" = None,
    *,
    mode: str = "basic",
    comparator_eps: float = 0.0,
    degradation: "DegradationPolicy | None" = None,
) -> list[OracleEstimate]:
    """Track through *rss_rounds* with oracle kernels only."""
    if times is None:
        times = [float(r) for r in range(len(rss_rounds))]
    signatures = face_map.signatures.astype(float)
    centroids = face_map.centroids
    flip_ewma: "list[float] | None" = None
    flip_obs: "list[int] | None" = None
    prev: "OracleEstimate | None" = None
    estimates: list[OracleEstimate] = []
    for t, rss in zip(times, rss_rounds):
        rss = np.atleast_2d(np.asarray(rss, dtype=float))
        vector = oracle_sampling_vector(rss, mode=mode, comparator_eps=comparator_eps)
        n_reporting = sum(
            1 for s in range(rss.shape[1]) if any(not math.isnan(x) for x in rss[:, s])
        )
        raw = vector.copy()
        weak = False
        if degradation is not None:
            if flip_ewma is None or len(flip_ewma) != len(vector):
                flip_ewma = [0.0] * len(vector)
                flip_obs = [0] * len(vector)
            vector = _suppress(vector, flip_ewma, flip_obs, degradation)
            weak = _quorum_is_weak(vector, n_reporting, degradation)
            if weak and prev is not None:
                est = OracleEstimate(
                    t=float(t),
                    face_ids=prev.face_ids,
                    position=prev.position,
                    sq_distance=float("inf"),
                    n_reporting=n_reporting,
                    held=True,
                )
                estimates.append(est)
                prev = est
                continue
        ties, best = oracle_match(signatures, vector)
        if (
            degradation is not None
            and degradation.tie_break
            and weak
            and len(ties) > 1
        ):
            ties = _tie_break(ties, rss, signatures, comparator_eps)
        if degradation is not None:
            _update_residuals(raw, ties, signatures, flip_ewma, flip_obs, degradation)
        position = centroids[np.asarray(ties, dtype=np.int64)].mean(axis=0)
        est = OracleEstimate(
            t=float(t),
            face_ids=tuple(int(f) for f in ties),
            position=(float(position[0]), float(position[1])),
            sq_distance=float(best),
            n_reporting=n_reporting,
            held=False,
        )
        estimates.append(est)
        prev = est
    return estimates


def _suppress(
    vector: np.ndarray,
    flip_ewma: "list[float]",
    flip_obs: "list[int]",
    pol: DegradationPolicy,
) -> np.ndarray:
    """Demote chronically disagreeing pairs to ``*``, one pair at a time."""
    out = vector.copy()
    for p in range(len(out)):
        if math.isnan(out[p]):
            continue
        if flip_obs[p] >= pol.warmup_rounds and flip_ewma[p] >= pol.flip_threshold:
            out[p] = float("nan")
    return out


def _quorum_is_weak(vector: np.ndarray, n_reporting: int, pol: DegradationPolicy) -> bool:
    masked = sum(1 for v in vector if math.isnan(v))
    masked_fraction = masked / len(vector)
    return n_reporting < pol.min_reporting or masked_fraction > pol.max_masked_fraction


def _update_residuals(
    raw: np.ndarray,
    ties: "list[int]",
    signatures: np.ndarray,
    flip_ewma: "list[float]",
    flip_obs: "list[int]",
    pol: DegradationPolicy,
) -> None:
    """Score observed pairs against the matched face (EWMA of |v - s| / 2)."""
    sigs = signatures[np.asarray(ties, dtype=np.int64)]
    sig = sigs.mean(axis=0) if len(ties) > 1 else sigs[0]
    alpha = pol.ewma_alpha
    for p in range(len(raw)):
        if math.isnan(raw[p]):
            continue
        residual = abs(float(raw[p]) - float(sig[p])) / 2.0
        flip_ewma[p] += alpha * (residual - flip_ewma[p])
        flip_obs[p] += 1


def _tie_break(
    ties: "list[int]",
    rss: np.ndarray,
    signatures: np.ndarray,
    comparator_eps: float,
) -> "list[int]":
    """Definition 10 tie-break: keep the faces agreeing most with the
    quantitative vector (inner product, ``*`` pairs contributing 0)."""
    ext = oracle_sampling_vector(rss, mode="extended", comparator_eps=comparator_eps)
    sigs = signatures[np.asarray(ties, dtype=np.int64)]
    prod = sigs * ext[None, :]
    prod = np.where(np.isnan(prod), 0.0, prod)
    agreement = prod.sum(axis=1)
    best = agreement.max()
    keep = agreement >= best - 1e-12
    if keep.all():
        return ties
    return [f for f, k in zip(ties, keep) if k]
