"""Slow-but-obviously-correct reference tier (the *oracle* layer).

Every module here re-derives a piece of the paper's math directly from the
equations, with scalar loops and none of the production optimizations:

* :mod:`repro.oracle.geometry` — face signatures sampled from Apollonius
  *circle membership* (Eq. 3-4, Definition 2), cross-checking the
  distance-ratio classification of :mod:`repro.geometry.apollonius` and
  the face grouping of :mod:`repro.geometry.faces`;
* :mod:`repro.oracle.matching` — per-pair loop sampling vectors
  (Algorithm 1, Definitions 4/10, the Eq. 6 fill), scalar Eq. 7 masked
  distances, and naive per-face exhaustive maximum-likelihood matching
  (Definition 7), cross-checking :mod:`repro.core.vectors`,
  :mod:`repro.core.matching` and the batched
  :meth:`~repro.geometry.faces.FaceMap.distances_to_many` GEMM path;
* :mod:`repro.oracle.tracking` — a round-by-round scalar tracker
  (including a literal mirror of the degradation policy), cross-checking
  :class:`repro.core.tracker.FTTTracker`;
* :mod:`repro.oracle.analysis` — Monte-Carlo estimators for the §5.1
  sampling-times bound and the Appendix-II inter-face error
  ``E_N = N*f``, cross-checking :mod:`repro.analysis.sampling_times` and
  :mod:`repro.analysis.error_bounds`;
* :mod:`repro.oracle.fuzz` — the seeded differential fuzzing harness that
  runs randomized scenarios through both tiers and shrink-reports the
  first divergence as a replayable JSON artifact.

The contract: oracle code may be arbitrarily slow, but each function must
be an independent transcription of the paper (or of the documented
production semantics), so that agreement between the two tiers is
evidence of correctness rather than of shared bugs.
"""

from repro.oracle.analysis import (
    check_sampling_times_bound,
    mc_flip_capture,
    mc_interface_error,
)
from repro.oracle.geometry import (
    dense_signatures,
    oracle_pair_value,
    pair_value_is_ambiguous,
    verify_face_map,
)
from repro.oracle.matching import (
    oracle_masked_sq_distance,
    oracle_match,
    oracle_sampling_vector,
)
from repro.oracle.tracking import OracleEstimate, oracle_track

__all__ = [
    "oracle_pair_value",
    "pair_value_is_ambiguous",
    "dense_signatures",
    "verify_face_map",
    "oracle_sampling_vector",
    "oracle_masked_sq_distance",
    "oracle_match",
    "OracleEstimate",
    "oracle_track",
    "mc_flip_capture",
    "mc_interface_error",
    "check_sampling_times_bound",
]
