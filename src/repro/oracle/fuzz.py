"""Seeded differential fuzzing: optimized kernels vs the oracle tier.

Each scenario is fully described by a :class:`FuzzSpec` — a flat, JSON
round-trippable record of every knob (deployment size, propagation
constants, fault schedule, degradation policy).  ``generate_spec`` draws
specs from ``SeedSequence([master_seed, index])``, so scenario *i* of a
campaign is the same bytes no matter how many workers ran it or in which
order — the property the workers-equality test pins with a digest.

``run_spec`` builds the world, runs the production kernels and the oracle
side by side, and reports every divergence across eight check families:

* ``face_signatures`` — built face map vs Apollonius circle membership;
* ``packed_signatures`` — 2-bit signature packing round trip and the
  packed-backed float32 matching matrix vs dense (bitwise);
* ``tiled_build`` — the tiled/packed builder vs the one-pass build
  (every map array, bitwise);
* ``sampling_vector`` — vectorized Algorithm 1 vs per-pair loops (bitwise);
* ``masked_distances`` — float32 Eq. 7 distances vs scalar float64
  (bitwise in basic mode, structural in extended mode);
* ``match_winner`` — production tie set vs the naive full scan;
* ``batched_*`` — every batched kernel vs its own per-row path (bitwise);
* ``tracker_anchor`` — the production round loop vs the oracle tracker.

On divergence the harness greedily *shrinks* the spec (drop faults, turn
degradation off, halve rounds, coarsen the grid...) while the same check
keeps failing, then writes a replayable JSON artifact; ``fttt
replay-divergence <artifact>`` (or :func:`replay_divergence`) re-runs it.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing as mp
import os
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from repro.core.tracker import DegradationPolicy, FTTTracker
from repro.core.vectors import (
    extended_sampling_vector,
    extended_sampling_vectors,
    sampling_vector,
    sampling_vectors,
)
from repro.geometry.apollonius import uncertainty_constant
from repro.geometry.faces import build_certain_face_map, build_face_map
from repro.geometry.grid import Grid
from repro.geometry.packing import PackedSignatures
from repro.oracle.geometry import verify_face_map
from repro.oracle.matching import (
    oracle_masked_sq_distance,
    oracle_match,
    oracle_sampling_vector,
    oracle_tie_tolerance,
)
from repro.oracle.tracking import oracle_track
from repro.rf.channel import SampleBatch

__all__ = [
    "FuzzSpec",
    "generate_spec",
    "run_spec",
    "run_fuzz",
    "shrink_spec",
    "replay_divergence",
    "default_budget",
]

_EPS32 = float(np.finfo(np.float32).eps)
_MAX_C = 2.5  # clamp Eq. 3 so pathological noise draws keep a usable division


def default_budget(fallback: int = 200) -> int:
    """Scenario budget: ``REPRO_FUZZ_BUDGET`` env override, else *fallback*.

    Tier-1 runs the fallback sample; the nightly CI job exports a budget
    in the thousands.
    """
    env = os.environ.get("REPRO_FUZZ_BUDGET")
    if env is None or env == "":
        return fallback
    try:
        budget = int(env)
    except ValueError:
        raise ValueError(f"REPRO_FUZZ_BUDGET must be an integer, got {env!r}") from None
    if budget < 1:
        raise ValueError(f"REPRO_FUZZ_BUDGET must be >= 1, got {budget}")
    return budget


@dataclass(frozen=True)
class FuzzSpec:
    """Complete, replayable description of one differential scenario."""

    seed: int
    n_nodes: int
    field_size: float
    cell_size: float
    beta: float  # path-loss exponent
    sigma: float  # shadowing noise sigma (dB)
    resolution_eps: float  # hardware resolution epsilon of Eq. 3 (dB)
    certain: bool  # use the bisector-only baseline division
    split_components: bool
    sensing_range: "float | None"
    k: int  # samples per grouping
    n_rounds: int
    mode: str  # "basic" | "extended"
    comparator_eps: float
    dropout_p: float  # whole-sensor omission probability per round
    sample_loss_p: float  # per-sample omission probability
    value_fault: "str | None"  # None | "stuck" | "byzantine"
    fault_intensity: float  # fraction of sensors faulted
    fault_start: int  # first faulted round (inclusive)
    fault_stop: int  # last faulted round (exclusive)
    degradation: bool
    deg_flip_threshold: float = 0.3
    deg_halflife: float = 4.0
    deg_warmup: int = 1
    deg_min_reporting: int = 3
    deg_max_masked: float = 0.9
    deg_tie_break: bool = True

    @property
    def c(self) -> float:
        """Uncertainty constant of Eq. 3 implied by the channel knobs."""
        if self.certain:
            return 1.0
        return min(
            uncertainty_constant(self.resolution_eps, self.beta, self.sigma), _MAX_C
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzSpec":
        return cls(**data)

    def policy(self) -> "DegradationPolicy | None":
        if not self.degradation:
            return None
        return DegradationPolicy(
            flip_threshold=self.deg_flip_threshold,
            halflife_rounds=self.deg_halflife,
            warmup_rounds=self.deg_warmup,
            min_reporting=self.deg_min_reporting,
            max_masked_fraction=self.deg_max_masked,
            tie_break=self.deg_tie_break,
        )


def generate_spec(index: int, master_seed: int = 0) -> FuzzSpec:
    """Spec *index* of the campaign seeded by *master_seed*.

    Every draw comes from ``SeedSequence([master_seed, index])``, so the
    mapping is pure — independent of worker count, schedule, or any other
    scenario.
    """
    rng = np.random.default_rng(np.random.SeedSequence([master_seed, index]))
    n_rounds = int(rng.integers(2, 7))
    certain = bool(rng.random() < 0.15)
    fault_start = int(rng.integers(0, n_rounds))
    return FuzzSpec(
        seed=int(rng.integers(0, 2**31 - 1)),
        n_nodes=int(rng.integers(3, 7)),
        field_size=40.0,
        cell_size=float(rng.choice([3.0, 4.0, 5.0])),
        beta=float(rng.uniform(2.0, 4.0)),
        sigma=float(rng.uniform(0.5, 4.0)),
        resolution_eps=float(rng.uniform(0.0, 3.0)),
        certain=certain,
        split_components=bool(rng.random() < 0.5),
        # the certain builder divides by plain bisectors; hearing gating
        # only exists on the uncertain path
        sensing_range=(
            None if certain or rng.random() < 0.7 else float(rng.uniform(25.0, 45.0))
        ),
        k=int(rng.integers(2, 7)),
        n_rounds=n_rounds,
        mode="extended" if rng.random() < 0.35 else "basic",
        comparator_eps=0.0 if rng.random() < 0.5 else float(rng.uniform(0.1, 1.5)),
        dropout_p=0.0 if rng.random() < 0.5 else float(rng.uniform(0.05, 0.4)),
        sample_loss_p=0.0 if rng.random() < 0.5 else float(rng.uniform(0.05, 0.25)),
        value_fault=[None, "stuck", "byzantine"][int(rng.choice(3, p=[0.5, 0.25, 0.25]))],
        fault_intensity=float(rng.uniform(0.1, 0.5)),
        fault_start=fault_start,
        fault_stop=int(rng.integers(fault_start + 1, n_rounds + 1)),
        degradation=bool(rng.random() < 0.4),
        deg_flip_threshold=float(rng.choice([0.2, 0.3, 0.5])),
        deg_halflife=4.0,
        deg_warmup=int(rng.choice([1, 2])),
        deg_min_reporting=int(rng.choice([0, 2, 3])),
        deg_max_masked=float(rng.choice([0.5, 0.75, 0.9])),
        deg_tie_break=bool(rng.random() < 0.7),
    )


# -- world construction -------------------------------------------------------


def _draw_nodes(spec: FuzzSpec, rng: np.random.Generator) -> np.ndarray:
    """Random deployment with a minimum separation of one cell diagonal.

    Degenerate (coincident) nodes make the Apollonius construction
    meaningless; rejection sampling keeps the deployments sane without
    biasing the seed stream (a bounded number of draws per node).
    """
    margin = 2.0
    min_sep = spec.cell_size * math.sqrt(2.0)
    nodes: list[np.ndarray] = []
    for _ in range(spec.n_nodes):
        candidate = rng.uniform(margin, spec.field_size - margin, 2)
        for _ in range(200):
            if all(np.hypot(*(candidate - p)) >= min_sep for p in nodes):
                break
            candidate = rng.uniform(margin, spec.field_size - margin, 2)
        nodes.append(candidate)
    return np.stack(nodes)


def _build_world(spec: FuzzSpec) -> dict:
    """Deterministic world for *spec*: face map + per-round RSS matrices.

    The RSS is generated directly (log-distance path loss + Gaussian
    shadowing + injected faults) rather than through the simulation
    stack, so the fuzz harness exercises the kernels without inheriting
    the sim layer's own assumptions — or its face-map cache.
    """
    ss = np.random.SeedSequence([spec.seed, 0xFA57])
    nodes_rng, channel_rng, fault_rng = map(np.random.default_rng, ss.spawn(3))
    nodes = _draw_nodes(spec, nodes_rng)
    grid = Grid.square(spec.field_size, spec.cell_size)
    if spec.certain:
        face_map = build_certain_face_map(
            nodes, grid, split_components=spec.split_components
        )
    else:
        face_map = build_face_map(
            nodes,
            grid,
            spec.c,
            sensing_range=spec.sensing_range,
            split_components=spec.split_components,
        )
    n_bad = max(1, round(spec.fault_intensity * spec.n_nodes)) if spec.value_fault else 0
    bad = fault_rng.permutation(spec.n_nodes)[:n_bad]
    stuck_values = fault_rng.uniform(-80.0, -30.0, n_bad)
    fault_rounds = range(
        min(spec.fault_start, spec.n_rounds), min(spec.fault_stop, spec.n_rounds)
    )
    targets = channel_rng.uniform(0.0, spec.field_size, (spec.n_rounds, 2))
    rss_rounds: list[np.ndarray] = []
    for r in range(spec.n_rounds):
        dist = np.hypot(*(targets[r] - nodes).T)
        rss = (
            -40.0
            - 10.0 * spec.beta * np.log10(np.maximum(dist, 0.1))
            + spec.sigma * channel_rng.standard_normal((spec.k, spec.n_nodes))
        )
        if spec.sensing_range is not None:
            rss[:, dist > spec.sensing_range] = np.nan
        if spec.sample_loss_p > 0.0:
            rss[channel_rng.random(rss.shape) < spec.sample_loss_p] = np.nan
        if spec.dropout_p > 0.0:
            rss[:, channel_rng.random(spec.n_nodes) < spec.dropout_p] = np.nan
        if r in fault_rounds:
            if spec.value_fault == "stuck":
                # a stuck sensor keeps transmitting its frozen reading
                rss[:, bad] = stuck_values[None, :]
            elif spec.value_fault == "byzantine":
                rss[:, bad] = fault_rng.uniform(-90.0, -20.0, (spec.k, n_bad))

        rss_rounds.append(rss)
    return {
        "face_map": face_map,
        "nodes": nodes,
        "targets": targets,
        "rss_rounds": rss_rounds,
        "times": [float(r) for r in range(spec.n_rounds)],
    }


# -- the differential checks --------------------------------------------------


def _jsonable(value):
    """Recursively convert numpy containers/scalars for ``json.dumps``."""
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


def _extended_slack(best: float) -> float:
    """Float32-vs-float64 tolerance for extended-mode distances.

    Extended pair values are rationals ``m/k`` that float32 rounds, so the
    production distances drift from the float64 oracle by a few ulps per
    term; anything beyond this slack is a real divergence.
    """
    return 64.0 * _EPS32 * (abs(best) + 1.0)


def _check_geometry(spec: FuzzSpec, world: dict, divergences: list) -> int:
    report = verify_face_map(world["face_map"], sensing_range=spec.sensing_range)
    if report["mismatches"] or report["centroid_errors"]:
        divergences.append(
            {
                "check": "face_signatures",
                "mismatches": _jsonable(report["mismatches"][:10]),
                "centroid_errors": _jsonable(report["centroid_errors"][:10]),
                "n_ambiguous": report["n_ambiguous"],
            }
        )
    return report["n_checked"]


def _production_vector(spec: FuzzSpec, rss: np.ndarray) -> np.ndarray:
    if spec.mode == "extended":
        return extended_sampling_vector(rss, comparator_eps=spec.comparator_eps)
    return sampling_vector(rss, comparator_eps=spec.comparator_eps)


def _check_rounds(spec: FuzzSpec, world: dict, divergences: list) -> tuple[int, list]:
    """Per-round vector / distance / match differentials; returns vectors."""
    face_map = world["face_map"]
    signatures = face_map.signatures.astype(float)
    n_checks = 0
    vectors: list[np.ndarray] = []
    for r, rss in enumerate(world["rss_rounds"]):
        prod_v = _production_vector(spec, rss)
        vectors.append(prod_v)
        oracle_v = oracle_sampling_vector(
            rss, mode=spec.mode, comparator_eps=spec.comparator_eps
        )
        n_checks += 1
        if not np.array_equal(prod_v, oracle_v, equal_nan=True):
            divergences.append(
                {
                    "check": "sampling_vector",
                    "round": r,
                    "production": _jsonable(prod_v),
                    "oracle": _jsonable(oracle_v),
                }
            )
            continue  # downstream comparisons would only echo this divergence
        prod_d = face_map.distances_to(prod_v)
        oracle_d = [
            oracle_masked_sq_distance(oracle_v, signatures[f])
            for f in range(face_map.n_faces)
        ]
        n_checks += 1
        if spec.mode == "basic":
            distance_bad = any(
                float(prod_d[f]) != oracle_d[f] for f in range(face_map.n_faces)
            )
        else:
            distance_bad = any(
                abs(float(prod_d[f]) - oracle_d[f]) > _extended_slack(oracle_d[f])
                for f in range(face_map.n_faces)
            )
        if distance_bad:
            divergences.append(
                {
                    "check": "masked_distances",
                    "round": r,
                    "production": _jsonable(prod_d),
                    "oracle": _jsonable(oracle_d),
                }
            )
            continue
        prod_ties, prod_best = face_map.match(prod_v)
        oracle_ties, oracle_best = oracle_match(signatures, oracle_v)
        n_checks += 1
        if spec.mode == "basic":
            match_bad = (
                list(map(int, prod_ties)) != oracle_ties
                or float(prod_best) != oracle_best
            )
        else:
            # float32 rounding may legitimately reshuffle near-ties; require
            # the best distances to agree within slack and the production
            # winner to be oracle-near-optimal
            slack = _extended_slack(oracle_best)
            tol = oracle_tie_tolerance(oracle_best, face_map.n_pairs)
            match_bad = (
                abs(float(prod_best) - oracle_best) > slack
                or oracle_d[int(prod_ties[0])] > oracle_best + tol + slack
            )
        if match_bad:
            divergences.append(
                {
                    "check": "match_winner",
                    "round": r,
                    "production_ties": _jsonable(prod_ties),
                    "production_best": float(prod_best),
                    "oracle_ties": oracle_ties,
                    "oracle_best": oracle_best,
                }
            )
    return n_checks, vectors


def _check_batched(
    spec: FuzzSpec, world: dict, vectors: list, divergences: list
) -> int:
    """Batched kernels vs their per-row paths — always a bitwise contract."""
    face_map = world["face_map"]
    stack = np.stack(world["rss_rounds"])
    if spec.mode == "extended":
        batched_v = extended_sampling_vectors(stack, comparator_eps=spec.comparator_eps)
    else:
        batched_v = sampling_vectors(stack, comparator_eps=spec.comparator_eps)
    per_round_v = np.stack(vectors)
    n_checks = 1
    if not np.array_equal(batched_v, per_round_v, equal_nan=True):
        divergences.append(
            {
                "check": "batched_vectors",
                "batched": _jsonable(batched_v),
                "per_round": _jsonable(per_round_v),
            }
        )
        return n_checks
    batched_d = face_map.distances_to_many(per_round_v)
    per_row_d = np.stack([face_map.distances_to(v) for v in vectors])
    n_checks += 1
    if not np.array_equal(batched_d, per_row_d):
        divergences.append(
            {
                "check": "batched_distances",
                "batched": _jsonable(batched_d),
                "per_row": _jsonable(per_row_d),
            }
        )
        return n_checks
    batched_ties, batched_best = face_map.match_many(per_round_v)
    n_checks += 1
    for r, v in enumerate(vectors):
        ties, best = face_map.match(v)
        if not np.array_equal(batched_ties[r], ties) or float(batched_best[r]) != float(
            best
        ):
            divergences.append(
                {
                    "check": "batched_match",
                    "round": r,
                    "batched_ties": _jsonable(batched_ties[r]),
                    "per_round_ties": _jsonable(ties),
                    "batched_best": float(batched_best[r]),
                    "per_round_best": float(best),
                }
            )
            break
    return n_checks


def _check_scaleout(spec: FuzzSpec, world: dict, divergences: list) -> int:
    """Scale-out layer vs the plain build — always a bitwise contract.

    Covers the 2-bit signature packing (round trip and the packed-backed
    float32 matching matrix) and the tiled builder (``tile_cells`` +
    ``packed=True`` must reproduce every map array bit for bit).
    """
    face_map = world["face_map"]
    packed = PackedSignatures.from_dense(face_map.signatures)
    n_checks = 1
    if not np.array_equal(packed.dense(), face_map.signatures):
        divergences.append(
            {
                "check": "packed_signatures",
                "stage": "round_trip",
                "dense": _jsonable(face_map.signatures),
                "unpacked": _jsonable(packed.dense()),
            }
        )
        return n_checks
    packed_map = face_map.replace(signatures=None, packed=packed)
    n_checks += 1
    if not np.array_equal(packed_map._sig_f32(), face_map._sig_f32()):
        divergences.append(
            {
                "check": "packed_signatures",
                "stage": "float32_matrix",
            }
        )
        return n_checks
    grid = face_map.grid
    tile = max(1, grid.n_cells // 3)  # force a multi-tile pass
    if spec.certain:
        rebuilt = build_certain_face_map(
            face_map.nodes,
            grid,
            split_components=spec.split_components,
            tile_cells=tile,
            packed=True,
        )
    else:
        rebuilt = build_face_map(
            face_map.nodes,
            grid,
            spec.c,
            sensing_range=spec.sensing_range,
            split_components=spec.split_components,
            tile_cells=tile,
            packed=True,
        )
    n_checks += 1
    for name in ("signatures", "centroids", "cell_face", "cell_counts", "adj_indptr", "adj_indices"):
        if not np.array_equal(getattr(rebuilt, name), getattr(face_map, name)):
            divergences.append(
                {
                    "check": "tiled_build",
                    "field": name,
                    "tile_cells": tile,
                }
            )
            break
    return n_checks


def _batches(world: dict, spec: FuzzSpec) -> list[SampleBatch]:
    return [
        SampleBatch(
            rss=rss,
            times=t + 0.01 * np.arange(spec.k),
            positions=np.broadcast_to(world["targets"][r], (spec.k, 2)).copy(),
        )
        for r, (rss, t) in enumerate(zip(world["rss_rounds"], world["times"]))
    ]


def _estimate_key(est) -> tuple:
    """Comparable summary of a production/oracle estimate."""
    return (
        tuple(int(f) for f in est.face_ids),
        (float(est.position[0]), float(est.position[1])),
        float(est.sq_distance),
        int(est.n_reporting),
    )


def _check_tracker(spec: FuzzSpec, world: dict, divergences: list) -> int:
    face_map = world["face_map"]
    policy = spec.policy()
    tracker = FTTTracker(
        face_map,
        mode=spec.mode,
        matcher="exhaustive",
        comparator_eps=spec.comparator_eps,
        degradation=policy,
    )
    estimates = [
        tracker.localize(rss, t=t)
        for rss, t in zip(world["rss_rounds"], world["times"])
    ]
    n_checks = 0
    if spec.mode == "basic":
        # every quantity in the round loop is float32-exact in basic mode,
        # so the oracle tracker must reproduce the anchors bit for bit
        oracle_est = oracle_track(
            face_map,
            world["rss_rounds"],
            world["times"],
            mode=spec.mode,
            comparator_eps=spec.comparator_eps,
            degradation=policy,
        )
        n_checks += 1
        for r, (prod, want) in enumerate(zip(estimates, oracle_est)):
            if _estimate_key(prod) != _estimate_key(want):
                divergences.append(
                    {
                        "check": "tracker_anchor",
                        "round": r,
                        "production": _jsonable(_estimate_key(prod)),
                        "oracle": _jsonable(_estimate_key(want)),
                    }
                )
                break
    if policy is None and spec.n_rounds > 1:
        # the trace-at-a-time GEMM path documents bit-identity with the
        # per-round loop; hold it to that in both modes
        batched = FTTTracker(
            face_map,
            mode=spec.mode,
            matcher="exhaustive",
            comparator_eps=spec.comparator_eps,
        ).track(_batches(world, spec))
        n_checks += 1
        for r, (prod, want) in enumerate(zip(batched.estimates, estimates)):
            if _estimate_key(prod) != _estimate_key(want):
                divergences.append(
                    {
                        "check": "batched_tracker",
                        "round": r,
                        "batched": _jsonable(_estimate_key(prod)),
                        "per_round": _jsonable(_estimate_key(want)),
                    }
                )
                break
    return n_checks


def run_spec(spec: FuzzSpec) -> dict:
    """Run one differential scenario; report every divergence found."""
    world = _build_world(spec)
    divergences: list[dict] = []
    n_checks = _check_geometry(spec, world, divergences)
    n_checks += _check_scaleout(spec, world, divergences)
    round_checks, vectors = _check_rounds(spec, world, divergences)
    n_checks += round_checks
    if spec.n_rounds > 1:
        n_checks += _check_batched(spec, world, vectors, divergences)
    n_checks += _check_tracker(spec, world, divergences)
    return {
        "spec": spec.to_dict(),
        "divergences": divergences,
        "stats": {
            "n_faces": int(world["face_map"].n_faces),
            "n_pairs": int(world["face_map"].n_pairs),
            "n_rounds": spec.n_rounds,
            "n_checks": n_checks,
        },
    }


# -- campaign driver ----------------------------------------------------------


def _run_index(task: "tuple[int, int]") -> dict:
    master_seed, index = task
    report = run_spec(generate_spec(index, master_seed))
    report["index"] = index
    return report


def _env_workers() -> int:
    env = os.environ.get("REPRO_WORKERS")
    if env is None or env == "":
        return 1
    try:
        workers = int(env)
    except ValueError:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}") from None
    if workers < 1:
        raise ValueError(f"REPRO_WORKERS must be >= 1, got {workers}")
    return workers


def shrink_spec(spec: FuzzSpec, check: str, *, max_evals: int = 48) -> FuzzSpec:
    """Greedily minimize *spec* while the named check keeps diverging.

    Each pass tries a fixed ladder of simplifications (drop the fault
    model, disable degradation, fall back to basic mode, halve the
    workload, coarsen the grid) and keeps any candidate that still
    reproduces a divergence of the same check family.
    """
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _shrink_candidates(spec):
            if evals >= max_evals:
                break
            evals += 1
            report = run_spec(candidate)
            if any(d["check"] == check for d in report["divergences"]):
                spec = candidate
                improved = True
                break
    return spec


def _shrink_candidates(spec: FuzzSpec) -> list[FuzzSpec]:
    out: list[FuzzSpec] = []
    if spec.value_fault is not None:
        out.append(replace(spec, value_fault=None))
    if spec.dropout_p > 0.0:
        out.append(replace(spec, dropout_p=0.0))
    if spec.sample_loss_p > 0.0:
        out.append(replace(spec, sample_loss_p=0.0))
    if spec.degradation:
        out.append(replace(spec, degradation=False))
    if spec.mode == "extended":
        out.append(replace(spec, mode="basic"))
    if spec.comparator_eps > 0.0:
        out.append(replace(spec, comparator_eps=0.0))
    if spec.sensing_range is not None:
        out.append(replace(spec, sensing_range=None))
    if spec.n_rounds > 1:
        out.append(replace(spec, n_rounds=max(1, spec.n_rounds // 2)))
    if spec.k > 1:
        out.append(replace(spec, k=max(1, spec.k // 2)))
    if spec.n_nodes > 3:
        out.append(replace(spec, n_nodes=spec.n_nodes - 1))
    if spec.cell_size < 5.0:
        out.append(replace(spec, cell_size=5.0))
    if spec.split_components:
        out.append(replace(spec, split_components=False))
    return out


def run_fuzz(
    n_scenarios: "int | None" = None,
    *,
    seed: int = 0,
    n_workers: "int | None" = None,
    artifact_dir: "str | os.PathLike | None" = None,
    shrink: bool = True,
    max_shrink_evals: int = 48,
) -> dict:
    """Run a differential campaign of *n_scenarios* seeded scenarios.

    Results are bit-identical for any worker count: scenario *i* is a pure
    function of ``(seed, i)`` and reports are merged in index order (the
    ``digest`` field hashes the full ordered report list to prove it).

    On the first divergent scenario (lowest index) the spec is shrunk and
    a replayable artifact JSON is written under *artifact_dir* (default
    ``results/fuzz``, overridable via ``REPRO_FUZZ_ARTIFACTS``).
    """
    if n_scenarios is None:
        n_scenarios = default_budget()
    if n_scenarios < 1:
        raise ValueError(f"n_scenarios must be >= 1, got {n_scenarios}")
    if n_workers is None:
        n_workers = _env_workers()
    n_workers = max(1, min(n_workers, n_scenarios))
    tasks = [(seed, i) for i in range(n_scenarios)]
    if n_workers == 1:
        reports = [_run_index(t) for t in tasks]
    else:
        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        with ctx.Pool(processes=n_workers) as pool:
            reports = pool.map(_run_index, tasks)
    digest = hashlib.sha256(
        json.dumps(reports, sort_keys=True).encode()
    ).hexdigest()
    divergent = [r for r in reports if r["divergences"]]
    summary = {
        "n_scenarios": n_scenarios,
        "seed": seed,
        "n_workers": n_workers,
        "n_checks": sum(r["stats"]["n_checks"] for r in reports),
        "n_divergent": len(divergent),
        "digest": digest,
        "first_divergence": None,
    }
    if divergent:
        first = divergent[0]
        spec = FuzzSpec.from_dict(first["spec"])
        check = first["divergences"][0]["check"]
        if shrink:
            spec = shrink_spec(spec, check, max_evals=max_shrink_evals)
        shrunk_report = run_spec(spec)
        same_check = [d for d in shrunk_report["divergences"] if d["check"] == check]
        artifact = {
            "check": check,
            "spec": spec.to_dict(),
            "original_spec": first["spec"],
            "index": first["index"],
            "master_seed": seed,
            "divergence": same_check[0] if same_check else first["divergences"][0],
            "n_divergences": len(first["divergences"]),
        }
        out_dir = Path(
            artifact_dir
            if artifact_dir is not None
            else os.environ.get("REPRO_FUZZ_ARTIFACTS", "results/fuzz")
        )
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"divergence_seed{seed}_idx{first['index']}.json"
        path.write_text(json.dumps(artifact, indent=2, sort_keys=True))
        summary["first_divergence"] = {
            "index": first["index"],
            "check": check,
            "artifact": str(path),
            "spec": spec.to_dict(),
        }
    return summary


def replay_divergence(path: "str | os.PathLike") -> dict:
    """Re-run the scenario recorded in a divergence artifact.

    Returns the fresh report plus whether the recorded check family
    diverged again — the one-command repro loop for kernel debugging.
    """
    artifact = json.loads(Path(path).read_text())
    spec = FuzzSpec.from_dict(artifact["spec"])
    report = run_spec(spec)
    recorded = artifact.get("check")
    return {
        "recorded_check": recorded,
        "reproduced": any(d["check"] == recorded for d in report["divergences"]),
        "report": report,
    }
