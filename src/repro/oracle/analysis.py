"""Analysis oracle: Monte-Carlo validation of the §5.1 / Appendix-II math.

The closed forms under test:

* ``f = (1/2)^(k-1)`` — a k-sample group misses a flipped pair;
* ``f_N = (1 - f)^(N-1)`` — a group captures all N flips;
* the sampling-times rule ``k > 1 - log2(1 - lambda^(1/(N-1)))``;
* ``E_N = N * f`` — the expected inter-face (vector) error.

The estimators below simulate the underlying coin-flip experiments with
scalar Python loops and per-trial draws — deliberately nothing shared
with :func:`repro.analysis.sampling_times.simulate_flip_capture` or
:func:`repro.analysis.error_bounds.simulate_interface_error`, which are
vectorized over a single batched draw.
"""

from __future__ import annotations

import math

import numpy as np

from repro.rng import ensure_rng

__all__ = [
    "mc_flip_capture",
    "mc_interface_error",
    "check_sampling_times_bound",
]


def mc_flip_capture(
    k: int,
    n_pairs: int,
    n_trials: int = 4000,
    rng: "np.random.Generator | int | None" = None,
) -> float:
    """Monte-Carlo ``f_N``: fraction of trials where every flipped pair
    shows both orders within its k samples.

    Each sample of a flipped pair is a fair coin (the target is in the
    pair's uncertain area, §5.1); a pair is *captured* iff its k flips
    are not unanimous.
    """
    if k < 1 or n_pairs < 1 or n_trials < 1:
        raise ValueError("k, n_pairs and n_trials must all be >= 1")
    rng = ensure_rng(rng)
    captured_all = 0
    for _ in range(n_trials):
        ok = True
        for _pair in range(n_pairs):
            heads = 0
            for _ in range(k):
                if rng.random() < 0.5:
                    heads += 1
            if heads == 0 or heads == k:  # unanimous: the flip was missed
                ok = False
                break
        if ok:
            captured_all += 1
    return captured_all / n_trials


def mc_interface_error(
    k: int,
    n_pairs: int,
    n_trials: int = 4000,
    rng: "np.random.Generator | int | None" = None,
) -> float:
    """Monte-Carlo ``E_N``: mean vector displacement over trials.

    Each of the N simultaneously-uncertain pairs is missed independently
    iff its k coin flips are unanimous (probability ``(1/2)^(k-1)``);
    every missed pair displaces the matched face by one vector unit
    (Appendix II).
    """
    if k < 1 or n_pairs < 0 or n_trials < 1:
        raise ValueError("k and n_trials must be >= 1, n_pairs >= 0")
    rng = ensure_rng(rng)
    total = 0
    for _ in range(n_trials):
        for _pair in range(n_pairs):
            first = rng.random() < 0.5
            missed = all((rng.random() < 0.5) == first for _ in range(k - 1))
            if missed:
                total += 1
    return total / n_trials


def check_sampling_times_bound(confidence: float, n_pairs: int) -> dict:
    """Evaluate the §5.1 rule ``k > 1 - log2(1 - lambda^(1/(N-1)))`` directly.

    Returns the real-valued bound, the smallest integer k satisfying the
    strict inequality *by direct evaluation of* ``(1-f)^(N-1)`` (no
    logarithms), and whether ``k - 1`` indeed fails — the three facts the
    production :func:`repro.analysis.sampling_times.required_sampling_times`
    must reproduce.
    """
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
    exponent = 1.0 if n_pairs == 1 else n_pairs - 1

    def capture(k: int) -> float:
        f = 0.5 ** (k - 1)
        return (1.0 - f) ** exponent

    k = 1
    while capture(k) <= confidence:
        k += 1
        if k > 10_000:
            raise AssertionError("sampling-times search did not terminate")
    root = confidence ** (1.0 / exponent)
    bound = 1.0 - math.log2(1.0 - root) if root < 1.0 else float("inf")
    return {
        "bound": bound,
        "k": k,
        "holds_at_k": capture(k) > confidence,
        "fails_below_k": k == 1 or capture(k - 1) <= confidence,
    }
