"""Range-based least-squares MLE baseline.

Not one of the paper's two comparators, but the classic range-based
approach its related-work section dismisses ("additional hardware ...
careful environment profiling"): invert the path-loss model to get a
distance estimate per sensor, then solve a nonlinear least-squares
position fit.  Included to quantify how badly log-normal ranging noise
hurts when the model is inverted directly.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
from scipy.optimize import least_squares

from repro.core.tracker import TrackEstimate, TrackResult
from repro.rf.channel import SampleBatch
from repro.rf.pathloss import LogDistancePathLoss

__all__ = ["RangeMLETracker"]


class RangeMLETracker:
    """Weighted nonlinear least squares on inverted-path-loss ranges.

    Parameters
    ----------
    nodes : (n, 2) sensor positions.
    pathloss : the propagation model to invert (assumed perfectly known —
        an *optimistic* assumption real deployments cannot make).
    field_size : estimates are clipped into the field.
    min_sensors : rounds with fewer reporting sensors fall back to the
        weighted sensor centroid.
    """

    def __init__(
        self,
        nodes: np.ndarray,
        pathloss: LogDistancePathLoss,
        *,
        field_size: float = 100.0,
        min_sensors: int = 3,
    ) -> None:
        self.nodes = np.atleast_2d(np.asarray(nodes, dtype=float))
        self.pathloss = pathloss
        self.field_size = field_size
        if min_sensors < 1:
            raise ValueError(f"min_sensors must be >= 1, got {min_sensors}")
        self.min_sensors = min_sensors

    def _estimate(self, mean_rss: np.ndarray) -> np.ndarray:
        ok = ~np.isnan(mean_rss)
        nodes = self.nodes[ok]
        if ok.sum() == 0:
            return np.full(2, self.field_size / 2.0)
        ranges = self.pathloss.distance_from_rss(mean_rss[ok])
        weights = 1.0 / np.maximum(ranges, 1.0)  # nearer sensors are more informative
        x0 = (nodes * weights[:, None]).sum(axis=0) / weights.sum()
        if ok.sum() < self.min_sensors:
            return np.clip(x0, 0.0, self.field_size)

        def residuals(p: np.ndarray) -> np.ndarray:
            d = np.hypot(nodes[:, 0] - p[0], nodes[:, 1] - p[1])
            return weights * (d - ranges)

        sol = least_squares(
            residuals,
            x0,
            bounds=([0.0, 0.0], [self.field_size, self.field_size]),
            xtol=1e-8,
            max_nfev=200,
        )
        return sol.x

    def localize(self, rss: np.ndarray, t: float = 0.0) -> TrackEstimate:
        rss = np.atleast_2d(np.asarray(rss, dtype=float))
        if rss.shape[1] != len(self.nodes):
            raise ValueError(
                f"rss has {rss.shape[1]} sensors but the tracker knows {len(self.nodes)}"
            )
        all_nan = np.isnan(rss).all(axis=0)
        counts = np.maximum((~np.isnan(rss)).sum(axis=0), 1)
        sums = np.where(np.isnan(rss), 0.0, rss).sum(axis=0)
        mean_rss = np.where(all_nan, np.nan, sums / counts)
        position = self._estimate(mean_rss)
        return TrackEstimate(
            t=t,
            position=position,
            face_ids=np.array([-1]),  # no face semantics for a range method
            sq_distance=float("nan"),
            n_reporting=int((~np.isnan(rss).all(axis=0)).sum()),
            visited_faces=0,
        )

    def localize_batch(self, batch: SampleBatch, t: "float | None" = None) -> TrackEstimate:
        t0 = float(batch.times[0]) if t is None else t
        return self.localize(batch.rss, t=t0)

    def track(self, batches: Iterable[SampleBatch]) -> TrackResult:
        result = TrackResult()
        for batch in batches:
            result.append(self.localize_batch(batch), batch.mean_position)
        return result

    def reset(self) -> None:
        """Stateless; interface parity."""
