"""Probabilistic k-nearest-neighbours tracker (PkNN-inspired, paper ref [8]).

Ren et al.'s PkNN retrieves, under measurement uncertainty, the sensors
most probably nearest the target and localizes from them.  This
implementation estimates each sensor's probability of being among the
k loudest from the grouping sampling (per-sample rank votes), then places
the target at the probability-weighted centroid of the candidates — an
uncertainty-aware baseline that, unlike FTTT, throws away the pairwise
*structure* of the flips.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.tracker import TrackEstimate, TrackResult
from repro.rf.channel import SampleBatch

__all__ = ["PkNNTracker"]


class PkNNTracker:
    """Probability-weighted centroid of the probably-k-nearest sensors.

    Parameters
    ----------
    nodes : (n, 2) sensor positions.
    k_neighbors : how many nearest sensors to aggregate over.
    min_prob : candidates below this inclusion probability are dropped.
    """

    def __init__(self, nodes: np.ndarray, *, k_neighbors: int = 4, min_prob: float = 0.05) -> None:
        self.nodes = np.atleast_2d(np.asarray(nodes, dtype=float))
        if k_neighbors < 1:
            raise ValueError(f"k_neighbors must be >= 1, got {k_neighbors}")
        if not (0.0 <= min_prob < 1.0):
            raise ValueError(f"min_prob must be in [0, 1), got {min_prob}")
        self.k_neighbors = min(k_neighbors, len(self.nodes))
        self.min_prob = min_prob

    def membership_probabilities(self, rss: np.ndarray) -> np.ndarray:
        """P(sensor is among the k loudest), estimated by per-sample votes."""
        rss = np.atleast_2d(np.asarray(rss, dtype=float))
        k_samples, n = rss.shape
        votes = np.zeros(n)
        valid_samples = 0
        for row in rss:
            heard = ~np.isnan(row)
            if heard.sum() == 0:
                continue
            valid_samples += 1
            k_here = min(self.k_neighbors, int(heard.sum()))
            order = np.argsort(-np.where(heard, row, -np.inf))
            votes[order[:k_here]] += 1.0
        if valid_samples == 0:
            return np.zeros(n)
        return votes / valid_samples

    def localize(self, rss: np.ndarray, t: float = 0.0) -> TrackEstimate:
        rss = np.atleast_2d(np.asarray(rss, dtype=float))
        if rss.shape[1] != len(self.nodes):
            raise ValueError(
                f"rss has {rss.shape[1]} sensors but the tracker knows {len(self.nodes)}"
            )
        probs = self.membership_probabilities(rss)
        candidates = probs > self.min_prob
        if not candidates.any():
            position = self.nodes.mean(axis=0)
        else:
            w = probs[candidates]
            position = (self.nodes[candidates] * w[:, None]).sum(axis=0) / w.sum()
        return TrackEstimate(
            t=t,
            position=position,
            face_ids=np.array([-1]),
            sq_distance=float("nan"),
            n_reporting=int((~np.isnan(rss).all(axis=0)).sum()),
            visited_faces=0,
        )

    def localize_batch(self, batch: SampleBatch, t: "float | None" = None) -> TrackEstimate:
        t0 = float(batch.times[0]) if t is None else t
        return self.localize(batch.rss, t=t0)

    def track(self, batches: Iterable[SampleBatch]) -> TrackResult:
        result = TrackResult()
        for batch in batches:
            result.append(self.localize_batch(batch), batch.mean_position)
        return result

    def reset(self) -> None:
        """Stateless; interface parity."""
