"""Direct MLE baseline (paper's "[24]" comparator).

Sequence-based localization: the field is divided by perpendicular
bisectors only (every comparison assumed reliable), each face carries the
ideal detection sequence of its region, and each localization round is
matched *independently* — no use of uncertainty, no temporal coupling.
This is precisely the strategy §3.2 shows breaking down: near bisectors
the observed sequence flips, and the matched face jumps around.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.baselines.sequences import sign_vector_from_rss, sign_vectors_from_rss
from repro.core.matching import ExhaustiveMatcher
from repro.core.tracker import TrackEstimate, TrackResult
from repro.geometry.faces import FaceMap
from repro.geometry.primitives import enumerate_pairs
from repro.obs import metrics as obs
from repro.rf.channel import SampleBatch

__all__ = ["DirectMLETracker"]


class DirectMLETracker:
    """Independent per-round sequence matching over the certain face map.

    Parameters
    ----------
    face_map : a *certain* face map
        (:func:`repro.geometry.faces.build_certain_face_map`).
    reduce : how the grouping sampling collapses to one detection sequence;
        ``"mean"`` (default) averages the group — the strongest fair
        reading — while ``"last"`` replicates literal one-shot sensing.
    """

    def __init__(self, face_map: FaceMap, *, reduce: str = "mean") -> None:
        if reduce not in ("mean", "last"):
            raise ValueError(f"unknown reduce {reduce!r}")
        self.face_map = face_map
        self.reduce = reduce
        self._pairs = enumerate_pairs(face_map.n_nodes)
        self._matcher = ExhaustiveMatcher(face_map)

    def build_vector(self, rss: np.ndarray) -> np.ndarray:
        return sign_vector_from_rss(rss, self._pairs, reduce=self.reduce)

    def localize(self, rss: np.ndarray, t: float = 0.0) -> TrackEstimate:
        rss = np.atleast_2d(np.asarray(rss, dtype=float))
        if rss.shape[1] != self.face_map.n_nodes:
            raise ValueError(
                f"rss has {rss.shape[1]} sensors but the face map expects "
                f"{self.face_map.n_nodes}"
            )
        vector = self.build_vector(rss)
        match = self._matcher.match(vector)
        if obs.enabled():
            obs.counter("baselines.direct_mle.rounds").inc()
        return TrackEstimate(
            t=t,
            position=match.position,
            face_ids=match.face_ids,
            sq_distance=match.sq_distance,
            n_reporting=int((~np.isnan(rss).all(axis=0)).sum()),
            visited_faces=match.visited,
        )

    def localize_batch(self, batch: SampleBatch, t: "float | None" = None) -> TrackEstimate:
        t0 = float(batch.times[0]) if t is None else t
        return self.localize(batch.rss, t=t0)

    def track(self, batches: Iterable[SampleBatch]) -> TrackResult:
        """Localize the whole trace in one batched kernel call.

        Rounds are matched independently (that is the point of this
        baseline), so the per-round loop collapses into one batched sign
        -vector build plus one GEMM match — bit-identical to looping.
        """
        batches = list(batches)
        stack = [np.atleast_2d(np.asarray(b.rss, dtype=float)) for b in batches]
        if len(batches) > 1 and all(
            s.shape == stack[0].shape and s.shape[1] == self.face_map.n_nodes for s in stack
        ):
            rss_stack = np.stack(stack)
            vectors = sign_vectors_from_rss(rss_stack, self._pairs, reduce=self.reduce)
            matches = self._matcher.match_many(vectors)
            if obs.enabled():
                obs.counter("baselines.direct_mle.rounds").inc(len(batches))
            result = TrackResult()
            for batch, rss, match in zip(batches, rss_stack, matches):
                est = TrackEstimate(
                    t=float(batch.times[0]),
                    position=match.position,
                    face_ids=match.face_ids,
                    sq_distance=match.sq_distance,
                    n_reporting=int((~np.isnan(rss).all(axis=0)).sum()),
                    visited_faces=match.visited,
                )
                result.append(est, batch.mean_position)
            return result
        result = TrackResult()
        for batch in batches:
            result.append(self.localize_batch(batch), batch.mean_position)
        return result

    def reset(self) -> None:
        """Stateless; present for tracker-interface parity."""
