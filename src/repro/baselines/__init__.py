"""Baseline trackers the paper compares FTTT against (§7).

* :class:`DirectMLETracker` — "Direct MLE [24]": each localization's
  detection node sequence is matched independently against the
  bisector-face sequence table (sequence-based localization).
* :class:`PathMatchingTracker` — "PM [22]": sequence matching plus an
  optimal path over the face graph under a maximum-velocity constraint.
* :class:`RangeMLETracker` — classic range-based least-squares MLE from
  inverted path loss (not in the paper's comparison; a sanity baseline).
* :class:`NearestNodeTracker` — weakest possible baseline: snap to the
  loudest sensor.
"""

from repro.baselines.sequences import (
    detection_sequence,
    sign_vector_from_rss,
    kendall_distance,
    spearman_footrule,
)
from repro.baselines.direct_mle import DirectMLETracker
from repro.baselines.path_matching import PathMatchingTracker
from repro.baselines.range_mle import RangeMLETracker
from repro.baselines.nearest import NearestNodeTracker
from repro.baselines.weighted_centroid import WeightedCentroidTracker
from repro.baselines.pknn import PkNNTracker
from repro.baselines.kalman import KalmanTracker
from repro.baselines.particle import ParticleFilterTracker

__all__ = [
    "detection_sequence",
    "sign_vector_from_rss",
    "kendall_distance",
    "spearman_footrule",
    "DirectMLETracker",
    "PathMatchingTracker",
    "RangeMLETracker",
    "NearestNodeTracker",
    "WeightedCentroidTracker",
    "PkNNTracker",
    "KalmanTracker",
    "ParticleFilterTracker",
]
