"""Detection node sequences and rank-sequence comparisons.

The certain-sequence methods ([22], [23], [24]) sort sensors by RSS into a
"detection node sequence" and localize by comparing it with each face's
ideal sequence.  Pairwise sign vectors are the equivalent encoding this
library uses throughout (a total order on n items *is* its C(n,2) pairwise
comparison outcomes), which makes the baselines directly comparable with
FTTT's vector machinery.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.primitives import enumerate_pairs

__all__ = [
    "detection_sequence",
    "sign_vector_from_rss",
    "sign_vectors_from_rss",
    "sign_vector_from_ranks",
    "kendall_distance",
    "spearman_footrule",
]


def detection_sequence(rss_row: np.ndarray) -> np.ndarray:
    """Node ids in descending-RSS order (the paper's detection sequence).

    NaN entries (silent sensors) sort to the end, mirroring the Eq. 6
    convention that silent sensors read weaker than reporting ones.
    """
    rss_row = np.asarray(rss_row, dtype=float)
    key = np.where(np.isnan(rss_row), -np.inf, rss_row)
    return np.argsort(-key, kind="stable")


def sign_vector_from_rss(
    rss: np.ndarray,
    pairs: "tuple[np.ndarray, np.ndarray] | None" = None,
    *,
    reduce: str = "mean",
) -> np.ndarray:
    """Pairwise sign vector of a detection outcome.

    Parameters
    ----------
    rss : (n,) one-shot RSS row, or (k, n) group reduced per *reduce*.
    reduce : ``"mean"`` averages the group before comparing (the strongest
        fair reading a certain-sequence method can get from the same data
        FTTT sees); ``"last"`` uses the final sample only (literal one-shot
        sensing).

    Returns
    -------
    (P,) float vector in {-1, 0, +1}; NaN where both sensors are silent.
    """
    rss = np.asarray(rss, dtype=float)
    if rss.ndim == 2:
        if reduce == "mean":
            all_nan = np.isnan(rss).all(axis=0)
            counts = np.maximum((~np.isnan(rss)).sum(axis=0), 1)
            sums = np.where(np.isnan(rss), 0.0, rss).sum(axis=0)
            row = np.where(all_nan, np.nan, sums / counts)
        elif reduce == "last":
            row = rss[-1]
        else:
            raise ValueError(f"unknown reduce {reduce!r}")
    elif rss.ndim == 1:
        row = rss
    else:
        raise ValueError(f"rss must be 1-D or 2-D, got shape {rss.shape}")

    n = len(row)
    if pairs is None:
        pairs = enumerate_pairs(n)
    i_idx, j_idx = pairs
    a, b = row[i_idx], row[j_idx]
    both_nan = np.isnan(a) & np.isnan(b)
    with np.errstate(invalid="ignore"):
        val = np.sign(
            np.where(np.isnan(a), -np.inf, a) - np.where(np.isnan(b), -np.inf, b)
        ).astype(float)
    val[both_nan] = np.nan
    return val


def sign_vectors_from_rss(
    rss: np.ndarray,
    pairs: "tuple[np.ndarray, np.ndarray] | None" = None,
    *,
    reduce: str = "mean",
) -> np.ndarray:
    """Batched :func:`sign_vector_from_rss` over a ``(T, k, n)`` round stack.

    Row ``t`` is bit-identical to ``sign_vector_from_rss(rss[t], ...)`` —
    the reduction and comparisons are elementwise per round.
    """
    rss = np.asarray(rss, dtype=float)
    if rss.ndim != 3:
        raise ValueError(f"rss must be a (T, k, n) stack, got shape {rss.shape}")
    if reduce == "mean":
        all_nan = np.isnan(rss).all(axis=1)  # (T, n)
        counts = np.maximum((~np.isnan(rss)).sum(axis=1), 1)
        sums = np.where(np.isnan(rss), 0.0, rss).sum(axis=1)
        rows = np.where(all_nan, np.nan, sums / counts)
    elif reduce == "last":
        rows = rss[:, -1]
    else:
        raise ValueError(f"unknown reduce {reduce!r}")
    n = rows.shape[1]
    if pairs is None:
        pairs = enumerate_pairs(n)
    i_idx, j_idx = pairs
    a, b = rows[:, i_idx], rows[:, j_idx]
    both_nan = np.isnan(a) & np.isnan(b)
    with np.errstate(invalid="ignore"):
        val = np.sign(
            np.where(np.isnan(a), -np.inf, a) - np.where(np.isnan(b), -np.inf, b)
        ).astype(float)
    val[both_nan] = np.nan
    return val


def sign_vector_from_ranks(ranks: np.ndarray, pairs: "tuple[np.ndarray, np.ndarray] | None" = None) -> np.ndarray:
    """Pairwise sign vector from a distance-rank vector (rank 0 = nearest)."""
    ranks = np.asarray(ranks)
    if pairs is None:
        pairs = enumerate_pairs(len(ranks))
    i_idx, j_idx = pairs
    return np.sign(ranks[j_idx] - ranks[i_idx]).astype(float)


def kendall_distance(seq_a: np.ndarray, seq_b: np.ndarray) -> int:
    """Number of discordant pairs between two orderings of the same items."""
    seq_a = np.asarray(seq_a)
    seq_b = np.asarray(seq_b)
    if sorted(seq_a.tolist()) != sorted(seq_b.tolist()):
        raise ValueError("sequences must be permutations of the same items")
    n = len(seq_a)
    pos_b = np.empty(n, dtype=np.int64)
    pos_b[seq_b] = np.arange(n)
    mapped = pos_b[seq_a]
    i, j = np.triu_indices(n, k=1)
    return int(np.count_nonzero(mapped[i] > mapped[j]))


def spearman_footrule(seq_a: np.ndarray, seq_b: np.ndarray) -> int:
    """Sum of absolute rank displacements between two orderings."""
    seq_a = np.asarray(seq_a)
    seq_b = np.asarray(seq_b)
    if sorted(seq_a.tolist()) != sorted(seq_b.tolist()):
        raise ValueError("sequences must be permutations of the same items")
    n = len(seq_a)
    pos_a = np.empty(n, dtype=np.int64)
    pos_b = np.empty(n, dtype=np.int64)
    pos_a[seq_a] = np.arange(n)
    pos_b[seq_b] = np.arange(n)
    return int(np.abs(pos_a - pos_b).sum())
