"""Nearest-node baseline: snap to the loudest sensor.

The weakest meaningful tracker — its error floor is set entirely by the
deployment density, making it a useful yardstick in benchmark tables.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.tracker import TrackEstimate, TrackResult
from repro.rf.channel import SampleBatch

__all__ = ["NearestNodeTracker"]


class NearestNodeTracker:
    """Estimate = position of the sensor with the highest mean RSS."""

    def __init__(self, nodes: np.ndarray) -> None:
        self.nodes = np.atleast_2d(np.asarray(nodes, dtype=float))

    def localize(self, rss: np.ndarray, t: float = 0.0) -> TrackEstimate:
        rss = np.atleast_2d(np.asarray(rss, dtype=float))
        if rss.shape[1] != len(self.nodes):
            raise ValueError(
                f"rss has {rss.shape[1]} sensors but the tracker knows {len(self.nodes)}"
            )
        all_nan = np.isnan(rss).all(axis=0)
        counts = np.maximum((~np.isnan(rss)).sum(axis=0), 1)
        sums = np.where(np.isnan(rss), 0.0, rss).sum(axis=0)
        mean_rss = np.where(all_nan, np.nan, sums / counts)
        if np.isnan(mean_rss).all():
            position = self.nodes.mean(axis=0)  # nobody heard anything
            loudest = -1
        else:
            loudest = int(np.nanargmax(mean_rss))
            position = self.nodes[loudest].copy()
        return TrackEstimate(
            t=t,
            position=position,
            face_ids=np.array([loudest]),
            sq_distance=float("nan"),
            n_reporting=int((~np.isnan(rss).all(axis=0)).sum()),
            visited_faces=0,
        )

    def localize_batch(self, batch: SampleBatch, t: "float | None" = None) -> TrackEstimate:
        t0 = float(batch.times[0]) if t is None else t
        return self.localize(batch.rss, t=t0)

    def track(self, batches: Iterable[SampleBatch]) -> TrackResult:
        result = TrackResult()
        for batch in batches:
            result.append(self.localize_batch(batch), batch.mean_position)
        return result

    def reset(self) -> None:
        """Stateless; interface parity."""
