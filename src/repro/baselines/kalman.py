"""Model-based tracking: constant-velocity Kalman filter.

The paper's related work contrasts FTTT with model-based trackers that
"successively estimate the localization, velocity and trace of the target
with target movement modeling ... e.g. Kalman filter" and criticizes them
as "complex and inflexible, requiring detailed assumptions of target
mobility".  This is that tracker: a linear Kalman filter with a
constant-velocity process model, fed by position pseudo-measurements from
any per-round localizer (range MLE by default).  It inherits exactly the
weakness the paper points at — a mobility prior that random-waypoint
turns keep violating.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.tracker import TrackEstimate, TrackResult
from repro.rf.channel import SampleBatch

__all__ = ["KalmanTracker"]


class KalmanTracker:
    """Constant-velocity Kalman filter over per-round position fixes.

    State ``[x, y, vx, vy]``; measurements are the 2-D position estimates
    of an inner per-round localizer.

    Parameters
    ----------
    measurement_tracker : any tracker with ``localize_batch`` — produces
        the position fixes the filter smooths (e.g. ``RangeMLETracker``).
    process_sigma : accel-noise scale (m/s^2); larger trusts measurements
        more during manoeuvres.
    measurement_sigma : assumed std of the position fixes (metres).
    field_size : state clipped into the field after each update.
    """

    def __init__(
        self,
        measurement_tracker,
        *,
        process_sigma: float = 1.0,
        measurement_sigma: float = 5.0,
        field_size: float = 100.0,
    ) -> None:
        if process_sigma <= 0 or measurement_sigma <= 0:
            raise ValueError("noise scales must be positive")
        self.inner = measurement_tracker
        self.process_sigma = process_sigma
        self.measurement_sigma = measurement_sigma
        self.field_size = field_size
        self._state: np.ndarray | None = None
        self._cov: np.ndarray | None = None
        self._last_t: float | None = None

    # -- filter mechanics --------------------------------------------------

    def _predict(self, dt: float) -> None:
        f = np.eye(4)
        f[0, 2] = f[1, 3] = dt
        q_scale = self.process_sigma**2
        # white-acceleration discretization
        q = np.array(
            [
                [dt**4 / 4, 0, dt**3 / 2, 0],
                [0, dt**4 / 4, 0, dt**3 / 2],
                [dt**3 / 2, 0, dt**2, 0],
                [0, dt**3 / 2, 0, dt**2],
            ]
        ) * q_scale
        self._state = f @ self._state
        self._cov = f @ self._cov @ f.T + q

    def _update(self, z: np.ndarray) -> None:
        h = np.zeros((2, 4))
        h[0, 0] = h[1, 1] = 1.0
        r = np.eye(2) * self.measurement_sigma**2
        innov = z - h @ self._state
        s = h @ self._cov @ h.T + r
        k = self._cov @ h.T @ np.linalg.solve(s, np.eye(2))
        self._state = self._state + k @ innov
        self._cov = (np.eye(4) - k @ h) @ self._cov

    # -- tracker interface ----------------------------------------------------

    def localize_batch(self, batch: SampleBatch, t: "float | None" = None) -> TrackEstimate:
        t0 = float(batch.times[0]) if t is None else t
        fix = self.inner.localize_batch(batch)
        z = np.asarray(fix.position, dtype=float)
        if self._state is None:
            self._state = np.array([z[0], z[1], 0.0, 0.0])
            self._cov = np.diag([self.measurement_sigma**2] * 2 + [4.0, 4.0])
        else:
            dt = max(t0 - (self._last_t if self._last_t is not None else t0), 1e-3)
            self._predict(dt)
            self._update(z)
        self._last_t = t0
        pos = np.clip(self._state[:2], 0.0, self.field_size)
        return TrackEstimate(
            t=t0,
            position=pos.copy(),
            face_ids=np.array([-1]),
            sq_distance=float("nan"),
            n_reporting=fix.n_reporting,
            visited_faces=fix.visited_faces,
        )

    def localize(self, rss: np.ndarray, t: float = 0.0) -> TrackEstimate:
        batch = SampleBatch(
            rss=np.atleast_2d(np.asarray(rss, dtype=float)),
            times=np.array([t]) if np.atleast_2d(rss).shape[0] == 1 else t + 0.1 * np.arange(np.atleast_2d(rss).shape[0]),
            positions=np.zeros((np.atleast_2d(rss).shape[0], 2)),
        )
        return self.localize_batch(batch, t=t)

    def track(self, batches: Iterable[SampleBatch]) -> TrackResult:
        self.reset()
        result = TrackResult()
        for batch in batches:
            result.append(self.localize_batch(batch), batch.mean_position)
        return result

    def reset(self) -> None:
        self._state = None
        self._cov = None
        self._last_t = None
        self.inner.reset()

    @property
    def velocity(self) -> "np.ndarray | None":
        """Current velocity estimate (m/s), None before the first update."""
        return None if self._state is None else self._state[2:].copy()
