"""Model-based tracking: bootstrap particle filter on raw RSS.

The heavyweight of the related-work family ("Beyond the Kalman Filter:
Particle Filters for Tracking Applications"): particles carry position and
velocity, propagate under a random-walk-velocity prior, and are weighted
by the Gaussian RSS likelihood of the full grouping sampling under the
log-distance model.  It uses strictly more information than FTTT (the raw
dB values and the exact noise model, not just orderings) at substantially
more computation — the classic accuracy/complexity trade-off the paper's
related work describes.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.tracker import TrackEstimate, TrackResult
from repro.rf.channel import SampleBatch
from repro.rf.pathloss import LogDistancePathLoss
from repro.rng import ensure_rng

__all__ = ["ParticleFilterTracker"]


class ParticleFilterTracker:
    """Bootstrap (SIR) particle filter with a near-constant-velocity prior.

    Parameters
    ----------
    nodes : (n, 2) sensor positions.
    pathloss : propagation model used in the likelihood (assumed known).
    noise_sigma_dbm : per-sample RSS noise std used in the likelihood.
    n_particles : particle count.
    velocity_sigma : per-round velocity diffusion (m/s).
    field_size : particles reflected into the field.
    sensing_range_m : sensors that heard nothing contribute a
        censored-likelihood term (target probably outside their range).
    resample_threshold : effective-sample-size fraction triggering resampling.
    seed : RNG for propagation/resampling (private stream, reproducible).
    """

    def __init__(
        self,
        nodes: np.ndarray,
        pathloss: LogDistancePathLoss,
        *,
        noise_sigma_dbm: float = 6.0,
        n_particles: int = 500,
        velocity_sigma: float = 1.5,
        field_size: float = 100.0,
        sensing_range_m: "float | None" = 40.0,
        resample_threshold: float = 0.5,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        self.nodes = np.atleast_2d(np.asarray(nodes, dtype=float))
        self.pathloss = pathloss
        if noise_sigma_dbm <= 0:
            raise ValueError(f"noise sigma must be positive, got {noise_sigma_dbm}")
        if n_particles < 10:
            raise ValueError(f"need at least 10 particles, got {n_particles}")
        if not (0.0 < resample_threshold <= 1.0):
            raise ValueError(f"resample threshold must be in (0, 1], got {resample_threshold}")
        self.noise_sigma = noise_sigma_dbm
        self.n_particles = n_particles
        self.velocity_sigma = velocity_sigma
        self.field_size = field_size
        self.sensing_range_m = sensing_range_m
        self.resample_threshold = resample_threshold
        self._rng = ensure_rng(seed)
        self._pos: np.ndarray | None = None  # (P, 2)
        self._vel: np.ndarray | None = None  # (P, 2)
        self._weights: np.ndarray | None = None
        self._last_t: float | None = None

    # -- internals ---------------------------------------------------------

    def _init_particles(self) -> None:
        self._pos = self._rng.uniform(0.0, self.field_size, size=(self.n_particles, 2))
        self._vel = self._rng.normal(0.0, 1.0, size=(self.n_particles, 2))
        self._weights = np.full(self.n_particles, 1.0 / self.n_particles)

    def _propagate(self, dt: float) -> None:
        self._vel = self._vel + self._rng.normal(0.0, self.velocity_sigma, self._vel.shape)
        self._pos = self._pos + self._vel * dt
        # reflect at the field boundary
        over = self._pos > self.field_size
        under = self._pos < 0.0
        self._pos = np.where(over, 2 * self.field_size - self._pos, self._pos)
        self._pos = np.where(under, -self._pos, self._pos)
        self._pos = np.clip(self._pos, 0.0, self.field_size)
        self._vel = np.where(over | under, -self._vel, self._vel)

    def _log_likelihood(self, rss: np.ndarray) -> np.ndarray:
        """Log-likelihood of the grouping sampling for every particle."""
        diff = self._pos[:, None, :] - self.nodes[None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])  # (P, n)
        mean_rss = self.pathloss.rss_dbm(dist)  # (P, n)
        loglik = np.zeros(self.n_particles)
        inv_two_var = 1.0 / (2.0 * self.noise_sigma**2)
        for row in rss:  # k rows — small
            heard = ~np.isnan(row)
            if heard.any():
                resid = row[heard][None, :] - mean_rss[:, heard]
                loglik -= (resid**2).sum(axis=1) * inv_two_var
            if self.sensing_range_m is not None and (~heard).any():
                # censored term: silent sensors say "probably out of range";
                # soft penalty for particles well inside a silent sensor's disc
                inside = self.sensing_range_m - dist[:, ~heard]  # >0 = inside
                penalty = np.clip(inside / self.sensing_range_m, 0.0, 1.0)
                loglik -= 2.0 * penalty.sum(axis=1)
        return loglik

    def _effective_sample_size(self) -> float:
        return 1.0 / float((self._weights**2).sum())

    def _resample(self) -> None:
        # systematic resampling
        positions = (np.arange(self.n_particles) + self._rng.random()) / self.n_particles
        cum = np.cumsum(self._weights)
        cum[-1] = 1.0
        idx = np.searchsorted(cum, positions)
        self._pos = self._pos[idx]
        self._vel = self._vel[idx]
        self._weights = np.full(self.n_particles, 1.0 / self.n_particles)

    # -- tracker interface ----------------------------------------------------

    def localize_batch(self, batch: SampleBatch, t: "float | None" = None) -> TrackEstimate:
        t0 = float(batch.times[0]) if t is None else t
        if self._pos is None:
            self._init_particles()
        else:
            dt = max(t0 - (self._last_t if self._last_t is not None else t0), 1e-3)
            self._propagate(dt)
        self._last_t = t0

        loglik = self._log_likelihood(batch.rss)
        loglik -= loglik.max()
        w = self._weights * np.exp(loglik)
        total = w.sum()
        if total <= 0 or not np.isfinite(total):
            self._init_particles()  # filter divergence: restart
            w = self._weights.copy()
            total = w.sum()
        self._weights = w / total
        if self._effective_sample_size() < self.resample_threshold * self.n_particles:
            estimate = (self._pos * self._weights[:, None]).sum(axis=0)
            self._resample()
        else:
            estimate = (self._pos * self._weights[:, None]).sum(axis=0)

        return TrackEstimate(
            t=t0,
            position=np.clip(estimate, 0.0, self.field_size),
            face_ids=np.array([-1]),
            sq_distance=float("nan"),
            n_reporting=int((~np.isnan(batch.rss).all(axis=0)).sum()),
            visited_faces=self.n_particles,
        )

    def localize(self, rss: np.ndarray, t: float = 0.0) -> TrackEstimate:
        rss = np.atleast_2d(np.asarray(rss, dtype=float))
        batch = SampleBatch(
            rss=rss,
            times=t + 0.1 * np.arange(rss.shape[0]),
            positions=np.zeros((rss.shape[0], 2)),
        )
        return self.localize_batch(batch, t=t)

    def track(self, batches: Iterable[SampleBatch]) -> TrackResult:
        self.reset()
        result = TrackResult()
        for batch in batches:
            result.append(self.localize_batch(batch), batch.mean_position)
        return result

    def reset(self) -> None:
        self._pos = None
        self._vel = None
        self._weights = None
        self._last_t = None
