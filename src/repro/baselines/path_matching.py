"""PM baseline: optimal path matching with MLE (paper's "[22]" comparator).

Per-round detection sequences are matched like Direct MLE, but instead of
committing to each round's best face independently, PM finds the *path*
of faces maximizing total sequence likelihood subject to a maximum-velocity
reachability constraint — a Viterbi decoding over the face graph.

The full DP over all O(n^4) faces is quadratic in the face count per step;
like the original system, we restrict each step to a beam of the top-B
faces by emission score (documented approximation; B is a parameter).
The max-velocity assumption is exactly the "extra imposed condition" the
paper criticizes PM for needing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.baselines.sequences import sign_vector_from_rss, sign_vectors_from_rss
from repro.core.tracker import TrackEstimate, TrackResult
from repro.geometry.faces import FaceMap
from repro.geometry.primitives import enumerate_pairs
from repro.obs import metrics as obs
from repro.rf.channel import SampleBatch

__all__ = ["PathMatchingTracker"]


@dataclass(frozen=True)
class _Round:
    t: float
    vector: np.ndarray
    n_reporting: int
    true_position: np.ndarray


class PathMatchingTracker:
    """Viterbi path matching over the certain face map.

    Parameters
    ----------
    face_map : a certain (bisector) face map.
    vmax_mps : assumed maximum target speed (the constraint PM requires).
    beam_width : candidate faces kept per round.
    reduce : group-to-sequence reduction (see
        :class:`~repro.baselines.direct_mle.DirectMLETracker`).
    penalty_per_m : score penalty per metre of transition distance beyond
        the reachable radius (soft constraint; decoding never dead-ends).
    unreachable_penalty : cap on the per-transition penalty.
    """

    def __init__(
        self,
        face_map: FaceMap,
        *,
        vmax_mps: float = 5.0,
        beam_width: int = 48,
        reduce: str = "mean",
        penalty_per_m: float = 1.0,
        unreachable_penalty: float = 50.0,
    ) -> None:
        if vmax_mps <= 0:
            raise ValueError(f"vmax must be positive, got {vmax_mps}")
        if beam_width < 1:
            raise ValueError(f"beam width must be >= 1, got {beam_width}")
        if penalty_per_m < 0 or unreachable_penalty < 0:
            raise ValueError("penalties must be non-negative")
        self.face_map = face_map
        self.vmax_mps = vmax_mps
        self.beam_width = beam_width
        self.reduce = reduce
        self.penalty_per_m = penalty_per_m
        self.unreachable_penalty = unreachable_penalty
        self._pairs = enumerate_pairs(face_map.n_nodes)
        # equivalent face radius: how far inside a face the target may sit
        areas = face_map.cell_counts * face_map.grid.cell_size**2
        self._face_radius = np.sqrt(areas / np.pi)

    # -- per-round machinery -------------------------------------------------

    def build_vector(self, rss: np.ndarray) -> np.ndarray:
        return sign_vector_from_rss(rss, self._pairs, reduce=self.reduce)

    def _emission_scores(self, vector: np.ndarray) -> np.ndarray:
        """Negative squared vector distance to every face (log-likelihood shape)."""
        return -self.face_map.distances_to(vector)

    def localize(self, rss: np.ndarray, t: float = 0.0) -> TrackEstimate:
        """Single-round localization (degenerates to Direct MLE: no path)."""
        rss = np.atleast_2d(np.asarray(rss, dtype=float))
        vector = self.build_vector(rss)
        scores = self._emission_scores(vector)
        best = float(scores.max())
        ties = np.flatnonzero(scores >= best - 1e-9)
        return TrackEstimate(
            t=t,
            position=self.face_map.centroids[ties].mean(axis=0),
            face_ids=ties,
            sq_distance=-best,
            n_reporting=int((~np.isnan(rss).all(axis=0)).sum()),
            visited_faces=self.face_map.n_faces,
        )

    # -- path decoding ---------------------------------------------------------

    def _decode(self, rounds: Sequence[_Round]) -> list[TrackEstimate]:
        if not rounds:
            return []
        fm = self.face_map
        # batched emissions: one GEMM for the whole trace instead of a
        # distances_to call per round (bit-identical; see distances_to_many)
        vectors = np.stack([rnd.vector for rnd in rounds])
        em_all = -fm.distances_to_many(vectors)  # (T, F)
        beams: list[np.ndarray] = []
        scores_list: list[np.ndarray] = []
        for em in em_all:
            width = min(self.beam_width, fm.n_faces)
            beam = np.argpartition(-em, width - 1)[:width]
            beams.append(beam)
            scores_list.append(em[beam])

        # Viterbi over beams
        total = scores_list[0].copy()
        backptr: list[np.ndarray] = []
        for step in range(1, len(rounds)):
            prev_beam, beam = beams[step - 1], beams[step]
            dt = max(rounds[step].t - rounds[step - 1].t, 1e-9)
            reach = (
                self.vmax_mps * dt
                + self._face_radius[prev_beam][:, None]
                + self._face_radius[beam][None, :]
            )
            diff = fm.centroids[prev_beam][:, None, :] - fm.centroids[beam][None, :, :]
            dist = np.hypot(diff[..., 0], diff[..., 1])
            # smooth penalty growing with the distance exceeding reachability;
            # keeps decoding from dead-ending while still discouraging jumps
            excess = np.maximum(dist - reach, 0.0)
            trans = -np.minimum(self.penalty_per_m * excess, self.unreachable_penalty)
            cand = total[:, None] + trans  # (prev, cur)
            best_prev = np.argmax(cand, axis=0)
            total = cand[best_prev, np.arange(len(beam))] + scores_list[step]
            backptr.append(best_prev)

        # backtrack
        idx = int(np.argmax(total))
        path_rev = [int(beams[-1][idx])]
        for step in range(len(rounds) - 1, 0, -1):
            idx = int(backptr[step - 1][idx])
            path_rev.append(int(beams[step - 1][idx]))
        path = path_rev[::-1]

        estimates = []
        for step, (rnd, fid) in enumerate(zip(rounds, path)):
            d2 = float(-em_all[step, fid])
            estimates.append(
                TrackEstimate(
                    t=rnd.t,
                    position=fm.centroids[fid].copy(),
                    face_ids=np.array([fid]),
                    sq_distance=d2,
                    n_reporting=rnd.n_reporting,
                    visited_faces=len(beams[0]) * len(rounds),
                )
            )
        return estimates

    def track(self, batches: Iterable[SampleBatch]) -> TrackResult:
        """Offline optimal-path decoding over the whole trace."""
        batches = list(batches)
        stack = [np.atleast_2d(np.asarray(b.rss, dtype=float)) for b in batches]
        if len(batches) > 1 and all(s.shape == stack[0].shape for s in stack):
            # batched sign-vector construction (bit-identical to per-round)
            vectors = sign_vectors_from_rss(np.stack(stack), self._pairs, reduce=self.reduce)
        else:
            vectors = [self.build_vector(rss) for rss in stack]
        rounds: list[_Round] = []
        for batch, rss, vector in zip(batches, stack, vectors):
            rounds.append(
                _Round(
                    t=float(batch.times[0]),
                    vector=np.asarray(vector),
                    n_reporting=int((~np.isnan(rss).all(axis=0)).sum()),
                    true_position=batch.mean_position,
                )
            )
        estimates = self._decode(rounds)
        if obs.enabled():
            obs.counter("baselines.pm.rounds").inc(len(estimates))
            obs.histogram("baselines.pm.beam_width").observe(
                min(self.beam_width, self.face_map.n_faces)
            )
        result = TrackResult()
        for est, rnd in zip(estimates, rounds):
            result.append(est, rnd.true_position)
        return result

    def reset(self) -> None:
        """Stateless between track() calls."""
