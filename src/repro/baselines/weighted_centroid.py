"""Weighted-centroid localization (WCL) baseline.

The classic cheap range-free estimator: the position estimate is the
centroid of the hearing sensors, weighted by a power of their (linearized)
received signal.  No model inversion, no faces — a robustness yardstick
between nearest-node and the model-based trackers.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.tracker import TrackEstimate, TrackResult
from repro.rf.channel import SampleBatch

__all__ = ["WeightedCentroidTracker"]


class WeightedCentroidTracker:
    """Estimate = sum_i w_i x_i / sum_i w_i with w_i = linear-power^g.

    Parameters
    ----------
    nodes : (n, 2) sensor positions.
    exponent : weighting exponent g; larger g trusts the loudest sensors
        more (g -> inf degenerates to nearest-node).
    """

    def __init__(self, nodes: np.ndarray, *, exponent: float = 1.0) -> None:
        self.nodes = np.atleast_2d(np.asarray(nodes, dtype=float))
        if exponent <= 0:
            raise ValueError(f"exponent must be positive, got {exponent}")
        self.exponent = exponent

    def localize(self, rss: np.ndarray, t: float = 0.0) -> TrackEstimate:
        rss = np.atleast_2d(np.asarray(rss, dtype=float))
        if rss.shape[1] != len(self.nodes):
            raise ValueError(
                f"rss has {rss.shape[1]} sensors but the tracker knows {len(self.nodes)}"
            )
        all_nan = np.isnan(rss).all(axis=0)
        counts = np.maximum((~np.isnan(rss)).sum(axis=0), 1)
        sums = np.where(np.isnan(rss), 0.0, rss).sum(axis=0)
        mean_rss = np.where(all_nan, np.nan, sums / counts)
        heard = ~np.isnan(mean_rss)
        if not heard.any():
            position = self.nodes.mean(axis=0)
        else:
            # linearize dBm relative to the loudest to avoid overflow,
            # then weight by power^exponent
            rel = mean_rss[heard] - np.nanmax(mean_rss)
            weights = (10.0 ** (rel / 10.0)) ** self.exponent
            weights = np.maximum(weights, 1e-12)
            position = (self.nodes[heard] * weights[:, None]).sum(axis=0) / weights.sum()
        return TrackEstimate(
            t=t,
            position=position,
            face_ids=np.array([-1]),
            sq_distance=float("nan"),
            n_reporting=int(heard.sum()),
            visited_faces=0,
        )

    def localize_batch(self, batch: SampleBatch, t: "float | None" = None) -> TrackEstimate:
        t0 = float(batch.times[0]) if t is None else t
        return self.localize(batch.rss, t=t0)

    def track(self, batches: Iterable[SampleBatch]) -> TrackResult:
        result = TrackResult()
        for batch in batches:
            result.append(self.localize_batch(batch), batch.mean_position)
        return result

    def reset(self) -> None:
        """Stateless; interface parity."""
