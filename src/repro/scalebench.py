"""Scale-out benchmark: build-time, packing-memory, and sweep-throughput curves.

``fttt bench`` (and ``benchmarks/test_scale.py``) drive this module to
regenerate ``BENCH_scale.json`` from one command:

* **build curves** — cold face-map construction time over n sensors for
  the serial builder and the tiled builder at each worker count, with a
  bit-identity cross-check against the serial arrays;
* **packing curves** — dense vs 2-bit packed signature residency;
* **sweep throughput** — an identical-worlds sweep (the campaign shape,
  ``seed_stride=0``) run once with per-task map pickling/rebuilding and
  once with shared-memory attach, records compared for equality.

Every record carries ``cpu_count``: parallel speedups are physical, so a
single-core runner legitimately reports ~1x there while the packing and
zero-copy numbers (which are core-independent) still hold.  The headline
targets (3x build at n=100/4 workers, 2x sweep throughput) are expected
on >= 4 free cores.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.config import GridConfig, SimulationConfig
from repro.geometry.faces import build_face_map
from repro.geometry.grid import Grid
from repro.network.deployment import random_deployment
from repro.sim.parallel import parallel_sweep

__all__ = ["bench_build", "bench_sweep", "run_scale_bench", "DEFAULT_OUT"]

DEFAULT_OUT = "BENCH_scale.json"

_BENCH_C = 1.25  # representative mid-range uncertainty constant

_CHECK_FIELDS = ("signatures", "centroids", "cell_face", "cell_counts", "adj_indptr", "adj_indices")


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock of *repeats* runs — the standard noise filter."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _maps_identical(a, b) -> bool:
    return all(np.array_equal(getattr(a, f), getattr(b, f)) for f in _CHECK_FIELDS)


def bench_build(
    n_sensors: int,
    workers_list: "tuple[int, ...]",
    *,
    field: float = 100.0,
    cell: float = 2.5,
    seed: int = 0,
    repeats: int = 1,
) -> dict:
    """Cold build-time curve at one deployment size, plus packing residency."""
    rng = np.random.default_rng(seed)
    nodes = random_deployment(n_sensors, field, rng, min_separation=2.0 * cell)
    grid = Grid.square(field, cell)

    serial_s = _best_of(lambda: build_face_map(nodes, grid, _BENCH_C), repeats)
    baseline = build_face_map(nodes, grid, _BENCH_C)
    packed_map = build_face_map(nodes, grid, _BENCH_C, packed=True)
    identical = _maps_identical(baseline, packed_map)

    builds: dict[str, float] = {}
    for w in workers_list:
        builds[str(w)] = _best_of(
            lambda w=w: build_face_map(nodes, grid, _BENCH_C, workers=w, packed=True), repeats
        )
        tiled = build_face_map(nodes, grid, _BENCH_C, workers=w, packed=True)
        identical = identical and _maps_identical(baseline, tiled)

    dense_bytes = int(baseline.signatures.nbytes)
    packed_bytes = packed_map.packed_store().nbytes
    return {
        "n_sensors": int(n_sensors),
        "n_pairs": int(baseline.n_pairs),
        "n_cells": int(grid.n_cells),
        "n_faces": int(baseline.n_faces),
        "serial_s": serial_s,
        "tiled_s": builds,
        "speedup": {w: serial_s / t if t > 0 else float("inf") for w, t in builds.items()},
        "dense_signature_bytes": dense_bytes,
        "packed_signature_bytes": packed_bytes,
        "memory_ratio": dense_bytes / packed_bytes if packed_bytes else float("inf"),
        "identical": bool(identical),
    }


def bench_sweep(
    *,
    workers: int,
    n_sensors: int = 12,
    n_points: int = 6,
    n_reps: int = 2,
    seed: int = 0,
    duration_s: float = 6.0,
    cell: float = 4.0,
) -> dict:
    """Identical-worlds sweep throughput: per-task rebuild/pickle vs shared memory.

    The campaign shape — every point the same config and base seed
    (``seed_stride=0``) — so the map work is maximally redundant and the
    transport difference is what the clock sees.  Record equality between
    the two runs is asserted into the result.
    """
    config = SimulationConfig(
        n_sensors=n_sensors,
        duration_s=duration_s,
        sensing_range_m=150.0,
        grid=GridConfig(cell_size_m=cell),
    )
    points = [(config, {"point": i}) for i in range(n_points)]
    kwargs = dict(n_reps=n_reps, seed=seed, n_workers=workers, seed_stride=0)

    t0 = time.perf_counter()
    base_records = parallel_sweep(points, ["fttt"], share_maps=False, **kwargs)
    pickled_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    shared_records = parallel_sweep(points, ["fttt"], share_maps=True, chunksize=1, **kwargs)
    shared_s = time.perf_counter() - t0

    identical = len(base_records) == len(shared_records) and all(
        a.tracker == b.tracker
        and a.params == b.params
        and a.mean_error == b.mean_error
        and a.std_error == b.std_error
        for a, b in zip(base_records, shared_records)
    )
    leaked = [f for f in os.listdir("/dev/shm") if f.startswith("reprofm")] if os.path.isdir("/dev/shm") else []
    return {
        "workers": int(workers),
        "n_sensors": int(n_sensors),
        "n_points": int(n_points),
        "n_reps": int(n_reps),
        "pickled_s": pickled_s,
        "shared_s": shared_s,
        "throughput_pickled_tasks_per_s": n_points / pickled_s if pickled_s > 0 else float("inf"),
        "throughput_shared_tasks_per_s": n_points / shared_s if shared_s > 0 else float("inf"),
        "speedup": pickled_s / shared_s if shared_s > 0 else float("inf"),
        "identical": bool(identical),
        "leaked_segments": len(leaked),
    }


def run_scale_bench(
    sizes: "tuple[int, ...]" = (20, 50, 100),
    workers: "tuple[int, ...]" = (1, 4),
    *,
    field: float = 100.0,
    cell: float = 2.5,
    seed: int = 0,
    repeats: int = 1,
    sweep_sensors: int = 12,
    sweep_workers: "int | None" = None,
    out: "str | os.PathLike | None" = DEFAULT_OUT,
) -> dict:
    """Full scale benchmark; writes/updates *out* (``BENCH_scale.json``).

    Returns the result dict: ``build`` is one record per deployment size
    (see :func:`bench_build`), ``sweep`` one record
    (:func:`bench_sweep`).  Existing keys in an old *out* file are
    replaced wholesale — the file is regenerated, not merged.
    """
    cpu = os.cpu_count() or 1
    if sweep_workers is None:
        sweep_workers = max(2, min(max(workers), cpu))
    result = {
        "benchmark": "scale-out layer (tiled build / packed signatures / shared-memory sweeps)",
        "cpu_count": cpu,
        "config": {
            "sizes": [int(n) for n in sizes],
            "workers": [int(w) for w in workers],
            "field_m": field,
            "cell_m": cell,
            "seed": seed,
            "repeats": repeats,
        },
        "build": [
            bench_build(n, tuple(workers), field=field, cell=cell, seed=seed, repeats=repeats)
            for n in sizes
        ],
        "sweep": bench_sweep(workers=sweep_workers, n_sensors=sweep_sensors, seed=seed),
        "note": (
            "parallel speedups are physical: expect ~1x on a single-core "
            "runner (see cpu_count); packing memory_ratio and bit-identity "
            "are core-independent"
        ),
    }
    if out is not None:
        path = Path(out)
        path.write_text(json.dumps(result, indent=2, sort_keys=False) + "\n")
        result["path"] = str(path)
    return result
