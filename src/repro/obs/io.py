"""Serialization and display of observability data.

``write_metrics`` lands a registry snapshot as ``metrics.json`` next to
sweep results; ``format_metrics`` renders the same snapshot as the
aligned text table the CLI prints for ``--stats`` / ``fttt stats``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, registry

__all__ = ["write_metrics", "format_metrics"]


def write_metrics(path, reg: "MetricsRegistry | None" = None, *, extra: "dict | None" = None) -> Path:
    """Write a registry snapshot (plus optional run metadata) as JSON."""
    reg = reg if reg is not None else registry()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"metrics": reg.snapshot()}
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _fmt_num(v) -> str:
    if v is None:
        return "-"
    f = float(v)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return f"{f:.6g}"


def format_metrics(snap: "dict[str, dict] | None" = None, *, title: str = "observability metrics") -> str:
    """Aligned text rendering of a metrics snapshot."""
    if snap is None:
        snap = registry().snapshot()
    if not snap:
        return f"{title}: (no metrics recorded — is REPRO_OBS enabled?)"
    width = max(len(name) for name in snap)
    lines = [title, "-" * len(title)]
    for name, data in snap.items():
        kind = data["type"]
        if kind in ("counter", "gauge"):
            lines.append(f"{name.ljust(width)}  {_fmt_num(data['value'])}")
        else:  # histogram
            desc = (
                f"count={data['count']}  mean={_fmt_num(data['mean'])}  "
                f"min={_fmt_num(data['min'])}  max={_fmt_num(data['max'])}"
            )
            lines.append(f"{name.ljust(width)}  {desc}")
            values = data.get("values") or {}
            if values and len(values) <= 12:
                dist = "  ".join(f"{k}:{v}" for k, v in values.items())
                lines.append(f"{'':{width}}    [{dist}]")
    return "\n".join(lines)
