"""Structured JSONL event tracing with spans.

The qualitative half of :mod:`repro.obs`: when a sweep misbehaves, the
metrics registry says *how much* (hit rates, step histograms) and the
trace says *when and where* — one JSON object per line, one line per
event, so traces stream to disk and grep/jq cleanly.

Events carry an ``ev`` name plus arbitrary JSON-able fields; spans add a
``dur_s`` wall-clock duration on exit.  The per-round tracking events are
emitted by :meth:`repro.core.tracker.FTTTracker.track`, giving the
paper-level quantities per localization round: matched face, squared
vector distance, masked-pair count (Eq. 7 ``*`` components), reporting
sensors, and matcher work.

A process has at most one active tracer (configured through
:func:`repro.obs.configure_observability` or ``REPRO_OBS_TRACE``); when
none is configured every :func:`trace_event` / :func:`span` call is a
no-op costing one attribute check.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import IO, Any

__all__ = ["Tracer", "tracer", "set_tracer", "trace_event", "span"]


class Tracer:
    """Append-only JSONL event writer.

    Parameters
    ----------
    path : file to append events to; parent directories are created.
        ``None`` keeps events in memory (``.events``) — handy in tests.
    """

    def __init__(self, path: "str | os.PathLike | None" = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.events: list[dict[str, Any]] = []
        self._fh: "IO[str] | None" = None
        if self.path is not None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", buffering=1)

    def event(self, name: str, **fields: Any) -> None:
        record = {"ev": name, **fields}
        if self._fh is not None:
            self._fh.write(json.dumps(record, separators=(",", ":"), default=_jsonable) + "\n")
        else:
            self.events.append(record)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _jsonable(obj: Any):
    """Fallback encoder: numpy scalars/arrays degrade to Python numbers/lists."""
    if hasattr(obj, "tolist"):
        return obj.tolist()
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


_tracer: "Tracer | None" = None
_env_tracer_checked = False


def tracer() -> "Tracer | None":
    """The active tracer, if any (lazily created from ``REPRO_OBS_TRACE``)."""
    global _tracer, _env_tracer_checked
    if _tracer is None and not _env_tracer_checked:
        _env_tracer_checked = True
        path = os.environ.get("REPRO_OBS_TRACE")
        if path:
            _tracer = Tracer(path)
    return _tracer


def set_tracer(t: "Tracer | None") -> None:
    """Install (or clear) the process tracer, closing any previous one."""
    global _tracer, _env_tracer_checked
    if _tracer is not None and _tracer is not t:
        _tracer.close()
    _tracer = t
    _env_tracer_checked = True  # explicit configuration beats the env var


def trace_event(name: str, **fields: Any) -> None:
    t = tracer()
    if t is not None:
        t.event(name, **fields)


@contextmanager
def span(name: str, **fields: Any):
    """Context manager emitting ``name`` with a ``dur_s`` field on exit."""
    t = tracer()
    if t is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        t.event(name, dur_s=time.perf_counter() - t0, **fields)
