"""``repro.obs`` — zero-dependency observability for the tracking stack.

Two cooperating pieces:

* :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges, and exact-value histograms, with a no-op fast path when
  disabled (the default).  Instrumented hot paths — the face-map cache,
  the matching kernels, Algorithm 2's hill climb, the tracking loop,
  the fault layer — all record here.
* :mod:`repro.obs.tracing` — a structured JSONL event tracer with
  spans, emitting one event per localization round (matched face,
  masked-pair count, matcher work) plus sweep-level spans.

Enable with ``REPRO_OBS=1`` (and ``REPRO_OBS_TRACE=/path/trace.jsonl``
for events), or programmatically::

    with repro.obs.observe(trace_path="out/trace.jsonl") as reg:
        run_tracking(...)
    print(repro.obs.format_metrics(reg.snapshot()))

Sweeps take the higher-level route: ``parallel_sweep(..., obs_dir=d)``
enables the layer for the duration — including inside pool workers,
whose registries are merged back — and writes ``metrics.json`` +
``trace.jsonl`` into ``d``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.io import format_metrics, write_metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    enabled,
    gauge,
    histogram,
    registry,
    reset,
    set_enabled,
    snapshot,
)
from repro.obs.tracing import Tracer, set_tracer, span, trace_event, tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "configure_observability",
    "counter",
    "enabled",
    "format_metrics",
    "gauge",
    "histogram",
    "observe",
    "registry",
    "reset",
    "set_enabled",
    "set_tracer",
    "snapshot",
    "span",
    "trace_event",
    "tracer",
    "write_metrics",
]


def configure_observability(
    *,
    enabled: "bool | None" = None,
    trace_path: "str | None" = None,
) -> MetricsRegistry:
    """Configure the process-global observability state.

    ``enabled`` forces metrics on/off (``None`` restores ``REPRO_OBS``
    env control); ``trace_path`` installs a JSONL tracer at that path
    (empty string / ``None`` removes any tracer).  Returns the registry.
    """
    set_enabled(enabled)
    set_tracer(Tracer(trace_path) if trace_path else None)
    return registry()


@contextmanager
def observe(*, trace_path: "str | None" = None, fresh: bool = True):
    """Temporarily enable observability; yields the metrics registry.

    ``fresh=True`` (default) resets the registry on entry so the yielded
    metrics describe exactly the enclosed work.  Prior enabled/tracer
    state is restored on exit.
    """
    from repro.obs import metrics as _metrics
    from repro.obs import tracing as _tracing

    prev_override = _metrics._enabled_override
    prev_tracer = _tracing._tracer
    prev_checked = _tracing._env_tracer_checked
    if fresh:
        reset()
    set_enabled(True)
    if trace_path:
        # do not close the previous tracer: it is restored on exit
        _tracing._tracer = Tracer(trace_path)
        _tracing._env_tracer_checked = True
    try:
        yield registry()
    finally:
        set_enabled(prev_override)
        if trace_path:
            if _tracing._tracer is not None:
                _tracing._tracer.close()
            _tracing._tracer = prev_tracer
            _tracing._env_tracer_checked = prev_checked
