"""Process-local metrics: counters, gauges, and exact-value histograms.

The registry is the quantitative half of :mod:`repro.obs`.  It is sized
for the paper's own evaluation quantities — cache hit rates, hill-climb
step counts (Algorithm 2), masked-pair counts under faults (Eq. 6-7) —
so metrics are cheap enough to leave compiled into the hot paths:

* every instrumented call site is guarded by :func:`enabled`, which is a
  single attribute check plus one environment lookup; with observability
  off (the default) the hot paths pay only that guard;
* histograms store exact counts per *integral* observed value (step
  counts, masked pairs, tie sizes are all small integers), falling back
  to running ``count/sum/min/max`` statistics for real-valued
  observations such as latencies.

Snapshots are plain JSON-able dicts, and :meth:`MetricsRegistry.merge`
folds a child process's snapshot into a parent registry — which is how
``parallel_sweep`` aggregates per-worker metrics into one ``metrics.json``.
"""

from __future__ import annotations

import os
import threading
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enabled",
    "set_enabled",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset",
]

_HISTOGRAM_MAX_DISTINCT = 256  # distinct exact values kept before overflowing


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-observed value (e.g. face count of the current map)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: "float | None" = None

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Running distribution of observations.

    Integral values (hill-climb steps, masked-pair counts, tie sizes) are
    counted exactly in ``values``; once more than
    ``_HISTOGRAM_MAX_DISTINCT`` distinct values appear, or for
    non-integral observations (timings), only the running statistics
    advance and ``overflow`` counts what the dict missed.
    """

    __slots__ = ("count", "total", "min", "max", "values", "overflow")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.values: dict[int, int] = {}
        self.overflow = 0

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if v.is_integer() and abs(v) < 2**53:
            key = int(v)
            if key in self.values:
                self.values[key] += 1
            elif len(self.values) < _HISTOGRAM_MAX_DISTINCT:
                self.values[key] = 1
            else:
                self.overflow += 1
        else:
            self.overflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean if self.count else None,
            "values": {str(k): v for k, v in sorted(self.values.items())},
            "overflow": self.overflow,
        }


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Name -> metric map with JSON snapshots and cross-process merge."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        m = self._metrics.get(name)
        if m is None:
            with self._lock:
                m = self._metrics.setdefault(name, cls())
        if not isinstance(m, cls):
            raise TypeError(f"metric {name!r} is a {type(m).__name__}, not a {cls.__name__}")
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, dict]:
        """JSON-able view of every metric, sorted by name."""
        return {name: m.as_dict() for name, m in sorted(self._metrics.items())}

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def merge(self, snap: "dict[str, dict]") -> None:
        """Fold a :meth:`snapshot` (typically from a worker) into this registry.

        Counters and histograms add; gauges keep the incoming value (last
        writer wins, matching their point-in-time semantics).
        """
        for name, data in snap.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).inc(int(data["value"]))
            elif kind == "gauge":
                if data["value"] is not None:
                    self.gauge(name).set(data["value"])
            elif kind == "histogram":
                h = self.histogram(name)
                if data["count"]:
                    h.count += int(data["count"])
                    h.total += float(data["sum"])
                    h.min = min(h.min, float(data["min"]))
                    h.max = max(h.max, float(data["max"]))
                    for key, n in data.get("values", {}).items():
                        k = int(key)
                        if k in h.values:
                            h.values[k] += int(n)
                        elif len(h.values) < _HISTOGRAM_MAX_DISTINCT:
                            h.values[k] = int(n)
                        else:
                            h.overflow += int(n)
                    h.overflow += int(data.get("overflow", 0))
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")


# -- process-global registry and gating -----------------------------------

_registry = MetricsRegistry()
_enabled_override: "bool | None" = None


def enabled() -> bool:
    """Observability gate: ``REPRO_OBS=1`` or :func:`set_enabled`.

    This is the no-op fast path — instrumented call sites check it before
    touching the registry, so the disabled cost is one function call.
    """
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get("REPRO_OBS", "0") == "1"


def set_enabled(value: "bool | None") -> None:
    """Force observability on/off; ``None`` restores env-var control."""
    global _enabled_override
    _enabled_override = value


def registry() -> MetricsRegistry:
    return _registry


def counter(name: str) -> Counter:
    return _registry.counter(name)


def gauge(name: str) -> Gauge:
    return _registry.gauge(name)


def histogram(name: str) -> Histogram:
    return _registry.histogram(name)


def snapshot() -> dict[str, dict]:
    return _registry.snapshot()


def reset() -> None:
    _registry.reset()
