"""ASCII visualization helpers.

Terminal-renderable views of the simulated world: the face map's
uncertain-area structure, tracking traces with estimates overlaid, and
coverage fields.  Used by the examples; no plotting dependencies.
"""

from __future__ import annotations

import numpy as np

from repro.core.tracker import TrackResult
from repro.geometry.faces import FaceMap

__all__ = ["render_face_map", "render_track", "render_scalar_field", "sparkline"]

_SHADES = " .:-=+*#%@"


def _canvas(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _to_text(canvas: list[list[str]]) -> str:
    return "\n".join("".join(row) for row in canvas)


def render_face_map(face_map: FaceMap, *, width: int = 60) -> str:
    """Render the uncertain-pair density of every cell (darker = more
    pairs uncertain there) with sensor positions as ``#``."""
    grid = face_map.grid
    height = max(2, int(width * grid.height / grid.width / 2))
    zeros = (face_map.signatures == 0).sum(axis=1)[face_map.cell_face]
    field = zeros.reshape(grid.shape).astype(float)
    return render_scalar_field(
        field,
        width=width,
        height=height,
        overlay_points=face_map.nodes,
        extent=(grid.width, grid.height),
    )


def render_scalar_field(
    field: np.ndarray,
    *,
    width: int = 60,
    height: "int | None" = None,
    overlay_points: "np.ndarray | None" = None,
    extent: "tuple[float, float] | None" = None,
) -> str:
    """Shade a 2-D array (row 0 = bottom) into ASCII density characters."""
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ValueError(f"field must be 2-D, got shape {field.shape}")
    if height is None:
        height = max(2, width // 2)
    ny, nx = field.shape
    ys = np.linspace(0, ny - 1, height).astype(int)
    xs = np.linspace(0, nx - 1, width).astype(int)
    sampled = field[np.ix_(ys, xs)]
    lo, hi = float(sampled.min()), float(sampled.max())
    span = hi - lo if hi > lo else 1.0
    levels = ((sampled - lo) / span * (len(_SHADES) - 1)).astype(int)
    canvas = [[_SHADES[levels[y, x]] for x in range(width)] for y in range(height)]
    if overlay_points is not None and extent is not None:
        w_m, h_m = extent
        for p in np.atleast_2d(overlay_points):
            x = min(int(p[0] / w_m * width), width - 1)
            y = min(int(p[1] / h_m * height), height - 1)
            canvas[y][x] = "#"
    canvas.reverse()  # row 0 at the bottom
    return _to_text(canvas)


def render_track(
    result: TrackResult,
    field_size: float,
    *,
    width: int = 60,
    nodes: "np.ndarray | None" = None,
) -> str:
    """Overlay the true trace (.), the estimates (o), and sensors (#)."""
    height = max(2, width // 2)
    canvas = _canvas(width, height)

    def put(p, ch):
        x = min(max(int(p[0] / field_size * width), 0), width - 1)
        y = min(max(int(p[1] / field_size * height), 0), height - 1)
        cur = canvas[y][x]
        canvas[y][x] = "X" if cur not in (" ", ch) else ch

    for p in result.truth:
        put(p, ".")
    for p in result.positions:
        put(p, "o")
    if nodes is not None:
        for p in np.atleast_2d(nodes):
            put(p, "#")
    canvas.reverse()
    return _to_text(canvas)


def sparkline(values: np.ndarray, *, width: "int | None" = None) -> str:
    """One-line trend of a series (error over time, etc.)."""
    blocks = "▁▂▃▄▅▆▇█"
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    if width is not None and values.size > width:
        idx = np.linspace(0, values.size - 1, width).astype(int)
        values = values[idx]
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo if hi > lo else 1.0
    levels = ((values - lo) / span * (len(blocks) - 1)).astype(int)
    return "".join(blocks[v] for v in levels)
