#!/usr/bin/env python
"""Face-map explorer: see the geometry FTTT tracks with.

Renders the uncertain-area structure of a deployment as ASCII (darker =
more node pairs are ambiguous there), shows how the division reacts to
the uncertainty constant, compares flat vs adaptive (ref [29]) division
cost, and walks one localization by hand — sampling vector, matched face,
similarity — so the vector-matching mechanics are visible end to end.

Run:  python examples/face_map_explorer.py
"""

import numpy as np

from repro.core.vectors import sampling_vector
from repro.geometry.adaptive import build_adaptive_face_map
from repro.geometry.apollonius import effective_uncertainty_constant, uncertainty_constant
from repro.geometry.faces import build_face_map
from repro.geometry.grid import Grid
from repro.network.deployment import grid_deployment
from repro.rf.channel import RssChannel
from repro.rf.noise import GaussianNoise
from repro.rf.pathloss import LogDistancePathLoss
from repro.viz import render_face_map, sparkline


def main() -> None:
    nodes = grid_deployment(9, 100.0)
    grid = Grid.square(100.0, 2.0)

    print("uncertainty constants at Table-1 settings (eps=1, beta=4, sigma=6):")
    c_paper = uncertainty_constant(1.0, 4.0, 6.0)
    c_cal = effective_uncertainty_constant(1.0, 4.0, 6.0, k=5)
    print(f"  Eq. 3 expectation form: C = {c_paper:.3f}")
    print(f"  sampling-calibrated (k=5): C = {c_cal:.3f}\n")

    for c in (1.1, c_cal):
        fm = build_face_map(nodes, grid, c, sensing_range=40.0)
        print(
            f"C = {c:.2f}: {fm.n_faces} faces, {fm.n_certain_faces} fully certain, "
            f"uncertain-pair density map:"
        )
        print(render_face_map(fm, width=56))
        print()

    print("adaptive (double-level, ref [29]) vs flat division:")
    fm_flat = build_face_map(nodes, grid, c_cal, sensing_range=40.0)
    fm_adapt, stats = build_adaptive_face_map(
        nodes, 100.0, c_cal, coarse_cell=8.0, refine_factor=4, sensing_range=40.0
    )
    same = np.array_equal(
        fm_flat.signatures[fm_flat.cell_face], fm_adapt.signatures[fm_adapt.cell_face]
    )
    print(
        f"  identical signature maps: {same}; classification work saved: "
        f"{stats.classification_savings:.1%} "
        f"({stats.uniform_cells}/{stats.coarse_cells} coarse cells were uniform)\n"
    )

    print("one localization, by hand:")
    target = np.array([62.0, 37.0])
    channel = RssChannel(
        nodes=nodes,
        pathloss=LogDistancePathLoss(exponent=4.0, p0_dbm=-40.0),
        noise=GaussianNoise(6.0),
        sensing_range_m=40.0,
    )
    rng = np.random.default_rng(7)
    batch = channel.observe_static(target, k=5, rng=rng)
    v = sampling_vector(batch.rss, comparator_eps=1.0)
    n_flipped = int((v == 0).sum())
    n_star = int(np.isnan(v).sum())
    print(f"  target at {target.tolist()}; {batch.responding.sum()}/9 sensors heard it")
    print(
        f"  sampling vector: {len(v)} pairs — {n_flipped} flipped (0), "
        f"{n_star} silent (*), rest ordinal"
    )
    ties, d2 = fm_flat.match(v)
    est = fm_flat.centroids[ties].mean(axis=0)
    sim = "inf" if d2 == 0 else f"{1/np.sqrt(d2):.3f}"
    print(
        f"  matched face(s) {ties.tolist()} at similarity {sim}; "
        f"estimate ({est[0]:.1f}, {est[1]:.1f}), error "
        f"{np.hypot(*(est - target)):.2f} m"
    )
    d2_all = fm_flat.distances_to(v)
    order = np.argsort(d2_all)[:30]
    print(f"  distance landscape (30 best faces): {sparkline(d2_all[order])}")


if __name__ == "__main__":
    main()
