#!/usr/bin/env python
"""Deployment planning: will this sensor layout track well, and for how long?

The operator workflow before fielding a network: check sensing coverage,
inspect the face structure's information content and ambiguity risk,
route reports and find the energy bottleneck, then project lifetime with
and without duty cycling.

Run:  python examples/deployment_planner.py [n_sensors]
"""

import sys

import numpy as np

from repro.analysis.coverage import coverage_report
from repro.analysis.energy import EnergyModel, project_lifetime
from repro.config import GridConfig, SimulationConfig
from repro.core.diagnostics import (
    ambiguity_census,
    face_separability,
    least_informative_pairs,
    pair_informativeness,
)
from repro.geometry.grid import Grid
from repro.geometry.primitives import enumerate_pairs
from repro.network.routing import build_routing_topology
from repro.sim.scenario import make_scenario


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    cfg = SimulationConfig(n_sensors=n, grid=GridConfig(cell_size_m=2.5))
    scenario = make_scenario(cfg, seed=13)
    nodes = scenario.nodes

    print(f"=== coverage ({n} sensors, R = {cfg.sensing_range_m:.0f} m) ===")
    grid = Grid.square(cfg.field_size_m, 4.0)
    cov = coverage_report(nodes, grid, cfg.sensing_range_m)
    print(f"mean sensors hearing a point: {cov.mean_hearing_count:.1f}")
    for k, frac in sorted(cov.k_coverage_fraction.items()):
        print(f"  >= {k} sensors: {frac:6.1%} of the field")
    verdict = "OK" if cov.supports_pairwise_tracking() else "INSUFFICIENT"
    print(f"pairwise-tracking coverage (>=2 nearly everywhere): {verdict}")

    print("\n=== face structure ===")
    fm = scenario.face_map
    sep = face_separability(fm)
    census = ambiguity_census(fm, 400, corruption=2, rng=0)
    print(f"faces: {fm.n_faces}; fully-certain faces: {fm.n_certain_faces}")
    print(
        f"signature separability: median d2 = {sep['median_sq_distance']:.0f}, "
        f"unit-distance pairs {sep['unit_distance_fraction']:.2%}"
    )
    print(
        f"ambiguity under 2-component corruption: {census.tie_fraction:.1%} ties "
        f"(mean size {census.mean_tie_size:.1f})"
    )
    info = pair_informativeness(fm)
    i_idx, j_idx = enumerate_pairs(n)
    worst = least_informative_pairs(fm, k=3)
    worst_named = ", ".join(f"({i_idx[p]},{j_idx[p]}) {info[p]:.2f}b" for p in worst)
    print(f"least informative pairs (candidates to prune from reports): {worst_named}")

    print("\n=== reporting path ===")
    topo = build_routing_topology(nodes, radio_range=30.0)
    connected = int(topo.connected.sum())
    print(f"connected to base station: {connected}/{n}")
    print(f"max hop depth: {np.nanmax(np.where(np.isfinite(topo.hop_depth), topo.hop_depth, np.nan)):.0f}")
    bottleneck = int(np.argmax(topo.relay_counts))
    print(
        f"bottleneck relay: sensor {bottleneck} forwards "
        f"{topo.relay_counts[bottleneck]} reports per round"
    )

    print("\n=== lifetime projection (k = 5 samples/round) ===")
    model = EnergyModel()
    for duty, label in ((1.0, "always on"), (0.6, "duty-cycled (60% awake)")):
        proj = project_lifetime(
            n, cfg.sampling_times, model=model, duty_cycle=duty,
            max_relay_load=int(topo.relay_counts.max()),
        )
        rounds_per_day = 86400 / scenario.sampler.group_duration_s
        print(
            f"{label:26s}: mean node {proj['mean_rounds'] / rounds_per_day:6.1f} days, "
            f"bottleneck relay {proj['bottleneck_rounds'] / rounds_per_day:6.1f} days"
        )
    print(
        "\nthe bottleneck relay, not the average node, sets the network's"
        "\nlifetime — §5.2's caution about dense deployments, in days."
    )


if __name__ == "__main__":
    main()
