#!/usr/bin/env python
"""Deployment geometry study (paper Fig. 10: grid vs random).

Compares FTTT accuracy across deployment geometries — regular grid,
uniform random, jittered grid (imprecise placement), and the cross "+" —
and shows the face-structure statistics each geometry induces (Fig. 3's
message: uncertain bands eat the certain faces).

Run:  python examples/deployment_comparison.py
"""

import numpy as np

from repro.analysis.metrics import format_table, summarize_errors
from repro.config import GridConfig, SimulationConfig
from repro.network.deployment import (
    cross_deployment,
    grid_deployment,
    perturbed_grid_deployment,
    random_deployment,
)
from repro.sim.runner import run_tracking
from repro.sim.scenario import make_scenario


def main() -> None:
    config = SimulationConfig(
        n_sensors=9, duration_s=30.0, grid=GridConfig(cell_size_m=2.0)
    )
    field = config.field_size_m

    deployments = {
        "grid": grid_deployment(9, field),
        "random": random_deployment(9, field, 21, min_separation=5.0),
        "jittered grid (3 m)": perturbed_grid_deployment(9, field, 3.0, 22),
        "cross '+'": cross_deployment(field, arm_nodes=2),
    }

    rows = {}
    structure = {}
    for name, nodes in deployments.items():
        scenario = make_scenario(config, nodes=nodes, seed=23)
        fm = scenario.face_map
        structure[name] = [
            fm.n_faces,
            fm.n_certain_faces,
            float((fm.signatures == 0).mean()),
        ]
        tracker = scenario.make_tracker("fttt")
        result = run_tracking(scenario, tracker, 24)
        rows[name] = summarize_errors(result)

    print(
        format_table(
            structure,
            header=["faces", "certain", "zero-frac"],
            title="face structure by deployment (9 sensors)",
            float_fmt="{:8.2f}",
        )
    )
    print()
    print(format_table(rows, title="FTTT tracking error by deployment (metres)"))
    print(
        "\nregular geometries give cleaner face structure; the cross trades\n"
        "coverage at the corners for density along the arms (it exists for\n"
        "the outdoor testbed, not for area coverage)."
    )


if __name__ == "__main__":
    main()
