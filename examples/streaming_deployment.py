#!/usr/bin/env python
"""Operating FTTT as a live service: streaming, duty cycling, energy.

A base-station-eye view of a deployment: rounds stream in (some out of
order, one long outage), the online session produces estimates with
confidence, a duty-cycle controller keeps only useful sensors awake, and
the energy ledger shows what that buys.

Run:  python examples/streaming_deployment.py
"""

import numpy as np

from repro.config import GridConfig, SimulationConfig
from repro.core.streaming import TrackingSession
from repro.core.trajectory import smoothness_metrics
from repro.network.duty_cycle import DutyCycleController
from repro.sim.runner import generate_batches, run_tracking, run_tracking_with_duty_cycle
from repro.sim.scenario import make_scenario
from repro.viz import sparkline


def main() -> None:
    cfg = SimulationConfig(n_sensors=20, duration_s=40.0, grid=GridConfig(cell_size_m=2.5))
    scenario = make_scenario(cfg, seed=77)

    print("=== streaming session (reordered rounds + one outage) ===")
    batches = generate_batches(scenario, 78)
    # shuffle a few rounds locally and drop a block to simulate an outage
    stream = batches[:20] + batches[22:30][::-1] + batches[40:]
    session = TrackingSession(
        scenario.make_tracker("fttt"),
        expected_period_s=scenario.sampler.group_duration_s,
        reorder_buffer=3,
    )
    for batch in stream:
        session.submit(batch)
    session.flush()
    states = session.history
    conf = np.array([s.confidence for s in states])
    print(f"rounds processed: {states[-1].rounds_processed}")
    print(f"outages detected: {session.gaps_detected}")
    print(f"confidence over time: {sparkline(conf, width=60)}")
    print(f"mean confidence: {conf.mean():.2f} (1.0 = exact signature match)")

    print("\n=== duty cycling: energy/accuracy frontier ===")
    base = run_tracking(scenario, scenario.make_tracker("fttt"), 79)
    print(f"always-on: {base.mean_error:.2f} m mean error, 100% sensor-rounds awake")
    for guard in (5.0, 15.0, 30.0):
        ctrl = DutyCycleController(
            scenario.nodes, sensing_range_m=cfg.sensing_range_m, guard_m=guard
        )
        res, ctrl = run_tracking_with_duty_cycle(
            scenario, scenario.make_tracker("fttt"), ctrl, 79
        )
        print(
            f"guard {guard:4.0f} m: {res.mean_error:.2f} m mean error, "
            f"{ctrl.energy_saved_fraction():.0%} sensor-rounds saved"
        )

    print("\n=== trajectory quality (basic vs extended, smoothed) ===")
    from repro.core.trajectory import smooth_result

    for name in ("fttt", "fttt-extended"):
        res = run_tracking(scenario, scenario.make_tracker(name), 80)
        sm = smoothness_metrics(res)
        smoothed = smooth_result(res, method="median", window=3)
        print(
            f"{name:14s}: err {res.mean_error:5.2f} m, path inflation {sm.path_inflation:4.2f}; "
            f"median-filtered err {smoothed.mean_error:5.2f} m"
        )


if __name__ == "__main__":
    main()
