#!/usr/bin/env python
"""Choosing the grouping-sampling count k (paper §5.1).

Answers the deployment question "how many samples per localization do I
need?" three ways:

1. the paper's closed form  k > 1 - log2(1 - lambda^(1/(N-1)));
2. Monte-Carlo validation of the flip-capture probability;
3. an actual tracking sweep showing the error saturating in k.

Run:  python examples/sampling_budget.py
"""

import numpy as np

from repro.analysis.sampling_times import (
    all_flips_probability,
    required_sampling_times,
    simulate_flip_capture,
)
from repro.config import GridConfig, SimulationConfig
from repro.sim.experiments import replicate_mean_error


def main() -> None:
    print("closed form (paper §5.1)")
    print("sensors  pairs  k@90%  k@99%  k@99.9%")
    for n in (5, 10, 20, 40):
        pairs = n * (n - 1) // 2
        ks = [required_sampling_times(pairs, conf) for conf in (0.90, 0.99, 0.999)]
        print(f"{n:7d}  {pairs:5d}  {ks[0]:5d}  {ks[1]:5d}  {ks[2]:7d}")
    print("\n(the paper's worked example: 20 sensors @ 99% -> k = "
          f"{required_sampling_times(190, 0.99)})")

    print("\nMonte-Carlo check of the capture probability (N = 45 pairs)")
    print("    k   closed-form   simulated")
    for k in (3, 5, 7, 9):
        closed = all_flips_probability(k, 45)
        mc = simulate_flip_capture(k, 45, n_trials=40_000, rng=k)
        print(f"{k:5d}   {closed:11.4f}   {mc:9.4f}")

    print("\ntracking error vs k (10 sensors, physical channel, 3 reps,")
    print("common random worlds across k so the trend is unconfounded)")
    base = SimulationConfig(
        n_sensors=10, duration_s=30.0, grid=GridConfig(cell_size_m=2.5)
    )
    print("    k   mean error (m)")
    for k in (1, 3, 5, 7, 9):
        recs = replicate_mean_error(
            base.with_(sampling_times=k), ["fttt"], n_reps=3, seed=50
        )
        print(f"{k:5d}   {recs[0].mean_error:10.2f}")
    print(
        "\nthe gain saturates once k captures nearly all flips — the\n"
        "logarithmic-budget message of §5.1.  (With a moving target, very\n"
        "large k also stretches the grouping interval, which offsets part\n"
        "of the gain — a physical effect the paper's instantaneous-group\n"
        "model does not include.)"
    )


if __name__ == "__main__":
    main()
