#!/usr/bin/env python
"""Fault tolerance under sensor failures (paper §4.4-3).

Sweeps an increasing fault load — transient dropout, permanent crashes,
base-station packet loss, and all three combined — and shows that FTTT
degrades gracefully: the Eq. 6 fill keeps sampling vectors full-length,
so every localization still resolves to a face.

Run:  python examples/fault_injection.py
"""

from repro import SimulationConfig, make_scenario, run_tracking
from repro.analysis.metrics import format_table, summarize_errors
from repro.config import GridConfig
from repro.network.basestation import BaseStation
from repro.network.faults import (
    CompositeFaults,
    CrashFailures,
    IndependentDropout,
    IntermittentFaults,
)


def main() -> None:
    config = SimulationConfig(
        n_sensors=15, duration_s=30.0, grid=GridConfig(cell_size_m=2.0)
    )
    scenario = make_scenario(config, seed=7)

    scenarios = {
        "no faults": (None, None),
        "dropout 10%": (IndependentDropout(p=0.10), None),
        "dropout 30%": (IndependentDropout(p=0.30), None),
        "crashes 20%": (CrashFailures(crash_fraction=0.2, horizon_rounds=30), None),
        "intermittent bursts": (IntermittentFaults(p_fail=0.1, p_recover=0.3), None),
        "uplink loss 10%": (None, BaseStation(packet_loss_p=0.10)),
        "everything at once": (
            CompositeFaults(
                models=(
                    IndependentDropout(p=0.10),
                    CrashFailures(crash_fraction=0.2, horizon_rounds=30),
                )
            ),
            BaseStation(packet_loss_p=0.05),
        ),
    }

    rows = {}
    for name, (faults, bs) in scenarios.items():
        tracker = scenario.make_tracker("fttt")
        result = run_tracking(scenario, tracker, 100, faults=faults, basestation=bs)
        rows[name] = summarize_errors(result)
        reporting = [e.n_reporting for e in result.estimates]
        rows[name + " [sensors up]"] = [
            min(reporting),
            sum(reporting) / len(reporting),
            max(reporting),
            0,
            0,
            0,
        ]

    print(format_table(rows, title="FTTT under fault injection (15 sensors)"))
    print(
        "\nEvery row resolves every round: the * fill of Eq. 6 keeps the\n"
        "sampling vector full-length no matter how many sensors are down."
    )


if __name__ == "__main__":
    main()
