#!/usr/bin/env python
"""Robustness study: what the paper's model leaves out.

Stresses FTTT beyond the paper's assumptions on the same worlds:

* six trackers including the uncertainty-aware PkNN and the range-free
  weighted centroid;
* noise structure — i.i.d. (the paper's model), temporally correlated
  (starves flip capture), common-mode (cancels in pairwise comparisons);
* heavy-tailed and contaminated noise at equal power;
* a momentum-carrying Gauss-Markov target instead of random waypoint.

Run:  python examples/robustness_study.py
"""

import numpy as np

from repro.analysis.metrics import compare_trackers, format_table, summarize_errors
from repro.config import GridConfig, SimulationConfig
from repro.mobility.gauss_markov import GaussMarkov
from repro.rf.channel import RssChannel
from repro.rf.noise import MixtureNoise, StudentTNoise
from repro.rf.shadowing import CommonModeNoise, TemporallyCorrelatedNoise
from repro.sim.runner import generate_batches, run_all_trackers
from repro.sim.scenario import make_scenario

CFG = SimulationConfig(n_sensors=12, duration_s=30.0, grid=GridConfig(cell_size_m=2.5))


def swap_noise(scenario, noise):
    scenario.channel = RssChannel(
        nodes=scenario.nodes,
        pathloss=scenario.channel.pathloss,
        noise=noise,
        sensing_range_m=scenario.channel.sensing_range_m,
    )
    scenario.sampler = type(scenario.sampler)(
        channel=scenario.channel,
        k=scenario.sampler.k,
        sampling_rate_hz=scenario.sampler.sampling_rate_hz,
    )


def main() -> None:
    print("=== tracker field under the paper's assumptions ===")
    scenario = make_scenario(CFG, seed=31)
    results = run_all_trackers(
        scenario,
        ["fttt", "fttt-extended", "pm", "direct-mle", "pknn", "weighted-centroid"],
        32,
    )
    print(format_table(compare_trackers(results)))

    print("\n=== noise structure (same power, sigma = 6 dB) ===")
    sigma = CFG.noise_sigma_dbm
    noises = {
        "iid gaussian (paper)": None,
        "temporal rho=0.9": TemporallyCorrelatedNoise(sigma_dbm=sigma, rho=0.9),
        "common-mode a=0.8": CommonModeNoise(sigma_dbm=sigma, alpha=0.8),
        "student-t dof=3": StudentTNoise(sigma_dbm=sigma, dof=3.0),
        "5% outliers @18dB": MixtureNoise(sigma_dbm=sigma, outlier_sigma_dbm=18.0, outlier_prob=0.05),
    }
    rows = {}
    for label, noise in noises.items():
        sc = make_scenario(CFG, seed=31)
        if noise is not None:
            if isinstance(noise, TemporallyCorrelatedNoise):
                noise.reset()
            swap_noise(sc, noise)
        batches = generate_batches(sc, 33)
        rows[label] = summarize_errors(sc.make_tracker("fttt").track(batches))
    print(format_table(rows, title="FTTT mean error by noise structure"))
    print(
        "\ncommon-mode interference barely hurts (pairwise comparisons cancel\n"
        "it); temporal correlation is the real enemy of grouping sampling."
    )

    print("\n=== Gauss-Markov target (momentum, no straight legs) ===")
    rows = {}
    for label, mob in (
        ("random waypoint", None),
        ("gauss-markov", GaussMarkov(field_size=CFG.field_size_m, duration_s=CFG.duration_s, seed=34)),
    ):
        sc = make_scenario(CFG, seed=31, mobility=mob)
        res = run_all_trackers(sc, ["fttt", "pm"], 35)
        for name, r in res.items():
            rows[f"{label} / {name}"] = summarize_errors(r)
    print(format_table(rows))


if __name__ == "__main__":
    main()
