#!/usr/bin/env python
"""The paper's outdoor experiment (Fig. 13), fully simulated.

Nine IRIS motes with MTS300 acoustic boards form a "+" on a 40 m
playground; a walker carrying a 4 kHz piezo tone follows a "⌐"-shaped
trace at changeable 1-5 m/s speed; readings radio through an MIB520
gateway that loses ~5% of frames.  Both basic and extended FTTT track
the walker — the extended variant is visibly smoother, exactly the
paper's observation.

Run:  python examples/outdoor_playground.py
"""

import numpy as np

from repro.analysis.metrics import format_table, summarize_errors
from repro.testbed.outdoor import build_outdoor_system


def ascii_trace(system, result, width: int = 56) -> str:
    """Render true trace (.) and estimates (o/X where they overlap) in ASCII."""
    scale = width / system.field_size
    height = int(system.field_size * scale / 2)
    canvas = [[" "] * width for _ in range(height)]

    def put(p, ch):
        x = min(int(p[0] * scale), width - 1)
        y = min(int(p[1] * scale / 2), height - 1)
        row = height - 1 - y
        canvas[row][x] = "X" if canvas[row][x] not in (" ", ch) else ch

    for p in result.truth:
        put(p, ".")
    for p in result.positions:
        put(p, "o")
    for m in system.motes:
        put(m.position, "#")
    return "\n".join("".join(row) for row in canvas)


def main() -> None:
    system = build_outdoor_system(field_size=40.0, seed=11)
    print(
        f"playground {system.field_size:.0f} m, {len(system.motes)} motes, "
        f"tone at {system.channel.frequency_hz:.0f} Hz, "
        f"absorption {system.channel.absorption_db_per_m:.3f} dB/m, "
        f"trace length {system.path.length_m:.0f} m"
    )

    rows = {}
    for mode in ("basic", "extended"):
        result = system.run(mode=mode, rng=12)
        rows[mode] = summarize_errors(result)
        if mode == "extended":
            print("\ntrace ('.' truth, 'o' estimates, '#' motes, 'X' overlap):\n")
            print(ascii_trace(system, result))

    print()
    print(format_table(rows, title="outdoor tracking error (metres)"))
    print(f"gateway frame loss observed: {system.gateway.loss_rate:.1%}")

    smoother = rows["extended"].std < rows["basic"].std
    print(
        "\nextended FTTT trajectory is "
        + ("smoother (lower error deviation) — " if smoother else "not smoother — ")
        + "the paper's Fig. 13(c) vs (d) comparison."
    )


if __name__ == "__main__":
    main()
