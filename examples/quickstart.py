#!/usr/bin/env python
"""Quickstart: track a mobile target with FTTT and compare baselines.

Builds the paper's baseline operating point (10 random sensors in a
100 x 100 m field, k = 5 samples per localization, epsilon = 1 dBm,
sigma = 6 dB shadowing, beta = 4), runs one 60-second random-waypoint
trace through every tracker on the *same* observations, and prints the
error table.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import SimulationConfig, make_scenario, run_all_trackers, summarize_errors
from repro.analysis.metrics import compare_trackers, format_table
from repro.config import GridConfig


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42

    config = SimulationConfig(
        n_sensors=10,
        sampling_times=5,
        resolution_dbm=1.0,
        grid=GridConfig(cell_size_m=2.0),
    )
    scenario = make_scenario(config, deployment="random", seed=seed)
    print(
        f"world: {scenario.n_sensors} sensors, uncertainty constant C = "
        f"{scenario.uncertainty_c:.3f}, {scenario.face_map.n_faces} faces, "
        f"{scenario.config.n_localizations} localization rounds"
    )

    results = run_all_trackers(
        scenario,
        ["fttt", "fttt-extended", "pm", "direct-mle", "range-mle", "nearest"],
        seed + 1,
    )
    print()
    print(format_table(compare_trackers(results), title="tracking error (metres)"))

    fttt = summarize_errors(results["fttt"])
    mle = summarize_errors(results["direct-mle"])
    print(
        f"\nFTTT improves mean error over Direct MLE by "
        f"{100 * (1 - fttt.mean / mle.mean):.0f}% on this trace."
    )


if __name__ == "__main__":
    main()
