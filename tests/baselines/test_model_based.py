"""Tests for the model-based trackers (Kalman filter, particle filter)."""

import numpy as np
import pytest

from repro.baselines.kalman import KalmanTracker
from repro.baselines.particle import ParticleFilterTracker
from repro.baselines.range_mle import RangeMLETracker
from repro.rf.channel import SampleBatch
from repro.rf.pathloss import LogDistancePathLoss


def batch_at(nodes, point, k=3, noise=0.0, rng=None, t0=0.0):
    rng = rng or np.random.default_rng(0)
    d = np.hypot(nodes[:, 0] - point[0], nodes[:, 1] - point[1])
    rss = np.tile(-40.0 - 40.0 * np.log10(np.maximum(d, 1e-3)), (k, 1))
    if noise:
        rss = rss + rng.normal(0, noise, rss.shape)
    return SampleBatch(
        rss=rss,
        times=t0 + np.arange(k) / 10.0,
        positions=np.tile(np.asarray(point, float), (k, 1)),
    )


@pytest.fixture
def pathloss():
    return LogDistancePathLoss(exponent=4.0, p0_dbm=-40.0)


class TestKalman:
    def make(self, nodes, pathloss, **kw):
        inner = RangeMLETracker(nodes, pathloss, field_size=100.0)
        return KalmanTracker(inner, field_size=100.0, **kw)

    def test_first_fix_initializes_state(self, four_nodes, pathloss):
        kf = self.make(four_nodes, pathloss)
        est = kf.localize_batch(batch_at(four_nodes, [45.0, 55.0]))
        assert np.hypot(*(est.position - [45.0, 55.0])) < 2.0
        assert kf.velocity is not None

    def test_smooths_noisy_fixes(self, four_nodes, pathloss, rng):
        """On a straight constant-velocity track, the filter's error is at
        most the raw per-round fixes' error."""
        points = [np.array([30.0 + 2 * i, 50.0]) for i in range(15)]
        batches = [
            batch_at(four_nodes, p, noise=2.0, rng=np.random.default_rng(i), t0=0.5 * i)
            for i, p in enumerate(points)
        ]
        kf = self.make(four_nodes, pathloss, measurement_sigma=3.0)
        res_kf = kf.track(batches)
        raw = RangeMLETracker(four_nodes, pathloss, field_size=100.0).track(batches)
        assert res_kf.errors[5:].mean() <= raw.errors[5:].mean() * 1.1

    def test_velocity_estimated_on_straight_track(self, four_nodes, pathloss):
        points = [np.array([30.0 + 2 * i, 50.0]) for i in range(12)]
        batches = [batch_at(four_nodes, p, t0=0.5 * i) for i, p in enumerate(points)]
        kf = self.make(four_nodes, pathloss, measurement_sigma=1.0)
        kf.track(batches)
        v = kf.velocity
        assert v[0] == pytest.approx(4.0, abs=1.0)  # 2 m per 0.5 s
        assert abs(v[1]) < 1.0

    def test_reset(self, four_nodes, pathloss):
        kf = self.make(four_nodes, pathloss)
        kf.localize_batch(batch_at(four_nodes, [50.0, 50.0]))
        kf.reset()
        assert kf.velocity is None

    def test_estimates_clipped(self, four_nodes, pathloss, rng):
        kf = self.make(four_nodes, pathloss)
        for i in range(5):
            est = kf.localize_batch(
                batch_at(four_nodes, rng.uniform(0, 100, 2), noise=12.0, rng=rng, t0=0.5 * i)
            )
            assert np.all((est.position >= 0) & (est.position <= 100))

    def test_validation(self, four_nodes, pathloss):
        inner = RangeMLETracker(four_nodes, pathloss)
        with pytest.raises(ValueError):
            KalmanTracker(inner, process_sigma=0.0)
        with pytest.raises(ValueError):
            KalmanTracker(inner, measurement_sigma=0.0)


class TestParticleFilter:
    def make(self, nodes, pathloss, **kw):
        kw.setdefault("noise_sigma_dbm", 3.0)
        kw.setdefault("n_particles", 400)
        kw.setdefault("sensing_range_m", None)
        kw.setdefault("seed", 0)
        return ParticleFilterTracker(nodes, pathloss, field_size=100.0, **kw)

    def test_converges_on_static_target(self, four_nodes, pathloss):
        pf = self.make(four_nodes, pathloss)
        p = np.array([58.0, 44.0])
        errs = []
        for i in range(8):
            est = pf.localize_batch(
                batch_at(four_nodes, p, noise=3.0, rng=np.random.default_rng(i), t0=0.5 * i)
            )
            errs.append(np.hypot(*(est.position - p)))
        assert errs[-1] < 8.0
        assert errs[-1] <= errs[0] + 1.0

    def test_tracks_moving_target(self, four_nodes, pathloss):
        pf = self.make(four_nodes, pathloss)
        points = [np.array([30.0 + 2.5 * i, 45.0]) for i in range(16)]
        batches = [
            batch_at(four_nodes, p, noise=3.0, rng=np.random.default_rng(i), t0=0.5 * i)
            for i, p in enumerate(points)
        ]
        res = pf.track(batches)
        assert res.errors[6:].mean() < 10.0

    def test_reproducible_with_seed(self, four_nodes, pathloss):
        batches = [batch_at(four_nodes, [50.0, 50.0], noise=3.0, t0=0.5 * i) for i in range(4)]
        a = self.make(four_nodes, pathloss, seed=5).track(batches)
        b = self.make(four_nodes, pathloss, seed=5).track(batches)
        assert np.allclose(a.positions, b.positions)

    def test_handles_silent_sensors(self, four_nodes, pathloss):
        pf = self.make(four_nodes, pathloss, sensing_range_m=40.0)
        batch = batch_at(four_nodes, [35.0, 35.0])
        rss = batch.rss.copy()
        rss[:, 3] = np.nan
        batch = SampleBatch(rss=rss, times=batch.times, positions=batch.positions)
        est = pf.localize_batch(batch)
        assert np.all(np.isfinite(est.position))

    def test_all_nan_round_survives(self, four_nodes, pathloss):
        pf = self.make(four_nodes, pathloss)
        batch = SampleBatch(
            rss=np.full((2, 4), np.nan), times=np.arange(2.0), positions=np.zeros((2, 2))
        )
        est = pf.localize_batch(batch)
        assert np.all(np.isfinite(est.position))

    def test_validation(self, four_nodes, pathloss):
        with pytest.raises(ValueError):
            ParticleFilterTracker(four_nodes, pathloss, n_particles=5)
        with pytest.raises(ValueError):
            ParticleFilterTracker(four_nodes, pathloss, noise_sigma_dbm=0.0)
        with pytest.raises(ValueError):
            ParticleFilterTracker(four_nodes, pathloss, resample_threshold=0.0)

    def test_scenario_integration(self, fast_config):
        from repro.sim.runner import run_all_trackers
        from repro.sim.scenario import make_scenario

        scenario = make_scenario(fast_config, seed=2)
        results = run_all_trackers(scenario, ["kalman", "particle"], 3, n_rounds=5)
        for res in results.values():
            assert len(res) == 5
            assert np.all(np.isfinite(res.positions))
