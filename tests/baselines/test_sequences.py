"""Tests for repro.baselines.sequences."""

import numpy as np
import pytest

from repro.baselines.sequences import (
    detection_sequence,
    kendall_distance,
    sign_vector_from_ranks,
    sign_vector_from_rss,
    spearman_footrule,
)


class TestDetectionSequence:
    def test_descending_order(self):
        seq = detection_sequence(np.array([-60.0, -40.0, -50.0]))
        assert seq.tolist() == [1, 2, 0]

    def test_nan_sorts_last(self):
        seq = detection_sequence(np.array([-60.0, np.nan, -50.0]))
        assert seq.tolist() == [2, 0, 1]

    def test_stable_for_ties(self):
        seq = detection_sequence(np.array([-50.0, -50.0, -40.0]))
        assert seq.tolist() == [2, 0, 1]


class TestSignVectorFromRss:
    def test_one_shot_row(self):
        v = sign_vector_from_rss(np.array([-40.0, -50.0, -45.0]))
        # pairs (0,1), (0,2), (1,2)
        assert v.tolist() == [1.0, 1.0, -1.0]

    def test_group_mean_reduction(self):
        rss = np.array([[-40.0, -50.0], [-48.0, -42.0]])
        # means: -44 vs -46 -> node 0 louder
        assert sign_vector_from_rss(rss, reduce="mean")[0] == 1.0

    def test_group_last_reduction(self):
        rss = np.array([[-40.0, -50.0], [-48.0, -42.0]])
        assert sign_vector_from_rss(rss, reduce="last")[0] == -1.0

    def test_silent_vs_reporting(self):
        v = sign_vector_from_rss(np.array([np.nan, -50.0]))
        assert v[0] == -1.0  # reporting node reads stronger

    def test_both_silent_is_nan(self):
        v = sign_vector_from_rss(np.array([np.nan, np.nan, -50.0]))
        assert np.isnan(v[0])
        assert v[1] == -1.0 and v[2] == -1.0

    def test_unknown_reduce(self):
        with pytest.raises(ValueError, match="reduce"):
            sign_vector_from_rss(np.zeros((2, 3)), reduce="median")

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            sign_vector_from_rss(np.zeros((2, 2, 2)))


class TestSignVectorFromRanks:
    def test_consistent_with_rss_ordering(self):
        rss = np.array([-40.0, -50.0, -45.0])
        ranks = np.array([0, 2, 1])  # node 0 nearest
        assert np.array_equal(
            sign_vector_from_ranks(ranks), sign_vector_from_rss(rss)
        )


class TestRankCorrelations:
    def test_kendall_identical_is_zero(self):
        s = np.array([2, 0, 1, 3])
        assert kendall_distance(s, s) == 0

    def test_kendall_reversed_is_max(self):
        s = np.arange(5)
        assert kendall_distance(s, s[::-1]) == 10  # C(5,2)

    def test_kendall_single_swap(self):
        assert kendall_distance(np.array([0, 1, 2]), np.array([1, 0, 2])) == 1

    def test_kendall_rejects_different_items(self):
        with pytest.raises(ValueError, match="permutations"):
            kendall_distance(np.array([0, 1]), np.array([1, 2]))

    def test_footrule_identical_is_zero(self):
        s = np.array([3, 1, 0, 2])
        assert spearman_footrule(s, s) == 0

    def test_footrule_single_swap(self):
        assert spearman_footrule(np.array([0, 1, 2]), np.array([1, 0, 2])) == 2

    def test_footrule_bounds_kendall(self):
        # standard inequality: K <= F <= 2K
        rng = np.random.default_rng(0)
        for _ in range(20):
            a = rng.permutation(6)
            b = rng.permutation(6)
            k = kendall_distance(a, b)
            f = spearman_footrule(a, b)
            assert k <= f <= 2 * k
