"""Tests for the weighted-centroid and PkNN baselines."""

import numpy as np
import pytest

from repro.baselines.pknn import PkNNTracker
from repro.baselines.weighted_centroid import WeightedCentroidTracker
from repro.rf.channel import SampleBatch


def batch_at(nodes, point, k=3, noise=0.0, rng=None):
    rng = rng or np.random.default_rng(0)
    d = np.hypot(nodes[:, 0] - point[0], nodes[:, 1] - point[1])
    rss = np.tile(-40.0 - 40.0 * np.log10(np.maximum(d, 1e-3)), (k, 1))
    if noise:
        rss = rss + rng.normal(0, noise, rss.shape)
    return SampleBatch(
        rss=rss, times=np.arange(k, dtype=float), positions=np.tile(np.asarray(point, float), (k, 1))
    )


class TestWeightedCentroid:
    def test_pulls_toward_target(self, four_nodes):
        tracker = WeightedCentroidTracker(four_nodes, exponent=2.0)
        p = np.array([35.0, 35.0])
        est = tracker.localize_batch(batch_at(four_nodes, p))
        # estimate is between the plain centroid (50,50) and the target
        plain = four_nodes.mean(axis=0)
        assert np.hypot(*(est.position - p)) < np.hypot(*(plain - p))

    def test_larger_exponent_approaches_nearest(self, four_nodes):
        p = np.array([32.0, 31.0])
        soft = WeightedCentroidTracker(four_nodes, exponent=0.5)
        hard = WeightedCentroidTracker(four_nodes, exponent=8.0)
        e_soft = soft.localize_batch(batch_at(four_nodes, p))
        e_hard = hard.localize_batch(batch_at(four_nodes, p))
        d_soft = np.hypot(*(e_soft.position - four_nodes[0]))
        d_hard = np.hypot(*(e_hard.position - four_nodes[0]))
        assert d_hard < d_soft

    def test_all_silent(self, four_nodes):
        tracker = WeightedCentroidTracker(four_nodes)
        est = tracker.localize(np.full((2, 4), np.nan))
        assert np.allclose(est.position, four_nodes.mean(axis=0))

    def test_track(self, four_nodes, rng):
        tracker = WeightedCentroidTracker(four_nodes)
        batches = [batch_at(four_nodes, rng.uniform(30, 70, 2)) for _ in range(4)]
        assert len(tracker.track(batches)) == 4

    def test_validation(self, four_nodes):
        with pytest.raises(ValueError):
            WeightedCentroidTracker(four_nodes, exponent=0.0)
        with pytest.raises(ValueError, match="sensors"):
            WeightedCentroidTracker(four_nodes).localize(np.zeros((1, 7)))


class TestPkNN:
    def test_membership_probabilities_sum(self, four_nodes):
        tracker = PkNNTracker(four_nodes, k_neighbors=2)
        batch = batch_at(four_nodes, [40.0, 40.0], k=5, noise=3.0)
        probs = tracker.membership_probabilities(batch.rss)
        # per sample exactly k votes are cast
        assert probs.sum() == pytest.approx(2.0)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_near_target_sensors_get_high_probability(self, four_nodes):
        tracker = PkNNTracker(four_nodes, k_neighbors=2)
        batch = batch_at(four_nodes, [32.0, 32.0], k=5)
        probs = tracker.membership_probabilities(batch.rss)
        assert probs[0] == 1.0  # node (30,30) always among 2 loudest

    def test_localization_quality(self, four_nodes, rng):
        tracker = PkNNTracker(four_nodes, k_neighbors=3)
        errs = []
        for _ in range(15):
            p = rng.uniform(30, 70, 2)
            est = tracker.localize_batch(batch_at(four_nodes, p, k=5, noise=3.0, rng=rng))
            errs.append(np.hypot(*(est.position - p)))
        assert np.mean(errs) < 25.0

    def test_all_silent_returns_centroid(self, four_nodes):
        tracker = PkNNTracker(four_nodes)
        est = tracker.localize(np.full((2, 4), np.nan))
        assert np.allclose(est.position, four_nodes.mean(axis=0))

    def test_k_clamped_to_node_count(self, four_nodes):
        tracker = PkNNTracker(four_nodes, k_neighbors=99)
        assert tracker.k_neighbors == 4

    def test_track(self, four_nodes, rng):
        tracker = PkNNTracker(four_nodes)
        batches = [batch_at(four_nodes, rng.uniform(30, 70, 2)) for _ in range(3)]
        assert len(tracker.track(batches)) == 3

    def test_validation(self, four_nodes):
        with pytest.raises(ValueError):
            PkNNTracker(four_nodes, k_neighbors=0)
        with pytest.raises(ValueError):
            PkNNTracker(four_nodes, min_prob=1.0)
        with pytest.raises(ValueError, match="sensors"):
            PkNNTracker(four_nodes).localize(np.zeros((1, 9)))
