"""Tests for the baseline trackers (Direct MLE, PM, range MLE, nearest)."""

import numpy as np
import pytest

from repro.baselines.direct_mle import DirectMLETracker
from repro.baselines.nearest import NearestNodeTracker
from repro.baselines.path_matching import PathMatchingTracker
from repro.baselines.range_mle import RangeMLETracker
from repro.rf.channel import SampleBatch
from repro.rf.pathloss import LogDistancePathLoss


def batch_at(nodes, point, k=3, noise=0.0, rng=None, t0=0.0):
    rng = rng or np.random.default_rng(0)
    d = np.hypot(nodes[:, 0] - point[0], nodes[:, 1] - point[1])
    rss = -40.0 - 40.0 * np.log10(np.maximum(d, 1e-3))
    rss = np.tile(rss, (k, 1))
    if noise:
        rss = rss + rng.normal(0, noise, rss.shape)
    return SampleBatch(
        rss=rss,
        times=t0 + np.arange(k) / 10.0,
        positions=np.tile(np.asarray(point, dtype=float), (k, 1)),
    )


class TestDirectMLE:
    def test_noiseless_localization_in_true_face(self, certain_map, four_nodes):
        tracker = DirectMLETracker(certain_map)
        p = np.array([42.0, 61.0])
        est = tracker.localize_batch(batch_at(four_nodes, p))
        assert certain_map.face_of_point(p) in est.face_ids

    def test_reasonable_error_under_noise(self, certain_map, four_nodes, rng):
        tracker = DirectMLETracker(certain_map)
        errors = []
        for _ in range(20):
            p = rng.uniform(20, 80, 2)
            est = tracker.localize_batch(batch_at(four_nodes, p, noise=3.0, rng=rng))
            errors.append(np.hypot(*(est.position - p)))
        assert np.mean(errors) < 25.0

    def test_track_interface(self, certain_map, four_nodes, rng):
        tracker = DirectMLETracker(certain_map)
        batches = [batch_at(four_nodes, rng.uniform(20, 80, 2), t0=i * 0.5) for i in range(5)]
        result = tracker.track(batches)
        assert len(result) == 5

    def test_reduce_modes(self, certain_map, four_nodes):
        DirectMLETracker(certain_map, reduce="last")
        with pytest.raises(ValueError):
            DirectMLETracker(certain_map, reduce="bogus")

    def test_wrong_sensor_count(self, certain_map):
        tracker = DirectMLETracker(certain_map)
        with pytest.raises(ValueError, match="sensors"):
            tracker.localize(np.zeros((2, 9)))


class TestPathMatching:
    def test_noiseless_track_follows_target(self, certain_map, four_nodes):
        # four nodes divide the certain map into only ~a dozen coarse faces,
        # so the achievable error is face-diameter scale; assert the decoder
        # stays in the right neighbourhood and mostly picks the true face.
        tracker = PathMatchingTracker(certain_map, vmax_mps=5.0)
        points = [np.array([30.0 + 2 * i, 43.0]) for i in range(10)]
        batches = [batch_at(four_nodes, p, t0=i * 0.5) for i, p in enumerate(points)]
        result = tracker.track(batches)
        assert result.mean_error < 35.0
        true_faces = [certain_map.face_of_point(p) for p in points]
        est_faces = [int(e.face_ids[0]) for e in result.estimates]
        assert sum(t == e for t, e in zip(true_faces, est_faces)) >= len(points) // 2

    def test_localize_single_round(self, certain_map, four_nodes):
        tracker = PathMatchingTracker(certain_map)
        est = tracker.localize(batch_at(four_nodes, [55.0, 45.0]).rss)
        assert np.all(np.isfinite(est.position))

    def test_beam_width_one_degenerates_to_greedy(self, certain_map, four_nodes, rng):
        tracker = PathMatchingTracker(certain_map, beam_width=1)
        batches = [batch_at(four_nodes, rng.uniform(30, 70, 2), t0=i * 0.5) for i in range(4)]
        result = tracker.track(batches)
        assert len(result) == 4

    def test_empty_track(self, certain_map):
        tracker = PathMatchingTracker(certain_map)
        assert len(tracker.track([])) == 0

    def test_velocity_constraint_smooths_jumps(self, certain_map, four_nodes, rng):
        """With a strong path prior, a single corrupted round cannot fling
        the estimate across the field."""
        smooth = PathMatchingTracker(certain_map, vmax_mps=2.0, penalty_per_m=5.0)
        points = [np.array([30.0 + i, 50.0]) for i in range(12)]
        batches = [batch_at(four_nodes, p, noise=1.0, rng=rng, t0=i * 0.5) for i, p in enumerate(points)]
        # corrupt the middle round heavily
        bad = batches[6]
        batches[6] = SampleBatch(
            rss=bad.rss[:, ::-1].copy(), times=bad.times, positions=bad.positions
        )
        result = smooth.track(batches)
        jumps = np.hypot(*np.diff(result.positions, axis=0).T)
        assert jumps.max() < 60.0

    def test_validation(self, certain_map):
        with pytest.raises(ValueError):
            PathMatchingTracker(certain_map, vmax_mps=0.0)
        with pytest.raises(ValueError):
            PathMatchingTracker(certain_map, beam_width=0)
        with pytest.raises(ValueError):
            PathMatchingTracker(certain_map, penalty_per_m=-1.0)


class TestRangeMLE:
    def test_noiseless_exact_recovery(self, four_nodes):
        pl = LogDistancePathLoss(exponent=4.0, p0_dbm=-40.0)
        tracker = RangeMLETracker(four_nodes, pl, field_size=100.0)
        p = np.array([44.0, 58.0])
        est = tracker.localize_batch(batch_at(four_nodes, p))
        assert np.hypot(*(est.position - p)) < 0.5

    def test_few_sensors_falls_back_to_centroid(self, four_nodes):
        pl = LogDistancePathLoss(exponent=4.0, p0_dbm=-40.0)
        tracker = RangeMLETracker(four_nodes, pl, min_sensors=3)
        rss = np.full((2, 4), np.nan)
        rss[:, 0] = -50.0
        est = tracker.localize(rss)
        assert np.all((est.position >= 0) & (est.position <= 100))

    def test_all_silent(self, four_nodes):
        pl = LogDistancePathLoss()
        tracker = RangeMLETracker(four_nodes, pl)
        est = tracker.localize(np.full((2, 4), np.nan))
        assert np.all(np.isfinite(est.position))

    def test_estimates_clipped_to_field(self, four_nodes, rng):
        pl = LogDistancePathLoss(exponent=4.0, p0_dbm=-40.0)
        tracker = RangeMLETracker(four_nodes, pl, field_size=100.0)
        for _ in range(10):
            est = tracker.localize_batch(
                batch_at(four_nodes, rng.uniform(0, 100, 2), noise=10.0, rng=rng)
            )
            assert np.all((est.position >= 0) & (est.position <= 100))

    def test_wrong_sensor_count(self, four_nodes):
        tracker = RangeMLETracker(four_nodes, LogDistancePathLoss())
        with pytest.raises(ValueError, match="sensors"):
            tracker.localize(np.zeros((2, 5)))


class TestNearestNode:
    def test_snaps_to_loudest(self, four_nodes):
        tracker = NearestNodeTracker(four_nodes)
        est = tracker.localize_batch(batch_at(four_nodes, [31.0, 29.0]))
        assert np.allclose(est.position, four_nodes[0])

    def test_all_silent_returns_centroid(self, four_nodes):
        tracker = NearestNodeTracker(four_nodes)
        est = tracker.localize(np.full((2, 4), np.nan))
        assert np.allclose(est.position, four_nodes.mean(axis=0))

    def test_track(self, four_nodes, rng):
        tracker = NearestNodeTracker(four_nodes)
        batches = [batch_at(four_nodes, rng.uniform(20, 80, 2)) for _ in range(3)]
        assert len(tracker.track(batches)) == 3

    def test_wrong_sensor_count(self, four_nodes):
        with pytest.raises(ValueError, match="sensors"):
            NearestNodeTracker(four_nodes).localize(np.zeros((1, 3)))
