"""Tests for repro.config — Table 1 defaults and validation."""

import pytest

from repro.config import GridConfig, PaperDefaults, SimulationConfig


class TestPaperDefaults:
    def test_table1_values(self):
        """Table 1 of the paper, verbatim."""
        p = PaperDefaults()
        assert p.field_size_m == 100.0
        assert p.path_loss_exponent == 4.0
        assert p.noise_sigma_dbm == 6.0
        assert p.n_sensors_min == 5 and p.n_sensors_max == 40
        assert p.sensing_range_m == 40.0
        assert p.resolution_min_dbm == 0.5 and p.resolution_max_dbm == 3.0
        assert p.sampling_rate_hz == 10.0
        assert p.target_speed_min_mps == 1.0 and p.target_speed_max_mps == 5.0
        assert p.sampling_times_min == 3 and p.sampling_times_max == 9
        assert p.sim_duration_s == 60.0

    def test_as_dict(self):
        d = PaperDefaults().as_dict()
        assert d["sensing_range_m"] == 40.0


class TestSimulationConfig:
    def test_defaults_are_paper_baseline(self):
        cfg = SimulationConfig()
        assert cfg.sampling_times == 5
        assert cfg.resolution_dbm == 1.0
        assert cfg.n_sensors == 10

    def test_localization_period(self):
        cfg = SimulationConfig(sampling_times=5, sampling_rate_hz=10.0)
        assert cfg.localization_period_s == pytest.approx(0.5)
        assert cfg.n_localizations == 120  # 60 s / 0.5 s

    def test_with_returns_validated_copy(self):
        cfg = SimulationConfig()
        cfg2 = cfg.with_(n_sensors=20)
        assert cfg2.n_sensors == 20
        assert cfg.n_sensors == 10
        with pytest.raises(ValueError):
            cfg.with_(n_sensors=1)

    def test_as_dict_includes_grid(self):
        d = SimulationConfig().as_dict()
        assert d["grid"]["cell_size_m"] == 1.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("field_size_m", 0.0),
            ("n_sensors", 1),
            ("sensing_range_m", -1.0),
            ("path_loss_exponent", 0.0),
            ("noise_sigma_dbm", -1.0),
            ("resolution_dbm", -0.5),
            ("sampling_times", 0),
            ("sampling_rate_hz", 0.0),
            ("duration_s", 0.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            SimulationConfig(**{field: value})

    def test_speed_range_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(target_speed_min_mps=5.0, target_speed_max_mps=1.0)


class TestGridConfig:
    def test_rejects_nonpositive_cell(self):
        with pytest.raises(ValueError):
            GridConfig(cell_size_m=0.0)
