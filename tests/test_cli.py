"""Tests for repro.cli — every subcommand drives end to end."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        names = set(sub.choices)
        assert {
            "list",
            "fig3",
            "fig10",
            "fig11",
            "fig12a",
            "fig12b",
            "fig12cd",
            "fig13",
            "sampling-times",
            "ablations",
            "density",
            "report",
            "run",
            "faultlab",
            "fuzz",
            "replay-divergence",
        } <= names


class TestListAndInfo:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "sampling-times" in out

    def test_sampling_times_worked_example(self, capsys):
        assert main(["sampling-times", "--sensors", "20", "--confidence", "0.99"]) == 0
        out = capsys.readouterr().out
        assert "k = 16" in out

    def test_fig3_quick(self, capsys):
        assert main(["fig3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "all-certain" in out

    def test_density(self, capsys):
        assert main(["density"]) == 0
        out = capsys.readouterr().out
        assert "lifetime" in out


class TestRun:
    def test_run_list_presets(self, capsys):
        assert main(["run", "list"]) == 0
        out = capsys.readouterr().out
        assert "paper-baseline" in out

    def test_run_preset(self, capsys):
        assert main(["run", "sparse", "--trackers", "fttt,nearest", "--rounds", "4"]) == 0
        out = capsys.readouterr().out
        assert "fttt" in out and "nearest" in out

    def test_run_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            main(["run", "atlantis", "--rounds", "2"])


class TestFigureCommands:
    def test_fig13(self, capsys):
        assert main(["fig13", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "basic" in out and "extended" in out

    def test_fig10_quick(self, capsys):
        assert main(["fig10", "--quick", "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "deployment = grid" in out and "deployment = random" in out

    def test_fig12cd_quick(self, capsys):
        assert main(["fig12cd", "--quick", "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "fttt-extended" in out

    def test_fig11_quick_with_csv(self, tmp_path, capsys):
        assert main(["fig11", "--quick", "--reps", "1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig11.csv").exists()
        out = capsys.readouterr().out
        assert "direct-mle" in out


class TestFaultlab:
    def test_faultlab_quick_end_to_end(self, tmp_path, capsys):
        assert (
            main(
                [
                    "faultlab",
                    "--quick",
                    "--reps",
                    "1",
                    "--families",
                    "byzantine",
                    "--intensities",
                    "0.0,0.3",
                    "--trackers",
                    "fttt,fttt-robust",
                    "--workers",
                    "1",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "robustness: byzantine" in out
        assert "fttt-robust@0.30" in out
        assert (tmp_path / "robustness.csv").exists()
        assert (tmp_path / "metrics.json").exists()

    def test_faultlab_rejects_unknown_family(self, tmp_path, capsys):
        assert (
            main(["faultlab", "--families", "gremlins", "--out", str(tmp_path)]) == 2
        )
        assert "unknown fault family" in capsys.readouterr().out


class TestFuzz:
    def test_fuzz_clean_campaign(self, tmp_path, capsys):
        assert (
            main(
                [
                    "fuzz",
                    "--scenarios",
                    "8",
                    "--seed",
                    "5",
                    "--workers",
                    "1",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "no divergences" in out
        assert "digest:" in out
        assert not list(tmp_path.iterdir())

    def test_fuzz_reports_divergence_and_replay_round_trips(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.geometry.faces import FaceMap

        original = FaceMap.tie_tolerance
        monkeypatch.setattr(
            FaceMap, "tie_tolerance", lambda self, best: original(self, best) + 0.75
        )
        assert (
            main(
                [
                    "fuzz",
                    "--scenarios",
                    "30",
                    "--seed",
                    "3",
                    "--workers",
                    "1",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        assert "replay with:" in out
        artifacts = list(tmp_path.iterdir())
        assert len(artifacts) == 1
        # replaying while the bug is still in place reproduces it (exit 1)
        assert main(["replay-divergence", str(artifacts[0])]) == 1
        assert "reproduced" in capsys.readouterr().out
        monkeypatch.setattr(FaceMap, "tie_tolerance", original)
        # after the fix, the same artifact reports clean (exit 0)
        assert main(["replay-divergence", str(artifacts[0])]) == 0
        assert "clean" in capsys.readouterr().out

    def test_fuzz_respects_budget_env(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FUZZ_BUDGET", "4")
        assert main(["fuzz", "--seed", "1", "--workers", "1"]) == 0
        assert "4 scenarios" in capsys.readouterr().out


class TestReport:
    def test_report_from_results(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig11bc.csv").write_text("tracker,mean\nfttt,4.0\n")
        out_file = tmp_path / "REPORT.md"
        assert main(["report", "--results", str(results), "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "Reproduction report" in out_file.read_text()
