"""Tests for repro.sim.modelmode — the paper's flip-model observations."""

import numpy as np
import pytest

from repro.geometry.faces import build_face_map
from repro.geometry.grid import Grid
from repro.sim.modelmode import ModelSampler, run_model_tracking


@pytest.fixture
def sampler(four_nodes):
    return ModelSampler(four_nodes, c=1.5, k=5)


class TestModelSampler:
    def test_true_signature_matches_face_map(self, sampler, four_nodes, small_grid):
        fm = build_face_map(four_nodes, small_grid, 1.5)
        p = np.array([45.0, 45.0])
        # exact-point signature equals the rasterized one away from boundaries
        assert np.array_equal(
            sampler.true_signature(p), fm.signature_of_point(p).astype(float)
        )

    def test_certain_pairs_read_exactly(self, sampler, rng):
        p = np.array([20.0, 20.0])
        sig = sampler.true_signature(p)
        for _ in range(10):
            v = sampler.sample_group_vector(p, rng)
            certain = sig != 0
            assert np.array_equal(v[certain], sig[certain])

    def test_flip_capture_rate_matches_formula(self, sampler, rng):
        # at the midpoint, several pairs are uncertain; each should be read
        # as flipped with probability 1 - (1/2)^(k-1) = 0.9375
        p = np.array([50.0, 50.0])
        sig = sampler.true_signature(p)
        unc = sig == 0
        assert unc.any()
        draws = np.stack([sampler.sample_group_vector(p, rng) for _ in range(4000)])
        captured = (draws[:, unc] == 0).mean()
        assert captured == pytest.approx(1 - sampler.miss_prob, abs=0.02)

    def test_oneshot_uncertain_is_fair_coin(self, sampler, rng):
        p = np.array([50.0, 50.0])
        sig = sampler.true_signature(p)
        unc = sig == 0
        draws = np.stack([sampler.sample_oneshot_vector(p, rng) for _ in range(4000)])
        vals = draws[:, unc]
        assert set(np.unique(vals)).issubset({-1.0, 1.0})
        assert vals.mean() == pytest.approx(0.0, abs=0.06)

    def test_validation(self, four_nodes):
        with pytest.raises(ValueError):
            ModelSampler(four_nodes, c=0.9)
        with pytest.raises(ValueError):
            ModelSampler(four_nodes, c=1.5, k=0)


class TestRunModelTracking:
    def test_tracks_with_low_error(self, four_nodes, small_grid, rng):
        fm = build_face_map(four_nodes, small_grid, 1.5)
        sampler = ModelSampler(four_nodes, c=1.5, k=5)
        times = np.arange(20) * 0.5
        positions = np.column_stack([30 + times, np.full_like(times, 40.0)])
        res = run_model_tracking(fm, sampler, positions, times, rng)
        assert len(res) == 20
        assert res.mean_error < 25.0

    def test_group_beats_oneshot(self, four_nodes, small_grid):
        """The core FTTT claim in its purest form: grouping sampling
        (which captures flips) beats one-shot sequences."""
        fm = build_face_map(four_nodes, small_grid, 1.5)
        sampler = ModelSampler(four_nodes, c=1.5, k=5)
        times = np.arange(40) * 0.5
        rng_pos = np.random.default_rng(0)
        positions = rng_pos.uniform(20, 80, (40, 2))
        group = run_model_tracking(fm, sampler, positions, times, 1, observation="group")
        oneshot = run_model_tracking(fm, sampler, positions, times, 1, observation="oneshot")
        assert group.mean_error < oneshot.mean_error

    def test_heuristic_matcher_option(self, four_nodes, small_grid, rng):
        fm = build_face_map(four_nodes, small_grid, 1.5)
        sampler = ModelSampler(four_nodes, c=1.5, k=5)
        times = np.arange(5) * 0.5
        positions = np.tile(np.array([40.0, 40.0]), (5, 1))
        res = run_model_tracking(fm, sampler, positions, times, rng, matcher="heuristic")
        assert len(res) == 5

    def test_validation(self, four_nodes, small_grid, rng):
        fm = build_face_map(four_nodes, small_grid, 1.5)
        sampler = ModelSampler(four_nodes, c=1.5, k=5)
        with pytest.raises(ValueError, match="observation"):
            run_model_tracking(fm, sampler, np.zeros((2, 2)), np.zeros(2), rng, observation="x")
        with pytest.raises(ValueError, match="matcher"):
            run_model_tracking(fm, sampler, np.zeros((2, 2)), np.zeros(2), rng, matcher="x")
        with pytest.raises(ValueError, match="equal length"):
            run_model_tracking(fm, sampler, np.zeros((2, 2)), np.zeros(3), rng)
