"""Tests for repro.sim.ablations."""

import numpy as np
import pytest

from repro.config import GridConfig, SimulationConfig
from repro.sim.ablations import (
    ablate_matcher_hops,
    ablate_noise_structure,
    ablate_soft_signatures,
    ablate_uncertainty_constant,
)

TINY = SimulationConfig(n_sensors=8, duration_s=8.0, grid=GridConfig(cell_size_m=4.0))


class TestUncertaintyConstantAblation:
    def test_returns_both_modes(self):
        out = ablate_uncertainty_constant(TINY, n_reps=2, seed=0)
        assert set(out) == {"paper", "paper/std", "calibrated", "calibrated/std"}
        assert all(np.isfinite(v) for v in out.values())

    def test_reproducible(self):
        a = ablate_uncertainty_constant(TINY, n_reps=1, seed=4)
        b = ablate_uncertainty_constant(TINY, n_reps=1, seed=4)
        assert a == b


class TestMatcherHopsAblation:
    def test_variants_present(self):
        out = ablate_matcher_hops(TINY, n_reps=1, seed=0)
        assert {"hops=1", "hops=2", "exhaustive"} <= set(out)

    def test_two_hop_not_worse_than_one_hop(self):
        cfg = SimulationConfig(n_sensors=12, duration_s=15.0, grid=GridConfig(cell_size_m=3.0))
        out = ablate_matcher_hops(cfg, n_reps=3, seed=1)
        assert out["hops=2"] <= out["hops=1"] * 1.1


class TestSoftSignatureAblation:
    def test_variants_present(self):
        out = ablate_soft_signatures(TINY, n_reps=1, seed=0)
        assert {"extended/hard-sig", "extended/soft-sig", "basic"} <= set(out)

    def test_soft_beats_hard_for_extended_vectors(self):
        cfg = SimulationConfig(n_sensors=10, duration_s=15.0, grid=GridConfig(cell_size_m=3.0))
        out = ablate_soft_signatures(cfg, n_reps=3, seed=2)
        assert out["extended/soft-sig"] < out["extended/hard-sig"]


class TestNoiseStructureAblation:
    def test_variants_present(self):
        out = ablate_noise_structure(TINY, n_reps=1, seed=0)
        assert {"iid", "temporal rho=0.9", "common-mode a=0.7"} <= set(out)

    def test_temporal_correlation_hurts(self):
        cfg = SimulationConfig(n_sensors=10, duration_s=15.0, grid=GridConfig(cell_size_m=3.0))
        out = ablate_noise_structure(cfg, n_reps=3, seed=3)
        # correlated samples starve flip capture: error rises vs iid
        assert out["temporal rho=0.9"] > out["iid"] * 0.95
