"""Tests for repro.sim.io."""

import csv

import pytest

from repro.sim.experiments import SweepRecord
from repro.sim.io import load_records_json, records_to_csv, records_to_json


@pytest.fixture
def records():
    return [
        SweepRecord("fttt", {"n_sensors": 10}, 5.5, 2.2, 2.0, 3, (5.0, 5.5, 6.0)),
        SweepRecord("pm", {"n_sensors": 10}, 8.1, 3.3, 3.1, 3, (8.0, 8.1, 8.2)),
    ]


class TestCsv:
    def test_roundtrip_fields(self, records, tmp_path):
        path = records_to_csv(records, tmp_path / "out.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert rows[0]["tracker"] == "fttt"
        assert float(rows[0]["mean_error"]) == 5.5
        assert rows[1]["n_sensors"] == "10"

    def test_creates_parent_dirs(self, records, tmp_path):
        path = records_to_csv(records, tmp_path / "a" / "b" / "out.csv")
        assert path.exists()

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            records_to_csv([], tmp_path / "out.csv")


class TestJson:
    def test_roundtrip(self, records, tmp_path):
        path = records_to_json(records, tmp_path / "out.json")
        loaded = load_records_json(path)
        assert len(loaded) == 2
        assert loaded[0]["tracker"] == "fttt"
        assert loaded[0]["mean_error"] == 5.5
        assert loaded[0]["n_sensors"] == 10
