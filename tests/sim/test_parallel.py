"""Tests for repro.sim.parallel."""

import numpy as np
import pytest

from repro.config import GridConfig, SimulationConfig
from repro.sim.parallel import parallel_sweep, recommended_workers

TINY = SimulationConfig(duration_s=6.0, grid=GridConfig(cell_size_m=4.0))


class TestRecommendedWorkers:
    def test_bounded_by_tasks(self):
        assert recommended_workers(1) == 1

    def test_at_least_one(self):
        assert recommended_workers(0) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert recommended_workers(10) == 3

    def test_env_override_clamped_to_tasks(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "64")
        assert recommended_workers(2) == 2

    def test_env_override_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            recommended_workers(4)
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match=">= 1"):
            recommended_workers(4)

    def test_empty_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert recommended_workers(1) == 1


class TestParallelSweep:
    def points(self):
        return [(TINY.with_(n_sensors=n), {"n_sensors": n}) for n in (6, 9)]

    def test_inline_mode(self):
        recs = parallel_sweep(self.points(), ["fttt"], n_reps=1, seed=0, n_workers=1)
        assert len(recs) == 2
        assert {r.params["n_sensors"] for r in recs} == {6, 9}

    def test_parallel_equals_serial(self):
        serial = parallel_sweep(self.points(), ["fttt"], n_reps=1, seed=3, n_workers=1)
        par = parallel_sweep(self.points(), ["fttt"], n_reps=1, seed=3, n_workers=2)
        assert [r.mean_error for r in serial] == [r.mean_error for r in par]
        assert [r.std_error for r in serial] == [r.std_error for r in par]

    def test_matches_direct_replicate(self):
        from repro.sim.experiments import replicate_mean_error

        recs = parallel_sweep(self.points()[:1], ["fttt"], n_reps=2, seed=7, n_workers=1)
        direct = replicate_mean_error(
            TINY.with_(n_sensors=6), ["fttt"], n_reps=2, seed=7, params={"n_sensors": 6}
        )
        assert recs[0].mean_error == direct[0].mean_error

    def test_multiple_trackers(self):
        recs = parallel_sweep(self.points()[:1], ["fttt", "nearest"], n_reps=1, seed=0, n_workers=1)
        assert {r.tracker for r in recs} == {"fttt", "nearest"}

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            parallel_sweep([], ["fttt"])
