"""Tests for repro.sim.presets."""

import numpy as np
import pytest

from repro.sim.presets import PRESETS, list_presets, make_preset


class TestRegistry:
    def test_list_matches_registry(self):
        listed = dict(list_presets())
        assert set(listed) == set(PRESETS)
        assert all(desc for desc in listed.values())

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown preset"):
            make_preset("underwater")


@pytest.mark.parametrize("name", sorted(PRESETS))
class TestEveryPreset:
    def test_builds_and_tracks(self, name):
        scenario = make_preset(name, seed=1)
        assert scenario.n_sensors >= 2
        from repro.sim.runner import run_tracking

        tracker = scenario.make_tracker("fttt")
        res = run_tracking(scenario, tracker, 2, n_rounds=3)
        assert len(res) == 3
        assert np.all(np.isfinite(res.positions))

    def test_reproducible(self, name):
        a = make_preset(name, seed=7)
        b = make_preset(name, seed=7)
        assert np.array_equal(a.nodes, b.nodes)


class TestPresetShapes:
    def test_dense_has_more_sensors_than_sparse(self):
        assert make_preset("dense-grid").n_sensors > make_preset("sparse").n_sensors

    def test_outdoor_scale_field(self):
        assert make_preset("outdoor-scale").config.field_size_m == 40.0

    def test_momentum_uses_gauss_markov(self):
        from repro.mobility.gauss_markov import GaussMarkov

        assert isinstance(make_preset("momentum-target").mobility, GaussMarkov)
