"""Tests for repro.sim.runner."""

import numpy as np
import pytest

from repro.network.basestation import BaseStation
from repro.network.faults import IndependentDropout
from repro.sim.runner import generate_batches, run_all_trackers, run_tracking
from repro.sim.scenario import make_scenario


@pytest.fixture
def scenario(fast_config):
    return make_scenario(fast_config, seed=11)


class TestGenerateBatches:
    def test_round_count_from_config(self, scenario):
        batches = generate_batches(scenario, 1)
        assert len(batches) == scenario.config.n_localizations

    def test_explicit_round_count(self, scenario):
        assert len(generate_batches(scenario, 1, n_rounds=4)) == 4

    def test_rounds_spaced_by_group_duration(self, scenario):
        batches = generate_batches(scenario, 1, n_rounds=3)
        t0s = [b.times[0] for b in batches]
        period = scenario.sampler.group_duration_s
        assert np.allclose(np.diff(t0s), period)

    def test_positions_follow_mobility(self, scenario):
        batches = generate_batches(scenario, 1, n_rounds=3)
        for b in batches:
            assert np.allclose(b.positions, scenario.mobility.position(b.times))

    def test_reproducible_with_seed(self, scenario):
        a = generate_batches(scenario, 7, n_rounds=3)
        b = generate_batches(scenario, 7, n_rounds=3)
        for x, y in zip(a, b):
            assert np.array_equal(x.rss, y.rss, equal_nan=True)

    def test_faults_blank_sensors(self, scenario):
        batches = generate_batches(
            scenario, 1, faults=IndependentDropout(p=1.0), n_rounds=2
        )
        for b in batches:
            assert np.isnan(b.rss).all()

    def test_basestation_loss_applied(self, scenario):
        bs = BaseStation(packet_loss_p=1.0)
        batches = generate_batches(scenario, 1, basestation=bs, n_rounds=2)
        for b in batches:
            assert np.isnan(b.rss).all()
        assert bs.n_rounds == 2

    def test_rejects_zero_rounds(self, scenario):
        with pytest.raises(ValueError):
            generate_batches(scenario, 1, n_rounds=0)


class TestRunTracking:
    def test_returns_result(self, scenario):
        tracker = scenario.make_tracker("fttt")
        res = run_tracking(scenario, tracker, 1, n_rounds=5)
        assert len(res) == 5
        assert np.isfinite(res.mean_error)

    def test_supplied_batches_bypass_generation(self, scenario):
        batches = generate_batches(scenario, 1, n_rounds=3)
        tracker = scenario.make_tracker("fttt")
        res = run_tracking(scenario, tracker, batches=batches)
        assert len(res) == 3


class TestRunAllTrackers:
    def test_shared_batches(self, scenario):
        results = run_all_trackers(scenario, ["fttt", "direct-mle", "nearest"], 1, n_rounds=4)
        assert set(results) == {"fttt", "direct-mle", "nearest"}
        truths = [res.truth for res in results.values()]
        for t in truths[1:]:
            assert np.array_equal(truths[0], t)  # identical ground truth

    def test_results_have_common_length(self, scenario):
        results = run_all_trackers(scenario, ["fttt", "pm"], 2, n_rounds=4)
        assert all(len(r) == 4 for r in results.values())
