"""Tests for repro.sim.figures — shared figure-data generators."""

import numpy as np
import pytest

from repro.sim.figures import fig12a_series, fig12b_series, model_mode_error

FAST = dict(duration_s=8.0, cell_size=4.0, n_reps=2)


class TestModelModeError:
    def test_finite_and_positive(self):
        err = model_mode_error(n_sensors=8, seed=0, **FAST)
        assert np.isfinite(err) and err > 0

    def test_reproducible(self):
        a = model_mode_error(n_sensors=8, seed=3, **FAST)
        b = model_mode_error(n_sensors=8, seed=3, **FAST)
        assert a == b

    def test_more_sensors_lower_error(self):
        sparse = model_mode_error(n_sensors=6, seed=1, **FAST)
        dense = model_mode_error(n_sensors=20, seed=1, **FAST)
        assert dense < sparse

    def test_validation(self):
        with pytest.raises(ValueError):
            model_mode_error(n_sensors=8, n_reps=0)


class TestSeries:
    def test_fig12a_shape(self):
        table = fig12a_series([0.5, 3.0], [6, 8], seed=0, **FAST)
        assert set(table) == {6, 8}
        assert all(len(v) == 2 for v in table.values())

    def test_fig12b_shape(self):
        table = fig12b_series([3, 9], [6, 8], seed=0, **FAST)
        assert set(table) == {3, 9}
        assert all(len(v) == 2 for v in table.values())

    def test_fig12b_k_direction(self):
        table = fig12b_series([3, 9], [10], seed=0, duration_s=15.0, cell_size=3.0, n_reps=4)
        assert table[9][0] <= table[3][0] + 0.05

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            fig12a_series([], [6])
        with pytest.raises(ValueError):
            fig12b_series([3], [])
