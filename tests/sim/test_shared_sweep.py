"""Tests for shared-memory sweeps (``parallel_sweep(share_maps=True)``).

The sweep contract extends to the zero-copy transport: identical records
whether workers attach shared maps, unpickle, or rebuild — and no
``/dev/shm`` segment survives the sweep, even when a worker dies.
"""

from __future__ import annotations

import os

import pytest

from repro.config import GridConfig, SimulationConfig
from repro.geometry.shm import SEGMENT_PREFIX, owned_segment_names
from repro.sim.parallel import parallel_sweep
from repro.sim.scenario import replication_scenarios

TINY = SimulationConfig(duration_s=6.0, grid=GridConfig(cell_size_m=4.0))

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a POSIX /dev/shm"
)


def _shm_entries() -> set[str]:
    return {f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX)}


def _campaign_points(n=3):
    # the campaign shape: same config at every point, seed_stride=0
    cfg = TINY.with_(n_sensors=6)
    return [(cfg, {"point": i}) for i in range(n)]


def _records_equal(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.tracker == rb.tracker
        assert ra.params == rb.params
        assert ra.mean_error == rb.mean_error
        assert ra.std_error == rb.std_error
        assert ra.per_rep_means == rb.per_rep_means


class TestSharedSweep:
    def test_bit_identical_to_pickled(self):
        kwargs = dict(n_reps=2, seed=5, seed_stride=0, n_workers=2)
        base = parallel_sweep(_campaign_points(), ["fttt"], share_maps=False, **kwargs)
        shared = parallel_sweep(
            _campaign_points(), ["fttt"], share_maps=True, chunksize=1, **kwargs
        )
        _records_equal(base, shared)

    def test_bit_identical_to_inline(self):
        inline = parallel_sweep(
            _campaign_points(), ["fttt"], n_reps=1, seed=2, seed_stride=0, n_workers=1
        )
        shared = parallel_sweep(
            _campaign_points(),
            ["fttt"],
            n_reps=1,
            seed=2,
            seed_stride=0,
            n_workers=2,
            share_maps=True,
        )
        _records_equal(inline, shared)

    def test_no_leaked_segments(self):
        before = _shm_entries()
        parallel_sweep(
            _campaign_points(),
            ["fttt"],
            n_reps=1,
            seed=0,
            seed_stride=0,
            n_workers=2,
            share_maps=True,
        )
        assert _shm_entries() <= before
        assert owned_segment_names() == []

    def test_share_maps_ignored_inline(self):
        # n_workers=1 must not even create segments
        before = _shm_entries()
        recs = parallel_sweep(
            _campaign_points(), ["fttt"], n_reps=1, seed=0, seed_stride=0,
            n_workers=1, share_maps=True,
        )
        assert len(recs) == 3
        assert _shm_entries() == before

    def test_cleanup_when_worker_raises(self):
        # an unknown tracker makes every task raise inside the pool
        before = _shm_entries()
        with pytest.raises(Exception):
            parallel_sweep(
                _campaign_points(),
                ["no-such-tracker"],
                n_reps=1,
                seed=0,
                seed_stride=0,
                n_workers=2,
                share_maps=True,
            )
        assert _shm_entries() <= before
        assert owned_segment_names() == []


class TestReplicationScenarios:
    def test_matches_replicate_worlds(self):
        # the prebuild must walk the exact worlds replicate_mean_error makes
        from repro.sim.experiments import replicate_mean_error

        cfg = TINY.with_(n_sensors=6)
        scenarios = replication_scenarios(cfg, n_reps=2, seed=11)
        assert len(scenarios) == 2
        recs = replicate_mean_error(cfg, ["fttt"], n_reps=2, seed=11)
        assert recs  # worlds built from the same seeds: smoke the protocol
        keys = [s.face_map_key() for s in scenarios]
        assert len(set(keys)) == len(keys)  # distinct deployments

    def test_face_map_key_matches_cache_key(self):
        from repro.geometry.cache import face_map_cache_key

        cfg = TINY.with_(n_sensors=6)
        (scenario,) = replication_scenarios(cfg, n_reps=1, seed=3)
        expected = face_map_cache_key(
            scenario.nodes,
            scenario.grid,
            scenario.uncertainty_c,
            sensing_range=scenario.config.sensing_range_m,
            split_components=scenario.config.grid.split_components,
            kind="uncertain",
        )
        assert scenario.face_map_key() == expected
