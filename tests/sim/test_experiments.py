"""Tests for repro.sim.experiments (kept small: 2 reps, short runs)."""

import numpy as np
import pytest

from repro.config import GridConfig, SimulationConfig
from repro.sim.experiments import (
    replicate_mean_error,
    sweep_basic_vs_extended,
    sweep_n_sensors,
    sweep_resolution,
    sweep_sampling_times,
)


@pytest.fixture
def tiny():
    return SimulationConfig(n_sensors=6, duration_s=6.0, grid=GridConfig(cell_size_m=4.0))


class TestReplicate:
    def test_records_per_tracker(self, tiny):
        recs = replicate_mean_error(tiny, ["fttt", "nearest"], n_reps=2, seed=0)
        assert {r.tracker for r in recs} == {"fttt", "nearest"}
        for r in recs:
            assert r.n_reps == 2
            assert len(r.per_rep_means) == 2
            assert np.isfinite(r.mean_error)
            assert r.std_error >= 0

    def test_reproducible(self, tiny):
        a = replicate_mean_error(tiny, ["fttt"], n_reps=2, seed=5)
        b = replicate_mean_error(tiny, ["fttt"], n_reps=2, seed=5)
        assert a[0].mean_error == b[0].mean_error

    def test_different_seeds_differ(self, tiny):
        a = replicate_mean_error(tiny, ["fttt"], n_reps=2, seed=5)
        b = replicate_mean_error(tiny, ["fttt"], n_reps=2, seed=6)
        assert a[0].mean_error != b[0].mean_error

    def test_params_attached(self, tiny):
        recs = replicate_mean_error(tiny, ["fttt"], n_reps=1, seed=0, params={"x": 3})
        assert recs[0].params == {"x": 3}
        assert recs[0].as_dict()["x"] == 3

    def test_rejects_zero_reps(self, tiny):
        with pytest.raises(ValueError):
            replicate_mean_error(tiny, ["fttt"], n_reps=0)


class TestSweeps:
    def test_sweep_n_sensors_structure(self, tiny):
        recs = sweep_n_sensors([5, 8], ["fttt"], base_config=tiny, n_reps=1, seed=0)
        assert len(recs) == 2
        assert [r.params["n_sensors"] for r in recs] == [5, 8]

    def test_sweep_resolution_structure(self, tiny):
        recs = sweep_resolution([1.0, 2.0], [6], base_config=tiny, n_reps=1, seed=0)
        assert len(recs) == 2
        assert all(r.tracker == "fttt" for r in recs)
        assert {r.params["resolution_dbm"] for r in recs} == {1.0, 2.0}

    def test_sweep_sampling_times_structure(self, tiny):
        recs = sweep_sampling_times([3, 5], [6], base_config=tiny, n_reps=1, seed=0)
        assert {r.params["sampling_times"] for r in recs} == {3, 5}

    def test_sweep_basic_vs_extended_structure(self, tiny):
        recs = sweep_basic_vs_extended([6], base_config=tiny, n_reps=1, seed=0)
        assert {r.tracker for r in recs} == {"fttt", "fttt-extended"}
