"""Tests for repro.faultlab — campaign driver, strawmen, artifact output.

Includes the environment-hygiene regression: a fault model that blows up
mid-campaign must leave ``REPRO_OBS`` / ``REPRO_FACE_CACHE_DIR`` and the
active tracer exactly as they were (the sweep's scoped-environment
guarantee extends to failed campaigns).
"""

import csv
import dataclasses
import json
import os

import numpy as np
import pytest

from repro.config import GridConfig, SimulationConfig
from repro.faultlab.campaign import (
    DEFAULT_INTENSITIES,
    DEFAULT_TRACKERS,
    FAULT_FAMILIES,
    VALUE_FAULT_FAMILIES,
    CampaignResult,
    build_fault,
    campaign_config,
    run_campaign,
)
from repro.faultlab.strawmen import ZeroFillFTTT
from repro.network.faults import (
    ByzantineRSS,
    CalibrationDrift,
    IndependentDropout,
    RegionalOutage,
    StuckReading,
)
from repro.obs import tracing as obs_tracing
from repro.sim.parallel import parallel_sweep


def tiny_config() -> SimulationConfig:
    return SimulationConfig(
        n_sensors=6,
        duration_s=4.0,
        sensing_range_m=150.0,
        grid=GridConfig(cell_size_m=5.0),
    )


class TestBuildFault:
    @pytest.mark.parametrize(
        "family, kind",
        [
            ("dropout", IndependentDropout),
            ("byzantine", ByzantineRSS),
            ("stuck", StuckReading),
            ("drift", CalibrationDrift),
            ("regional", RegionalOutage),
        ],
    )
    def test_families_build_their_model(self, family, kind):
        assert isinstance(build_fault(family, 0.2, tiny_config()), kind)

    def test_families_registry_is_complete(self):
        assert set(VALUE_FAULT_FAMILIES) <= set(FAULT_FAMILIES)

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown fault family"):
            build_fault("gremlins", 0.1, tiny_config())

    def test_intensity_out_of_range(self):
        with pytest.raises(ValueError, match="intensity"):
            build_fault("dropout", 1.5, tiny_config())

    def test_campaign_config_shapes(self):
        quick, full = campaign_config(quick=True), campaign_config()
        assert quick.duration_s < full.duration_s
        assert quick.sensing_range_m == full.sensing_range_m == 150.0


class TestRunCampaign:
    def test_small_campaign_records(self):
        result = run_campaign(
            ["dropout"],
            (0.0, 0.5),
            ("fttt",),
            config=tiny_config(),
            n_reps=1,
            seed=0,
            n_workers=1,
        )
        assert isinstance(result, CampaignResult)
        assert len(result.records) == 2  # families x intensities x trackers
        for r in result.records:
            assert r.params["fault"] == "dropout"
            assert np.isfinite(r.mean_error)
            assert np.isfinite(r.p95_error)
            assert 0.0 <= r.lost_track_rate <= 1.0
        assert result.csv_path is None and result.metrics_path is None

    def test_curve_sorted_by_intensity(self):
        result = run_campaign(
            ["dropout"],
            (0.5, 0.0),  # deliberately unsorted
            ("fttt",),
            config=tiny_config(),
            n_reps=1,
            n_workers=1,
        )
        curve = result.curve("dropout", "fttt")
        assert [r.params["intensity"] for r in curve] == [0.0, 0.5]
        assert result.curve("dropout", "no-such-tracker") == []

    def test_zero_intensity_anchors_match_across_families(self):
        """Intensity 0 disables every family: matched worlds -> same errors."""

        def anchor(family):
            result = run_campaign(
                [family], (0.0,), ("fttt",), config=tiny_config(), n_reps=1, n_workers=1
            )
            return result.records[0]

        a, b = anchor("dropout"), anchor("byzantine")
        assert a.mean_error == b.mean_error
        assert a.per_rep_means == b.per_rep_means

    def test_artifacts_written(self, tmp_path):
        result = run_campaign(
            ["byzantine"],
            (0.0, 0.5),
            ("fttt", "fttt-zero"),
            config=tiny_config(),
            n_reps=1,
            n_workers=1,
            out_dir=tmp_path,
        )
        assert result.csv_path == tmp_path / "robustness.csv"
        with open(result.csv_path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(result.records) == 4
        assert {"mean_error", "p95_error", "lost_track_rate"} <= set(rows[0])
        metrics = json.loads(result.metrics_path.read_text())
        assert metrics["sweep"]["points"] == 2
        assert "faults.value_rounds" in metrics["metrics"]
        assert (tmp_path / "trace.jsonl").exists()

    def test_empty_arguments_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            run_campaign([], DEFAULT_INTENSITIES, DEFAULT_TRACKERS, config=tiny_config())
        with pytest.raises(ValueError, match="at least one"):
            run_campaign(["dropout"], (), DEFAULT_TRACKERS, config=tiny_config())

    def test_per_point_faults_length_mismatch(self):
        cfg = tiny_config()
        with pytest.raises(ValueError, match="one entry per point"):
            parallel_sweep(
                [(cfg, {"a": 1}), (cfg, {"a": 2})],
                ["fttt"],
                n_reps=1,
                faults=[IndependentDropout(p=0.1)],  # 1 model for 2 points
            )


@dataclasses.dataclass(frozen=True)
class _ExplodingFaults:
    """Detonates on the first mask request — the mid-campaign failure case."""

    def drop_mask(self, n, round_index, rng):
        raise RuntimeError("injected campaign failure")


class TestEnvironmentHygiene:
    def test_failed_campaign_restores_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        monkeypatch.delenv("REPRO_FACE_CACHE_DIR", raising=False)
        monkeypatch.setitem(
            FAULT_FAMILIES, "exploding", lambda intensity, config: _ExplodingFaults()
        )
        tracer_before = obs_tracing._tracer
        with pytest.raises(RuntimeError, match="injected campaign failure"):
            run_campaign(
                ["exploding"],
                (0.5,),
                ("fttt",),
                config=tiny_config(),
                n_reps=1,
                n_workers=1,
                out_dir=tmp_path / "obs",
                cache_dir=tmp_path / "cache",
            )
        assert os.environ.get("REPRO_OBS") == "0"
        assert "REPRO_FACE_CACHE_DIR" not in os.environ
        assert obs_tracing._tracer is tracer_before

    def test_successful_campaign_restores_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FACE_CACHE_DIR", "/tmp/sentinel-before")
        monkeypatch.delenv("REPRO_OBS", raising=False)
        run_campaign(
            ["dropout"],
            (0.0,),
            ("fttt",),
            config=tiny_config(),
            n_reps=1,
            n_workers=1,
            out_dir=tmp_path / "obs",
            cache_dir=tmp_path / "cache",
        )
        assert os.environ.get("REPRO_FACE_CACHE_DIR") == "/tmp/sentinel-before"
        assert "REPRO_OBS" not in os.environ


class TestStrawmen:
    def test_zero_fill_replaces_nan(self, face_map):
        tracker = ZeroFillFTTT(face_map)
        rss = np.array([[-60.0, np.nan, -70.0, np.nan]])
        vector = tracker.build_vector(rss)
        assert not np.isnan(vector).any()

    def test_zero_fill_batch_matches_single(self, face_map, rng):
        tracker = ZeroFillFTTT(face_map)
        stack = rng.uniform(-90.0, -40.0, size=(3, 2, 4))
        stack[0, :, 1] = np.nan
        vectors = tracker.build_vectors(stack)
        for t in range(3):
            assert np.array_equal(vectors[t], tracker.build_vector(stack[t]))
