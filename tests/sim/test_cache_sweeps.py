"""Sweeps are bit-identical with the face-map cache on, off, and on disk.

The cache is a pure performance layer: a sweep must emit exactly the same
records (and therefore exactly the same CSV bytes) whether every face map
is rebuilt from scratch, served from the in-memory LRU, or loaded from a
shared on-disk store by pool workers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GridConfig, SimulationConfig
from repro.geometry.cache import configure_face_map_cache, default_face_map_cache
from repro.sim.io import records_to_csv
from repro.sim.parallel import parallel_sweep

TINY = SimulationConfig(duration_s=6.0, grid=GridConfig(cell_size_m=4.0))

# spawns real worker pools; skippable in the quick loop via -m "not slow"
pytestmark = pytest.mark.slow


@pytest.fixture(autouse=True)
def _fresh_cache(monkeypatch):
    monkeypatch.delenv("REPRO_FACE_CACHE", raising=False)
    monkeypatch.delenv("REPRO_FACE_CACHE_DIR", raising=False)
    configure_face_map_cache(maxsize=64, disk_dir=None, enabled=None)
    default_face_map_cache().clear()
    yield
    configure_face_map_cache(maxsize=64, disk_dir=None, enabled=None)
    default_face_map_cache().clear()


def _points():
    return [(TINY.with_(n_sensors=n), {"n_sensors": n}) for n in (6, 9)]


def _run(**kwargs):
    return parallel_sweep(_points(), ["fttt", "nearest"], n_reps=2, seed=5, **kwargs)


def _assert_records_equal(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.tracker == y.tracker
        assert x.params == y.params
        assert x.mean_error == y.mean_error
        assert x.std_error == y.std_error
        assert x.mean_of_std == y.mean_of_std
        assert x.per_rep_means == y.per_rep_means


class TestCacheEquivalence:
    def test_cache_on_vs_off_identical_records_and_csv(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FACE_CACHE", "0")
        configure_face_map_cache(enabled=None)
        off = _run(n_workers=1)
        monkeypatch.delenv("REPRO_FACE_CACHE")
        configure_face_map_cache(enabled=None)
        on = _run(n_workers=1)
        _assert_records_equal(off, on)
        path_off = records_to_csv(off, tmp_path / "off.csv")
        path_on = records_to_csv(on, tmp_path / "on.csv")
        assert path_off.read_bytes() == path_on.read_bytes()

    def test_disk_cache_dir_identical_and_populated(self, tmp_path):
        plain = _run(n_workers=1)
        store = tmp_path / "facemaps"
        cached = _run(n_workers=1, cache_dir=store)
        _assert_records_equal(plain, cached)
        assert list(store.glob("facemap-*.npz"))  # workers shared a store
        # a second run over a warm store still agrees exactly
        rerun = _run(n_workers=1, cache_dir=store)
        _assert_records_equal(plain, rerun)

    def test_pool_workers_with_disk_cache_match_inline(self, tmp_path):
        inline = _run(n_workers=1)
        pooled = _run(n_workers=2, cache_dir=tmp_path / "store")
        _assert_records_equal(inline, pooled)

    def test_scenario_estimates_identical_cache_on_off(self, monkeypatch):
        from repro.network.faults import IndependentDropout
        from repro.sim.runner import generate_batches
        from repro.sim.scenario import make_scenario

        def trace(cfg):
            scenario = make_scenario(cfg, seed=2)
            batches = generate_batches(
                scenario, 9, faults=IndependentDropout(p=0.2), n_rounds=10
            )
            tracker = scenario.make_tracker("fttt-exhaustive")
            return tracker.track(batches)

        monkeypatch.setenv("REPRO_FACE_CACHE", "0")
        configure_face_map_cache(enabled=None)
        cold = trace(TINY.with_(n_sensors=8))
        monkeypatch.delenv("REPRO_FACE_CACHE")
        configure_face_map_cache(enabled=None)
        warm = trace(TINY.with_(n_sensors=8))  # builds + caches
        warm2 = trace(TINY.with_(n_sensors=8))  # pure cache hit
        assert default_face_map_cache().stats()["hits"] >= 1
        for res in (warm, warm2):
            assert np.array_equal(cold.positions, res.positions)
            for x, y in zip(cold.estimates, res.estimates):
                assert np.array_equal(x.face_ids, y.face_ids)
                assert x.sq_distance == y.sq_distance
