"""Tests for repro.sim.scenario."""

import numpy as np
import pytest

from repro.config import GridConfig, SimulationConfig
from repro.sim.scenario import TRACKER_NAMES, make_scenario


@pytest.fixture
def cfg():
    return SimulationConfig(n_sensors=6, duration_s=10.0, grid=GridConfig(cell_size_m=4.0))


class TestMakeScenario:
    def test_default_scenario(self, cfg):
        s = make_scenario(cfg, seed=1)
        assert s.n_sensors == 6
        assert s.nodes.shape == (6, 2)
        assert s.uncertainty_c > 1.0

    def test_reproducible(self, cfg):
        a = make_scenario(cfg, seed=9)
        b = make_scenario(cfg, seed=9)
        assert np.array_equal(a.nodes, b.nodes)
        t = np.linspace(0, 10, 20)
        assert np.array_equal(a.mobility.position(t), b.mobility.position(t))

    def test_deployments(self, cfg):
        for dep in ("random", "grid", "cross"):
            s = make_scenario(cfg, deployment=dep, seed=2)
            assert s.nodes.shape[0] >= 5

    def test_unknown_deployment(self, cfg):
        with pytest.raises(ValueError, match="deployment"):
            make_scenario(cfg, deployment="ring")

    def test_explicit_nodes_override(self, cfg, four_nodes):
        s = make_scenario(cfg, nodes=four_nodes)
        assert np.array_equal(s.nodes, four_nodes)

    def test_c_modes(self, cfg):
        cal = make_scenario(cfg, seed=1, c_mode="calibrated")
        pap = make_scenario(cfg, seed=1, c_mode="paper")
        assert cal.uncertainty_c > pap.uncertainty_c  # k-sample band is wider
        with pytest.raises(ValueError, match="c_mode"):
            make_scenario(cfg, seed=1, c_mode="bogus")

    def test_face_map_cached(self, cfg):
        s = make_scenario(cfg, seed=3)
        assert s.face_map is s.face_map
        assert s.certain_map is s.certain_map

    def test_face_maps_differ(self, cfg):
        s = make_scenario(cfg, seed=3)
        assert s.face_map.c > 1.0
        assert s.certain_map.c == 1.0


class TestMakeTracker:
    def test_all_names_construct(self, cfg):
        s = make_scenario(cfg, seed=4)
        for name in TRACKER_NAMES:
            tracker = s.make_tracker(name)
            assert hasattr(tracker, "track")
            assert hasattr(tracker, "reset")

    def test_unknown_name(self, cfg):
        s = make_scenario(cfg, seed=4)
        with pytest.raises(ValueError, match="unknown tracker"):
            s.make_tracker("grid-of-oracles")

    def test_fttt_gets_resolution_deadband(self, cfg):
        s = make_scenario(cfg, seed=4)
        tracker = s.make_tracker("fttt")
        assert tracker.comparator_eps == cfg.resolution_dbm

    def test_extended_gets_soft_signatures(self, cfg):
        s = make_scenario(cfg, seed=4)
        tracker = s.make_tracker("fttt-extended")
        assert tracker.soft_signatures
        assert s.face_map.soft_signatures is not None

    def test_pm_inherits_vmax(self, cfg):
        s = make_scenario(cfg, seed=4)
        assert s.make_tracker("pm").vmax_mps == cfg.target_speed_max_mps
