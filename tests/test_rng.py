"""Tests for repro.rng."""

import numpy as np
import pytest

from repro.rng import (
    check_rngs_independent,
    derive_rng,
    ensure_rng,
    rng_stream,
    spawn_rngs,
)


class TestEnsureRng:
    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_int_seed_reproducible(self):
        a = ensure_rng(42).integers(0, 1000, 5)
        b = ensure_rng(42).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(ss), np.random.Generator)


class TestSpawn:
    def test_count(self):
        assert len(spawn_rngs(0, 7)) == 7

    def test_independence(self):
        rngs = spawn_rngs(0, 10)
        assert check_rngs_independent(rngs)

    def test_reproducible(self):
        a = [g.integers(0, 1000) for g in spawn_rngs(3, 4)]
        b = [g.integers(0, 1000) for g in spawn_rngs(3, 4)]
        assert a == b

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_is_empty(self):
        assert spawn_rngs(0, 0) == []


class TestStream:
    def test_unbounded_and_distinct(self):
        stream = rng_stream(5)
        rngs = [next(stream) for _ in range(5)]
        assert check_rngs_independent(rngs)

    def test_reproducible(self):
        a = next(rng_stream(9)).integers(0, 10**6)
        b = next(rng_stream(9)).integers(0, 10**6)
        assert a == b


class TestDerive:
    def test_same_keys_same_stream(self):
        parent = np.random.default_rng(0)
        a = derive_rng(parent, "noise", 3).integers(0, 10**6)
        parent2 = np.random.default_rng(0)
        b = derive_rng(parent2, "noise", 3).integers(0, 10**6)
        assert a == b

    def test_different_keys_differ(self):
        parent = np.random.default_rng(0)
        a = derive_rng(parent, "noise").integers(0, 10**6, 4)
        parent2 = np.random.default_rng(0)
        b = derive_rng(parent2, "faults").integers(0, 10**6, 4)
        assert not np.array_equal(a, b)
