"""Tests for repro.obs.tracing — JSONL tracer, spans, env wiring."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import tracing
from repro.obs.tracing import Tracer, set_tracer, span, trace_event, tracer


@pytest.fixture(autouse=True)
def _clean_tracer(monkeypatch):
    monkeypatch.delenv("REPRO_OBS_TRACE", raising=False)
    set_tracer(None)
    yield
    set_tracer(None)
    tracing._env_tracer_checked = False


def test_memory_tracer_collects_events():
    t = Tracer()
    t.event("round", face=3, sq_distance=1.5)
    assert t.events == [{"ev": "round", "face": 3, "sq_distance": 1.5}]


def test_file_tracer_writes_jsonl(tmp_path):
    path = tmp_path / "sub" / "trace.jsonl"
    t = Tracer(path)
    t.event("a", x=1)
    t.event("b", y=[1, 2])
    t.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines == [{"ev": "a", "x": 1}, {"ev": "b", "y": [1, 2]}]


def test_numpy_fields_serialize(tmp_path):
    path = tmp_path / "trace.jsonl"
    t = Tracer(path)
    t.event("np", face=np.int64(7), pos=np.array([1.0, 2.0]))
    t.close()
    rec = json.loads(path.read_text())
    assert rec == {"ev": "np", "face": 7, "pos": [1.0, 2.0]}


def test_trace_event_noop_without_tracer():
    trace_event("ignored", x=1)  # must not raise
    assert tracer() is None


def test_trace_event_routes_to_active_tracer():
    t = Tracer()
    set_tracer(t)
    trace_event("hello", n=2)
    assert t.events == [{"ev": "hello", "n": 2}]


def test_span_emits_duration():
    t = Tracer()
    set_tracer(t)
    with span("work", tag="x"):
        pass
    (ev,) = t.events
    assert ev["ev"] == "work" and ev["tag"] == "x"
    assert ev["dur_s"] >= 0.0


def test_span_noop_without_tracer():
    with span("work"):
        pass  # must not raise


def test_env_var_creates_tracer_lazily(tmp_path, monkeypatch):
    path = tmp_path / "env_trace.jsonl"
    monkeypatch.setenv("REPRO_OBS_TRACE", str(path))
    tracing._env_tracer_checked = False
    trace_event("from_env", k=1)
    set_tracer(None)  # closes + flushes
    assert json.loads(path.read_text()) == {"ev": "from_env", "k": 1}


def test_set_tracer_closes_previous(tmp_path):
    first = Tracer(tmp_path / "first.jsonl")
    set_tracer(first)
    second = Tracer()
    set_tracer(second)
    assert first._fh is None  # closed
    assert tracer() is second
