"""Acceptance tests for the instrumented hot paths (ISSUE acceptance criteria).

A small sweep / tracking run with observability on must surface, in
``metrics.json`` and ``trace.jsonl``:

* face-map cache hit/miss counts,
* hill-climb step histograms (Algorithm 2 work),
* per-round masked-pair counts (Eq. 7 ``*`` components),

and the disabled path must record nothing at all.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.obs as obs
from repro.config import GridConfig, SimulationConfig
from repro.geometry.cache import configure_face_map_cache, default_face_map_cache
from repro.network.faults import IndependentDropout
from repro.sim.parallel import parallel_sweep
from repro.sim.runner import run_all_trackers
from repro.sim.scenario import make_scenario

TINY = SimulationConfig(duration_s=6.0, grid=GridConfig(cell_size_m=4.0))


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.delenv("REPRO_OBS_TRACE", raising=False)
    monkeypatch.delenv("REPRO_FACE_CACHE", raising=False)
    monkeypatch.delenv("REPRO_FACE_CACHE_DIR", raising=False)
    configure_face_map_cache(maxsize=64, disk_dir=None, enabled=None)
    default_face_map_cache().clear()
    obs.set_enabled(None)
    obs.set_tracer(None)
    obs.reset()
    yield
    configure_face_map_cache(maxsize=64, disk_dir=None, enabled=None)
    default_face_map_cache().clear()
    obs.set_enabled(None)
    obs.set_tracer(None)
    obs.reset()


def _run_tracking(trackers=("fttt",), dropout=0.0, n_rounds=8, seed=3):
    scenario = make_scenario(TINY.with_(n_sensors=8), seed=seed)
    faults = IndependentDropout(p=dropout) if dropout else None
    return run_all_trackers(scenario, list(trackers), rng=seed, faults=faults, n_rounds=n_rounds)


class TestDisabledPath:
    def test_disabled_records_nothing(self):
        _run_tracking(trackers=("fttt", "fttt-exhaustive", "pm", "direct-mle"), dropout=0.3)
        assert obs.snapshot() == {}

    def test_disabled_emits_no_trace_events(self):
        t = obs.Tracer()
        obs.set_tracer(t)
        # tracer installed but metrics disabled: per-round events are
        # gated on obs.enabled() in the tracker, so nothing is emitted
        _run_tracking()
        assert [e for e in t.events if e["ev"] == "round"] == []


class TestEnabledTracking:
    def test_hill_climb_step_histogram_recorded(self):
        with obs.observe() as reg:
            _run_tracking(trackers=("fttt",), n_rounds=8)
        snap = reg.snapshot()
        steps = snap["core.heuristic.steps"]
        assert steps["type"] == "histogram"
        # round 1 is Algorithm 2's Initialization() (exhaustive scan);
        # every later round hill-climbs and records a step count
        assert snap["core.heuristic.init_scans"]["value"] >= 1
        assert steps["count"] >= 7
        assert snap["core.heuristic.rounds"]["value"] >= 7
        assert snap["tracker.rounds"]["value"] == 8

    def test_masked_pair_counts_recorded_under_faults(self):
        with obs.observe() as reg:
            _run_tracking(trackers=("fttt",), dropout=0.4, n_rounds=8)
        snap = reg.snapshot()
        masked = snap["tracker.masked_pairs"]
        assert masked["count"] == 8
        assert masked["max"] > 0  # 40% dropout must mask some pairs
        dropped = snap["faults.dropped_sensors"]
        assert dropped["count"] == 8 and dropped["max"] > 0

    def test_dropout_increases_masked_pairs(self):
        # masked pairs exist even without injected faults (out-of-range
        # sensors are silent too); dropout must push the average up
        with obs.observe() as reg:
            _run_tracking(trackers=("fttt",), dropout=0.0, n_rounds=6)
            baseline = reg.snapshot()["tracker.masked_pairs"]
        with obs.observe() as reg:
            _run_tracking(trackers=("fttt",), dropout=0.6, n_rounds=6)
            faulty = reg.snapshot()["tracker.masked_pairs"]
        assert baseline["count"] == faulty["count"] == 6
        assert faulty["mean"] > baseline["mean"]

    def test_cache_hits_and_misses_recorded(self):
        with obs.observe() as reg:
            scenario = make_scenario(TINY.with_(n_sensors=8), seed=3)
            scenario.face_map  # build → miss
            get = default_face_map_cache().get_or_build
            # identical world again → hit
            make_scenario(TINY.with_(n_sensors=8), seed=3).face_map
            assert get is not None
        snap = reg.snapshot()
        assert snap["geometry.cache.misses"]["value"] >= 1
        assert snap["geometry.cache.hits"]["value"] >= 1

    def test_exhaustive_matcher_rounds_recorded(self):
        with obs.observe() as reg:
            _run_tracking(trackers=("fttt-exhaustive",), n_rounds=6)
        snap = reg.snapshot()
        assert snap["geometry.match.rounds"]["value"] >= 6
        assert snap["tracker.rounds"]["value"] == 6

    def test_round_trace_events_carry_paper_quantities(self):
        with obs.observe(trace_path=None) as _:
            t = obs.Tracer()
            obs.set_tracer(t)
            _run_tracking(trackers=("fttt",), dropout=0.4, n_rounds=5)
        rounds = [e for e in t.events if e["ev"] == "round"]
        assert len(rounds) == 5
        for ev in rounds:
            assert {"t", "mode", "face", "n_ties", "sq_distance", "masked_pairs", "n_reporting"} <= set(ev)
        assert any(ev["masked_pairs"] > 0 for ev in rounds)


@pytest.mark.slow
class TestSweepArtifacts:
    """parallel_sweep(obs_dir=...) writes metrics.json + trace.jsonl."""

    def _sweep(self, tmp_path, n_workers):
        out = tmp_path / f"obs_{n_workers}"
        # the duplicated point + seed_stride=0 revisits an identical
        # deployment, so the in-memory face-map cache takes real hits
        points = [
            (TINY.with_(n_sensors=6), {"run": 0}),
            (TINY.with_(n_sensors=6), {"run": 1}),
        ]
        records = parallel_sweep(
            points,
            ["fttt"],
            n_reps=2,
            seed=5,
            seed_stride=0,
            n_workers=n_workers,
            faults=IndependentDropout(p=0.3),
            obs_dir=out,
        )
        return out, records

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_metrics_json_has_acceptance_metrics(self, tmp_path, n_workers):
        out, records = self._sweep(tmp_path, n_workers)
        payload = json.loads((out / "metrics.json").read_text())
        metrics = payload["metrics"]
        # cache hit/miss counts
        assert "geometry.cache.misses" in metrics
        assert metrics["geometry.cache.misses"]["value"] >= 1
        assert "geometry.cache.hits" in metrics
        if n_workers == 1:
            # inline: point 2 reuses point 1's face maps from the LRU
            assert metrics["geometry.cache.hits"]["value"] >= 1
        # hill-climb step histogram
        steps = metrics["core.heuristic.steps"]
        assert steps["type"] == "histogram" and steps["count"] > 0
        assert steps["values"]  # exact per-step-count distribution
        # per-round masked-pair counts
        masked = metrics["tracker.masked_pairs"]
        assert masked["count"] == metrics["tracker.rounds"]["value"]
        assert masked["max"] > 0
        # sweep bookkeeping
        assert metrics["sweep.points"]["value"] == 2
        assert metrics["sweep.records"]["value"] == len(records)
        assert payload["sweep"]["workers"] == n_workers

    def test_trace_jsonl_written_and_valid(self, tmp_path):
        out, _ = self._sweep(tmp_path, 1)
        lines = [json.loads(line) for line in (out / "trace.jsonl").read_text().splitlines()]
        assert lines, "trace.jsonl must not be empty"
        names = {e["ev"] for e in lines}
        assert "sweep" in names
        # inline (n_workers=1) runs emit the per-round events too
        rounds = [e for e in lines if e["ev"] == "round"]
        assert rounds and all("masked_pairs" in e for e in rounds)

    def test_obs_sweep_does_not_perturb_results(self, tmp_path):
        points = [(TINY.with_(n_sensors=6), {"n_sensors": 6})]
        plain = parallel_sweep(points, ["fttt"], n_reps=2, seed=5, n_workers=1)
        with_obs = parallel_sweep(
            points, ["fttt"], n_reps=2, seed=5, n_workers=1, obs_dir=tmp_path / "o"
        )
        for a, b in zip(plain, with_obs):
            assert a.mean_error == b.mean_error
            assert a.per_rep_means == b.per_rep_means

    def test_registry_holds_merged_metrics_after_sweep(self, tmp_path):
        self._sweep(tmp_path, 1)
        snap = obs.snapshot()
        assert snap["tracker.rounds"]["value"] > 0
        # but the enable flag did not leak
        assert not obs.enabled()


class TestFormatMetrics:
    def test_format_metrics_renders_histograms(self):
        with obs.observe() as reg:
            _run_tracking(trackers=("fttt",), dropout=0.3, n_rounds=5)
            text = obs.format_metrics(reg.snapshot())
        assert "core.heuristic.steps" in text
        assert "tracker.masked_pairs" in text
        assert "geometry.cache.misses" in text


def test_masked_pair_count_matches_vector_nans():
    """The masked_pairs metric equals the NaN count of the sampling vector."""
    from repro.core.vectors import sampling_vector
    from repro.geometry.primitives import enumerate_pairs

    rng = np.random.default_rng(0)
    rss = rng.normal(-60, 5, size=(3, 6))
    silent = np.array([False, False, True, True, False, False])
    rss[:, silent] = np.nan
    i_idx, j_idx = enumerate_pairs(6)
    vec = sampling_vector(rss, (i_idx, j_idx))
    # pairs with both endpoints silent are starred (NaN) per Eq. 6
    expected = int(np.sum(silent[i_idx] & silent[j_idx]))
    assert int(np.isnan(vec).sum()) == expected
