"""Tests for repro.obs.metrics — registry semantics, snapshots, merge."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    set_enabled,
)


@pytest.fixture(autouse=True)
def _env_control(monkeypatch):
    """Default state: env-driven, REPRO_OBS unset."""
    monkeypatch.delenv("REPRO_OBS", raising=False)
    set_enabled(None)
    yield
    set_enabled(None)


class TestGating:
    def test_disabled_by_default(self):
        assert not enabled()

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        assert enabled()
        monkeypatch.setenv("REPRO_OBS", "0")
        assert not enabled()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        set_enabled(True)
        assert enabled()
        set_enabled(False)
        monkeypatch.setenv("REPRO_OBS", "1")
        assert not enabled()
        set_enabled(None)
        assert enabled()


class TestCounterGauge:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.as_dict() == {"type": "counter", "value": 5}

    def test_gauge(self):
        g = Gauge()
        assert g.as_dict()["value"] is None
        g.set(3.5)
        g.set(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_integral_values_counted_exactly(self):
        h = Histogram()
        for v in (3, 1, 3, 3, 2):
            h.observe(v)
        assert h.count == 5
        assert h.values == {3: 3, 1: 1, 2: 1}
        assert h.min == 1 and h.max == 3
        assert h.mean == pytest.approx(12 / 5)
        assert h.overflow == 0

    def test_non_integral_goes_to_overflow(self):
        h = Histogram()
        h.observe(0.25)
        assert h.count == 1 and h.values == {} and h.overflow == 1
        assert h.as_dict()["mean"] == 0.25

    def test_distinct_value_cap(self):
        from repro.obs.metrics import _HISTOGRAM_MAX_DISTINCT

        h = Histogram()
        for v in range(_HISTOGRAM_MAX_DISTINCT + 10):
            h.observe(v)
        assert len(h.values) == _HISTOGRAM_MAX_DISTINCT
        assert h.overflow == 10
        assert h.count == _HISTOGRAM_MAX_DISTINCT + 10

    def test_empty_histogram_snapshot(self):
        d = Histogram().as_dict()
        assert d["count"] == 0 and d["min"] is None and d["mean"] is None


class TestRegistry:
    def test_get_or_create_and_type_guard(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        assert reg.counter("a") is c
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_sorted_and_jsonable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.histogram("a").observe(2)
        snap = reg.snapshot()
        assert list(snap) == ["a", "z"]
        json.dumps(snap)  # must not raise

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert len(reg) == 0

    def test_merge_counters_histograms_gauges(self):
        child = MetricsRegistry()
        child.counter("c").inc(3)
        child.gauge("g").set(7)
        child.histogram("h").observe(2)
        child.histogram("h").observe(2)
        child.histogram("h").observe(0.5)

        parent = MetricsRegistry()
        parent.counter("c").inc(1)
        parent.histogram("h").observe(4)
        parent.merge(child.snapshot())

        assert parent.counter("c").value == 4
        assert parent.gauge("g").value == 7
        h = parent.histogram("h")
        assert h.count == 4
        assert h.values == {4: 1, 2: 2}
        assert h.overflow == 1
        assert h.min == 0.5 and h.max == 4

    def test_merge_is_associative_enough_for_workers(self):
        """Merging N worker snapshots in any order yields the same totals."""
        snaps = []
        for k in range(3):
            reg = MetricsRegistry()
            reg.counter("rounds").inc(k + 1)
            reg.histogram("steps").observe(k)
            snaps.append(reg.snapshot())
        a = MetricsRegistry()
        for s in snaps:
            a.merge(s)
        b = MetricsRegistry()
        for s in reversed(snaps):
            b.merge(s)
        assert a.snapshot() == b.snapshot()

    def test_merge_unknown_type_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.merge({"x": {"type": "exotic"}})
