"""Tests for repro.mobility.waypoint — random waypoint model."""

import numpy as np
import pytest

from repro.mobility.waypoint import RandomWaypoint


class TestRandomWaypoint:
    def test_positions_inside_field(self):
        m = RandomWaypoint(field_size=100.0, duration_s=60.0, seed=1)
        t = np.linspace(0, 60, 500)
        pos = m.position(t)
        assert pos.min() >= 0 and pos.max() <= 100

    def test_reproducible(self):
        a = RandomWaypoint(seed=5).position(np.linspace(0, 60, 50))
        b = RandomWaypoint(seed=5).position(np.linspace(0, 60, 50))
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomWaypoint(seed=5).position(np.linspace(0, 60, 50))
        b = RandomWaypoint(seed=6).position(np.linspace(0, 60, 50))
        assert not np.allclose(a, b)

    def test_speed_within_range(self):
        m = RandomWaypoint(speed_range=(1.0, 5.0), duration_s=120.0, seed=2)
        t = np.linspace(0.1, 119.0, 2000)
        v = m.speed(t)
        assert v.min() >= 1.0 - 1e-9
        assert v.max() <= 5.0 + 1e-9

    def test_continuous_trajectory(self):
        m = RandomWaypoint(seed=3, duration_s=60.0)
        t = np.linspace(0, 60, 6000)
        pos = m.position(t)
        step = np.hypot(*np.diff(pos, axis=0).T)
        # max speed 5 m/s, dt = 0.01 s -> no step above ~5 cm
        assert step.max() < 0.06

    def test_clamps_beyond_duration(self):
        m = RandomWaypoint(seed=4, duration_s=30.0)
        end = m.position(np.array([1e6]))
        near_end = m.position(np.array([m._times[-1]]))
        assert np.allclose(end, near_end)

    def test_margin_respected(self):
        m = RandomWaypoint(field_size=100.0, margin=20.0, seed=7, duration_s=200.0)
        pos = m.position(np.linspace(0, 200, 1000))
        assert pos.min() >= 20.0 - 1e-9
        assert pos.max() <= 80.0 + 1e-9

    def test_pause_keeps_position(self):
        m = RandomWaypoint(seed=8, pause_s=2.0, duration_s=60.0)
        # find a pause interval: consecutive identical waypoints
        times, pts = m._times, m._points
        pauses = [i for i in range(len(pts) - 1) if np.allclose(pts[i], pts[i + 1])]
        assert pauses, "pause segments should exist"
        i = pauses[0]
        mid = (times[i] + times[i + 1]) / 2
        assert np.allclose(m.position(np.array([mid]))[0], pts[i])

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypoint(speed_range=(0.0, 5.0))
        with pytest.raises(ValueError):
            RandomWaypoint(speed_range=(5.0, 1.0))
        with pytest.raises(ValueError):
            RandomWaypoint(duration_s=0.0)
        with pytest.raises(ValueError):
            RandomWaypoint(pause_s=-1.0)
        with pytest.raises(ValueError):
            RandomWaypoint(field_size=100.0, margin=60.0)

    def test_waypoints_copy(self):
        m = RandomWaypoint(seed=1)
        w = m.waypoints
        w[:] = 0
        assert not np.allclose(m.waypoints, 0)
