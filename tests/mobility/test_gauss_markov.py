"""Tests for repro.mobility.gauss_markov."""

import numpy as np
import pytest

from repro.mobility.base import MobilityModel
from repro.mobility.gauss_markov import GaussMarkov


class TestGaussMarkov:
    def test_stays_in_field(self):
        m = GaussMarkov(field_size=100.0, duration_s=120.0, seed=1)
        pos = m.position(np.linspace(0, 120, 2000))
        assert pos.min() >= 0 and pos.max() <= 100

    def test_reproducible(self):
        t = np.linspace(0, 30, 100)
        a = GaussMarkov(seed=3, duration_s=30.0).position(t)
        b = GaussMarkov(seed=3, duration_s=30.0).position(t)
        assert np.array_equal(a, b)

    def test_continuous(self):
        m = GaussMarkov(seed=4, duration_s=30.0, mean_speed=3.0)
        t = np.linspace(0, 30, 3000)
        step = np.hypot(*np.diff(m.position(t), axis=0).T)
        assert step.max() < 0.3  # bounded step at 10 ms sampling

    def test_mean_speed_tracked(self):
        m = GaussMarkov(seed=5, duration_s=300.0, mean_speed=3.0, speed_sigma=0.3)
        v = m.speed(np.linspace(1, 299, 2000))
        assert v.mean() == pytest.approx(3.0, rel=0.25)

    def test_smoother_than_low_alpha(self):
        """High alpha = momentum: heading changes slowly."""

        def mean_turn(alpha):
            m = GaussMarkov(seed=6, duration_s=60.0, alpha=alpha, heading_sigma=0.6)
            t = np.arange(0, 60, 0.5)
            pos = m.position(t)
            vel = np.diff(pos, axis=0)
            headings = np.arctan2(vel[:, 1], vel[:, 0])
            dh = np.abs(np.angle(np.exp(1j * np.diff(headings))))
            return dh.mean()

        assert mean_turn(0.95) < mean_turn(0.2)

    def test_protocol(self):
        assert isinstance(GaussMarkov(seed=0), MobilityModel)

    def test_clamps_beyond_duration(self):
        m = GaussMarkov(seed=7, duration_s=10.0)
        a = m.position(np.array([10.0]))
        b = m.position(np.array([1e5]))
        assert np.allclose(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussMarkov(alpha=1.0)
        with pytest.raises(ValueError):
            GaussMarkov(mean_speed=0.0)
        with pytest.raises(ValueError):
            GaussMarkov(duration_s=0.0)
        with pytest.raises(ValueError):
            GaussMarkov(margin=60.0)

    def test_usable_in_scenario(self, fast_config):
        from repro.sim.runner import run_tracking
        from repro.sim.scenario import make_scenario

        mob = GaussMarkov(field_size=100.0, duration_s=10.0, seed=8)
        scenario = make_scenario(fast_config, seed=9, mobility=mob)
        tracker = scenario.make_tracker("fttt")
        res = run_tracking(scenario, tracker, 10, n_rounds=8)
        assert len(res) == 8
        assert np.isfinite(res.mean_error)
