"""Tests for repro.mobility.trace_io."""

import numpy as np
import pytest

from repro.mobility.base import MobilityModel
from repro.mobility.trace_io import RecordedTrace, load_trace, record_model, save_trace
from repro.mobility.waypoint import RandomWaypoint


class TestRecordedTrace:
    def test_interpolation(self):
        tr = RecordedTrace(times=[0.0, 1.0, 2.0], points=[[0, 0], [10, 0], [10, 10]])
        assert np.allclose(tr.position(np.array([0.5]))[0], [5, 0])
        assert np.allclose(tr.position(np.array([1.5]))[0], [10, 5])

    def test_clamping(self):
        tr = RecordedTrace(times=[0.0, 1.0], points=[[0, 0], [10, 0]])
        assert np.allclose(tr.position(np.array([-5.0]))[0], [0, 0])
        assert np.allclose(tr.position(np.array([99.0]))[0], [10, 0])

    def test_protocol(self):
        tr = RecordedTrace(times=[0.0, 1.0], points=[[0, 0], [1, 1]])
        assert isinstance(tr, MobilityModel)

    def test_validation(self):
        with pytest.raises(ValueError):
            RecordedTrace(times=[0.0], points=[[0, 0]])
        with pytest.raises(ValueError):
            RecordedTrace(times=[0.0, 0.0], points=[[0, 0], [1, 1]])
        with pytest.raises(ValueError):
            RecordedTrace(times=[0.0, 1.0], points=[[0, 0]])


class TestRecordModel:
    def test_faithful_to_source(self):
        model = RandomWaypoint(seed=5, duration_s=20.0)
        trace = record_model(model, 20.0, sample_hz=20.0)
        t = np.linspace(0.5, 19.5, 50)
        assert np.allclose(trace.position(t), model.position(t), atol=0.2)

    def test_duration(self):
        model = RandomWaypoint(seed=5, duration_s=10.0)
        trace = record_model(model, 10.0)
        assert trace.duration_s == pytest.approx(10.0, abs=0.2)

    def test_validation(self):
        model = RandomWaypoint(seed=5)
        with pytest.raises(ValueError):
            record_model(model, 0.0)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        model = RandomWaypoint(seed=9, duration_s=15.0)
        trace = record_model(model, 15.0, name="run9")
        path = save_trace(trace, tmp_path / "runs" / "trace.csv")
        loaded = load_trace(path)
        assert np.allclose(loaded.times, trace.times, atol=1e-6)
        assert np.allclose(loaded.points, trace.points, atol=1e-6)
        assert loaded.name == "trace"

    def test_named_load(self, tmp_path):
        trace = RecordedTrace(times=[0.0, 1.0], points=[[0, 0], [1, 1]])
        path = save_trace(trace, tmp_path / "t.csv")
        assert load_trace(path, name="custom").name == "custom"

    def test_bad_file_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="t,x,y"):
            load_trace(p)

    def test_replay_in_scenario(self, tmp_path, fast_config):
        """A saved trace drives a tracking run identically to its source."""
        from repro.sim.runner import run_tracking
        from repro.sim.scenario import make_scenario

        model = RandomWaypoint(seed=3, duration_s=10.0)
        trace = record_model(model, 10.0, sample_hz=50.0)
        path = save_trace(trace, tmp_path / "trace.csv")
        loaded = load_trace(path)
        s1 = make_scenario(fast_config, seed=1, mobility=model)
        s2 = make_scenario(fast_config, seed=1, mobility=loaded)
        r1 = run_tracking(s1, s1.make_tracker("fttt"), 2, n_rounds=6)
        r2 = run_tracking(s2, s2.make_tracker("fttt"), 2, n_rounds=6)
        assert np.allclose(r1.truth, r2.truth, atol=0.15)
