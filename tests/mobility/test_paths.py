"""Tests for repro.mobility.paths and repro.mobility.base."""

import numpy as np
import pytest

from repro.mobility.base import MobilityModel, StationaryTarget
from repro.mobility.paths import PiecewiseLinearPath, l_shape_path, lawnmower_path


class TestStationaryTarget:
    def test_never_moves(self):
        s = StationaryTarget(np.array([3.0, 4.0]))
        pos = s.position(np.array([0.0, 10.0, 100.0]))
        assert np.allclose(pos, [[3, 4]] * 3)

    def test_protocol(self):
        assert isinstance(StationaryTarget(np.zeros(2)), MobilityModel)


class TestPiecewiseLinearPath:
    def test_duration_from_speeds(self):
        p = PiecewiseLinearPath(np.array([[0, 0], [10, 0]]), speeds=2.0)
        assert p.duration_s == pytest.approx(5.0)

    def test_per_segment_speeds(self):
        p = PiecewiseLinearPath(
            np.array([[0, 0], [10, 0], [10, 10]]), speeds=np.array([1.0, 2.0])
        )
        assert p.duration_s == pytest.approx(10.0 + 5.0)

    def test_position_interpolation(self):
        p = PiecewiseLinearPath(np.array([[0, 0], [10, 0]]), speeds=2.0)
        assert np.allclose(p.position(np.array([2.5]))[0], [5.0, 0.0])

    def test_position_clamped(self):
        p = PiecewiseLinearPath(np.array([[0, 0], [10, 0]]), speeds=1.0)
        assert np.allclose(p.position(np.array([-1.0]))[0], [0, 0])
        assert np.allclose(p.position(np.array([99.0]))[0], [10, 0])

    def test_length(self):
        p = PiecewiseLinearPath(np.array([[0, 0], [3, 4], [3, 8]]), speeds=1.0)
        assert p.length_m == pytest.approx(9.0)

    def test_rejects_zero_length_segment(self):
        with pytest.raises(ValueError, match="zero-length"):
            PiecewiseLinearPath(np.array([[0, 0], [0, 0], [1, 1]]), speeds=1.0)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError, match="positive"):
            PiecewiseLinearPath(np.array([[0, 0], [1, 0]]), speeds=0.0)

    def test_rejects_too_few_vertices(self):
        with pytest.raises(ValueError):
            PiecewiseLinearPath(np.array([[0.0, 0.0]]), speeds=1.0)

    def test_protocol(self):
        p = PiecewiseLinearPath(np.array([[0, 0], [1, 0]]), speeds=1.0)
        assert isinstance(p, MobilityModel)


class TestLShapePath:
    def test_starts_bottom_left_ends_top_right(self):
        p = l_shape_path(100.0, rng=0)
        start = p.position(np.array([0.0]))[0]
        end = p.position(np.array([p.duration_s]))[0]
        assert np.allclose(start, [25.0, 25.0])
        assert np.allclose(end, [75.0, 75.0])

    def test_speeds_within_range(self):
        p = l_shape_path(100.0, rng=1, speed_range=(1.0, 5.0))
        assert np.all(p.speeds >= 1.0) and np.all(p.speeds <= 5.0)

    def test_changeable_velocity(self):
        p = l_shape_path(100.0, rng=2)
        assert len(np.unique(p.speeds)) > 1

    def test_explicit_speed(self):
        p = l_shape_path(100.0, speeds=2.0)
        assert np.all(p.speeds == 2.0)

    def test_path_is_l_shaped(self):
        # every vertex has x == inset or y == field - inset
        p = l_shape_path(100.0, speeds=1.0, inset_frac=0.25)
        v = p.vertices
        on_vertical = np.isclose(v[:, 0], 25.0)
        on_horizontal = np.isclose(v[:, 1], 75.0)
        assert np.all(on_vertical | on_horizontal)


class TestLawnmowerPath:
    def test_inside_field(self):
        p = lawnmower_path(100.0, n_sweeps=5)
        t = np.linspace(0, p.duration_s, 500)
        pos = p.position(t)
        assert pos.min() >= 0 and pos.max() <= 100

    def test_sweep_count_reflected_in_vertices(self):
        p = lawnmower_path(100.0, n_sweeps=4)
        assert len(p.vertices) == 8

    def test_rejects_single_sweep(self):
        with pytest.raises(ValueError):
            lawnmower_path(100.0, n_sweeps=1)
