"""Tests for repro.viz — ASCII rendering."""

import numpy as np
import pytest

from repro.core.tracker import TrackEstimate, TrackResult
from repro.viz import render_face_map, render_scalar_field, render_track, sparkline


def make_result(points):
    res = TrackResult()
    for i, p in enumerate(points):
        est = TrackEstimate(
            t=float(i),
            position=np.asarray(p, dtype=float) + np.array([12.0, 0.0]),
            face_ids=np.array([0]),
            sq_distance=0.0,
            n_reporting=4,
            visited_faces=1,
        )
        res.append(est, np.asarray(p, dtype=float))
    return res


class TestScalarField:
    def test_dimensions(self):
        field = np.arange(100, dtype=float).reshape(10, 10)
        text = render_scalar_field(field, width=40, height=10)
        lines = text.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_gradient_shading(self):
        field = np.linspace(0, 1, 100).reshape(10, 10)
        text = render_scalar_field(field, width=20, height=5)
        assert len(set(text.replace("\n", ""))) > 2  # multiple shades used

    def test_constant_field_single_shade(self):
        text = render_scalar_field(np.ones((5, 5)), width=10, height=5)
        assert set(text.replace("\n", "")) == {" "}

    def test_overlay_points(self):
        text = render_scalar_field(
            np.zeros((10, 10)),
            width=20,
            height=10,
            overlay_points=np.array([[5.0, 5.0]]),
            extent=(10.0, 10.0),
        )
        assert "#" in text

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            render_scalar_field(np.zeros(10))


class TestRenderTrack:
    def test_contains_truth_and_estimates(self):
        res = make_result([[20.0, 20.0], [40.0, 40.0], [60.0, 60.0]])
        text = render_track(res, 100.0, width=40)
        assert "." in text
        assert "o" in text

    def test_nodes_overlay(self, four_nodes):
        res = make_result([[50.0, 50.0]])
        text = render_track(res, 100.0, nodes=four_nodes)
        assert "#" in text


class TestRenderFaceMap:
    def test_renders(self, face_map):
        text = render_face_map(face_map, width=40)
        assert "#" in text  # sensors visible
        lines = text.split("\n")
        assert all(len(line) == 40 for line in lines)


class TestSparkline:
    def test_length(self):
        assert len(sparkline(np.arange(10))) == 10

    def test_downsampling(self):
        assert len(sparkline(np.arange(100), width=20)) == 20

    def test_monotone_series_monotone_blocks(self):
        s = sparkline(np.arange(8))
        assert s == "".join(sorted(s))

    def test_empty(self):
        assert sparkline(np.array([])) == ""

    def test_constant(self):
        s = sparkline(np.ones(5))
        assert len(set(s)) == 1
