"""Tests for repro.geometry.cache — the content-addressed face-map cache.

The cache's contract is strict: a cached (or disk-loaded) face map must
be *bit-identical* to a fresh build, and handing it out must never let
one user's soft-signature attachment leak into another's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.cache import (
    FaceMapCache,
    configure_face_map_cache,
    default_face_map_cache,
    face_map_cache_enabled,
    face_map_cache_key,
    get_face_map,
)
from repro.geometry.faces import build_certain_face_map, build_face_map
from repro.geometry.grid import Grid


@pytest.fixture(autouse=True)
def _fresh_default_cache():
    """Isolate the process-global cache per test."""
    configure_face_map_cache(maxsize=64, disk_dir=None, enabled=None)
    default_face_map_cache().clear()
    yield
    configure_face_map_cache(maxsize=64, disk_dir=None, enabled=None)


def _assert_identical(a, b):
    assert np.array_equal(a.nodes, b.nodes)
    assert np.array_equal(a.signatures, b.signatures)
    assert a.signatures.dtype == b.signatures.dtype
    assert np.array_equal(a.centroids, b.centroids)
    assert np.array_equal(a.cell_face, b.cell_face)
    assert np.array_equal(a.cell_counts, b.cell_counts)
    assert np.array_equal(a.adj_indptr, b.adj_indptr)
    assert np.array_equal(a.adj_indices, b.adj_indices)
    assert a.c == b.c
    assert (a.grid.width, a.grid.height, a.grid.cell_size) == (
        b.grid.width,
        b.grid.height,
        b.grid.cell_size,
    )


class TestCacheKey:
    def test_deterministic(self, four_nodes, small_grid):
        k1 = face_map_cache_key(four_nodes, small_grid, 1.5)
        k2 = face_map_cache_key(four_nodes.copy(), small_grid, 1.5)
        assert k1 == k2

    def test_content_addressed(self, four_nodes, small_grid):
        moved = four_nodes.copy()
        moved[0, 0] += 1e-9  # any bit-level change must change the key
        assert face_map_cache_key(four_nodes, small_grid, 1.5) != face_map_cache_key(
            moved, small_grid, 1.5
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"c": 1.6},
            {"sensing_range": 40.0},
            {"split_components": True},
            {"kind": "certain"},
        ],
    )
    def test_every_parameter_feeds_the_key(self, four_nodes, small_grid, kwargs):
        base = face_map_cache_key(four_nodes, small_grid, 1.5)
        c = kwargs.pop("c", 1.5)
        assert face_map_cache_key(four_nodes, small_grid, c, **kwargs) != base

    def test_grid_feeds_the_key(self, four_nodes):
        a = face_map_cache_key(four_nodes, Grid.square(100.0, 2.0), 1.5)
        b = face_map_cache_key(four_nodes, Grid.square(100.0, 2.5), 1.5)
        assert a != b

    def test_unknown_kind_rejected(self, four_nodes, small_grid):
        with pytest.raises(ValueError, match="kind"):
            face_map_cache_key(four_nodes, small_grid, 1.5, kind="exotic")


class TestMemoryTier:
    def test_hit_returns_identical_map(self, four_nodes, small_grid):
        cache = FaceMapCache(maxsize=4)
        cold = cache.get_or_build(four_nodes, small_grid, 1.5)
        warm = cache.get_or_build(four_nodes, small_grid, 1.5)
        _assert_identical(cold, warm)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        # warm hit shares the underlying arrays (no rebuild, no copy)
        assert warm.signatures is cold.signatures

    def test_matches_direct_build(self, four_nodes, small_grid):
        cache = FaceMapCache(maxsize=4)
        cached = cache.get_or_build(
            four_nodes, small_grid, 1.5, sensing_range=40.0, split_components=True
        )
        direct = build_face_map(
            four_nodes, small_grid, 1.5, sensing_range=40.0, split_components=True
        )
        _assert_identical(cached, direct)

    def test_certain_kind_matches_direct_build(self, four_nodes, small_grid):
        cache = FaceMapCache(maxsize=4)
        cached = cache.get_or_build(four_nodes, small_grid, 1.0, kind="certain")
        direct = build_certain_face_map(four_nodes, small_grid)
        _assert_identical(cached, direct)

    def test_lru_eviction(self, four_nodes, small_grid):
        cache = FaceMapCache(maxsize=1)
        cache.get_or_build(four_nodes, small_grid, 1.5)
        cache.get_or_build(four_nodes, small_grid, 1.6)  # evicts the first
        cache.get_or_build(four_nodes, small_grid, 1.5)  # rebuild
        assert cache.stats() == {
            "entries": 1,
            "hits": 0,
            "misses": 3,
            "disk_hits": 0,
            "shm_hits": 0,
            "evictions": 2,
            "migrations": 0,
        }

    def test_zero_maxsize_disables_memory_tier(self, four_nodes, small_grid):
        cache = FaceMapCache(maxsize=0)
        cache.get_or_build(four_nodes, small_grid, 1.5)
        cache.get_or_build(four_nodes, small_grid, 1.5)
        assert cache.stats()["misses"] == 2
        assert len(cache) == 0

    def test_soft_signatures_do_not_leak_between_users(self, four_nodes, small_grid):
        cache = FaceMapCache(maxsize=4)
        first = cache.get_or_build(four_nodes, small_grid, 1.5)
        first.soft_signatures = np.zeros((first.n_faces, first.n_pairs), dtype=np.float32)
        second = cache.get_or_build(four_nodes, small_grid, 1.5)
        assert second.soft_signatures is None


class TestDiskTier:
    def test_roundtrip_bit_identical(self, four_nodes, small_grid, tmp_path):
        writer = FaceMapCache(maxsize=0, disk_dir=tmp_path / "store")
        cold = writer.get_or_build(four_nodes, small_grid, 1.5, sensing_range=40.0)
        reader = FaceMapCache(maxsize=0, disk_dir=tmp_path / "store")
        warm = reader.get_or_build(four_nodes, small_grid, 1.5, sensing_range=40.0)
        _assert_identical(cold, warm)
        assert reader.stats()["disk_hits"] == 1
        assert reader.stats()["misses"] == 0

    def test_matching_results_identical_after_disk_roundtrip(
        self, four_nodes, small_grid, tmp_path
    ):
        writer = FaceMapCache(maxsize=0, disk_dir=tmp_path)
        cold = writer.get_or_build(four_nodes, small_grid, 1.5)
        reader = FaceMapCache(maxsize=0, disk_dir=tmp_path)
        warm = reader.get_or_build(four_nodes, small_grid, 1.5)
        v = cold.signatures[cold.n_faces // 2].astype(float)
        v[0] = np.nan
        ties_a, d2_a = cold.match(v)
        ties_b, d2_b = warm.match(v)
        assert np.array_equal(ties_a, ties_b)
        assert d2_a == d2_b

    def test_corrupt_file_treated_as_miss(self, four_nodes, small_grid, tmp_path):
        cache = FaceMapCache(maxsize=0, disk_dir=tmp_path)
        cache.get_or_build(four_nodes, small_grid, 1.5)
        for path in tmp_path.glob("facemap-*.npz"):
            path.write_bytes(b"not an npz")
        rebuilt = cache.get_or_build(four_nodes, small_grid, 1.5)
        direct = build_face_map(four_nodes, small_grid, 1.5)
        _assert_identical(rebuilt, direct)
        assert cache.stats()["misses"] == 2


class TestGlobalCache:
    def test_get_face_map_equals_direct_build(self, four_nodes, small_grid):
        cached = get_face_map(four_nodes, small_grid, 1.5, sensing_range=40.0)
        direct = build_face_map(four_nodes, small_grid, 1.5, sensing_range=40.0)
        _assert_identical(cached, direct)

    def test_env_kill_switch(self, four_nodes, small_grid, monkeypatch):
        monkeypatch.setenv("REPRO_FACE_CACHE", "0")
        assert not face_map_cache_enabled()
        before = default_face_map_cache().stats()["misses"]
        get_face_map(four_nodes, small_grid, 1.5)
        assert default_face_map_cache().stats()["misses"] == before  # bypassed

    def test_configure_enabled_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FACE_CACHE", "0")
        configure_face_map_cache(enabled=True)
        assert face_map_cache_enabled()

    def test_scenario_reuses_cache_across_instances(self, four_nodes):
        from repro.config import GridConfig, SimulationConfig
        from repro.sim.scenario import make_scenario

        cfg = SimulationConfig(n_sensors=4, grid=GridConfig(cell_size_m=4.0))
        a = make_scenario(cfg, nodes=four_nodes, seed=0)
        b = make_scenario(cfg, nodes=four_nodes, seed=1)
        assert a.face_map.signatures is b.face_map.signatures  # shared arrays
        assert a.certain_map.signatures is b.certain_map.signatures
        stats = default_face_map_cache().stats()
        assert stats["hits"] >= 2
