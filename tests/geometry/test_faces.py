"""Tests for repro.geometry.faces — the face map (Definitions 6 & 8, Lemma 1)."""

import numpy as np
import pytest

from repro.geometry.faces import build_certain_face_map, build_face_map
from repro.geometry.grid import Grid


class TestConstruction:
    def test_face_count_positive(self, face_map):
        assert face_map.n_faces > 1

    def test_pair_count(self, face_map):
        assert face_map.n_pairs == 6  # C(4,2)

    def test_every_cell_assigned(self, face_map):
        assert face_map.cell_face.shape == (face_map.grid.n_cells,)
        assert face_map.cell_face.min() >= 0
        assert face_map.cell_face.max() == face_map.n_faces - 1

    def test_cell_counts_sum_to_grid(self, face_map):
        assert face_map.cell_counts.sum() == face_map.grid.n_cells

    def test_signatures_unique(self, face_map):
        sigs = {tuple(s.tolist()) for s in face_map.signatures}
        assert len(sigs) == face_map.n_faces  # Lemma 1: signature <-> face

    def test_rejects_single_node(self, small_grid):
        with pytest.raises(ValueError, match="two nodes"):
            build_face_map(np.array([[5.0, 5.0]]), small_grid, 1.5)

    def test_centroids_inside_field(self, face_map):
        c = face_map.centroids
        assert np.all(c >= 0) and np.all(c <= 100)


class TestFaceAccess:
    def test_face_object_fields(self, face_map):
        f = face_map.face(0)
        assert f.face_id == 0
        assert f.signature.shape == (6,)
        assert f.n_cells >= 1
        assert f.area_m2 == pytest.approx(f.n_cells * 4.0)  # 2 m cells

    def test_face_out_of_range(self, face_map):
        with pytest.raises(IndexError):
            face_map.face(face_map.n_faces)
        with pytest.raises(IndexError):
            face_map.face(-1)

    def test_faces_list_complete(self, face_map):
        faces = face_map.faces()
        assert len(faces) == face_map.n_faces

    def test_face_of_point_consistent_with_signature(self, face_map, rng):
        for _ in range(20):
            p = rng.uniform(0, 100, 2)
            fid = face_map.face_of_point(p)
            assert np.array_equal(face_map.signature_of_point(p), face_map.signatures[fid])

    def test_n_uncertain_pairs_counts_zeros(self, face_map):
        for fid in range(min(10, face_map.n_faces)):
            f = face_map.face(fid)
            assert f.n_uncertain_pairs == int((f.signature == 0).sum())
            assert f.is_certain == (f.n_uncertain_pairs == 0)


class TestAdjacency:
    def test_symmetric(self, face_map):
        for fid in range(face_map.n_faces):
            for nb in face_map.neighbors(fid):
                assert fid in face_map.neighbors(int(nb))

    def test_no_self_loops(self, face_map):
        for fid in range(face_map.n_faces):
            assert fid not in face_map.neighbors(fid)

    def test_neighbors_out_of_range(self, face_map):
        with pytest.raises(IndexError):
            face_map.neighbors(face_map.n_faces)

    def test_theorem1_unit_distance_dominates(self, four_nodes):
        # Theorem 1: neighbor faces differ by exactly 1 in vector distance.
        # On a raster a single cell step can jump two boundaries at once
        # where circles run close, so the theorem holds for the majority of
        # links and essentially all links stay within two boundary crossings.
        fm = build_face_map(four_nodes, Grid.square(100.0, 1.0), c=1.5)
        unit, near, total = 0, 0, 0
        for fid in range(fm.n_faces):
            s = fm.signatures[fid].astype(int)
            for nb in fm.neighbors(fid):
                d2 = int(((fm.signatures[nb].astype(int) - s) ** 2).sum())
                unit += d2 == 1
                near += d2 <= 4
                total += 1
        assert total > 0
        assert unit / total > 0.6
        assert near / total > 0.95


class TestMatching:
    def test_exact_signature_matches_own_face(self, face_map):
        for fid in (0, face_map.n_faces // 2, face_map.n_faces - 1):
            v = face_map.signatures[fid].astype(float)
            ties, d2 = face_map.match(v)
            assert d2 == 0.0
            assert fid in ties

    def test_masked_components_ignored(self, face_map):
        fid = face_map.n_faces // 2
        v = face_map.signatures[fid].astype(float)
        v[0] = np.nan
        ties, d2 = face_map.match(v)
        assert d2 == 0.0
        assert fid in ties

    def test_distances_shape_and_nonnegative(self, face_map):
        v = face_map.signatures[0].astype(float)
        d2 = face_map.distances_to(v)
        assert d2.shape == (face_map.n_faces,)
        assert np.all(d2 >= 0)

    def test_distance_vector_dimension_checked(self, face_map):
        with pytest.raises(ValueError, match="shape"):
            face_map.distances_to(np.zeros(3))

    def test_match_position_mean_of_ties(self, face_map):
        v = face_map.signatures[0].astype(float)
        pos = face_map.match_position(v)
        ties, _ = face_map.match(v)
        assert np.allclose(pos, face_map.centroids[ties].mean(axis=0))

    def test_soft_matching_requires_attachment(self, face_map):
        with pytest.raises(ValueError, match="soft"):
            face_map.match(face_map.signatures[0].astype(float), soft=True)


class TestCertainVsUncertain:
    def test_uncertain_map_has_zero_components(self, face_map):
        assert (face_map.signatures == 0).any()

    def test_certain_map_has_fewer_or_equal_zero_components(self, four_nodes, small_grid):
        cm = build_certain_face_map(four_nodes, small_grid)
        fm = build_face_map(four_nodes, small_grid, c=1.5)
        assert (cm.signatures == 0).mean() < (fm.signatures == 0).mean()

    def test_certain_map_records_c_one(self, certain_map):
        assert certain_map.c == 1.0

    def test_certain_faces_vanish_with_large_c(self, four_nodes, small_grid):
        # Fig. 3(c): when uncertainty grows, faces with fully-certain
        # signatures disappear
        fm_small = build_face_map(four_nodes, small_grid, c=1.1)
        fm_large = build_face_map(four_nodes, small_grid, c=3.0)
        assert fm_small.n_certain_faces > 0
        assert fm_large.n_certain_faces < fm_small.n_certain_faces


class TestComponentSplitting:
    def test_split_yields_at_least_as_many_faces(self, four_nodes, small_grid):
        merged = build_face_map(four_nodes, small_grid, c=1.5, split_components=False)
        split = build_face_map(four_nodes, small_grid, c=1.5, split_components=True)
        assert split.n_faces >= merged.n_faces

    def test_split_faces_have_valid_signatures(self, four_nodes, small_grid):
        split = build_face_map(four_nodes, small_grid, c=1.5, split_components=True)
        assert set(np.unique(split.signatures)).issubset({-1, 0, 1})
        assert split.cell_counts.sum() == split.grid.n_cells


class TestExpectedVector:
    def test_expected_vector_matches_signature(self, face_map):
        p = np.array([25.0, 75.0])
        v = face_map.expected_vector_for_point(p)
        assert np.array_equal(v, face_map.signature_of_point(p).astype(float))


class TestTieTolerance:
    """The tie threshold scales with the distance, not a fixed 1e-6.

    With P = C(n, 2) float32 accumulation terms, two mathematically equal
    squared distances can drift apart by ULPs of the total — far more
    than 1e-6 once distances are large — and an absolute threshold then
    splits true ties.  Regression for the large-n mis-grouping.
    """

    @staticmethod
    def _synthetic_map(soft_signatures: np.ndarray) -> "FaceMap":
        from repro.geometry.faces import FaceMap

        n_faces, n_pairs = soft_signatures.shape
        # invert C(n, 2) = P for the node count
        n = int(round((1 + np.sqrt(1 + 8 * n_pairs)) / 2))
        assert n * (n - 1) // 2 == n_pairs
        grid = Grid.square(2.0, 1.0)
        return FaceMap(
            nodes=np.zeros((n, 2)),
            grid=grid,
            c=1.5,
            signatures=np.zeros((n_faces, n_pairs), dtype=np.int8),
            centroids=np.arange(2.0 * n_faces).reshape(n_faces, 2),
            cell_face=np.zeros(grid.n_cells, dtype=np.int64),
            cell_counts=np.full(n_faces, grid.n_cells // n_faces, dtype=np.int64),
            adj_indptr=np.arange(n_faces + 1, dtype=np.int64),
            adj_indices=np.arange(n_faces, dtype=np.int64) ^ 1,
            soft_signatures=soft_signatures,
        )

    def test_large_n_float32_drift_still_ties(self):
        n_pairs = 1035  # C(46, 2): the large-n regime the fix targets
        rng = np.random.default_rng(3)
        x = rng.random(n_pairs).astype(np.float32) * 2 - 1
        permuted = x[rng.permutation(n_pairs)]
        fm = self._synthetic_map(np.stack([x, permuted]))
        # the two rows hold the same multiset of values, so both squared
        # distances to the zero vector are mathematically identical; the
        # float32 sums differ by accumulation order
        d2 = fm.distances_to(np.zeros(n_pairs), soft=True)
        drift = abs(float(d2[0]) - float(d2[1]))
        assert drift <= fm.tie_tolerance(float(d2.min()))
        ties, best = fm.match(np.zeros(n_pairs), soft=True)
        assert len(ties) == 2  # the absolute 1e-6 threshold split these
        assert fm.tie_tolerance(best) > 1e-6

    def test_small_distances_keep_legacy_threshold(self, face_map):
        # an exact match (best == 0) has infinite Def. 7 similarity:
        # nothing at any positive distance can tie with it
        assert face_map.tie_tolerance(0.0) == 0.0
        assert face_map.tie_tolerance(1.0) == 1e-6

    def test_exact_match_unaffected(self, face_map):
        v = face_map.signatures[0].astype(float)
        ties, d2 = face_map.match(v)
        assert d2 == 0.0
        # qualitative distances are exact integers; a widened threshold
        # below 1 can never merge distinct ones
        assert face_map.tie_tolerance(float(4 * face_map.n_pairs)) < 1.0
