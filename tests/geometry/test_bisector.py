"""Tests for repro.geometry.bisector (certain-world classification)."""

import numpy as np
import pytest

from repro.geometry.apollonius import classify_points_pairwise
from repro.geometry.bisector import bisector_side, certain_signatures, rank_sequence_of_points


class TestBisectorSide:
    def test_sides_and_boundary(self):
        p_i = np.array([0.0, 0.0])
        p_j = np.array([10.0, 0.0])
        pts = np.array([[2.0, 1.0], [8.0, -1.0], [5.0, 7.0]])
        assert bisector_side(pts, p_i, p_j).tolist() == [1, -1, 0]

    def test_antisymmetric_in_nodes(self, rng):
        p_i = np.array([1.0, 2.0])
        p_j = np.array([7.0, -3.0])
        pts = rng.uniform(-10, 10, (50, 2))
        assert np.array_equal(bisector_side(pts, p_i, p_j), -bisector_side(pts, p_j, p_i))


class TestCertainSignatures:
    def test_equals_apollonius_in_c_to_one_limit(self, four_nodes, rng):
        pts = rng.uniform(0, 100, (100, 2))
        certain = certain_signatures(pts, four_nodes)
        limit = classify_points_pairwise(pts, four_nodes, 1.0)
        assert np.array_equal(certain, limit)

    def test_no_zeros_off_bisectors(self, four_nodes):
        pts = np.array([[13.7, 21.9], [88.1, 3.3]])
        sig = certain_signatures(pts, four_nodes)
        assert np.all(sig != 0)

    def test_encodes_total_order(self, four_nodes):
        # signature must be consistent with the distance ranking
        p = np.array([[40.0, 35.0]])
        sig = certain_signatures(p, four_nodes)[0]
        d = np.hypot(four_nodes[:, 0] - 40.0, four_nodes[:, 1] - 35.0)
        idx = 0
        n = len(four_nodes)
        for i in range(n):
            for j in range(i + 1, n):
                expected = np.sign(d[j] - d[i])
                assert sig[idx] == expected
                idx += 1


class TestRankSequence:
    def test_rank_zero_is_nearest(self, four_nodes):
        ranks = rank_sequence_of_points(np.array([[31.0, 29.0]]), four_nodes)[0]
        assert ranks[0] == 0  # node at (30, 30) is nearest

    def test_ranks_are_permutations(self, four_nodes, rng):
        pts = rng.uniform(0, 100, (20, 2))
        ranks = rank_sequence_of_points(pts, four_nodes)
        for row in ranks:
            assert sorted(row.tolist()) == list(range(len(four_nodes)))
