"""Tests for repro.geometry.primitives."""

import numpy as np
import pytest

from repro.geometry.primitives import (
    Circle,
    enumerate_pairs,
    pair_index,
    pairwise_distances,
    point_in_circle,
    polyline_length,
    resample_polyline,
)


class TestCircle:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError, match="radius"):
            Circle(0.0, 0.0, -1.0)

    def test_center_property(self):
        c = Circle(3.0, 4.0, 1.0)
        assert np.allclose(c.center, [3.0, 4.0])

    def test_contains_inside_and_outside(self):
        c = Circle(0.0, 0.0, 5.0)
        pts = np.array([[0, 0], [3, 4], [4, 4], [10, 0]], dtype=float)
        assert point_in_circle(pts, c).tolist() == [True, True, False, False]

    def test_contains_boundary_strictness(self):
        c = Circle(0.0, 0.0, 5.0)
        boundary = np.array([[5.0, 0.0]])
        assert point_in_circle(boundary, c)[0]
        assert not point_in_circle(boundary, c, strict=True)[0]

    def test_circumference_points_lie_on_circle(self):
        c = Circle(2.0, -1.0, 3.0)
        pts = c.circumference_points(64)
        r = np.hypot(pts[:, 0] - 2.0, pts[:, 1] + 1.0)
        assert np.allclose(r, 3.0)

    def test_circumference_point_count(self):
        assert len(Circle(0, 0, 1).circumference_points(17)) == 17

    def test_zero_radius_allowed(self):
        c = Circle(1.0, 1.0, 0.0)
        assert point_in_circle(np.array([[1.0, 1.0]]), c)[0]


class TestPairwiseDistances:
    def test_matches_manual_computation(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        nodes = np.array([[0.0, 0.0], [6.0, 8.0]])
        d = pairwise_distances(pts, nodes)
        assert d.shape == (2, 2)
        assert np.allclose(d, [[0.0, 10.0], [5.0, 5.0]])

    def test_single_point_broadcast(self):
        d = pairwise_distances(np.array([1.0, 1.0]), np.array([[1.0, 1.0]]))
        assert d.shape == (1, 1)
        assert d[0, 0] == 0.0

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="coordinate"):
            pairwise_distances(np.zeros((3, 3)), np.zeros((2, 2)))

    def test_symmetry_under_swap(self, rng):
        a = rng.uniform(0, 10, (5, 2))
        b = rng.uniform(0, 10, (7, 2))
        assert np.allclose(pairwise_distances(a, b), pairwise_distances(b, a).T)


class TestEnumeratePairs:
    def test_canonical_order_n4(self):
        i, j = enumerate_pairs(4)
        got = list(zip(i.tolist(), j.tolist()))
        assert got == [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]

    def test_pair_count(self):
        for n in (2, 3, 10, 25):
            i, j = enumerate_pairs(n)
            assert len(i) == n * (n - 1) // 2

    def test_i_strictly_less_than_j(self):
        i, j = enumerate_pairs(9)
        assert np.all(i < j)

    def test_rejects_single_node(self):
        with pytest.raises(ValueError, match="at least two"):
            enumerate_pairs(1)

    def test_pair_index_consistency(self):
        n = 7
        i_idx, j_idx = enumerate_pairs(n)
        for p, (i, j) in enumerate(zip(i_idx.tolist(), j_idx.tolist())):
            assert pair_index(i, j, n) == p

    def test_pair_index_rejects_bad_pairs(self):
        with pytest.raises(ValueError):
            pair_index(3, 3, 5)
        with pytest.raises(ValueError):
            pair_index(4, 2, 5)


class TestPolyline:
    def test_length_of_right_angle(self):
        v = np.array([[0, 0], [3, 0], [3, 4]], dtype=float)
        assert polyline_length(v) == pytest.approx(7.0)

    def test_length_single_vertex_is_zero(self):
        assert polyline_length(np.array([[1.0, 2.0]])) == 0.0

    def test_length_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="vertices"):
            polyline_length(np.zeros(4))

    def test_resample_endpoints_and_midpoint(self):
        v = np.array([[0, 0], [10, 0]], dtype=float)
        pts = resample_polyline(v, np.array([0.0, 5.0, 10.0]))
        assert np.allclose(pts, [[0, 0], [5, 0], [10, 0]])

    def test_resample_clamps_beyond_path(self):
        v = np.array([[0, 0], [10, 0]], dtype=float)
        pts = resample_polyline(v, np.array([-5.0, 25.0]))
        assert np.allclose(pts, [[0, 0], [10, 0]])

    def test_resample_across_corner(self):
        v = np.array([[0, 0], [10, 0], [10, 10]], dtype=float)
        pts = resample_polyline(v, np.array([15.0]))
        assert np.allclose(pts, [[10, 5]])
