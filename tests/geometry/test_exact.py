"""Tests for repro.geometry.exact."""

import numpy as np
import pytest

from repro.geometry.exact import (
    boundary_cell_fraction,
    circle_intersections,
    refine_face,
)
from repro.geometry.faces import build_face_map
from repro.geometry.grid import Grid
from repro.geometry.primitives import Circle


class TestCircleIntersections:
    def test_two_point_crossing(self):
        a = Circle(0.0, 0.0, 5.0)
        b = Circle(6.0, 0.0, 5.0)
        pts = circle_intersections(a, b)
        assert pts.shape == (2, 2)
        for p in pts:
            assert np.hypot(*(p - [0, 0])) == pytest.approx(5.0)
            assert np.hypot(*(p - [6, 0])) == pytest.approx(5.0)

    def test_external_tangency(self):
        a = Circle(0.0, 0.0, 2.0)
        b = Circle(5.0, 0.0, 3.0)
        pts = circle_intersections(a, b)
        assert pts.shape == (1, 2)
        assert np.allclose(pts[0], [2.0, 0.0])

    def test_internal_tangency(self):
        a = Circle(0.0, 0.0, 5.0)
        b = Circle(2.0, 0.0, 3.0)
        pts = circle_intersections(a, b)
        assert pts.shape == (1, 2)
        assert np.allclose(pts[0], [5.0, 0.0])

    def test_separate_circles(self):
        assert circle_intersections(Circle(0, 0, 1), Circle(10, 0, 1)).shape == (0, 2)

    def test_contained_circles(self):
        assert circle_intersections(Circle(0, 0, 10), Circle(1, 0, 2)).shape == (0, 2)

    def test_concentric(self):
        assert circle_intersections(Circle(0, 0, 3), Circle(0, 0, 5)).shape == (0, 2)

    def test_symmetric_in_arguments(self):
        a = Circle(0.0, 0.0, 4.0)
        b = Circle(3.0, 3.0, 4.0)
        pa = circle_intersections(a, b)
        pb = circle_intersections(b, a)
        assert {tuple(np.round(p, 9)) for p in pa} == {tuple(np.round(p, 9)) for p in pb}


class TestRefineFace:
    @pytest.fixture
    def fm(self, four_nodes):
        return build_face_map(four_nodes, Grid.square(100.0, 4.0), 1.5)

    def test_refinement_reduces_quantization(self, four_nodes):
        coarse = build_face_map(four_nodes, Grid.square(100.0, 4.0), 1.5)
        fine = build_face_map(four_nodes, Grid.square(100.0, 1.0), 1.5)
        # pick a reasonably large coarse face and refine it
        fid = int(np.argmax(coarse.cell_counts))
        refined = refine_face(coarse, fid, factor=4)
        # the refined centroid matches the fine-grid centroid of the same
        # signature better than the coarse centroid does
        sig = coarse.signatures[fid]
        fine_match = np.flatnonzero(np.all(fine.signatures == sig[None, :], axis=1))
        assert len(fine_match) == 1
        truth = fine.centroids[fine_match[0]]
        err_coarse = np.hypot(*(coarse.centroids[fid] - truth))
        err_refined = np.hypot(*(refined.centroid - truth))
        assert err_refined <= err_coarse + 0.3

    def test_area_close_to_raster(self, fm):
        fid = int(np.argmax(fm.cell_counts))
        refined = refine_face(fm, fid, factor=4)
        raster_area = fm.cell_counts[fid] * fm.grid.cell_size**2
        assert refined.area_m2 == pytest.approx(raster_area, rel=0.35)
        assert refined.n_fine_cells > 0

    def test_validation(self, fm):
        with pytest.raises(IndexError):
            refine_face(fm, fm.n_faces)
        with pytest.raises(ValueError):
            refine_face(fm, 0, factor=1)


class TestBoundaryCellFraction:
    def test_fraction_in_unit_interval(self, four_nodes):
        fm = build_face_map(four_nodes, Grid.square(100.0, 4.0), 1.5)
        frac = boundary_cell_fraction(fm)
        assert 0.0 < frac < 1.0

    def test_finer_grid_smaller_fraction(self, four_nodes):
        coarse = build_face_map(four_nodes, Grid.square(100.0, 5.0), 1.5)
        fine = build_face_map(four_nodes, Grid.square(100.0, 1.0), 1.5)
        assert boundary_cell_fraction(fine) < boundary_cell_fraction(coarse)
