"""Tests for repro.geometry.adaptive — double-level grid division (ref [29])."""

import numpy as np
import pytest

from repro.geometry.adaptive import build_adaptive_face_map
from repro.geometry.faces import build_face_map
from repro.geometry.grid import Grid


@pytest.fixture
def nodes(four_nodes):
    return four_nodes


class TestEquivalence:
    def test_signatures_match_flat_grid_exactly(self, nodes):
        adaptive, _ = build_adaptive_face_map(
            nodes, 100.0, 1.5, coarse_cell=8.0, refine_factor=4
        )
        flat = build_face_map(nodes, Grid.square(100.0, 2.0), 1.5)
        per_cell_adaptive = adaptive.signatures[adaptive.cell_face]
        per_cell_flat = flat.signatures[flat.cell_face]
        assert np.array_equal(per_cell_adaptive, per_cell_flat)

    def test_same_face_count(self, nodes):
        adaptive, _ = build_adaptive_face_map(
            nodes, 100.0, 1.5, coarse_cell=8.0, refine_factor=4
        )
        flat = build_face_map(nodes, Grid.square(100.0, 2.0), 1.5)
        assert adaptive.n_faces == flat.n_faces

    def test_sensing_range_respected(self, nodes):
        adaptive, _ = build_adaptive_face_map(
            nodes, 100.0, 1.5, coarse_cell=8.0, refine_factor=4, sensing_range=30.0
        )
        flat = build_face_map(nodes, Grid.square(100.0, 2.0), 1.5, sensing_range=30.0)
        assert np.array_equal(
            adaptive.signatures[adaptive.cell_face], flat.signatures[flat.cell_face]
        )


class TestStats:
    def test_savings_positive_for_sparse_networks(self, nodes):
        _, stats = build_adaptive_face_map(nodes, 100.0, 1.3, coarse_cell=4.0, refine_factor=4)
        assert stats.classification_savings > 0.3
        assert stats.uniform_cells + stats.refined_cells == stats.coarse_cells

    def test_savings_shrink_with_density(self, rng):
        from repro.network.deployment import random_deployment

        sparse = random_deployment(4, 100.0, 1, min_separation=10.0)
        dense = random_deployment(20, 100.0, 1, min_separation=4.0)
        _, s_sparse = build_adaptive_face_map(sparse, 100.0, 1.8, coarse_cell=4.0)
        _, s_dense = build_adaptive_face_map(dense, 100.0, 1.8, coarse_cell=4.0)
        assert s_sparse.classification_savings > s_dense.classification_savings

    def test_fine_cell_accounting(self, nodes):
        _, stats = build_adaptive_face_map(nodes, 100.0, 1.5, coarse_cell=10.0, refine_factor=5)
        assert stats.coarse_cells == 100  # (100/10)^2
        assert stats.fine_cells_total == 2500  # (100/2)^2
        assert 0 <= stats.fine_cells_classified <= stats.fine_cells_total


class TestValidation:
    def test_rejects_single_node(self):
        with pytest.raises(ValueError, match="two nodes"):
            build_adaptive_face_map(np.array([[5.0, 5.0]]), 100.0, 1.5)

    def test_rejects_bad_refine_factor(self, nodes):
        with pytest.raises(ValueError, match="refine_factor"):
            build_adaptive_face_map(nodes, 100.0, 1.5, refine_factor=1)

    def test_rejects_bad_coarse_cell(self, nodes):
        with pytest.raises(ValueError, match="coarse_cell"):
            build_adaptive_face_map(nodes, 100.0, 1.5, coarse_cell=0.0)


class TestUsableByTracker:
    def test_tracking_on_adaptive_map(self, nodes, rng):
        from repro.core.tracker import FTTTracker
        from repro.rf.channel import SampleBatch

        fm, _ = build_adaptive_face_map(nodes, 100.0, 1.5, coarse_cell=8.0, refine_factor=4)
        tracker = FTTTracker(fm, matcher="exhaustive", comparator_eps=40 * np.log10(1.5))
        # NOTE: with only 4 nodes and wide bands, some signatures label
        # *disconnected* symmetric regions (Lemma 1 is only approximate for
        # uncertain boundaries); pick a point in a certain face
        p = np.array([40.0, 55.0])
        d = np.hypot(nodes[:, 0] - p[0], nodes[:, 1] - p[1])
        rss = np.tile(-40.0 - 40.0 * np.log10(d), (3, 1))
        batch = SampleBatch(rss=rss, times=np.arange(3.0), positions=np.tile(p, (3, 1)))
        est = tracker.localize_batch(batch)
        true_face = fm.face_of_point(p)
        assert true_face in est.face_ids
