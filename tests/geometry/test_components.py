"""Tests for repro.geometry.components (union-find and region labelling)."""

import numpy as np
import pytest

from repro.geometry.components import UnionFind, label_equal_regions
from repro.geometry.grid import Grid


class TestUnionFind:
    def test_initially_all_singletons(self):
        uf = UnionFind(5)
        assert uf.n_components == 5

    def test_union_reduces_components(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.n_components == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 2

    def test_transitive_connectivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)

    def test_union_many_counts_merges(self):
        uf = UnionFind(6)
        merges = uf.union_many(np.array([0, 1, 0]), np.array([1, 2, 2]))
        assert merges == 2  # third edge is redundant

    def test_labels_contiguous(self):
        uf = UnionFind(6)
        uf.union(0, 5)
        uf.union(1, 2)
        labels = uf.labels()
        assert labels[0] == labels[5]
        assert labels[1] == labels[2]
        assert set(labels.tolist()) == set(range(len(set(labels.tolist()))))

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_mismatched_edges_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            label_equal_regions(np.zeros(4, dtype=int), np.array([0, 1]), np.array([1]))


class TestLabelEqualRegions:
    def test_checkerboard_stays_split(self):
        # 2x2 grid with a checkerboard value pattern: all four cells isolated
        g = Grid.square(2.0, 1.0)
        a, b = g.neighbor_pairs()
        values = np.array([0, 1, 1, 0])
        labels = label_equal_regions(values, a, b)
        assert len(set(labels.tolist())) == 4

    def test_uniform_grid_is_one_region(self):
        g = Grid.square(4.0, 1.0)
        a, b = g.neighbor_pairs()
        labels = label_equal_regions(np.zeros(g.n_cells, dtype=int), a, b)
        assert len(set(labels.tolist())) == 1

    def test_disconnected_equal_values_split(self):
        # 1x5 strip: values 0 0 1 0 0 -> the two 0-runs are separate regions
        g = Grid(5.0, 1.0, 1.0)
        a, b = g.neighbor_pairs()
        values = np.array([0, 0, 1, 0, 0])
        labels = label_equal_regions(values, a, b)
        assert labels[0] == labels[1]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[2] not in (labels[0], labels[3])

    def test_labels_respect_values(self):
        g = Grid.square(3.0, 1.0)
        a, b = g.neighbor_pairs()
        values = np.array([0, 0, 0, 1, 1, 1, 0, 0, 0])
        labels = label_equal_regions(values, a, b)
        # every label maps to exactly one value
        for lab in set(labels.tolist()):
            vals = set(values[labels == lab].tolist())
            assert len(vals) == 1
