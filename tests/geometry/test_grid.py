"""Tests for repro.geometry.grid."""

import numpy as np
import pytest

from repro.geometry.grid import Grid


class TestConstruction:
    def test_square_factory(self):
        g = Grid.square(100.0, 2.0)
        assert g.width == g.height == 100.0
        assert g.nx == g.ny == 50

    def test_cell_count(self):
        g = Grid(10.0, 20.0, 2.0)
        assert g.nx == 5 and g.ny == 10
        assert g.n_cells == 50
        assert g.shape == (10, 5)

    def test_non_divisible_extent_rounds_up(self):
        g = Grid(10.0, 10.0, 3.0)
        assert g.nx == 4  # 3 full cells + partial

    def test_rejects_nonpositive_extent(self):
        with pytest.raises(ValueError):
            Grid(0.0, 10.0, 1.0)

    def test_rejects_nonpositive_cell(self):
        with pytest.raises(ValueError):
            Grid(10.0, 10.0, 0.0)

    def test_rejects_cell_larger_than_field(self):
        with pytest.raises(ValueError, match="exceeds"):
            Grid(10.0, 10.0, 11.0)


class TestCellCenters:
    def test_first_and_last_centers(self):
        g = Grid.square(10.0, 2.0)
        centers = g.cell_centers
        assert np.allclose(centers[0], [1.0, 1.0])
        assert np.allclose(centers[-1], [9.0, 9.0])

    def test_center_count_matches(self):
        g = Grid.square(10.0, 1.0)
        assert g.cell_centers.shape == (100, 2)

    def test_all_centers_inside_field(self):
        g = Grid(13.0, 7.0, 2.0)
        c = g.cell_centers
        assert np.all(c[:, 0] > 0) and np.all(c[:, 1] > 0)


class TestIndexing:
    def test_roundtrip_center_of_cell_of(self):
        g = Grid.square(20.0, 2.0)
        centers = g.cell_centers
        idx = g.cell_of(centers)
        assert np.array_equal(idx, np.arange(g.n_cells))
        assert np.allclose(g.center_of(idx), centers)

    def test_points_clipped_into_field(self):
        g = Grid.square(10.0, 1.0)
        idx = g.cell_of(np.array([[-5.0, -5.0], [50.0, 50.0]]))
        assert idx[0] == 0
        assert idx[1] == g.n_cells - 1

    def test_center_of_rejects_out_of_range(self):
        g = Grid.square(10.0, 1.0)
        with pytest.raises(IndexError):
            g.center_of(np.array([g.n_cells]))

    def test_flat_order_is_row_major_in_y(self):
        g = Grid.square(4.0, 1.0)
        # cell (ix=1, iy=2) -> flat = 2*4+1 = 9
        assert g.cell_of(np.array([[1.5, 2.5]]))[0] == 9


class TestNeighborPairs:
    def test_edge_count(self):
        g = Grid.square(4.0, 1.0)  # 4x4 grid
        a, b = g.neighbor_pairs()
        # horizontal: 4 rows * 3, vertical: 3 * 4 = 24 total
        assert len(a) == 24

    def test_all_pairs_are_adjacent(self):
        g = Grid.square(6.0, 1.0)
        a, b = g.neighbor_pairs()
        ca, cb = g.center_of(a), g.center_of(b)
        d = np.hypot(ca[:, 0] - cb[:, 0], ca[:, 1] - cb[:, 1])
        assert np.allclose(d, g.cell_size)

    def test_a_less_than_b(self):
        g = Grid.square(5.0, 1.0)
        a, b = g.neighbor_pairs()
        assert np.all(a < b)


def test_max_quantization_error():
    g = Grid.square(10.0, 2.0)
    assert g.max_quantization_error == pytest.approx(np.sqrt(2.0))
