"""Tests for repro.geometry.apollonius — Eq. 3/4 and point classification."""

import math

import numpy as np
import pytest

from repro.geometry.apollonius import (
    apollonius_circle,
    classify_distances_pairwise,
    classify_points_pairwise,
    effective_uncertainty_constant,
    uncertain_band_halfwidth,
    uncertain_boundary_circles,
    uncertainty_constant,
)


class TestUncertaintyConstant:
    def test_matches_eq3_closed_form(self):
        eps, beta, sigma = 1.0, 4.0, 6.0
        a = math.log(10) / (10 * beta)
        expected = math.exp(a * eps + 0.5 * (a * math.sqrt(2) * sigma) ** 2)
        assert uncertainty_constant(eps, beta, sigma) == pytest.approx(expected)

    def test_exceeds_one_with_noise(self):
        assert uncertainty_constant(0.0, 4.0, 6.0) > 1.0

    def test_equals_one_in_ideal_limit(self):
        assert uncertainty_constant(0.0, 4.0, 0.0) == pytest.approx(1.0)

    def test_monotone_in_resolution(self):
        cs = [uncertainty_constant(e, 4.0, 6.0) for e in (0.5, 1.0, 2.0, 3.0)]
        assert all(a < b for a, b in zip(cs, cs[1:]))

    def test_monotone_decreasing_in_beta(self):
        cs = [uncertainty_constant(1.0, b, 6.0) for b in (2.0, 3.0, 4.0)]
        assert all(a > b for a, b in zip(cs, cs[1:]))

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            uncertainty_constant(-1.0, 4.0, 6.0)
        with pytest.raises(ValueError):
            uncertainty_constant(1.0, 0.0, 6.0)
        with pytest.raises(ValueError):
            uncertainty_constant(1.0, 4.0, -0.1)


class TestEffectiveUncertaintyConstant:
    def test_exceeds_paper_constant_for_multisample_groups(self):
        # groups keep flipping farther out than the single-expectation Eq. 3
        c_paper = uncertainty_constant(1.0, 4.0, 6.0)
        c_eff = effective_uncertainty_constant(1.0, 4.0, 6.0, k=5)
        assert c_eff > c_paper

    def test_grows_with_k(self):
        cs = [effective_uncertainty_constant(1.0, 4.0, 6.0, k=k) for k in (2, 5, 9)]
        assert all(a < b for a, b in zip(cs, cs[1:]))

    def test_grows_with_sigma(self):
        cs = [effective_uncertainty_constant(1.0, 4.0, s, k=5) for s in (2.0, 6.0, 10.0)]
        assert all(a < b for a, b in zip(cs, cs[1:]))

    def test_noiseless_limit_reduces_to_resolution_band(self):
        c = effective_uncertainty_constant(1.0, 4.0, 0.0, k=5)
        assert c == pytest.approx(10 ** (1.0 / 40.0))

    def test_always_above_one(self):
        assert effective_uncertainty_constant(0.0, 4.0, 0.0, k=1) > 1.0

    def test_rejects_bad_capture_prob(self):
        with pytest.raises(ValueError, match="capture_prob"):
            effective_uncertainty_constant(1.0, 4.0, 6.0, k=5, capture_prob=1.5)


class TestApolloniusCircle:
    def test_matches_paper_eq4(self):
        # nodes at (d, 0) and (-d, 0); Eq. 4 gives centre and radius in d units
        d, c = 10.0, 1.5
        circle = apollonius_circle(np.array([-d, 0.0]), np.array([d, 0.0]), c)
        assert circle.cx == pytest.approx((c**2 + 1) / (c**2 - 1) * d)
        assert circle.cy == pytest.approx(0.0)
        assert circle.r == pytest.approx(2 * c * d / (c**2 - 1))

    def test_points_on_circle_satisfy_ratio(self):
        a = np.array([0.0, 0.0])
        b = np.array([8.0, 0.0])
        ratio = 2.0
        circle = apollonius_circle(a, b, ratio)
        for p in circle.circumference_points(32):
            da = np.hypot(*(p - a))
            db = np.hypot(*(p - b))
            assert da / db == pytest.approx(ratio, rel=1e-9)

    def test_ratio_below_one_encloses_near_point(self):
        a = np.array([0.0, 0.0])
        b = np.array([10.0, 0.0])
        circle = apollonius_circle(a, b, 0.5)
        assert circle.contains(a[None, :])[0]
        assert not circle.contains(b[None, :])[0]

    def test_unit_ratio_rejected(self):
        with pytest.raises(ValueError, match="bisector"):
            apollonius_circle(np.zeros(2), np.ones(2), 1.0)

    def test_nonpositive_ratio_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            apollonius_circle(np.zeros(2), np.ones(2), -2.0)


class TestUncertainBoundaryCircles:
    def test_axisymmetric_about_bisector(self):
        p_i = np.array([-5.0, 0.0])
        p_j = np.array([5.0, 0.0])
        near_i, near_j = uncertain_boundary_circles(p_i, p_j, 1.4)
        # bisector is x = 0: centres mirror, radii equal
        assert near_i.cx == pytest.approx(-near_j.cx)
        assert near_i.r == pytest.approx(near_j.r)

    def test_requires_c_above_one(self):
        with pytest.raises(ValueError, match="exceed 1"):
            uncertain_boundary_circles(np.zeros(2), np.ones(2), 1.0)


class TestClassification:
    def test_three_regions_on_axis(self):
        # nodes at x=0 and x=10, C=1.5; on-axis points span all three values
        nodes = np.array([[0.0, 0.0], [10.0, 0.0]])
        pts = np.array([[1.0, 0.0], [5.0, 0.0], [9.0, 0.0]])
        sig = classify_points_pairwise(pts, nodes, 1.5)
        assert sig[:, 0].tolist() == [1, 0, -1]

    def test_symmetric_midpoint_is_uncertain(self):
        nodes = np.array([[0.0, 0.0], [10.0, 0.0]])
        sig = classify_points_pairwise(np.array([[5.0, 3.0]]), nodes, 1.2)
        assert sig[0, 0] == 0

    def test_values_in_valid_set(self, four_nodes, rng):
        pts = rng.uniform(0, 100, (200, 2))
        sig = classify_points_pairwise(pts, four_nodes, 1.3)
        assert set(np.unique(sig)).issubset({-1, 0, 1})

    def test_c_equal_one_gives_almost_no_zeros(self, four_nodes, rng):
        pts = rng.uniform(0, 100, (500, 2))
        sig = classify_points_pairwise(pts, four_nodes, 1.0)
        assert (sig == 0).mean() < 0.01

    def test_chunking_invariant(self, four_nodes, rng):
        pts = rng.uniform(0, 100, (50, 2))
        a = classify_points_pairwise(pts, four_nodes, 1.4, chunk_pairs=1)
        b = classify_points_pairwise(pts, four_nodes, 1.4, chunk_pairs=1000)
        assert np.array_equal(a, b)

    def test_sensing_range_overrides_band(self):
        # node j is out of range from the point: pair forced to +1 even though
        # the distance ratio is inside the uncertain band
        nodes = np.array([[0.0, 0.0], [50.0, 0.0]])
        pt = np.array([[24.0, 0.0]])  # d_i=24, d_j=26 — ratio inside band for C=1.5
        free = classify_points_pairwise(pt, nodes, 1.5)
        gated = classify_points_pairwise(pt, nodes, 1.5, sensing_range=25.0)
        assert free[0, 0] == 0
        assert gated[0, 0] == 1

    def test_sensing_range_both_out_is_zero(self):
        nodes = np.array([[0.0, 0.0], [10.0, 0.0]])
        pt = np.array([[500.0, 500.0]])
        sig = classify_points_pairwise(pt, nodes, 1.5, sensing_range=25.0)
        assert sig[0, 0] == 0

    def test_classify_distances_rejects_c_below_one(self):
        with pytest.raises(ValueError):
            classify_distances_pairwise(np.ones(3), np.ones(3), 0.9)


class TestUncertainBandHalfwidth:
    def test_zero_width_at_c_one(self):
        assert uncertain_band_halfwidth(10.0, 1.0) == pytest.approx(0.0)

    def test_grows_with_c(self):
        ws = [uncertain_band_halfwidth(10.0, c) for c in (1.1, 1.5, 2.0)]
        assert all(a < b for a, b in zip(ws, ws[1:]))

    def test_scales_linearly_with_separation(self):
        w1 = uncertain_band_halfwidth(10.0, 1.5)
        w2 = uncertain_band_halfwidth(20.0, 1.5)
        assert w2 == pytest.approx(2 * w1)

    def test_matches_axis_crossings(self):
        # verify against explicit classification along the pair axis
        length, c = 20.0, 1.6
        nodes = np.array([[0.0, 0.0], [length, 0.0]])
        xs = np.linspace(0.01, length - 0.01, 4001)
        pts = np.column_stack([xs, np.zeros_like(xs)])
        sig = classify_points_pairwise(pts, nodes, c)[:, 0]
        band = xs[sig == 0]
        measured_halfwidth = (band.max() - band.min()) / 2
        assert measured_halfwidth == pytest.approx(
            uncertain_band_halfwidth(length, c), abs=0.02
        )
