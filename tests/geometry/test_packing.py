"""Tests for repro.geometry.packing — 2-bit signature packing.

The load-bearing property is *order preservation*: comparing packed rows
as raw bytes must order (and therefore group) rows exactly like comparing
the dense int8 rows, because ``_unique_rows`` derives face identities and
face *order* from that comparison.  If packing broke it, packed builds
would silently renumber faces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.packing import (
    PackedSignatures,
    pack_signatures,
    packed_row_bytes,
    unpack_signatures,
)

CODES = (-1, 0, 1)


def _random_signatures(rng, n_rows, n_pairs):
    return rng.choice(np.array(CODES, dtype=np.int8), size=(n_rows, n_pairs))


class TestRoundTrip:
    @pytest.mark.parametrize("n_pairs", [1, 2, 3, 4, 5, 7, 8, 9, 190])
    def test_exact(self, n_pairs):
        rng = np.random.default_rng(n_pairs)
        sigs = _random_signatures(rng, 50, n_pairs)
        packed = pack_signatures(sigs)
        assert packed.shape == (50, packed_row_bytes(n_pairs))
        assert np.array_equal(unpack_signatures(packed, n_pairs), sigs)

    def test_all_code_combinations(self):
        # every 2-pair combination of codes, exhaustively
        sigs = np.array(
            [[a, b] for a in CODES for b in CODES], dtype=np.int8
        )
        assert np.array_equal(unpack_signatures(pack_signatures(sigs), 2), sigs)

    def test_empty_rows(self):
        sigs = np.empty((0, 5), dtype=np.int8)
        packed = pack_signatures(sigs)
        assert packed.shape == (0, packed_row_bytes(5))
        assert unpack_signatures(packed, 5).shape == (0, 5)

    def test_float32_unpack_matches_int8(self):
        rng = np.random.default_rng(0)
        sigs = _random_signatures(rng, 20, 11)
        packed = pack_signatures(sigs)
        f32 = unpack_signatures(packed, 11, dtype=np.float32)
        assert f32.dtype == np.float32
        assert np.array_equal(f32, sigs.astype(np.float32))

    def test_rejects_invalid_codes(self):
        with pytest.raises(ValueError):
            pack_signatures(np.array([[2, 0]], dtype=np.int8))


class TestOrderPreservation:
    @pytest.mark.parametrize("n_pairs", [3, 4, 6, 190])
    def test_byte_order_equals_dense_order(self, n_pairs):
        """lexsort on packed bytes == lexsort on dense rows (as unsigned)."""
        rng = np.random.default_rng(99 + n_pairs)
        sigs = _random_signatures(rng, 200, n_pairs)
        packed = pack_signatures(sigs)
        # np.unique on void views is how the face builder groups rows
        dense_view = np.ascontiguousarray(sigs).view(
            np.dtype((np.void, sigs.dtype.itemsize * n_pairs))
        ).ravel()
        packed_view = np.ascontiguousarray(packed).view(
            np.dtype((np.void, packed.shape[1]))
        ).ravel()
        _, dense_first, dense_inv = np.unique(
            dense_view, return_index=True, return_inverse=True
        )
        _, packed_first, packed_inv = np.unique(
            packed_view, return_index=True, return_inverse=True
        )
        assert np.array_equal(dense_first, packed_first)
        assert np.array_equal(dense_inv, packed_inv)

    def test_padding_bits_are_zero(self):
        # identical signatures must pack identically regardless of row
        # history; padding lanes are deterministic (zero)
        sigs = np.array([[1, -1, 0, 1, -1]], dtype=np.int8)
        a = pack_signatures(sigs)
        b = pack_signatures(np.vstack([sigs, sigs]))
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(b[0], b[1])


class TestPackedSignatures:
    def test_from_dense_and_back(self, rng):
        sigs = _random_signatures(rng, 30, 10)
        store = PackedSignatures.from_dense(sigs)
        assert store.n_rows == 30
        assert store.n_pairs == 10
        assert np.array_equal(store.dense(), sigs)
        assert store.nbytes == 30 * packed_row_bytes(10)

    def test_memory_ratio(self, rng):
        sigs = _random_signatures(rng, 100, 190)  # n=20 deployment shape
        store = PackedSignatures.from_dense(sigs)
        assert sigs.nbytes / store.nbytes >= 3.5

    def test_rows_subset(self, rng):
        sigs = _random_signatures(rng, 40, 9)
        store = PackedSignatures.from_dense(sigs)
        idx = np.array([3, 0, 17])
        assert np.array_equal(store.rows(idx), sigs[idx])

    def test_equality(self, rng):
        sigs = _random_signatures(rng, 10, 6)
        assert PackedSignatures.from_dense(sigs) == PackedSignatures.from_dense(sigs)
        other = sigs.copy()
        other[0, 0] = -other[0, 0] or 1
        assert PackedSignatures.from_dense(sigs) != PackedSignatures.from_dense(other)
