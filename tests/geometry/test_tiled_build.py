"""Tests for tiled / parallel / packed face-map construction.

The contract is absolute: ``build_face_map(..., workers=N, tile_cells=M,
packed=...)`` must produce a map *bit-identical* to the serial builder
for every combination — same signatures, same face numbering, same
adjacency CSR.  Tiling only changes which process classifies which rows;
classification is elementwise per cell, so any divergence is a bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.faces import build_certain_face_map, build_face_map
from repro.geometry.packing import PackedSignatures
from repro.geometry.tiling import classify_cells_tiled, default_tile_cells

FIELDS = ("signatures", "centroids", "cell_face", "cell_counts", "adj_indptr", "adj_indices")


def _assert_identical(a, b):
    for f in FIELDS:
        assert np.array_equal(getattr(a, f), getattr(b, f)), f
    assert a.signatures.dtype == b.signatures.dtype
    assert a.n_faces == b.n_faces


class TestTiledUncertain:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tile_cells": 1},
            {"tile_cells": 7},
            {"tile_cells": 100_000},  # one tile covering everything
            {"workers": 1, "tile_cells": 37},
            {"workers": 2},
            {"workers": 2, "tile_cells": 53},
            {"packed": True},
            {"workers": 2, "packed": True},
        ],
    )
    def test_bit_identical_to_serial(self, four_nodes, small_grid, face_map, kwargs):
        tiled = build_face_map(four_nodes, small_grid, 1.5, **kwargs)
        _assert_identical(face_map, tiled)

    def test_sensing_range_respected(self, four_nodes, small_grid):
        base = build_face_map(four_nodes, small_grid, 1.5, sensing_range=45.0)
        tiled = build_face_map(
            four_nodes, small_grid, 1.5, sensing_range=45.0, workers=2, tile_cells=41
        )
        _assert_identical(base, tiled)

    def test_split_components_respected(self, four_nodes, small_grid):
        base = build_face_map(four_nodes, small_grid, 1.5, split_components=True)
        tiled = build_face_map(
            four_nodes, small_grid, 1.5, split_components=True, workers=2, packed=True
        )
        _assert_identical(base, tiled)


class TestTiledCertain:
    @pytest.mark.parametrize("kwargs", [{"tile_cells": 11}, {"workers": 2}, {"packed": True}])
    def test_bit_identical_to_serial(self, four_nodes, small_grid, certain_map, kwargs):
        tiled = build_certain_face_map(four_nodes, small_grid, **kwargs)
        _assert_identical(certain_map, tiled)


class TestClassifyCellsTiled:
    def test_packed_output_matches_dense(self, four_nodes, small_grid):
        dense = classify_cells_tiled(
            small_grid, four_nodes, c=1.5, kind="uncertain",
            sensing_range=None, chunk_pairs=None, workers=1, tile_cells=29, packed=False,
        )
        packed = classify_cells_tiled(
            small_grid, four_nodes, c=1.5, kind="uncertain",
            sensing_range=None, chunk_pairs=None, workers=1, tile_cells=29, packed=True,
        )
        assert isinstance(packed, PackedSignatures)
        assert np.array_equal(packed.dense(), dense)

    def test_parallel_matches_serial(self, four_nodes, small_grid):
        serial = classify_cells_tiled(
            small_grid, four_nodes, c=1.5, kind="uncertain",
            sensing_range=None, chunk_pairs=None, workers=1, tile_cells=None, packed=False,
        )
        par = classify_cells_tiled(
            small_grid, four_nodes, c=1.5, kind="uncertain",
            sensing_range=None, chunk_pairs=None, workers=3, tile_cells=97, packed=False,
        )
        assert np.array_equal(serial, par)


class TestDefaultTileCells:
    def test_covers_all_cells(self):
        assert default_tile_cells(100, 6, 1) >= 1
        assert default_tile_cells(1, 6, 8) == 1

    def test_scales_down_with_workers(self):
        few = default_tile_cells(10_000, 190, 1)
        many = default_tile_cells(10_000, 190, 8)
        assert many <= few


class TestPackedBackedFaceMap:
    def test_lazy_dense_unpack(self, four_nodes, small_grid, face_map):
        packed_map = build_face_map(four_nodes, small_grid, 1.5, packed=True)
        store = packed_map.packed_store()
        assert isinstance(store, PackedSignatures)
        # dropping the dense matrix and unpacking on demand is exact
        shrunk = face_map.replace(signatures=None, packed=store)
        assert np.array_equal(shrunk.signatures, face_map.signatures)

    def test_storage_accounting(self, four_nodes, small_grid):
        # 6 pairs -> 2 packed bytes/row (exact); the asymptotic ratio is 4x
        packed_map = build_face_map(four_nodes, small_grid, 1.5, packed=True)
        dense_map = build_face_map(four_nodes, small_grid, 1.5)
        assert packed_map.packed_store().nbytes == dense_map.n_faces * 2
        assert dense_map.signatures.nbytes == dense_map.n_faces * 6

    def test_matching_identical(self, face_map, rng):
        packed_map = face_map.replace(
            signatures=None, packed=PackedSignatures.from_dense(face_map.signatures)
        )
        for idx in rng.integers(0, face_map.n_faces, size=17):
            vec = face_map.signatures[idx]
            assert np.array_equal(
                face_map.distances_to(vec), packed_map.distances_to(vec)
            )


class TestChunkedMatching:
    """Satellite: distances_to_many / match_many chunk over the trace axis."""

    def _vectors(self, face_map, rng, n):
        idx = rng.integers(0, face_map.n_faces, size=n)
        return face_map.signatures[idx].astype(np.float32)

    @pytest.mark.parametrize("chunk_rows", [1, 3, 7, 10_000])
    def test_distances_to_many_invariant(self, face_map, rng, chunk_rows):
        V = self._vectors(face_map, rng, 23)
        base = face_map.distances_to_many(V)
        chunked = face_map.distances_to_many(V, chunk_rows=chunk_rows)
        assert np.array_equal(base, chunked, equal_nan=True)

    @pytest.mark.parametrize("chunk_rows", [1, 5, 10_000])
    def test_match_many_invariant(self, face_map, rng, chunk_rows):
        V = self._vectors(face_map, rng, 23)
        base_ties, base_best = face_map.match_many(V)
        ties, best = face_map.match_many(V, chunk_rows=chunk_rows)
        assert np.array_equal(base_best, best)
        assert len(base_ties) == len(ties)
        for a, b in zip(base_ties, ties):
            assert np.array_equal(a, b)

    def test_default_chunk_is_bounded(self, face_map):
        # the default must keep the GEMM temp under the documented cap
        chunk = face_map._resolve_chunk_rows(None)
        assert chunk * face_map.n_faces * 4 <= 256 * 1024 * 1024
        assert chunk >= 1
