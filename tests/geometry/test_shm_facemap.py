"""Tests for repro.geometry.shm — zero-copy shared-memory face maps.

Two contracts: an attached map is *bit-identical* to the published one
(read-only views over the same bytes), and segments can never outlive
their creator — normal exit, crash, and KeyboardInterrupt all leave
``/dev/shm`` clean.  Leak checks scan ``/dev/shm`` for the module's
``reprofm`` prefix directly, not just the bookkeeping dict.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.geometry.cache import face_map_cache_key
from repro.geometry.shm import (
    SEGMENT_PREFIX,
    SharedFaceMap,
    SharedFaceMapSet,
    clear_shared_face_maps,
    install_shared_face_maps,
    owned_segment_names,
    shared_face_map,
)

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a POSIX /dev/shm"
)


def _shm_entries() -> set[str]:
    return {f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX)}


@pytest.fixture(autouse=True)
def _clean_worker_registry():
    clear_shared_face_maps()
    before = _shm_entries()
    yield
    clear_shared_face_maps()
    assert _shm_entries() <= before, "test leaked /dev/shm segments"


def _key(four_nodes, small_grid):
    return face_map_cache_key(four_nodes, small_grid, 1.5)


class TestSharedFaceMap:
    def test_publish_attach_bit_identical(self, four_nodes, small_grid, face_map):
        handle = SharedFaceMap.create(face_map, _key(four_nodes, small_grid))
        try:
            attached = SharedFaceMap.attach(handle.manifest)
            try:
                fm = attached.face_map()
                assert np.array_equal(fm.signatures, face_map.signatures)
                assert np.array_equal(fm.nodes, face_map.nodes)
                assert np.array_equal(fm.centroids, face_map.centroids)
                assert np.array_equal(fm.cell_face, face_map.cell_face)
                assert np.array_equal(fm.cell_counts, face_map.cell_counts)
                assert np.array_equal(fm.adj_indptr, face_map.adj_indptr)
                assert np.array_equal(fm.adj_indices, face_map.adj_indices)
                assert fm.c == face_map.c
            finally:
                attached.close()
        finally:
            handle.close()

    def test_views_are_read_only(self, four_nodes, small_grid, face_map):
        handle = SharedFaceMap.create(face_map, _key(four_nodes, small_grid))
        try:
            fm = handle.face_map()
            with pytest.raises(ValueError):
                fm.cell_face[0] = 0
            with pytest.raises(ValueError):
                fm.packed_store().data[0, 0] = 0
        finally:
            handle.close()

    def test_close_unlinks_dev_shm_entry(self, four_nodes, small_grid, face_map):
        handle = SharedFaceMap.create(face_map, _key(four_nodes, small_grid))
        name = handle.manifest["name"]
        assert name in _shm_entries()
        assert name in owned_segment_names()
        handle.close()
        assert name not in _shm_entries()
        assert name not in owned_segment_names()

    def test_matching_identical_through_shm(self, four_nodes, small_grid, face_map, rng):
        handle = SharedFaceMap.create(face_map, _key(four_nodes, small_grid))
        try:
            fm = handle.face_map()
            V = face_map.signatures[
                rng.integers(0, face_map.n_faces, size=9)
            ].astype(np.float32)
            assert np.array_equal(
                face_map.distances_to_many(V), fm.distances_to_many(V)
            )
        finally:
            handle.close()


class TestSharedFaceMapSet:
    def test_context_manager_cleans_up(self, four_nodes, small_grid, face_map):
        with SharedFaceMapSet() as shared:
            shared.publish("k1", face_map)
            shared.publish("k1", face_map)  # idempotent
            assert len(shared) == 1
            assert "k1" in shared
            names = {m["name"] for m in shared.manifests()}
            assert names <= _shm_entries()
        assert not names & _shm_entries()
        assert owned_segment_names() == []

    def test_cleanup_on_exception(self, face_map):
        with pytest.raises(RuntimeError):
            with SharedFaceMapSet() as shared:
                shared.publish("k1", face_map)
                names = {m["name"] for m in shared.manifests()}
                raise RuntimeError("boom")
        assert not names & _shm_entries()


class TestWorkerRegistry:
    def test_lookup_returns_fresh_views(self, face_map):
        with SharedFaceMapSet() as shared:
            shared.publish("k1", face_map)
            install_shared_face_maps(shared.manifests())
            a = shared_face_map("k1")
            b = shared_face_map("k1")
            assert a is not None and b is not None
            assert a is not b  # fresh view per lookup (soft-sig isolation)
            assert np.array_equal(a.signatures, face_map.signatures)
            clear_shared_face_maps()

    def test_unknown_key_returns_none(self):
        assert shared_face_map("nope") is None

    def test_stale_manifest_falls_back_to_none(self, face_map):
        shared = SharedFaceMapSet()
        shared.publish("k1", face_map)
        manifests = shared.manifests()
        shared.close()  # creator unlinks before the worker ever attaches
        install_shared_face_maps(manifests)
        assert shared_face_map("k1") is None  # graceful: caller rebuilds


class TestProcessLifecycle:
    """Segments die with their creator — even on crash or SIGINT."""

    _SCRIPT = textwrap.dedent(
        """
        import numpy as np
        from repro.geometry.faces import build_face_map
        from repro.geometry.grid import Grid
        from repro.geometry.shm import SharedFaceMapSet

        nodes = np.array([[30.0, 30.0], [70.0, 30.0], [30.0, 70.0], [70.0, 70.0]])
        fm = build_face_map(nodes, Grid.square(100.0, 4.0), 1.5)
        shared = SharedFaceMapSet()
        shared.publish("k", fm)
        print(shared.manifests()[0]["name"], flush=True)
        MODE
        """
    )

    def _run(self, mode: str) -> "tuple[str, int]":
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", self._SCRIPT.replace("MODE", mode)],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        name = proc.stdout.strip().splitlines()[0]
        assert name.startswith(SEGMENT_PREFIX)
        return name, proc.returncode

    def test_normal_exit_unlinks_via_atexit(self):
        name, rc = self._run("")  # no explicit close: atexit must cover it
        assert rc == 0
        assert name not in _shm_entries()

    def test_unhandled_exception_unlinks(self):
        name, rc = self._run("raise RuntimeError('worker crashed')")
        assert rc != 0
        assert name not in _shm_entries()

    def test_keyboard_interrupt_unlinks(self):
        name, rc = self._run("raise KeyboardInterrupt")
        assert rc != 0
        assert name not in _shm_entries()
