"""Tests for the on-disk face-map cache format bump (v1 dense -> v2 packed).

PR 1's ``.npz`` entries stored the dense int8 signature matrix and no
``format`` marker.  v2 stores the 2-bit packed form.  The migration
contract: a v1 file still loads (bit-identically), is transparently
rewritten as v2 on first touch, and unknown *future* formats are treated
as a miss rather than misparsed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.cache import FaceMapCache, face_map_cache_key
from repro.geometry.faces import build_face_map

V1_FIELDS = ("nodes", "centroids", "cell_face", "cell_counts", "adj_indptr", "adj_indices")


def _write_v1_entry(path, fm):
    """Write an entry exactly as the PR-1 cache did: dense, no format key."""
    arrays = {name: getattr(fm, name) for name in V1_FIELDS}
    arrays["signatures"] = fm.signatures
    arrays["grid_spec"] = np.array([fm.grid.width, fm.grid.height, fm.grid.cell_size])
    arrays["c"] = np.array([fm.c])
    np.savez_compressed(path, **arrays)


@pytest.fixture
def disk_cache(tmp_path):
    return FaceMapCache(maxsize=4, disk_dir=tmp_path)


def _assert_identical(a, b):
    assert np.array_equal(a.signatures, b.signatures)
    assert a.signatures.dtype == b.signatures.dtype
    for f in V1_FIELDS:
        assert np.array_equal(getattr(a, f), getattr(b, f)), f


class TestV1Migration:
    def test_v1_entry_loads_bit_identically(
        self, four_nodes, small_grid, face_map, disk_cache, tmp_path
    ):
        key = face_map_cache_key(four_nodes, small_grid, 1.5)
        _write_v1_entry(tmp_path / f"facemap-{key}.npz", face_map)

        loaded = disk_cache.get_or_build(four_nodes, small_grid, 1.5)
        _assert_identical(face_map, loaded)
        assert disk_cache.stats()["disk_hits"] == 1
        assert disk_cache.stats()["misses"] == 0

    def test_v1_entry_is_rewritten_as_v2(
        self, four_nodes, small_grid, face_map, disk_cache, tmp_path
    ):
        key = face_map_cache_key(four_nodes, small_grid, 1.5)
        path = tmp_path / f"facemap-{key}.npz"
        _write_v1_entry(path, face_map)

        disk_cache.get_or_build(four_nodes, small_grid, 1.5)
        assert disk_cache.stats()["migrations"] == 1
        with np.load(path) as data:
            assert int(data["format"][0]) == 2
            assert "signatures_packed" in data.files
            assert "signatures" not in data.files

        # the migrated file round-trips bit-identically through a cold cache
        cold = FaceMapCache(maxsize=4, disk_dir=tmp_path)
        _assert_identical(face_map, cold.get_or_build(four_nodes, small_grid, 1.5))
        assert cold.stats()["migrations"] == 0  # already v2

    def test_v2_stores_fewer_signature_bytes(
        self, four_nodes, small_grid, face_map, disk_cache, tmp_path
    ):
        key = face_map_cache_key(four_nodes, small_grid, 1.5)
        path = tmp_path / f"facemap-{key}.npz"
        _write_v1_entry(path, face_map)
        disk_cache.get_or_build(four_nodes, small_grid, 1.5)
        with np.load(path) as data:
            assert data["signatures_packed"].nbytes < face_map.signatures.nbytes

    def test_future_format_treated_as_miss(
        self, four_nodes, small_grid, face_map, disk_cache, tmp_path
    ):
        key = face_map_cache_key(four_nodes, small_grid, 1.5)
        path = tmp_path / f"facemap-{key}.npz"
        _write_v1_entry(path, face_map)
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["format"] = np.array([99], dtype=np.int64)
        np.savez_compressed(path, **arrays)

        rebuilt = disk_cache.get_or_build(four_nodes, small_grid, 1.5)
        assert disk_cache.stats()["misses"] == 1
        _assert_identical(face_map, rebuilt)

    def test_fresh_writes_are_v2(self, four_nodes, small_grid, disk_cache, tmp_path):
        disk_cache.get_or_build(four_nodes, small_grid, 1.5)
        key = face_map_cache_key(four_nodes, small_grid, 1.5)
        with np.load(tmp_path / f"facemap-{key}.npz") as data:
            assert int(data["format"][0]) == 2
            loaded = build_face_map(four_nodes, small_grid, 1.5)
            from repro.geometry.packing import unpack_signatures

            assert np.array_equal(
                unpack_signatures(data["signatures_packed"], int(data["n_pairs"][0])),
                loaded.signatures,
            )
