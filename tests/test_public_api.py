"""The public API surface stays importable and coherent."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.geometry",
        "repro.rf",
        "repro.network",
        "repro.mobility",
        "repro.baselines",
        "repro.analysis",
        "repro.sim",
        "repro.testbed",
        "repro.faultlab",
    ],
)
def test_subpackage_all_exports(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.__all__ lists missing attribute {name}"


def test_quickstart_surface():
    """The objects the README quickstart uses exist and compose."""
    from repro import SimulationConfig, make_scenario, run_all_trackers

    cfg = SimulationConfig(n_sensors=5, duration_s=3.0)
    scenario = make_scenario(cfg, seed=0)
    results = run_all_trackers(scenario, ["fttt"], 1, n_rounds=2)
    assert "fttt" in results
