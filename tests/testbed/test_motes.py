"""Tests for repro.testbed.motes and repro.testbed.gateway."""

import numpy as np
import pytest

from repro.rf.acoustic import AcousticToneChannel
from repro.testbed.gateway import Mib520Gateway
from repro.testbed.motes import IrisMote, MoteReading


@pytest.fixture
def quiet_channel():
    return AcousticToneChannel(noise_sigma_db=0.0)


class TestIrisMote:
    def test_sense_returns_reading(self, quiet_channel, rng):
        m = IrisMote(0, np.array([0.0, 0.0]), adc_step_db=0.0)
        r = m.sense(np.array([3.0, 4.0]), quiet_channel, 1.5, rng)
        assert isinstance(r, MoteReading)
        assert r.mote_id == 0
        assert r.t == 1.5
        assert r.level_db == pytest.approx(quiet_channel.level_db(np.array([5.0]))[0])

    def test_failed_mote_returns_none(self, quiet_channel, rng):
        m = IrisMote(0, np.zeros(2), failed=True)
        assert m.sense(np.ones(2), quiet_channel, 0.0, rng) is None

    def test_adc_quantization(self, quiet_channel, rng):
        m = IrisMote(0, np.zeros(2), adc_step_db=0.5)
        r = m.sense(np.array([7.0, 0.0]), quiet_channel, 0.0, rng)
        assert r.level_db % 0.5 == pytest.approx(0.0, abs=1e-9)

    def test_gain_offset_shifts_reading(self, quiet_channel, rng):
        base = IrisMote(0, np.zeros(2), adc_step_db=0.0, gain_offset_db=0.0)
        hot = IrisMote(1, np.zeros(2), adc_step_db=0.0, gain_offset_db=3.0)
        p = np.array([10.0, 0.0])
        r0 = base.sense(p, quiet_channel, 0.0, rng)
        r1 = hot.sense(p, quiet_channel, 0.0, rng)
        assert r1.level_db - r0.level_db == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            IrisMote(-1, np.zeros(2))
        with pytest.raises(ValueError):
            IrisMote(0, np.zeros(2), adc_step_db=-0.1)


class TestGateway:
    def make_readings(self, k, n, level=50.0):
        return [
            [MoteReading(mote_id=j, t=float(i), level_db=level) for j in range(n)]
            for i in range(k)
        ]

    def test_collect_full_round(self, rng):
        gw = Mib520Gateway(n_motes=4, frame_loss_p=0.0)
        mat = gw.collect_round(self.make_readings(3, 4), rng)
        assert mat.shape == (3, 4)
        assert not np.isnan(mat).any()
        assert gw.frames_received == 12

    def test_none_readings_leave_nan(self, rng):
        gw = Mib520Gateway(n_motes=3, frame_loss_p=0.0)
        readings = self.make_readings(2, 3)
        readings[0][1] = None
        mat = gw.collect_round(readings, rng)
        assert np.isnan(mat[0, 1])
        assert not np.isnan(mat[1, 1])

    def test_full_loss(self, rng):
        gw = Mib520Gateway(n_motes=3, frame_loss_p=1.0)
        mat = gw.collect_round(self.make_readings(2, 3), rng)
        assert np.isnan(mat).all()
        assert gw.loss_rate == 1.0

    def test_statistical_loss_rate(self, rng):
        gw = Mib520Gateway(n_motes=10, frame_loss_p=0.2)
        for _ in range(100):
            gw.collect_round(self.make_readings(5, 10), rng)
        assert gw.loss_rate == pytest.approx(0.2, abs=0.02)

    def test_bad_mote_id_rejected(self, rng):
        gw = Mib520Gateway(n_motes=2, frame_loss_p=0.0)
        readings = [[MoteReading(mote_id=5, t=0.0, level_db=1.0)]]
        with pytest.raises(ValueError, match="out of range"):
            gw.collect_round(readings, rng)

    def test_empty_round_rejected(self, rng):
        gw = Mib520Gateway(n_motes=2)
        with pytest.raises(ValueError):
            gw.collect_round([], rng)

    def test_validation(self):
        with pytest.raises(ValueError):
            Mib520Gateway(n_motes=1)
        with pytest.raises(ValueError):
            Mib520Gateway(n_motes=3, frame_loss_p=2.0)
