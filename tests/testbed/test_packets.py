"""Tests for repro.testbed.packets — the report-frame codec."""

import numpy as np
import pytest

from repro.testbed.packets import (
    ReportFrame,
    corrupt,
    crc16,
    decode_frame,
    encode_frame,
)


class TestCrc:
    def test_known_vector(self):
        # CRC-16-CCITT of "123456789" with init 0xFFFF is 0x29B1
        assert crc16(b"123456789") == 0x29B1

    def test_detects_single_bit_flip(self):
        data = b"hello sensor network"
        good = crc16(data)
        bad = bytes([data[0] ^ 0x01]) + data[1:]
        assert crc16(bad) != good


class TestRoundtrip:
    def test_encode_decode(self):
        frame = ReportFrame(mote_id=3, sequence=1234, levels_db=(55.5, 60.25, -3.125))
        decoded = decode_frame(encode_frame(frame))
        assert decoded is not None
        assert decoded.mote_id == 3
        assert decoded.sequence == 1234
        assert decoded.levels_db == frame.levels_db  # all values on the 1/16 dB grid

    def test_quantization_to_sixteenth_db(self):
        frame = ReportFrame(mote_id=0, sequence=0, levels_db=(50.01,))
        decoded = decode_frame(encode_frame(frame))
        assert decoded.levels_db[0] == pytest.approx(50.0, abs=1 / 16)

    def test_extreme_levels_clamped(self):
        frame = ReportFrame(mote_id=0, sequence=0, levels_db=(-500.0, 500.0))
        decoded = decode_frame(encode_frame(frame))
        assert decoded is not None
        assert decoded.levels_db[0] <= decoded.levels_db[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            ReportFrame(mote_id=300, sequence=0, levels_db=(1.0,))
        with pytest.raises(ValueError):
            ReportFrame(mote_id=0, sequence=70_000, levels_db=(1.0,))
        with pytest.raises(ValueError):
            ReportFrame(mote_id=0, sequence=0, levels_db=())


class TestDecodeRobustness:
    def test_rejects_short_data(self):
        assert decode_frame(b"\x7e\x00") is None

    def test_rejects_bad_sync(self):
        frame = encode_frame(ReportFrame(0, 0, (1.0,)))
        assert decode_frame(b"\x00" + frame[1:]) is None

    def test_rejects_corrupted_crc(self):
        frame = bytearray(encode_frame(ReportFrame(0, 0, (1.0, 2.0))))
        frame[6] ^= 0xFF
        assert decode_frame(bytes(frame)) is None

    def test_rejects_truncated(self):
        frame = encode_frame(ReportFrame(0, 0, (1.0, 2.0, 3.0)))
        assert decode_frame(frame[:-3]) is None


class TestCorrupt:
    def test_zero_ber_is_identity(self, rng):
        data = encode_frame(ReportFrame(1, 2, (3.0,)))
        assert corrupt(data, 0.0, rng) == data

    def test_high_ber_breaks_crc(self, rng):
        data = encode_frame(ReportFrame(1, 2, (3.0, 4.0, 5.0)))
        failures = sum(
            decode_frame(corrupt(data, 0.05, rng)) is None for _ in range(200)
        )
        assert failures > 150  # ~every frame has flips at this BER and length

    def test_loss_rate_matches_ber_theory(self, rng):
        """Frame survival ~ (1-BER)^bits (undetected errors are rare)."""
        data = encode_frame(ReportFrame(1, 2, tuple(float(i) for i in range(5))))
        ber = 0.002
        n_bits = len(data) * 8
        survived = sum(
            decode_frame(corrupt(data, ber, rng)) is not None for _ in range(2000)
        )
        expected = (1 - ber) ** n_bits
        assert survived / 2000 == pytest.approx(expected, abs=0.05)

    def test_ber_validation(self, rng):
        with pytest.raises(ValueError):
            corrupt(b"abc", 1.5, rng)
