"""Tests for repro.testbed.firmware — the mote report loop."""

import numpy as np
import pytest

from repro.testbed.firmware import (
    FirmwareConfig,
    GatewayCollector,
    MoteFirmware,
    run_reporting_epoch,
)


@pytest.fixture
def cfg():
    return FirmwareConfig(k=3, sample_period_s=0.1, max_tries=3, queue_depth=2)


class TestFirmwareConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FirmwareConfig(k=0)
        with pytest.raises(ValueError):
            FirmwareConfig(sample_period_s=0.0)
        with pytest.raises(ValueError):
            FirmwareConfig(max_tries=0)


class TestMoteFirmware:
    def test_enqueue_assigns_sequence(self, cfg):
        m = MoteFirmware(0, cfg, link_delivery_p=1.0)
        f0 = m.enqueue_round([1.0, 2.0, 3.0])
        f1 = m.enqueue_round([4.0, 5.0, 6.0])
        assert f0.sequence == 0 and f1.sequence == 1
        assert m.queue_length == 2

    def test_queue_overflow_drops_oldest(self, cfg):
        m = MoteFirmware(0, cfg, link_delivery_p=1.0)
        for i in range(3):  # depth is 2
            m.enqueue_round([float(i)] * 3)
        assert m.queue_length == 2
        assert m.dropped_overflow == 1

    def test_reliable_link_delivers_first_try(self, cfg, rng):
        m = MoteFirmware(0, cfg, link_delivery_p=1.0)
        collector = GatewayCollector(n_motes=1, k=3)
        m.enqueue_round([1.0, 2.0, 3.0])
        elapsed = m.transmit_with_retries(rng, collector, 0.0)
        assert m.delivered == 1
        assert elapsed == pytest.approx(cfg.tx_delay_s)
        assert collector.rounds_seen == 1

    def test_dead_link_abandons_after_retries(self, cfg, rng):
        m = MoteFirmware(0, cfg, link_delivery_p=1e-12)
        collector = GatewayCollector(n_motes=1, k=3)
        m.enqueue_round([1.0, 2.0, 3.0])
        m.transmit_with_retries(rng, collector, 0.0)
        assert m.delivered == 0
        assert m.dropped_retries == 1
        assert m.queue_length == 0
        assert m.sent == cfg.max_tries

    def test_retry_statistics(self, cfg):
        rng = np.random.default_rng(0)
        delivered = 0
        for _ in range(500):
            m = MoteFirmware(0, cfg, link_delivery_p=0.5)
            collector = GatewayCollector(n_motes=1, k=3)
            m.enqueue_round([0.0] * 3)
            m.transmit_with_retries(rng, collector, 0.0)
            delivered += m.delivered
        # P(delivered within 3 tries) = 1 - 0.5^3 = 0.875
        assert delivered / 500 == pytest.approx(0.875, abs=0.04)

    def test_validation(self, cfg):
        with pytest.raises(ValueError):
            MoteFirmware(0, cfg, link_delivery_p=0.0)


class TestGatewayCollector:
    def test_assembles_round_matrix(self, cfg):
        from repro.testbed.packets import ReportFrame

        collector = GatewayCollector(n_motes=3, k=2)
        collector.receive(ReportFrame(0, 0, (10.0, 11.0)), 0.5)
        collector.receive(ReportFrame(2, 0, (20.0, 21.0)), 0.6)
        mat = collector.round_matrix(0)
        assert mat.shape == (2, 3)
        assert mat[0, 0] == 10.0 and mat[1, 2] == 21.0
        assert np.isnan(mat[:, 1]).all()

    def test_missing_round_is_all_nan(self):
        collector = GatewayCollector(n_motes=2, k=3)
        assert np.isnan(collector.round_matrix(7)).all()

    def test_latency_tracking(self):
        from repro.testbed.packets import ReportFrame

        collector = GatewayCollector(n_motes=1, k=1)
        collector.expect_round(0, 0.0)
        collector.receive(ReportFrame(0, 0, (1.0,)), 0.4)
        assert collector.mean_latency_s == pytest.approx(0.4)


class TestEpoch:
    def test_full_epoch_reliable(self, cfg):
        motes = [MoteFirmware(i, cfg, link_delivery_p=1.0) for i in range(4)]
        collector = run_reporting_epoch(motes, lambda mid, t: 50.0 + mid, 5, rng=0)
        assert collector.rounds_seen == 5
        for r in range(5):
            mat = collector.round_matrix(r)
            assert not np.isnan(mat).any()
            assert np.allclose(mat[:, 2], 52.0)

    def test_lossy_epoch_produces_gaps(self, cfg):
        motes = [MoteFirmware(i, cfg, link_delivery_p=0.3) for i in range(4)]
        collector = run_reporting_epoch(motes, lambda mid, t: 50.0, 10, rng=1)
        mats = [collector.round_matrix(r) for r in range(10)]
        assert any(np.isnan(m).any() for m in mats)

    def test_latency_positive(self, cfg):
        motes = [MoteFirmware(i, cfg, link_delivery_p=1.0) for i in range(2)]
        collector = run_reporting_epoch(motes, lambda mid, t: 0.0, 3, rng=2)
        assert collector.mean_latency_s > 0

    def test_levels_reflect_sample_time(self, cfg):
        """The level callback sees the actual sample instants."""
        seen = []
        motes = [MoteFirmware(0, cfg, link_delivery_p=1.0)]
        run_reporting_epoch(motes, lambda mid, t: seen.append(t) or 0.0, 2, rng=3)
        assert len(seen) == 2 * cfg.k
        assert seen == sorted(seen)

    def test_validation(self, cfg):
        with pytest.raises(ValueError):
            run_reporting_epoch([], lambda m, t: 0.0, 3)
        motes = [MoteFirmware(0, cfg)]
        with pytest.raises(ValueError):
            run_reporting_epoch(motes, lambda m, t: 0.0, 0)
