"""Tests for repro.testbed.outdoor — the Fig. 13 system end to end."""

import numpy as np
import pytest

from repro.testbed.outdoor import build_outdoor_system


@pytest.fixture(scope="module")
def system():
    return build_outdoor_system(field_size=40.0, seed=0, noise_sigma_db=3.0)


class TestBuild:
    def test_nine_motes_cross(self, system):
        assert len(system.motes) == 9
        positions = system.positions
        assert np.allclose(positions[0], [20.0, 20.0])

    def test_gain_offsets_vary(self, system):
        offsets = [m.gain_offset_db for m in system.motes]
        assert len(set(offsets)) > 1

    def test_face_map_built_with_acoustic_beta(self, system):
        fm = system.face_map
        assert fm.n_faces > 1
        assert fm.c > 1.0

    def test_path_is_inside_field(self, system):
        t = np.linspace(0, system.path.duration_s, 200)
        pos = system.path.position(t)
        assert pos.min() >= 0 and pos.max() <= 40.0


class TestSampling:
    def test_sample_round_shape(self, system):
        rng = np.random.default_rng(1)
        batch = system.sample_round(0.0, rng)
        assert batch.rss.shape == (system.k, 9)

    def test_frame_loss_produces_nans_over_time(self, system):
        rng = np.random.default_rng(2)
        mats = [system.sample_round(i * 0.5, rng).rss for i in range(20)]
        assert any(np.isnan(m).any() for m in mats)


class TestRun:
    def test_basic_tracking_reasonable(self, system):
        res = system.run(mode="basic", rng=3, n_rounds=20)
        assert len(res) == 20
        # playground is 40 m; tracking should stay well under half the field
        assert res.mean_error < 15.0

    def test_extended_tracking_runs(self, system):
        res = system.run(mode="extended", rng=3, n_rounds=20)
        assert len(res) == 20
        assert np.isfinite(res.mean_error)

    def test_reproducible(self, system):
        a = system.run(mode="basic", rng=7, n_rounds=5)
        b = system.run(mode="basic", rng=7, n_rounds=5)
        assert np.allclose(a.positions, b.positions)
