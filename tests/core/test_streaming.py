"""Tests for repro.core.streaming — the online tracking session."""

import numpy as np
import pytest

from repro.core.streaming import TrackingSession
from repro.core.tracker import FTTTracker
from repro.rf.channel import SampleBatch


def batch_at(nodes, point, t0, k=3, noise=0.0, rng=None):
    rng = rng or np.random.default_rng(0)
    d = np.hypot(nodes[:, 0] - point[0], nodes[:, 1] - point[1])
    rss = np.tile(-40.0 - 40.0 * np.log10(np.maximum(d, 1e-3)), (k, 1))
    if noise:
        rss = rss + rng.normal(0, noise, rss.shape)
    return SampleBatch(
        rss=rss,
        times=t0 + np.arange(k) / 10.0,
        positions=np.tile(np.asarray(point, float), (k, 1)),
    )


@pytest.fixture
def session(face_map):
    tracker = FTTTracker(face_map, comparator_eps=40 * np.log10(1.5))
    return TrackingSession(tracker, expected_period_s=0.5, reorder_buffer=1)


class TestBasicFlow:
    def test_state_after_round(self, session, four_nodes):
        state = session.submit(batch_at(four_nodes, [45.0, 55.0], 0.0))
        assert state is not None
        assert state.rounds_processed == 1
        assert 0.0 <= state.confidence <= 1.0
        assert np.all(np.isfinite(state.position))

    def test_history_accumulates(self, session, four_nodes, rng):
        for i in range(6):
            session.submit(batch_at(four_nodes, rng.uniform(30, 70, 2), 0.5 * i, noise=2.0, rng=rng))
        assert len(session.history) == 6
        assert session.state.rounds_processed == 6

    def test_exact_match_high_confidence(self, session, four_nodes):
        state = session.submit(batch_at(four_nodes, [40.0, 55.0], 0.0))
        assert state.confidence > 0.9  # noiseless + consistent deadband

    def test_smoothed_output_lags_raw(self, session, four_nodes):
        session.submit(batch_at(four_nodes, [30.0, 30.0], 0.0))
        state = session.submit(batch_at(four_nodes, [70.0, 70.0], 0.5))
        # smoothed is between old and new raw estimates
        assert state.smoothed_position[0] < state.position[0] + 1e-9


class TestReordering:
    def test_buffer_holds_until_full(self, face_map, four_nodes):
        tracker = FTTTracker(face_map)
        session = TrackingSession(tracker, reorder_buffer=3)
        assert session.submit(batch_at(four_nodes, [40.0, 40.0], 0.0)) is None
        assert session.submit(batch_at(four_nodes, [41.0, 40.0], 0.5)) is None
        state = session.submit(batch_at(four_nodes, [42.0, 40.0], 1.0))
        assert state is not None
        assert state.t == 0.0  # oldest pops first

    def test_out_of_order_rounds_processed_in_time_order(self, face_map, four_nodes):
        tracker = FTTTracker(face_map)
        session = TrackingSession(tracker, reorder_buffer=2)
        session.submit(batch_at(four_nodes, [40.0, 40.0], 1.0))  # late round first
        state = session.submit(batch_at(four_nodes, [41.0, 40.0], 0.5))
        assert state.t == 0.5  # the earlier round came out first

    def test_flush_drains_everything(self, session, four_nodes):
        session.submit(batch_at(four_nodes, [40.0, 40.0], 0.0))
        session.tracker.reset()
        session_multi = TrackingSession(session.tracker, reorder_buffer=4)
        for i in range(3):
            session_multi.submit(batch_at(four_nodes, [40.0 + i, 40.0], 0.5 * i))
        states = session_multi.flush()
        assert len(states) == 3
        assert [s.t for s in states] == [0.0, 0.5, 1.0]


class TestGaps:
    def test_gap_detected_and_matcher_reset(self, session, four_nodes):
        session.submit(batch_at(four_nodes, [40.0, 40.0], 0.0))
        state = session.submit(batch_at(four_nodes, [70.0, 70.0], 10.0))  # 20 periods later
        assert state.gaps_detected == 1

    def test_no_gap_for_regular_cadence(self, session, four_nodes):
        for i in range(4):
            state = session.submit(batch_at(four_nodes, [40.0, 40.0], 0.5 * i))
        assert state.gaps_detected == 0


class TestRecentErrors:
    def test_errors_against_truth(self, session, four_nodes, rng):
        points = [rng.uniform(30, 70, 2) for _ in range(4)]
        for i, p in enumerate(points):
            session.submit(batch_at(four_nodes, p, 0.5 * i, noise=1.0, rng=rng))
        errs = session.recent_errors(np.stack(points))
        assert errs.shape == (4,)
        assert np.all(errs >= 0)

    def test_mismatched_truth_length(self, session, four_nodes):
        session.submit(batch_at(four_nodes, [40.0, 40.0], 0.0))
        with pytest.raises(ValueError, match="truths"):
            session.recent_errors(np.zeros((5, 2)))


class TestValidation:
    def test_bad_params(self, face_map):
        tracker = FTTTracker(face_map)
        with pytest.raises(ValueError):
            TrackingSession(tracker, expected_period_s=0.0)
        with pytest.raises(ValueError):
            TrackingSession(tracker, gap_factor=0.5)
        with pytest.raises(ValueError):
            TrackingSession(tracker, smoothing_alpha=0.0)
        with pytest.raises(ValueError):
            TrackingSession(tracker, reorder_buffer=0)
