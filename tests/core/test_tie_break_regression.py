"""Regression tests for the exact-match tie tolerance and the Def. 10 tie-break.

``FaceMap.tie_tolerance`` used to floor the tie threshold at an absolute
``1e-6`` even when the best squared distance was exactly 0.  For the
qualitative integer signatures that was harmless (the next distance up is
1), but soft signatures sit arbitrarily close together: a face a genuine
``~1e-8`` away would wrongly join the tie set of an *exact* match — whose
Definition 7 similarity is infinite and which nothing else can tie with.

These tests pin the fixed rule, the winner order among bit-equal faces,
and that the Definition 10 tie-break machinery is actually reached on a
quorum-weak multi-tie round (not silently skipped).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tracker import DegradationPolicy, FTTTracker
from repro.geometry.faces import FaceMap, build_face_map
from repro.geometry.grid import Grid


@pytest.fixture(scope="module")
def split_map() -> FaceMap:
    """The four-node square divided with connected-component splitting.

    Splitting disconnected equal-signature regions produces faces whose
    signatures are *bit-equal* — the tie-handling edge case under test.
    """
    nodes = np.array([[30.0, 30.0], [70.0, 30.0], [30.0, 70.0], [70.0, 70.0]])
    return build_face_map(nodes, Grid.square(100.0, 2.0), 1.5, split_components=True)


def _duplicate_groups(face_map: FaceMap) -> list[list[int]]:
    groups: dict[tuple, list[int]] = {}
    for f in range(face_map.n_faces):
        groups.setdefault(tuple(face_map.signatures[f].tolist()), []).append(f)
    return [ids for ids in groups.values() if len(ids) > 1]


def test_tie_tolerance_is_zero_at_exact_match(split_map):
    assert split_map.tie_tolerance(0.0) == 0.0


def test_tie_tolerance_keeps_relative_rule_away_from_zero(split_map):
    eps32 = float(np.finfo(np.float32).eps)
    assert split_map.tie_tolerance(1.0) == pytest.approx(1e-6)
    big = 1e3
    assert split_map.tie_tolerance(big) == pytest.approx(
        big * eps32 * np.sqrt(split_map.n_pairs)
    )


def test_bit_equal_faces_tie_exactly_and_winner_is_lowest_id(split_map):
    groups = _duplicate_groups(split_map)
    assert groups, "split components must produce bit-equal signature faces"
    for ids in groups:
        ties, best = split_map.match(split_map.signatures[ids[0]].astype(float))
        # every duplicate ties at exactly 0 -- and nothing else joins them
        assert best == 0.0
        assert ties.tolist() == ids
        assert int(ties[0]) == min(ids)  # the deterministic winner


def test_known_duplicate_pair_pinned(split_map):
    """Pin the concrete winner order of the first duplicate group.

    The four-node square at C=1.5 splits faces 12 and 16 into bit-equal
    twins; matching their shared signature must return exactly this pair,
    in ascending order, at distance 0.
    """
    ties, best = split_map.match(split_map.signatures[12].astype(float))
    assert ties.tolist() == [12, 16]
    assert best == 0.0


def _toy_soft_map() -> FaceMap:
    """Minimal hand-built map: two nodes, three faces, soft signatures."""
    grid = Grid.square(3.0, 1.0)
    cell_face = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2], dtype=np.int64)
    centers = grid.cell_centers
    centroids = np.stack(
        [centers[cell_face == f].mean(axis=0) for f in range(3)]
    )
    fm = FaceMap(
        nodes=np.array([[0.0, 1.5], [3.0, 1.5]]),
        grid=grid,
        c=1.2,
        signatures=np.array([[1], [1], [-1]], dtype=np.int8),
        centroids=centroids,
        cell_face=cell_face,
        cell_counts=np.array([3, 3, 3]),
        adj_indptr=np.array([0, 1, 3, 4]),
        adj_indices=np.array([1, 0, 2, 1]),
    )
    fm.soft_signatures = np.array(
        [[1.0], [1.0 - 1e-4], [-1.0]], dtype=np.float32
    )
    return fm


def test_soft_near_zero_face_does_not_tie_with_exact_match():
    """The regression: a soft face ~1e-8 away must not join an exact match.

    Face 1's soft signature differs from the query by 1e-4, giving a
    squared distance of 1e-8 -- under the old absolute 1e-6 floor it tied
    with face 0's exact (infinite-similarity) match.
    """
    fm = _toy_soft_map()
    ties, best = fm.match(np.array([1.0]), soft=True)
    assert best == 0.0
    assert ties.tolist() == [0]


def test_soft_bit_equal_faces_still_tie():
    fm = _toy_soft_map()
    fm.soft_signatures = np.array([[1.0], [1.0], [-1.0]], dtype=np.float32)
    ties, best = fm.match(np.array([1.0]), soft=True)
    assert best == 0.0
    assert ties.tolist() == [0, 1]


def test_weak_round_reaches_definition10_tie_break(split_map, monkeypatch):
    """A quorum-weak multi-tie first round must enter the tie-break path.

    An all-silent round masks every pair, so every face matches at
    distance 0 (a maximal tie) and the reporting quorum fails; with no
    previous face to hold, the tracker must still match -- and run the
    Definition 10 tie-break on the tie set rather than skipping it.
    """
    calls: list[int] = []
    original = FTTTracker._tie_break

    def spy(self, match, rss, t):
        calls.append(len(match.face_ids))
        return original(self, match, rss, t)

    monkeypatch.setattr(FTTTracker, "_tie_break", spy)
    tracker = FTTTracker(
        split_map,
        matcher="exhaustive",
        degradation=DegradationPolicy(min_reporting=5, warmup_rounds=1),
    )
    rss = np.full((3, 4), np.nan)
    est = tracker.localize(rss, t=0.0)
    assert calls == [split_map.n_faces]
    # the quantitative vector of an all-silent round is all-* too, so the
    # tie-break keeps the full set; the deterministic winner is face 0
    assert est.face_ids.tolist() == list(range(split_map.n_faces))
    assert int(est.face_ids[0]) == 0
    assert est.n_reporting == 0
