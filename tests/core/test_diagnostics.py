"""Tests for repro.core.diagnostics."""

import numpy as np
import pytest

from repro.core.diagnostics import (
    ambiguity_census,
    face_separability,
    least_informative_pairs,
    pair_informativeness,
)
from repro.geometry.faces import build_face_map
from repro.geometry.grid import Grid


class TestPairInformativeness:
    def test_range(self, face_map):
        info = pair_informativeness(face_map)
        assert info.shape == (face_map.n_pairs,)
        assert np.all(info >= 0.0)
        assert np.all(info <= np.log2(3) + 1e-9)

    def test_symmetric_square_pairs_balanced(self, face_map):
        # the four-node square splits the field evenly for every pair
        info = pair_informativeness(face_map)
        assert info.min() > 1.0

    def test_remote_pair_is_uninformative(self):
        # two sensors crammed in a corner: their bisector barely cuts the field
        nodes = np.array([[2.0, 2.0], [4.0, 2.0], [50.0, 50.0]])
        fm = build_face_map(nodes, Grid.square(100.0, 2.0), 1.2)
        info = pair_informativeness(fm)
        # pair (0,1) (the corner pair) carries less information than the
        # pairs involving the central sensor
        assert info[0] < info[1]
        assert info[0] < info[2]

    def test_least_informative_selection(self, face_map):
        worst = least_informative_pairs(face_map, k=2)
        info = pair_informativeness(face_map)
        assert set(worst.tolist()) == set(np.argsort(info)[:2].tolist())

    def test_least_informative_k_clamped(self, face_map):
        assert len(least_informative_pairs(face_map, k=999)) == face_map.n_pairs
        with pytest.raises(ValueError):
            least_informative_pairs(face_map, k=0)


class TestFaceSeparability:
    def test_fields_present(self, face_map):
        sep = face_separability(face_map)
        assert set(sep) == {
            "min_sq_distance",
            "median_sq_distance",
            "mean_sq_distance",
            "unit_distance_fraction",
        }
        assert sep["min_sq_distance"] >= 1.0  # distinct signatures differ
        assert sep["min_sq_distance"] <= sep["median_sq_distance"] <= sep["mean_sq_distance"] + 1e-9

    def test_subsampling_path(self):
        # force the large-map sampling branch
        from repro.network.deployment import random_deployment

        nodes = random_deployment(15, 100.0, 0, min_separation=4.0)
        fm = build_face_map(nodes, Grid.square(100.0, 2.0), 1.8)
        assert fm.n_faces > 500
        sep = face_separability(fm)
        assert sep["min_sq_distance"] >= 1.0

    def test_single_face_rejected(self, face_map):
        tiny = face_map.replace(signatures=face_map.signatures[:1])
        with pytest.raises(ValueError):
            face_separability(tiny)


class TestAmbiguityCensus:
    def test_uncorrupted_never_ties(self, face_map):
        census = ambiguity_census(face_map, 100, corruption=0, rng=0)
        assert census.tie_fraction == 0.0
        assert census.max_tie_size == 1

    def test_corruption_creates_ties(self, face_map):
        census = ambiguity_census(face_map, 300, corruption=2, rng=0)
        assert census.n_trials == 300
        assert census.tie_fraction > 0.0
        assert census.mean_tie_size >= 2.0
        assert census.max_tie_size >= 2

    def test_more_corruption_more_ambiguity(self, face_map):
        low = ambiguity_census(face_map, 300, corruption=1, rng=0)
        high = ambiguity_census(face_map, 300, corruption=4, rng=0)
        assert high.tie_fraction >= low.tie_fraction - 0.05

    def test_reproducible(self, face_map):
        a = ambiguity_census(face_map, 50, rng=7)
        b = ambiguity_census(face_map, 50, rng=7)
        assert a == b

    def test_validation(self, face_map):
        with pytest.raises(ValueError):
            ambiguity_census(face_map, 0)
        with pytest.raises(ValueError):
            ambiguity_census(face_map, 10, corruption=-1)
