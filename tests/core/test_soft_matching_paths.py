"""Focused tests for the soft-signature matching paths and edge cases
spread across FaceMap / matchers / tracker wiring."""

import numpy as np
import pytest

from repro.core.extended import attach_soft_signatures
from repro.core.heuristic import HeuristicMatcher
from repro.core.matching import ExhaustiveMatcher
from repro.core.tracker import FTTTracker


@pytest.fixture
def soft_map(face_map):
    attach_soft_signatures(
        face_map, path_loss_exponent=4.0, noise_sigma_dbm=6.0, resolution_dbm=1.0
    )
    return face_map


class TestSignatureMatrix:
    def test_hard_matrix_is_float32(self, face_map):
        m = face_map.signature_matrix()
        assert m.dtype == np.float32
        assert m.shape == (face_map.n_faces, face_map.n_pairs)

    def test_soft_matrix_returned_when_attached(self, soft_map):
        m = soft_map.signature_matrix(soft=True)
        assert m is soft_map.soft_signatures

    def test_soft_without_attachment(self, certain_map):
        with pytest.raises(ValueError, match="soft"):
            certain_map.signature_matrix(soft=True)


class TestSoftMatching:
    def test_soft_match_own_expected_vector(self, soft_map):
        # matching a face's own soft signature must return that face
        for fid in (0, soft_map.n_faces // 2):
            v = soft_map.soft_signatures[fid].astype(float)
            ties, d2 = soft_map.match(v, soft=True)
            assert fid in ties
            assert d2 == pytest.approx(0.0, abs=1e-6)

    def test_soft_distances_differ_from_hard(self, soft_map):
        v = soft_map.soft_signatures[0].astype(float)
        d_hard = soft_map.distances_to(v, soft=False)
        d_soft = soft_map.distances_to(v, soft=True)
        assert not np.allclose(d_hard, d_soft)

    def test_soft_handles_nan(self, soft_map):
        v = soft_map.soft_signatures[1].astype(float).copy()
        v[0] = np.nan
        ties, d2 = soft_map.match(v, soft=True)
        assert 1 in ties

    def test_exhaustive_matcher_soft_flag(self, soft_map):
        m = ExhaustiveMatcher(soft_map, soft=True)
        v = soft_map.soft_signatures[2].astype(float)
        res = m.match(v)
        assert 2 in res.face_ids

    def test_heuristic_matcher_soft_flag(self, soft_map):
        m = HeuristicMatcher(soft_map, soft=True)
        v = soft_map.soft_signatures[3].astype(float)
        res = m.match(v)  # exhaustive seed
        assert 3 in res.face_ids
        # now hill-climb to a neighbor
        nbrs = soft_map.neighbors(int(res.face_id))
        if len(nbrs):
            target = int(nbrs[0])
            res2 = m.match(soft_map.soft_signatures[target].astype(float))
            assert res2.sq_distance == pytest.approx(0.0, abs=1e-6)


class TestTrackerWiring:
    def test_extended_tracker_uses_soft_when_available(self, soft_map):
        tracker = FTTTracker(soft_map, mode="extended")
        assert tracker.soft_signatures
        assert isinstance(tracker.matcher, HeuristicMatcher)
        assert tracker.matcher.soft

    def test_extended_tracker_opt_out(self, soft_map):
        tracker = FTTTracker(soft_map, mode="extended", soft_signatures=False)
        assert not tracker.soft_signatures

    def test_exhaustive_extended_tracker(self, soft_map):
        tracker = FTTTracker(soft_map, mode="extended", matcher="exhaustive")
        assert isinstance(tracker.matcher, ExhaustiveMatcher)
        assert tracker.matcher.soft

    def test_soft_fallback_gate_is_looser(self, soft_map):
        hard = FTTTracker(soft_map, mode="basic")
        soft = FTTTracker(soft_map, mode="extended")
        assert soft.matcher.fallback_sq_distance > hard.matcher.fallback_sq_distance
