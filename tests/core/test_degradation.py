"""Graceful degradation under value faults (DegradationPolicy + FTTTracker).

Covers the three tracker-side defenses the fault lab adds on top of the
paper's Eq. 6/7 omission handling: flip-rate pair suppression, the
reporting quorum (hold previous face), and the quorum-weak extended
tie-break — plus policy validation, state reset, and the observability
counters each decision emits.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.matching import MatchResult
from repro.core.tracker import DegradationPolicy, FTTTracker
from repro.obs import metrics as obs
from repro.rf.channel import RssChannel
from repro.rf.noise import GaussianNoise
from repro.rf.pathloss import LogDistancePathLoss


@pytest.fixture
def quiet_channel(four_nodes) -> RssChannel:
    """Noiseless full-coverage channel: rounds are deterministic."""
    return RssChannel(
        nodes=four_nodes,
        pathloss=LogDistancePathLoss(exponent=4.0, p0_dbm=-40.0),
        noise=GaussianNoise(0.0),
        sensing_range_m=None,
    )


@pytest.fixture(autouse=True)
def _obs_off():
    """Leave the process-global metrics gate as we found it."""
    yield
    obs.set_enabled(None)
    obs.reset()


def _tracker(face_map, **policy_kwargs) -> FTTTracker:
    return FTTTracker(face_map, degradation=DegradationPolicy(**policy_kwargs))


def _observe(channel, position, k=3, seed=0):
    rng = np.random.default_rng(seed)
    return channel.observe_static(np.asarray(position, float), k, rng).rss


TARGET = (40.0, 45.0)


class TestPolicy:
    def test_defaults_valid(self):
        DegradationPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"flip_threshold": 0.0},
            {"flip_threshold": 1.5},
            {"halflife_rounds": 0.0},
            {"warmup_rounds": 0},
            {"min_reporting": -1},
            {"max_masked_fraction": 0.0},
            {"max_masked_fraction": 1.2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DegradationPolicy(**kwargs)

    def test_frozen(self):
        pol = DegradationPolicy()
        with pytest.raises(dataclasses.FrozenInstanceError):
            pol.flip_threshold = 0.5

    def test_ewma_alpha_matches_halflife(self):
        pol = DegradationPolicy(halflife_rounds=1.0)
        assert pol.ewma_alpha == pytest.approx(0.5)
        # after `halflife` rounds of constant input 1, the EWMA reaches 0.5
        pol = DegradationPolicy(halflife_rounds=7.0)
        ewma = 0.0
        for _ in range(7):
            ewma += pol.ewma_alpha * (1.0 - ewma)
        assert ewma == pytest.approx(0.5)


class TestSuppression:
    """Flip-rate suppression, on the certain face map.

    The bisector-only division gives every face a fully determined
    ordering (signatures are ±1), so on a noiseless channel healthy
    pairs score an exact residual of 0 — the uncertain map's
    signature-0 pairs would sit at a constant 0.5 instead, which is
    tolerable in the field but makes "never suppressed" untestable.
    """

    def test_chronically_wrong_pair_is_demoted(self, certain_map, quiet_channel):
        """A Byzantine sensor gets its pairs starred after warmup.

        The poison must be *incoherent* (fresh garbage per sample): a
        consistently-strong liar just shifts the match to a face where
        it really is closest, which scores residual 0.
        """
        tracker = _tracker(
            certain_map, flip_threshold=0.2, warmup_rounds=3, halflife_rounds=2.0
        )
        byz = np.random.default_rng(5)
        for r in range(12):
            rss = _observe(quiet_channel, TARGET)
            rss[:, 0] = byz.uniform(-110.0, -40.0, rss.shape[0])
            tracker.localize(rss, t=float(r))
        i_idx, j_idx = tracker._pairs
        poisoned = [p for p in range(len(i_idx)) if 0 in (i_idx[p], j_idx[p])]
        healthy = [p for p in range(len(i_idx)) if p not in poisoned]
        assert tracker._flip_ewma[poisoned].min() > tracker._flip_ewma[healthy].max()
        # and the poisoned pairs sit above the demotion threshold
        vector = tracker.build_vector(_observe(quiet_channel, TARGET))
        suppressed = tracker._suppress_flippy_pairs(vector, t=12.0)
        starred = np.isnan(suppressed) & ~np.isnan(vector)
        assert starred.any()
        assert set(np.nonzero(starred)[0]) <= set(poisoned)

    def test_healthy_rounds_never_suppressed(self, certain_map, quiet_channel):
        tracker = _tracker(certain_map, warmup_rounds=2)
        for r in range(15):
            est = tracker.localize(_observe(quiet_channel, TARGET), t=float(r))
        vector = tracker.build_vector(_observe(quiet_channel, TARGET))
        assert np.array_equal(
            tracker._suppress_flippy_pairs(vector, t=15.0), vector, equal_nan=True
        )
        assert np.isfinite(est.sq_distance)

    def test_degradation_costs_nothing_when_healthy(self, certain_map, quiet_channel):
        plain = FTTTracker(certain_map)
        robust = _tracker(certain_map)
        for r in range(15):
            rss = _observe(quiet_channel, TARGET)
            assert np.array_equal(
                plain.localize(rss, t=float(r)).position,
                robust.localize(rss, t=float(r)).position,
            )

    def test_suppressed_pair_recovers_after_heal(self, certain_map, quiet_channel):
        tracker = _tracker(
            certain_map, flip_threshold=0.2, warmup_rounds=3, halflife_rounds=2.0
        )
        byz = np.random.default_rng(5)
        for r in range(12):  # poison phase
            rss = _observe(quiet_channel, TARGET)
            rss[:, 0] = byz.uniform(-110.0, -40.0, rss.shape[0])
            tracker.localize(rss, t=float(r))
        assert tracker._flip_ewma.max() >= tracker.degradation.flip_threshold
        for r in range(12, 40):  # heal phase: sensor 0 reports honestly again
            tracker.localize(_observe(quiet_channel, TARGET), t=float(r))
        assert tracker._flip_ewma.max() < tracker.degradation.flip_threshold

    def test_residuals_update_from_raw_vector(self, certain_map, quiet_channel):
        """Demoted pairs stay under observation (EWMA keeps integrating)."""
        tracker = _tracker(certain_map, warmup_rounds=2, halflife_rounds=1.0)
        for r in range(8):
            rss = _observe(quiet_channel, TARGET)
            rss[:, 0] = -41.0
            tracker.localize(rss, t=float(r))
        obs_counts = tracker._flip_obs.copy()
        rss = _observe(quiet_channel, TARGET)
        rss[:, 0] = -41.0
        tracker.localize(rss, t=9.0)
        assert (tracker._flip_obs == obs_counts + 1).all()


class TestQuorum:
    def test_weak_round_holds_previous_face(self, face_map, quiet_channel):
        tracker = _tracker(face_map, min_reporting=3)
        good = tracker.localize(_observe(quiet_channel, TARGET), t=0.0)
        rss = _observe(quiet_channel, TARGET)
        rss[:, 2:] = np.nan  # only two sensors report
        held = tracker.localize(rss, t=1.0)
        assert np.array_equal(held.position, good.position)
        assert np.array_equal(held.face_ids, good.face_ids)
        assert held.sq_distance == float("inf")
        assert held.visited_faces == 0
        assert held.n_reporting == 2

    def test_weak_first_round_still_matches(self, face_map, quiet_channel):
        """No history to hold: the tracker must produce a real estimate."""
        tracker = _tracker(face_map, min_reporting=3)
        rss = _observe(quiet_channel, TARGET)
        rss[:, 2:] = np.nan
        est = tracker.localize(rss, t=0.0)
        assert np.isfinite(est.position).all()
        assert est.visited_faces > 0

    def test_masked_fraction_triggers_quorum(self, face_map, quiet_channel):
        tracker = _tracker(face_map, min_reporting=0, max_masked_fraction=0.4)
        good = tracker.localize(_observe(quiet_channel, TARGET), t=0.0)
        rss = _observe(quiet_channel, TARGET)
        rss[:, 1:] = np.nan  # one reporter: every pair involving others is *
        held = tracker.localize(rss, t=1.0)
        assert held.sq_distance == float("inf")
        assert np.array_equal(held.face_ids, good.face_ids)

    def test_hold_does_not_poison_residuals(self, face_map, quiet_channel):
        """Held rounds skip matching, so no residual update happens."""
        tracker = _tracker(face_map, min_reporting=3)
        tracker.localize(_observe(quiet_channel, TARGET), t=0.0)
        counts = tracker._flip_obs.copy()
        rss = _observe(quiet_channel, TARGET)
        rss[:, 2:] = np.nan
        tracker.localize(rss, t=1.0)
        assert np.array_equal(tracker._flip_obs, counts)


class TestTieBreak:
    def test_tie_break_keeps_subset_of_tied_faces(self, face_map, quiet_channel):
        tracker = _tracker(face_map)
        rss = _observe(quiet_channel, TARGET)
        vector = tracker.build_vector(rss)
        match = tracker.matcher.match(vector)
        # manufacture a tie between the true match and a distant face
        far = (match.face_ids[0] + face_map.n_faces // 2) % face_map.n_faces
        tie = MatchResult(
            face_ids=np.array([match.face_ids[0], far]),
            sq_distance=match.sq_distance,
            position=face_map.centroids[[match.face_ids[0], far]].mean(axis=0),
            visited=match.visited,
        )
        broken = tracker._tie_break(tie, rss, t=0.0)
        assert len(broken.face_ids) < len(tie.face_ids)
        assert broken.face_ids[0] == match.face_ids[0]

    def test_all_star_vector_cannot_be_separated(self, face_map):
        tracker = _tracker(face_map)
        rss = np.full((3, 4), np.nan)
        vector = tracker.build_vector(rss)
        match = tracker.matcher.match(vector)
        assert len(match.face_ids) > 1  # everything ties on the all-* vector
        assert tracker._tie_break(match, rss, t=0.0) is match

    def test_tie_break_disabled_by_policy(self, face_map, quiet_channel):
        tracker = _tracker(face_map, tie_break=False, min_reporting=4)
        rss = _observe(quiet_channel, TARGET)
        rss[:, 3] = np.nan  # weak (3 < min_reporting), no history -> match path
        est = tracker.localize(rss, t=0.0)
        assert np.isfinite(est.position).all()


class TestResetAndObs:
    def test_reset_clears_degradation_state(self, face_map, quiet_channel):
        tracker = _tracker(face_map)
        tracker.localize(_observe(quiet_channel, TARGET), t=0.0)
        assert tracker._flip_ewma is not None
        assert tracker._prev_estimate is not None
        tracker.reset()
        assert tracker._flip_ewma is None
        assert tracker._flip_obs is None
        assert tracker._prev_estimate is None

    def test_counters_emitted_for_each_decision(self, face_map, quiet_channel):
        obs.reset()
        obs.set_enabled(True)
        tracker = _tracker(face_map, warmup_rounds=3, halflife_rounds=2.0, min_reporting=3)
        for r in range(12):
            rss = _observe(quiet_channel, TARGET)
            rss[:, 0] = -41.0
            tracker.localize(rss, t=float(r))
        weak = _observe(quiet_channel, TARGET)
        weak[:, 2:] = np.nan
        tracker.localize(weak, t=12.0)
        snap = obs.snapshot()
        assert snap["tracker.degradation.suppression_rounds"]["value"] >= 1
        assert snap["tracker.degradation.quorum_fallbacks"]["value"] == 1
        assert "tracker.degradation.suppressed_pairs" in snap

    def test_no_counters_when_disabled(self, face_map, quiet_channel):
        obs.reset()
        obs.set_enabled(False)
        tracker = _tracker(face_map, min_reporting=3)
        tracker.localize(_observe(quiet_channel, TARGET), t=0.0)
        weak = _observe(quiet_channel, TARGET)
        weak[:, 2:] = np.nan
        tracker.localize(weak, t=1.0)
        assert "tracker.degradation.quorum_fallbacks" not in obs.snapshot()
