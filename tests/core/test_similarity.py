"""Tests for repro.core.similarity (Definitions 7 & 8, Eq. 7)."""

import numpy as np
import pytest

from repro.core.similarity import (
    similarity,
    similarity_matrix,
    sq_distance,
    vector_difference,
)


class TestVectorDifference:
    def test_plain_difference(self):
        d = vector_difference(np.array([1.0, 0.0]), np.array([0.0, -1.0]))
        assert d.tolist() == [1.0, 1.0]

    def test_star_masks_to_zero(self):
        d = vector_difference(np.array([np.nan, 1.0]), np.array([1.0, 1.0]))
        assert d.tolist() == [0.0, 0.0]

    def test_star_in_either_argument(self):
        d = vector_difference(np.array([1.0]), np.array([np.nan]))
        assert d.tolist() == [0.0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes"):
            vector_difference(np.zeros(3), np.zeros(4))


class TestSimilarity:
    def test_definition7_reciprocal_norm(self):
        v1 = np.array([1.0, 0.0, 0.0])
        v2 = np.array([0.0, 0.0, 0.0])
        assert similarity(v1, v2) == pytest.approx(1.0)

    def test_exact_match_is_infinite(self):
        v = np.array([1.0, -1.0, 0.0])
        assert similarity(v, v) == float("inf")

    def test_paper_fault_example_value(self):
        """§4.4-3 example: V_d = [1,1,1,-1,*,1] vs V_s(f8) = [1,1,1,0,0,0].

        The masked difference is [0,0,0,-1,masked,1], norm sqrt(2), so the
        Definition-7 similarity is 1/sqrt(2).  (The paper's prose quotes
        "1/2" for this example, which is 1/||.||^2 — inconsistent with its
        own Definition 7; we implement the definition.)
        """
        vd = np.array([1.0, 1.0, 1.0, -1.0, np.nan, 1.0])
        vs = np.array([1.0, 1.0, 1.0, 0.0, 0.0, 0.0])
        assert similarity(vd, vs) == pytest.approx(1.0 / np.sqrt(2.0))

    def test_symmetry(self, rng):
        a = rng.choice([-1.0, 0.0, 1.0], size=10)
        b = rng.choice([-1.0, 0.0, 1.0], size=10)
        assert similarity(a, b) == similarity(b, a)

    def test_more_disagreement_less_similarity(self):
        base = np.zeros(6)
        one_off = np.array([1.0, 0, 0, 0, 0, 0])
        two_off = np.array([1.0, 1.0, 0, 0, 0, 0])
        assert similarity(base, one_off) > similarity(base, two_off)


class TestSqDistance:
    def test_masked(self):
        assert sq_distance(np.array([np.nan, 2.0]), np.array([5.0, 0.0])) == pytest.approx(4.0)

    def test_zero_for_equal(self):
        v = np.array([1.0, -1.0])
        assert sq_distance(v, v) == 0.0


class TestSimilarityMatrix:
    def test_matches_scalar_similarity(self, rng):
        vectors = rng.choice([-1.0, 0.0, 1.0], size=(4, 8))
        signatures = rng.choice([-1.0, 0.0, 1.0], size=(6, 8))
        mat = similarity_matrix(vectors, signatures)
        for q in range(4):
            for f in range(6):
                assert mat[q, f] == pytest.approx(similarity(vectors[q], signatures[f]))

    def test_handles_nan_components(self):
        vectors = np.array([[np.nan, 1.0]])
        signatures = np.array([[1.0, 1.0], [1.0, -1.0]])
        mat = similarity_matrix(vectors, signatures)
        assert mat[0, 0] == float("inf")
        assert mat[0, 1] == pytest.approx(0.5)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            similarity_matrix(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_no_negative_distances_from_rounding(self, rng):
        v = rng.uniform(-1, 1, size=(10, 30))
        mat = similarity_matrix(v, v)
        assert np.all(np.isinf(np.diag(mat)))
