"""Tests for repro.core.heuristic — Algorithm 2 neighbor-link matching."""

import numpy as np
import pytest

from repro.core.heuristic import HeuristicMatcher
from repro.core.matching import ExhaustiveMatcher


class TestHeuristicMatcher:
    def test_first_match_seeds_exhaustively(self, face_map):
        m = HeuristicMatcher(face_map)
        fid = face_map.n_faces // 2
        res = m.match(face_map.signatures[fid].astype(float))
        assert fid in res.face_ids
        assert m.last_face is not None

    def test_subsequent_match_from_previous_face(self, face_map):
        m = HeuristicMatcher(face_map)
        fid = face_map.n_faces // 2
        m.match(face_map.signatures[fid].astype(float))
        # match a neighbor's signature: hill climb should find it quickly
        nbrs = face_map.neighbors(fid)
        assert len(nbrs) > 0
        target = int(nbrs[0])
        res = m.match(face_map.signatures[target].astype(float))
        assert res.sq_distance == 0.0
        assert res.visited < face_map.n_faces  # did not scan everything

    def test_explicit_start_face(self, face_map):
        m = HeuristicMatcher(face_map, fallback=False)
        fid = face_map.n_faces // 2
        res = m.match(face_map.signatures[fid].astype(float), start_face=fid)
        assert res.face_ids.tolist() == [fid]
        assert res.sq_distance == 0.0

    def test_agrees_with_exhaustive_on_clean_vectors(self, face_map):
        heur = HeuristicMatcher(face_map)
        ex = ExhaustiveMatcher(face_map)
        # walk through a chain of neighboring faces
        fid = 0
        for _ in range(10):
            v = face_map.signatures[fid].astype(float)
            res_h = heur.match(v)
            res_e = ex.match(v)
            assert res_h.sq_distance == pytest.approx(res_e.sq_distance)
            nbrs = face_map.neighbors(fid)
            fid = int(nbrs[0]) if len(nbrs) else fid

    def test_fallback_triggers_on_bad_local_optimum(self, face_map, rng):
        m = HeuristicMatcher(face_map, fallback=True, fallback_sq_distance=0.5)
        # seed somewhere, then present a signature from the far corner
        m.match(face_map.signatures[0].astype(float))
        far = face_map.n_faces - 1
        res = m.match(face_map.signatures[far].astype(float))
        assert res.sq_distance == 0.0  # fallback rescued the match

    def test_no_fallback_may_return_local_optimum(self, face_map):
        m = HeuristicMatcher(face_map, fallback=False)
        m.match(face_map.signatures[0].astype(float))
        far = face_map.n_faces - 1
        res = m.match(face_map.signatures[far].astype(float))
        # may or may not reach the optimum, but must return *something* valid
        assert 0 <= res.face_id < face_map.n_faces

    def test_reset_clears_state(self, face_map):
        m = HeuristicMatcher(face_map)
        m.match(face_map.signatures[0].astype(float))
        m.reset()
        assert m.last_face is None

    def test_invalid_start_face(self, face_map):
        m = HeuristicMatcher(face_map)
        with pytest.raises(IndexError):
            m.match(face_map.signatures[0].astype(float), start_face=face_map.n_faces)

    def test_handles_nan_components(self, face_map):
        m = HeuristicMatcher(face_map)
        v = face_map.signatures[2].astype(float)
        v[0] = np.nan
        res = m.match(v)
        assert res.sq_distance == 0.0

    def test_validation(self, face_map):
        with pytest.raises(ValueError):
            HeuristicMatcher(face_map, fallback_sq_distance=-1.0)
        with pytest.raises(ValueError):
            HeuristicMatcher(face_map, max_steps=0)

    def test_visited_much_smaller_than_exhaustive_when_tracking(self, face_map):
        """The Algorithm 2 complexity claim: consecutive matching touches
        only a neighborhood, not all O(n^4) faces.  hops=1 is the paper's
        algorithm verbatim; the fixture map is tiny (dozens of faces) so
        the ratio bound is correspondingly loose."""
        m = HeuristicMatcher(face_map, fallback=False, hops=1)
        fid = face_map.n_faces // 2
        m.match(face_map.signatures[fid].astype(float))  # seed
        visits = []
        for _ in range(20):
            nbrs = face_map.neighbors(fid)
            fid = int(nbrs[0]) if len(nbrs) else fid
            res = m.match(face_map.signatures[fid].astype(float))
            visits.append(res.visited)
        assert np.mean(visits) < face_map.n_faces / 3

    def test_two_hop_default_improves_noisy_matching(self, face_map, rng):
        """hops=2 (default) escapes local optima that trap hops=1."""
        one = HeuristicMatcher(face_map, fallback=False, hops=1)
        two = HeuristicMatcher(face_map, fallback=False, hops=2)
        ex = ExhaustiveMatcher(face_map)
        wins_two, wins_one = 0, 0
        start = 0
        for _ in range(40):
            fid = int(rng.integers(0, face_map.n_faces))
            v = face_map.signatures[fid].astype(float)
            # corrupt two components
            for idx in rng.integers(0, face_map.n_pairs, size=2):
                v[idx] = rng.choice([-1.0, 0.0, 1.0])
            best = ex.match(v).sq_distance
            d_one = one.match(v, start_face=start).sq_distance
            d_two = two.match(v, start_face=start).sq_distance
            wins_one += d_one <= best + 1e-9
            wins_two += d_two <= best + 1e-9
            start = fid
        assert wins_two >= wins_one

    def test_invalid_hops(self, face_map):
        with pytest.raises(ValueError, match="hops"):
            HeuristicMatcher(face_map, hops=3)
