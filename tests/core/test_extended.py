"""Tests for repro.core.extended — soft (quantitative) signatures of §6."""

import numpy as np
import pytest

from repro.core.extended import attach_soft_signatures, expected_extended_signatures
from repro.core.tracker import FTTTracker


@pytest.fixture
def soft(face_map):
    return expected_extended_signatures(
        face_map, path_loss_exponent=4.0, noise_sigma_dbm=6.0, resolution_dbm=1.0
    )


class TestExpectedSignatures:
    def test_shape_and_range(self, face_map, soft):
        assert soft.shape == (face_map.n_faces, face_map.n_pairs)
        assert np.all(soft >= -1.0) and np.all(soft <= 1.0)

    def test_sign_agrees_with_qualitative(self, face_map, soft):
        # wherever the qualitative signature is +-1, the expected value
        # points the same way
        hard = face_map.signatures
        pos = hard == 1
        neg = hard == -1
        assert np.all(soft[pos] > 0)
        assert np.all(soft[neg] < 0)

    def test_uncertain_band_is_small_magnitude(self, face_map, soft):
        zero = face_map.signatures == 0
        if zero.any():
            # expected values inside the band are closer to 0 than outside
            assert np.abs(soft[zero]).mean() < np.abs(soft[~zero]).mean()

    def test_noiseless_collapses_to_hard_signs(self, face_map):
        soft = expected_extended_signatures(
            face_map, path_loss_exponent=4.0, noise_sigma_dbm=0.0, resolution_dbm=0.0
        )
        # without noise the expected value is exactly the distance-order sign
        assert set(np.unique(np.sign(soft))).issubset({-1.0, 0.0, 1.0})
        assert np.abs(soft).max() == pytest.approx(1.0)

    def test_sensing_range_forces_extremes(self, four_nodes, small_grid):
        from repro.geometry.faces import build_face_map

        fm = build_face_map(four_nodes, small_grid, c=1.5, sensing_range=30.0)
        soft = expected_extended_signatures(
            fm,
            path_loss_exponent=4.0,
            noise_sigma_dbm=6.0,
            sensing_range=30.0,
        )
        assert np.all(np.abs(soft) <= 1.0)

    def test_chunking_invariant(self, face_map):
        a = expected_extended_signatures(
            face_map, path_loss_exponent=4.0, noise_sigma_dbm=6.0, chunk_pairs=1
        )
        b = expected_extended_signatures(
            face_map, path_loss_exponent=4.0, noise_sigma_dbm=6.0, chunk_pairs=512
        )
        assert np.allclose(a, b)

    def test_validation(self, face_map):
        with pytest.raises(ValueError):
            expected_extended_signatures(face_map, path_loss_exponent=0.0, noise_sigma_dbm=6.0)
        with pytest.raises(ValueError):
            expected_extended_signatures(face_map, path_loss_exponent=4.0, noise_sigma_dbm=-1.0)


class TestAttach:
    def test_attach_is_idempotent(self, face_map):
        attach_soft_signatures(face_map, path_loss_exponent=4.0, noise_sigma_dbm=6.0)
        first = face_map.soft_signatures
        attach_soft_signatures(face_map, path_loss_exponent=4.0, noise_sigma_dbm=6.0)
        assert face_map.soft_signatures is first

    def test_enables_soft_tracker(self, face_map):
        attach_soft_signatures(face_map, path_loss_exponent=4.0, noise_sigma_dbm=6.0)
        tracker = FTTTracker(face_map, mode="extended")
        assert tracker.soft_signatures

    def test_basic_mode_ignores_soft(self, face_map):
        attach_soft_signatures(face_map, path_loss_exponent=4.0, noise_sigma_dbm=6.0)
        tracker = FTTTracker(face_map, mode="basic")
        assert not tracker.soft_signatures
