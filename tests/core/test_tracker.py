"""Tests for repro.core.tracker — the FTTT facade."""

import numpy as np
import pytest

from repro.core.tracker import FTTTracker, TrackResult
from repro.rf.channel import SampleBatch


def batch_at(channel_nodes, point, k=5, noise=0.0, rng=None, t0=0.0):
    """Noiseless (or mildly noisy) grouping sampling at a fixed point."""
    rng = rng or np.random.default_rng(0)
    d = np.hypot(channel_nodes[:, 0] - point[0], channel_nodes[:, 1] - point[1])
    rss = -40.0 - 40.0 * np.log10(np.maximum(d, 1e-3))
    rss = np.tile(rss, (k, 1))
    if noise:
        rss = rss + rng.normal(0, noise, rss.shape)
    return SampleBatch(
        rss=rss,
        times=t0 + np.arange(k) / 10.0,
        positions=np.tile(np.asarray(point, dtype=float), (k, 1)),
    )


# deadband consistent with the fixture face map's C = 1.5 under beta = 4:
# |delta RSS| <= 10*beta*log10(C) exactly when the distance ratio is inside
# the uncertain band, so a noiseless sampling vector equals the signature.
EPS_FOR_C15 = 40.0 * np.log10(1.5)


class TestLocalize:
    def test_noiseless_localization_lands_in_true_face(self, face_map, four_nodes):
        tracker = FTTTracker(face_map, matcher="exhaustive", comparator_eps=EPS_FOR_C15)
        p = np.array([40.0, 55.0])
        est = tracker.localize_batch(batch_at(four_nodes, p))
        true_fid = face_map.face_of_point(p)
        assert true_fid in est.face_ids

    def test_estimate_error_bounded_by_face_size(self, face_map, four_nodes, rng):
        tracker = FTTTracker(face_map, matcher="exhaustive", comparator_eps=EPS_FOR_C15)
        errors = []
        for _ in range(25):
            p = rng.uniform(10, 90, 2)
            est = tracker.localize_batch(batch_at(four_nodes, p))
            errors.append(np.hypot(*(est.position - p)))
        # noiseless: error is pure intra-face quantization, bounded by field/4
        assert np.mean(errors) < 15.0

    def test_n_reporting_counts_nonsilent(self, face_map, four_nodes):
        tracker = FTTTracker(face_map)
        batch = batch_at(four_nodes, [50.0, 50.0])
        rss = batch.rss.copy()
        rss[:, 2] = np.nan
        est = tracker.localize(rss)
        assert est.n_reporting == 3

    def test_wrong_sensor_count_rejected(self, face_map):
        tracker = FTTTracker(face_map)
        with pytest.raises(ValueError, match="sensors"):
            tracker.localize(np.zeros((3, 7)))

    def test_time_passthrough(self, face_map, four_nodes):
        tracker = FTTTracker(face_map)
        est = tracker.localize_batch(batch_at(four_nodes, [50.0, 50.0], t0=3.25))
        assert est.t == pytest.approx(3.25)

    def test_similarity_property(self, face_map, four_nodes):
        tracker = FTTTracker(face_map, matcher="exhaustive")
        est = tracker.localize_batch(batch_at(four_nodes, [47.0, 52.0]))
        if est.sq_distance == 0:
            assert est.similarity == float("inf")
        else:
            assert est.similarity == pytest.approx(1 / np.sqrt(est.sq_distance))


class TestModesAndMatchers:
    def test_invalid_mode(self, face_map):
        with pytest.raises(ValueError, match="mode"):
            FTTTracker(face_map, mode="bogus")

    def test_invalid_matcher(self, face_map):
        with pytest.raises(ValueError, match="matcher"):
            FTTTracker(face_map, matcher="bogus")

    def test_soft_without_attachment_rejected(self, face_map):
        with pytest.raises(ValueError, match="soft"):
            FTTTracker(face_map, soft_signatures=True)

    def test_extended_mode_builds_extended_vectors(self, face_map):
        tracker = FTTTracker(face_map, mode="extended")
        rss = np.array([[10.0, 5.0, 1.0, 0.0]] * 5 + [[5.0, 10.0, 1.0, 0.0]])
        v = tracker.build_vector(rss)
        assert v[0] == pytest.approx(4.0 / 6.0)

    def test_basic_mode_builds_basic_vectors(self, face_map):
        tracker = FTTTracker(face_map, mode="basic")
        rss = np.array([[10.0, 5.0, 1.0, 0.0]] * 5 + [[5.0, 10.0, 1.0, 0.0]])
        assert tracker.build_vector(rss)[0] == 0.0


class TestTrack:
    def test_track_produces_result_per_batch(self, face_map, four_nodes, rng):
        tracker = FTTTracker(face_map)
        points = [rng.uniform(20, 80, 2) for _ in range(8)]
        batches = [batch_at(four_nodes, p, noise=2.0, rng=rng, t0=i * 0.5) for i, p in enumerate(points)]
        result = tracker.track(batches)
        assert len(result) == 8
        assert result.positions.shape == (8, 2)
        assert result.truth.shape == (8, 2)
        assert len(result.errors) == 8

    def test_metrics(self, face_map, four_nodes, rng):
        tracker = FTTTracker(face_map)
        batches = [batch_at(four_nodes, rng.uniform(20, 80, 2), noise=2.0, rng=rng) for _ in range(5)]
        result = tracker.track(batches)
        e = result.errors
        assert result.mean_error == pytest.approx(e.mean())
        assert result.std_error == pytest.approx(e.std())
        assert result.max_error == pytest.approx(e.max())

    def test_empty_result_metrics_are_nan(self):
        r = TrackResult()
        assert np.isnan(r.mean_error)
        assert np.isnan(r.std_error)
        assert np.isnan(r.max_error)
        assert r.positions.shape == (0, 2)

    def test_reset_clears_matcher_state(self, face_map, four_nodes):
        tracker = FTTTracker(face_map, matcher="heuristic")
        tracker.localize_batch(batch_at(four_nodes, [50.0, 50.0]))
        assert tracker.matcher.last_face is not None
        tracker.reset()
        assert tracker.matcher.last_face is None
