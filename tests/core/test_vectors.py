"""Tests for repro.core.vectors — Algorithm 1 and Definitions 4/5/10, Eq. 6."""

import numpy as np
import pytest

from repro.core.vectors import (
    extended_sampling_vector,
    pair_win_counts,
    sampling_vector,
    sampling_vector_reference,
)


def fig5_matrix() -> np.ndarray:
    """A grouping sampling reproducing the paper's Fig. 5 example.

    Four sensors, six samples; sensor 2 loudest, then 1; pair (3, 4)
    flips while every other pair is ordinal -> vector [-1,1,1,1,1,0]
    in the canonical order (1,2),(1,3),(1,4),(2,3),(2,4),(3,4).
    """
    return np.array(
        [
            #  n1    n2   n3   n4
            [8.0, 10.0, 5.0, 4.0],
            [8.0, 10.0, 3.0, 4.0],
            [8.0, 10.0, 5.0, 4.0],
            [8.0, 10.0, 3.0, 4.0],
            [8.0, 10.0, 5.0, 4.0],
            [8.0, 10.0, 3.0, 4.0],
        ]
    )


class TestBasicSamplingVector:
    def test_paper_fig5_example(self):
        v = sampling_vector(fig5_matrix())
        assert v.tolist() == [-1.0, 1.0, 1.0, 1.0, 1.0, 0.0]

    def test_matches_algorithm1_reference(self, rng):
        for _ in range(25):
            rss = rng.normal(-60, 10, size=(rng.integers(1, 8), rng.integers(2, 7)))
            assert np.array_equal(sampling_vector(rss), sampling_vector_reference(rss))

    def test_single_sample_never_flips(self, rng):
        rss = rng.normal(-60, 10, size=(1, 5))
        v = sampling_vector(rss)
        assert np.all(np.abs(v) == 1.0)

    def test_values_in_valid_set(self, rng):
        rss = rng.normal(-60, 10, size=(5, 6))
        v = sampling_vector(rss)
        assert set(np.unique(v)).issubset({-1.0, 0.0, 1.0})

    def test_vector_length(self, rng):
        for n in (2, 4, 9):
            rss = rng.normal(size=(3, n))
            assert len(sampling_vector(rss)) == n * (n - 1) // 2

    def test_exact_tie_counts_as_flip(self):
        rss = np.array([[5.0, 5.0], [6.0, 4.0]])
        assert sampling_vector(rss)[0] == 0.0

    def test_comparator_eps_widens_ties(self):
        rss = np.array([[5.0, 4.5], [5.0, 4.5]])
        assert sampling_vector(rss)[0] == 1.0
        assert sampling_vector(rss, comparator_eps=1.0)[0] == 0.0

    def test_antisymmetry_under_column_swap(self, rng):
        rss = rng.normal(size=(4, 2))
        v_fwd = sampling_vector(rss)[0]
        v_rev = sampling_vector(rss[:, ::-1])[0]
        assert v_fwd == -v_rev

    def test_rejects_single_sensor(self):
        with pytest.raises(ValueError, match="two sensors"):
            sampling_vector(np.zeros((3, 1)))

    def test_rejects_negative_eps(self):
        with pytest.raises(ValueError):
            sampling_vector(np.zeros((2, 3)), comparator_eps=-1.0)


class TestFaultTolerantFill:
    def test_paper_section443_example(self):
        """Only n1 and n3 report, rss1 > rss3 -> [1, 1, 1, -1, *, 1]."""
        rss = np.full((3, 4), np.nan)
        rss[:, 0] = -50.0  # n1
        rss[:, 2] = -60.0  # n3
        v = sampling_vector(rss)
        assert v[0] == 1.0  # (n1, n2): n1 reports
        assert v[1] == 1.0  # (n1, n3): direct comparison
        assert v[2] == 1.0  # (n1, n4): n1 reports
        assert v[3] == -1.0  # (n2, n3): n3 reports
        assert np.isnan(v[4])  # (n2, n4): both silent -> *
        assert v[5] == 1.0  # (n3, n4): n3 reports

    def test_all_silent_gives_all_star(self):
        v = sampling_vector(np.full((2, 4), np.nan))
        assert np.isnan(v).all()

    def test_partial_sample_loss_uses_common_instants(self):
        # sensor 1 misses the middle sample; comparison uses rows 0 and 2
        rss = np.array([[10.0, 5.0], [np.nan, 99.0], [10.0, 5.0]])
        assert sampling_vector(rss)[0] == 1.0

    def test_no_common_instants_falls_back_to_means(self):
        rss = np.array([[10.0, np.nan], [np.nan, 5.0]])
        assert sampling_vector(rss)[0] == 1.0

    def test_extended_fill_matches_basic(self):
        rss = np.full((3, 3), np.nan)
        rss[:, 0] = -50.0
        vb = sampling_vector(rss)
        ve = extended_sampling_vector(rss)
        assert vb[0] == ve[0] == 1.0  # (0,1): only 0 reports
        assert vb[1] == ve[1] == 1.0  # (0,2)
        assert np.isnan(vb[2]) and np.isnan(ve[2])  # (1,2) both silent


class TestExtendedSamplingVector:
    def test_paper_fig9_value(self):
        """Four wins vs two losses out of six -> (4-2)/6 = 1/3."""
        rss = np.array(
            [
                [10.0, 5.0],
                [10.0, 5.0],
                [10.0, 5.0],
                [10.0, 5.0],
                [5.0, 10.0],
                [5.0, 10.0],
            ]
        )
        assert extended_sampling_vector(rss)[0] == pytest.approx(1.0 / 3.0)

    def test_range(self, rng):
        rss = rng.normal(size=(6, 5))
        v = extended_sampling_vector(rss)
        assert np.all(v >= -1.0) and np.all(v <= 1.0)

    def test_agrees_with_basic_at_extremes(self, rng):
        # widely separated sensors: both vectors show the same ordinal values
        rss = np.array([[0.0, -30.0, -60.0]] * 4)
        assert np.array_equal(extended_sampling_vector(rss), sampling_vector(rss))

    def test_extended_refines_flips(self):
        rss = np.array([[10.0, 5.0]] * 5 + [[5.0, 10.0]])
        assert sampling_vector(rss)[0] == 0.0  # flipped
        assert extended_sampling_vector(rss)[0] == pytest.approx(4.0 / 6.0)

    def test_ties_count_for_neither_side(self):
        rss = np.array([[5.0, 5.0], [10.0, 4.0]])
        assert extended_sampling_vector(rss)[0] == pytest.approx(0.5)


class TestPairWinCounts:
    def test_counts_sum_to_valid(self, rng):
        rss = rng.normal(size=(7, 4))
        wi, wj, valid = pair_win_counts(rss)
        assert np.all(wi + wj <= valid)
        assert np.all(valid == 7)

    def test_nan_reduces_valid(self):
        rss = np.array([[1.0, 2.0], [np.nan, 2.0], [3.0, 2.0]])
        _, _, valid = pair_win_counts(rss)
        assert valid[0] == 2

    def test_eps_creates_ties(self):
        rss = np.array([[5.0, 4.8]])
        wi, wj, valid = pair_win_counts(rss, comparator_eps=0.5)
        assert wi[0] == 0 and wj[0] == 0 and valid[0] == 1


class TestAlgorithm1Reference:
    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            sampling_vector_reference(np.array([[1.0, np.nan]]))

    def test_fig5(self):
        assert sampling_vector_reference(fig5_matrix()).tolist() == [-1, 1, 1, 1, 1, 0]
