"""Batched kernels are bit-identical to the serial per-round paths.

The whole point of the performance layer is that it must not change a
single bit of any result: these tests pin the batched Algorithm-1 vector
construction, the GEMM matching expansion (including NaN fault masks and
sensing-range-gated signatures), and the trace-level tracker paths to
their per-round equivalents with exact equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sequences import sign_vector_from_rss, sign_vectors_from_rss
from repro.config import GridConfig, SimulationConfig
from repro.core.matching import ExhaustiveMatcher
from repro.core.tracker import TrackResult
from repro.core.vectors import (
    extended_sampling_vector,
    extended_sampling_vectors,
    sampling_vector,
    sampling_vectors,
)
from repro.geometry.faces import build_face_map
from repro.network.faults import IndependentDropout
from repro.sim.runner import generate_batches
from repro.sim.scenario import make_scenario

CFG = SimulationConfig(n_sensors=10, duration_s=20.0, grid=GridConfig(cell_size_m=2.5))


@pytest.fixture(scope="module")
def world():
    scenario = make_scenario(CFG, seed=11)
    batches = generate_batches(scenario, 12, faults=IndependentDropout(p=0.25), n_rounds=30)
    stack = np.stack([b.rss for b in batches])
    return scenario, batches, stack


class TestBatchedVectors:
    def test_basic_identical_to_loop(self, world):
        _, _, stack = world
        loop = np.stack([sampling_vector(r, comparator_eps=1.0) for r in stack])
        batched = sampling_vectors(stack, comparator_eps=1.0)
        assert np.array_equal(loop, batched, equal_nan=True)

    def test_extended_identical_to_loop(self, world):
        _, _, stack = world
        loop = np.stack([extended_sampling_vector(r, comparator_eps=1.0) for r in stack])
        batched = extended_sampling_vectors(stack, comparator_eps=1.0)
        assert np.array_equal(loop, batched, equal_nan=True)

    def test_total_silence_star_fill(self):
        rss = np.full((4, 5, 6), -60.0)
        rss[2, :, :3] = np.nan  # three silent sensors: *, +1/-1 fills exercised
        rss[3, :, :] = np.nan  # everyone silent: all-star round
        loop = np.stack([sampling_vector(r) for r in rss])
        batched = sampling_vectors(rss)
        assert np.array_equal(loop, batched, equal_nan=True)
        assert np.isnan(batched[3]).all()

    def test_single_round_promotes(self):
        rss = np.random.default_rng(0).normal(-55.0, 3.0, size=(5, 6))
        assert np.array_equal(sampling_vectors(rss)[0], sampling_vector(rss), equal_nan=True)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError, match="stack"):
            sampling_vectors(np.zeros((2, 2, 2, 2)))
        with pytest.raises(ValueError, match="two sensors"):
            sampling_vectors(np.zeros((3, 4, 1)))

    def test_sign_vectors_identical_to_loop(self, world):
        _, _, stack = world
        for reduce in ("mean", "last"):
            loop = np.stack([sign_vector_from_rss(r, reduce=reduce) for r in stack])
            batched = sign_vectors_from_rss(stack, reduce=reduce)
            assert np.array_equal(loop, batched, equal_nan=True)


class TestBatchedDistances:
    def test_identical_with_nan_masks(self, world):
        scenario, _, stack = world
        fm = scenario.face_map
        vectors = sampling_vectors(stack, comparator_eps=1.0)
        loop = np.stack([fm.distances_to(v) for v in vectors])
        batched = fm.distances_to_many(vectors)
        assert batched.dtype == loop.dtype
        assert np.array_equal(loop, batched)

    def test_identical_on_sensing_range_gated_map(self, four_nodes, small_grid):
        fm = build_face_map(four_nodes, small_grid, 1.5, sensing_range=45.0)
        rng = np.random.default_rng(3)
        vectors = fm.signatures[rng.integers(0, fm.n_faces, size=50)].astype(float)
        vectors[rng.random(vectors.shape) < 0.2] = np.nan
        loop = np.stack([fm.distances_to(v) for v in vectors])
        assert np.array_equal(loop, fm.distances_to_many(vectors))

    def test_fractional_vectors_take_exact_fallback(self, world):
        scenario, _, stack = world
        fm = scenario.face_map
        vectors = extended_sampling_vectors(stack, comparator_eps=1.0)
        loop = np.stack([fm.distances_to(v) for v in vectors])
        assert np.array_equal(loop, fm.distances_to_many(vectors))

    def test_soft_signatures_identical(self, world):
        from repro.core.extended import attach_soft_signatures

        scenario, _, stack = world
        fm = scenario.face_map
        attach_soft_signatures(
            fm,
            path_loss_exponent=CFG.path_loss_exponent,
            noise_sigma_dbm=CFG.noise_sigma_dbm,
            resolution_dbm=CFG.resolution_dbm,
            sensing_range=CFG.sensing_range_m,
        )
        vectors = extended_sampling_vectors(stack, comparator_eps=1.0)
        loop = np.stack([fm.distances_to(v, soft=True) for v in vectors])
        assert np.array_equal(loop, fm.distances_to_many(vectors, soft=True))

    def test_match_many_ties_identical(self, world):
        scenario, _, stack = world
        fm = scenario.face_map
        vectors = sampling_vectors(stack, comparator_eps=1.0)
        ties, bests = fm.match_many(vectors)
        for v, t, best in zip(vectors, ties, bests):
            t_loop, best_loop = fm.match(v)
            assert np.array_equal(t, t_loop)
            assert best == best_loop

    def test_shape_validation(self, face_map):
        with pytest.raises(ValueError, match="expected"):
            face_map.distances_to_many(np.zeros((3, face_map.n_pairs + 1)))


class TestBatchedTrackers:
    def _loop_track(self, tracker, batches):
        tracker.reset()
        result = TrackResult()
        for b in batches:
            result.append(tracker.localize_batch(b), b.mean_position)
        return result

    def _assert_tracks_equal(self, a, b):
        assert len(a) == len(b)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.truth, b.truth)
        for x, y in zip(a.estimates, b.estimates):
            assert x.t == y.t
            assert np.array_equal(x.face_ids, y.face_ids)
            assert x.sq_distance == y.sq_distance
            assert x.n_reporting == y.n_reporting
            assert x.visited_faces == y.visited_faces

    def test_fttt_exhaustive_trace_identical(self, world):
        scenario, batches, _ = world
        tracker = scenario.make_tracker("fttt-exhaustive")
        tracker.reset()
        batched = tracker.track(batches)
        self._assert_tracks_equal(batched, self._loop_track(tracker, batches))

    def test_direct_mle_trace_identical(self, world):
        scenario, batches, _ = world
        tracker = scenario.make_tracker("direct-mle")
        batched = tracker.track(batches)
        self._assert_tracks_equal(batched, self._loop_track(tracker, batches))

    def test_exhaustive_matcher_match_many(self, world):
        scenario, _, stack = world
        fm = scenario.face_map
        matcher = ExhaustiveMatcher(fm)
        vectors = sampling_vectors(stack, comparator_eps=1.0)
        for v, res in zip(vectors, matcher.match_many(vectors)):
            single = matcher.match(v)
            assert np.array_equal(res.face_ids, single.face_ids)
            assert res.sq_distance == single.sq_distance
            assert np.array_equal(res.position, single.position)
            assert res.visited == single.visited

    def test_heuristic_tracker_unaffected_by_batching(self, world):
        # the heuristic matcher is stateful (Algorithm 2) and must keep
        # its sequential per-round semantics
        scenario, batches, _ = world
        tracker = scenario.make_tracker("fttt")
        tracker.reset()
        a = tracker.track(batches)
        b = self._loop_track(tracker, batches)
        self._assert_tracks_equal(a, b)

    def test_pm_viterbi_identical_to_pre_batched_decode(self, world):
        # PM's batched emissions must reproduce the per-round scores the
        # Viterbi decode consumed before batching
        scenario, batches, _ = world
        tracker = scenario.make_tracker("pm")
        fm = tracker.face_map
        result = tracker.track(batches)
        for batch, est in zip(batches, result.estimates):
            vector = tracker.build_vector(np.asarray(batch.rss, dtype=float))
            d2 = fm.distances_to(vector)
            assert est.sq_distance == float(d2[int(est.face_ids[0])])


class TestBatchedCensus:
    def test_census_identical_to_per_trial_matching(self, face_map):
        from repro.core.diagnostics import ambiguity_census
        from repro.rng import ensure_rng

        census = ambiguity_census(face_map, n_trials=60, corruption=2, rng=0)
        # replay the identical RNG stream and match per trial
        gen = ensure_rng(0)
        ties = []
        for _ in range(60):
            fid = int(gen.integers(0, face_map.n_faces))
            v = face_map.signatures[fid].astype(float)
            for idx in gen.integers(0, face_map.n_pairs, size=2):
                step = gen.choice([-1.0, 1.0])
                v[idx] = float(np.clip(v[idx] + step, -1.0, 1.0))
            tied, _ = face_map.match(v)
            ties.append(len(tied))
        ties = np.asarray(ties)
        tied_mask = ties > 1
        assert census.tie_fraction == float(tied_mask.mean())
        assert census.max_tie_size == int(ties.max())
