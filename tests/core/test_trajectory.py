"""Tests for repro.core.trajectory — smoothing and smoothness metrics."""

import numpy as np
import pytest

from repro.core.trajectory import (
    TrajectorySmoothness,
    exponential_smoothing,
    median_filter,
    moving_average,
    smooth_result,
    smoothness_metrics,
)
from repro.core.tracker import TrackEstimate, TrackResult


def make_result(est_points, true_points=None):
    res = TrackResult()
    if true_points is None:
        true_points = est_points
    for i, (e, t) in enumerate(zip(est_points, true_points)):
        res.append(
            TrackEstimate(
                t=float(i) * 0.5,
                position=np.asarray(e, dtype=float),
                face_ids=np.array([0]),
                sq_distance=1.0,
                n_reporting=4,
                visited_faces=1,
            ),
            np.asarray(t, dtype=float),
        )
    return res


class TestFilters:
    def test_moving_average_constant_series(self):
        pos = np.tile([5.0, 5.0], (6, 1))
        assert np.allclose(moving_average(pos, 3), pos)

    def test_moving_average_same_length(self):
        pos = np.random.default_rng(0).uniform(0, 10, (9, 2))
        assert moving_average(pos, 5).shape == pos.shape

    def test_moving_average_reduces_noise(self, rng):
        line = np.column_stack([np.arange(50.0), np.zeros(50)])
        noisy = line + rng.normal(0, 2.0, line.shape)
        smooth = moving_average(noisy, 5)
        assert np.abs(smooth - line).mean() < np.abs(noisy - line).mean()

    def test_median_filter_kills_single_outlier(self):
        pos = np.column_stack([np.arange(7.0), np.zeros(7)])
        pos[3] = [3.0, 50.0]  # spike
        cleaned = median_filter(pos, 3)
        assert cleaned[3, 1] == 0.0

    def test_exponential_is_causal(self):
        pos = np.zeros((5, 2))
        pos[2:] = 10.0
        out = exponential_smoothing(pos, alpha=0.5)
        assert np.all(out[:2] == 0.0)  # future steps don't leak backward
        assert out[2, 0] == pytest.approx(5.0)

    def test_exponential_alpha_one_identity(self, rng):
        pos = rng.uniform(0, 10, (6, 2))
        assert np.allclose(exponential_smoothing(pos, 1.0), pos)

    def test_window_one_identity(self, rng):
        pos = rng.uniform(0, 10, (6, 2))
        assert np.allclose(moving_average(pos, 1), pos)
        assert np.allclose(median_filter(pos, 1), pos)

    def test_validation(self):
        with pytest.raises(ValueError):
            moving_average(np.zeros((3, 2)), 0)
        with pytest.raises(ValueError):
            median_filter(np.zeros((3, 2)), -1)
        with pytest.raises(ValueError):
            exponential_smoothing(np.zeros((3, 2)), 0.0)


class TestSmoothResult:
    def test_preserves_truth_and_length(self, rng):
        res = make_result(rng.uniform(0, 100, (8, 2)))
        out = smooth_result(res, method="mean", window=3)
        assert len(out) == len(res)
        assert np.allclose(out.truth, res.truth)

    def test_methods(self, rng):
        res = make_result(rng.uniform(0, 100, (8, 2)))
        for method in ("mean", "median", "exponential"):
            out = smooth_result(res, method=method)
            assert len(out) == 8
        with pytest.raises(ValueError, match="method"):
            smooth_result(res, method="kalman")

    def test_smoothing_zigzag_reduces_error(self, rng):
        truth = np.column_stack([np.linspace(0, 50, 20), np.full(20, 50.0)])
        zigzag = truth + np.where(np.arange(20)[:, None] % 2 == 0, 4.0, -4.0)
        res = make_result(zigzag, truth)
        out = smooth_result(res, method="mean", window=3)
        assert out.mean_error < res.mean_error


class TestSmoothnessMetrics:
    def test_straight_track_is_smooth(self):
        pts = np.column_stack([np.arange(10.0), np.zeros(10)])
        m = smoothness_metrics(make_result(pts))
        assert m.mean_turn_rad == pytest.approx(0.0)
        assert m.reversal_rate == 0.0
        assert m.path_inflation == pytest.approx(1.0)

    def test_zigzag_inflates_path(self):
        truth = np.column_stack([np.arange(10.0), np.zeros(10)])
        zig = truth.copy()
        zig[:, 1] = np.where(np.arange(10) % 2 == 0, 3.0, -3.0)
        m = smoothness_metrics(make_result(zig, truth))
        assert m.path_inflation > 2.0
        assert m.mean_turn_rad > 0.5

    def test_reversals_detected(self):
        # back-and-forth: every step reverses
        pts = np.array([[0.0, 0], [10, 0], [0, 0], [10, 0], [0, 0]])
        truth = np.column_stack([np.linspace(0, 4, 5), np.zeros(5)])
        m = smoothness_metrics(make_result(pts, truth))
        assert m.reversal_rate == 1.0

    def test_needs_three_rounds(self):
        with pytest.raises(ValueError):
            smoothness_metrics(make_result(np.zeros((2, 2))))

    def test_smoothing_reduces_path_inflation_end_to_end(self, fast_config):
        """Post-hoc smoothing deterministically calms a real FTTT trace."""
        from repro.sim.runner import run_tracking
        from repro.sim.scenario import make_scenario

        scenario = make_scenario(fast_config.with_(duration_s=15.0), seed=0)
        tracker = scenario.make_tracker("fttt")
        res = run_tracking(scenario, tracker, 100)
        smoothed = smooth_result(res, method="mean", window=5)
        assert (
            smoothness_metrics(smoothed).path_inflation
            <= smoothness_metrics(res).path_inflation
        )
