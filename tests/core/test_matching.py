"""Tests for repro.core.matching — exhaustive maximum-likelihood matching."""

import numpy as np
import pytest

from repro.core.matching import ExhaustiveMatcher, MatchResult


class TestExhaustiveMatcher:
    def test_exact_signature_found(self, face_map):
        m = ExhaustiveMatcher(face_map)
        fid = face_map.n_faces // 3
        res = m.match(face_map.signatures[fid].astype(float))
        assert fid in res.face_ids
        assert res.sq_distance == 0.0
        assert res.similarity == float("inf")

    def test_visits_all_faces(self, face_map):
        m = ExhaustiveMatcher(face_map)
        res = m.match(face_map.signatures[0].astype(float))
        assert res.visited == face_map.n_faces

    def test_position_is_tie_mean(self, face_map):
        m = ExhaustiveMatcher(face_map)
        res = m.match(face_map.signatures[0].astype(float))
        assert np.allclose(res.position, face_map.centroids[res.face_ids].mean(axis=0))

    def test_perturbed_vector_still_matches_nearby(self, face_map):
        m = ExhaustiveMatcher(face_map)
        fid = face_map.n_faces // 2
        v = face_map.signatures[fid].astype(float)
        # flip one component by one level
        idx = int(np.argmax(np.abs(v)))
        v2 = v.copy()
        v2[idx] -= np.sign(v2[idx]) if v2[idx] != 0 else 1.0
        res = m.match(v2)
        assert res.sq_distance <= 1.0

    def test_start_face_ignored(self, face_map):
        m = ExhaustiveMatcher(face_map)
        v = face_map.signatures[1].astype(float)
        a = m.match(v)
        b = m.match(v, start_face=0)
        assert np.array_equal(a.face_ids, b.face_ids)

    def test_is_ambiguous_flag(self):
        res_single = MatchResult(np.array([3]), 0.0, np.zeros(2), 1)
        res_multi = MatchResult(np.array([3, 5]), 0.0, np.zeros(2), 1)
        assert not res_single.is_ambiguous
        assert res_multi.is_ambiguous
        assert res_multi.face_id == 3

    def test_reset_is_noop(self, face_map):
        m = ExhaustiveMatcher(face_map)
        m.reset()  # must not raise

    def test_similarity_finite_for_nonzero_distance(self):
        res = MatchResult(np.array([0]), 4.0, np.zeros(2), 1)
        assert res.similarity == pytest.approx(0.5)
