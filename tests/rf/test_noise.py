"""Tests for repro.rf.noise."""

import numpy as np
import pytest

from repro.rf.noise import GaussianNoise, MixtureNoise, NoNoise, NoiseModel, StudentTNoise


class TestGaussianNoise:
    def test_shape(self, rng):
        n = GaussianNoise(6.0)
        assert n.sample((5, 3), rng).shape == (5, 3)

    def test_moments(self, rng):
        n = GaussianNoise(6.0)
        x = n.sample((200_000,), rng)
        assert abs(x.mean()) < 0.1
        assert x.std() == pytest.approx(6.0, rel=0.02)

    def test_zero_sigma_is_deterministic(self, rng):
        n = GaussianNoise(0.0)
        assert np.all(n.sample((10,), rng) == 0.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            GaussianNoise(-1.0)

    def test_satisfies_protocol(self):
        assert isinstance(GaussianNoise(1.0), NoiseModel)


class TestNoNoise:
    def test_always_zero(self, rng):
        assert np.all(NoNoise().sample((4, 4), rng) == 0.0)

    def test_satisfies_protocol(self):
        assert isinstance(NoNoise(), NoiseModel)


class TestStudentT:
    def test_std_matches_sigma(self, rng):
        n = StudentTNoise(sigma_dbm=6.0, dof=5.0)
        x = n.sample((400_000,), rng)
        assert x.std() == pytest.approx(6.0, rel=0.05)

    def test_heavier_tails_than_gaussian(self, rng):
        t = StudentTNoise(sigma_dbm=6.0, dof=3.0).sample((200_000,), rng)
        g = GaussianNoise(6.0).sample((200_000,), rng)
        assert (np.abs(t) > 18.0).mean() > (np.abs(g) > 18.0).mean()

    def test_rejects_low_dof(self):
        with pytest.raises(ValueError, match="dof"):
            StudentTNoise(dof=2.0)

    def test_zero_sigma(self, rng):
        assert np.all(StudentTNoise(sigma_dbm=0.0).sample((5,), rng) == 0.0)


class TestMixtureNoise:
    def test_contamination_raises_spread(self, rng):
        clean = MixtureNoise(sigma_dbm=3.0, outlier_prob=0.0).sample((100_000,), rng)
        dirty = MixtureNoise(sigma_dbm=3.0, outlier_sigma_dbm=20.0, outlier_prob=0.2).sample(
            (100_000,), rng
        )
        assert dirty.std() > clean.std()

    def test_prob_bounds_validated(self):
        with pytest.raises(ValueError, match="outlier_prob"):
            MixtureNoise(outlier_prob=1.5)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            MixtureNoise(sigma_dbm=-1.0)

    def test_zero_prob_equals_base(self, rng):
        n = MixtureNoise(sigma_dbm=2.0, outlier_prob=0.0)
        x = n.sample((50_000,), rng)
        assert x.std() == pytest.approx(2.0, rel=0.05)
