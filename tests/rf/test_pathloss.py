"""Tests for repro.rf.pathloss (Eq. 1)."""

import numpy as np
import pytest

from repro.rf.pathloss import LogDistancePathLoss


class TestRss:
    def test_reference_distance_power(self):
        pl = LogDistancePathLoss(exponent=4.0, p0_dbm=-40.0)
        assert pl.rss_dbm(np.array([1.0]))[0] == pytest.approx(-40.0)

    def test_decade_drop_is_10_beta(self):
        pl = LogDistancePathLoss(exponent=3.0, p0_dbm=-40.0)
        r1 = pl.rss_dbm(np.array([1.0]))[0]
        r10 = pl.rss_dbm(np.array([10.0]))[0]
        assert r1 - r10 == pytest.approx(30.0)

    def test_monotone_decreasing(self):
        pl = LogDistancePathLoss()
        d = np.linspace(0.5, 100.0, 50)
        rss = pl.rss_dbm(d)
        assert np.all(np.diff(rss) < 0)

    def test_distance_clamped_at_zero(self):
        pl = LogDistancePathLoss(min_distance=1e-3)
        assert np.isfinite(pl.rss_dbm(np.array([0.0]))[0])

    def test_scalar_and_array_agree(self):
        pl = LogDistancePathLoss()
        assert pl.rss_dbm(7.0) == pytest.approx(pl.rss_dbm(np.array([7.0]))[0])


class TestInverse:
    def test_roundtrip(self):
        pl = LogDistancePathLoss(exponent=4.0, p0_dbm=-40.0)
        d = np.array([1.0, 5.0, 20.0, 80.0])
        assert np.allclose(pl.distance_from_rss(pl.rss_dbm(d)), d)

    def test_inverse_monotone(self):
        pl = LogDistancePathLoss()
        rss = np.array([-40.0, -60.0, -80.0])
        d = pl.distance_from_rss(rss)
        assert np.all(np.diff(d) > 0)


class TestValidation:
    def test_rejects_nonpositive_exponent(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=0.0)

    def test_rejects_nonpositive_d0(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(d0=0.0)

    def test_rejects_nonpositive_min_distance(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(min_distance=0.0)


class TestGradient:
    def test_gradient_decreases_with_distance(self):
        pl = LogDistancePathLoss(exponent=4.0)
        g = pl.rss_gradient_magnitude(np.array([1.0, 10.0, 100.0]))
        assert np.all(np.diff(g) < 0)

    def test_gradient_value(self):
        pl = LogDistancePathLoss(exponent=2.0)
        # |dRSS/dd| = 10*beta/(d ln10)
        assert pl.rss_gradient_magnitude(np.array([10.0]))[0] == pytest.approx(
            20.0 / (10.0 * np.log(10.0))
        )
