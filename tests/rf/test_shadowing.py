"""Tests for repro.rf.shadowing — correlated noise models."""

import numpy as np
import pytest

from repro.rf.shadowing import (
    CommonModeNoise,
    TemporallyCorrelatedNoise,
    gudmundson_covariance,
)


class TestGudmundson:
    def test_diagonal_is_variance(self):
        pos = np.array([[0.0, 0.0], [10.0, 0.0]])
        cov = gudmundson_covariance(pos, 6.0, 20.0)
        assert np.allclose(np.diag(cov), 36.0)

    def test_decay_with_distance(self):
        pos = np.array([[0.0, 0.0], [5.0, 0.0], [50.0, 0.0]])
        cov = gudmundson_covariance(pos, 6.0, 20.0)
        assert cov[0, 1] > cov[0, 2] > 0

    def test_symmetric_psd(self, rng):
        pos = rng.uniform(0, 100, (8, 2))
        cov = gudmundson_covariance(pos, 6.0, 20.0)
        assert np.allclose(cov, cov.T)
        assert np.linalg.eigvalsh(cov).min() > -1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            gudmundson_covariance(np.zeros((2, 2)), -1.0, 20.0)
        with pytest.raises(ValueError):
            gudmundson_covariance(np.zeros((2, 2)), 6.0, 0.0)


class TestTemporalNoise:
    def test_stationary_variance(self, rng):
        n = TemporallyCorrelatedNoise(sigma_dbm=6.0, rho=0.8)
        samples = np.vstack([n.sample((50, 100), rng) for _ in range(40)])
        assert samples.std() == pytest.approx(6.0, rel=0.05)

    def test_autocorrelation_matches_rho(self, rng):
        rho = 0.9
        n = TemporallyCorrelatedNoise(sigma_dbm=6.0, rho=rho)
        x = n.sample((5000, 20), rng)
        lag1 = np.mean(
            [np.corrcoef(x[:-1, j], x[1:, j])[0, 1] for j in range(20)]
        )
        assert lag1 == pytest.approx(rho, abs=0.05)

    def test_rho_zero_is_iid(self, rng):
        n = TemporallyCorrelatedNoise(sigma_dbm=6.0, rho=0.0)
        x = n.sample((5000, 4), rng)
        lag1 = np.corrcoef(x[:-1, 0], x[1:, 0])[0, 1]
        assert abs(lag1) < 0.05

    def test_state_persists_across_groups(self, rng):
        n = TemporallyCorrelatedNoise(sigma_dbm=6.0, rho=0.99)
        a = n.sample((1, 5), rng)
        b = n.sample((1, 5), rng)
        # with rho ~ 1 the next group starts where the last ended
        assert np.all(np.abs(a - b) < 6.0)

    def test_reset(self, rng):
        n = TemporallyCorrelatedNoise(sigma_dbm=6.0, rho=0.9)
        n.sample((3, 4), rng)
        n.reset()
        assert n._state is None

    def test_requires_2d_shape(self, rng):
        with pytest.raises(ValueError, match=r"\(k, n\)"):
            TemporallyCorrelatedNoise().sample((5,), rng)

    def test_validation(self):
        with pytest.raises(ValueError):
            TemporallyCorrelatedNoise(rho=1.0)
        with pytest.raises(ValueError):
            TemporallyCorrelatedNoise(sigma_dbm=-1.0)


class TestCommonModeNoise:
    def test_total_variance_preserved(self, rng):
        n = CommonModeNoise(sigma_dbm=6.0, alpha=0.7)
        x = n.sample((100_000, 3), rng)
        assert x.std() == pytest.approx(6.0, rel=0.03)

    def test_pairwise_difference_sees_reduced_sigma(self, rng):
        n = CommonModeNoise(sigma_dbm=6.0, alpha=0.8)
        x = n.sample((200_000, 2), rng)
        diff = x[:, 0] - x[:, 1]
        expected = np.sqrt(2) * n.effective_pairwise_sigma
        assert diff.std() == pytest.approx(expected, rel=0.03)

    def test_alpha_zero_is_iid(self, rng):
        n = CommonModeNoise(sigma_dbm=6.0, alpha=0.0)
        x = n.sample((100_000, 2), rng)
        corr = np.corrcoef(x[:, 0], x[:, 1])[0, 1]
        assert abs(corr) < 0.02

    def test_alpha_one_is_fully_common(self, rng):
        n = CommonModeNoise(sigma_dbm=6.0, alpha=1.0)
        x = n.sample((100, 4), rng)
        assert np.allclose(x, x[:, [0]])

    def test_validation(self):
        with pytest.raises(ValueError):
            CommonModeNoise(alpha=1.5)
        with pytest.raises(ValueError):
            CommonModeNoise(sigma_dbm=-1.0)
