"""Tests for repro.rf.acoustic — the testbed's tone channel."""

import numpy as np
import pytest

from repro.rf.acoustic import AcousticToneChannel, atmospheric_absorption_db_per_m


class TestAbsorption:
    def test_positive(self):
        assert atmospheric_absorption_db_per_m(4000.0) > 0

    def test_grows_with_frequency(self):
        a1 = atmospheric_absorption_db_per_m(1000.0)
        a4 = atmospheric_absorption_db_per_m(4000.0)
        assert a4 > a1

    def test_order_of_magnitude_at_4khz(self):
        # literature: ~0.01-0.05 dB/m at 4 kHz in temperate air
        a = atmospheric_absorption_db_per_m(4000.0)
        assert 0.005 < a < 0.1

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            atmospheric_absorption_db_per_m(0.0)


class TestToneChannel:
    def test_reference_level(self):
        ch = AcousticToneChannel(l0_db=90.0, noise_sigma_db=0.0)
        assert ch.level_db(np.array([1.0]))[0] == pytest.approx(90.0, abs=ch.absorption_db_per_m)

    def test_spherical_spreading_dominates_close(self):
        ch = AcousticToneChannel(noise_sigma_db=0.0)
        l1 = ch.level_db(np.array([1.0]))[0]
        l10 = ch.level_db(np.array([10.0]))[0]
        # 20 dB/decade spreading plus a little absorption
        assert 19.0 < l1 - l10 < 22.0

    def test_monotone_decreasing(self):
        ch = AcousticToneChannel(noise_sigma_db=0.0)
        levels = ch.level_db(np.linspace(1, 100, 50))
        assert np.all(np.diff(levels) < 0)

    def test_observe_adds_noise(self, rng):
        ch = AcousticToneChannel(noise_sigma_db=4.0)
        d = np.full(10_000, 20.0)
        obs = ch.observe(d, rng)
        assert obs.std() == pytest.approx(4.0, rel=0.05)

    def test_observe_noiseless(self, rng):
        ch = AcousticToneChannel(noise_sigma_db=0.0)
        d = np.array([5.0, 10.0])
        assert np.allclose(ch.observe(d, rng), ch.level_db(d))

    def test_effective_exponent_at_least_spherical(self):
        ch = AcousticToneChannel()
        assert ch.effective_pathloss_exponent(1.0) >= 2.0

    def test_effective_exponent_grows_with_distance(self):
        ch = AcousticToneChannel()
        assert ch.effective_pathloss_exponent(50.0) > ch.effective_pathloss_exponent(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AcousticToneChannel(noise_sigma_db=-1.0)
        with pytest.raises(ValueError):
            AcousticToneChannel(frequency_hz=0.0)
        with pytest.raises(ValueError):
            AcousticToneChannel(d0=0.0)
