"""Tests for repro.rf.channel — SampleBatch and RssChannel."""

import numpy as np
import pytest

from repro.rf.channel import RssChannel, SampleBatch
from repro.rf.noise import NoNoise
from repro.rf.pathloss import LogDistancePathLoss


def make_channel(nodes, sensing_range=None, noise=None):
    return RssChannel(
        nodes=nodes,
        pathloss=LogDistancePathLoss(exponent=4.0, p0_dbm=-40.0),
        noise=noise or NoNoise(),
        sensing_range_m=sensing_range,
    )


class TestSampleBatch:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="k"):
            SampleBatch(
                rss=np.zeros((3, 2)),
                times=np.zeros(2),
                positions=np.zeros((3, 2)),
            )

    def test_positions_validation(self):
        with pytest.raises(ValueError, match="positions"):
            SampleBatch(rss=np.zeros((2, 2)), times=np.zeros(2), positions=np.zeros((2, 3)))

    def test_responding_mask(self):
        rss = np.array([[1.0, np.nan, 3.0], [1.0, 2.0, np.nan]])
        batch = SampleBatch(rss=rss, times=np.zeros(2), positions=np.zeros((2, 2)))
        assert batch.responding.tolist() == [True, False, False]

    def test_mean_rss_nan_for_partial(self):
        rss = np.array([[1.0, np.nan], [3.0, 2.0]])
        batch = SampleBatch(rss=rss, times=np.zeros(2), positions=np.zeros((2, 2)))
        m = batch.mean_rss()
        assert m[0] == pytest.approx(2.0)
        assert np.isnan(m[1])

    def test_mean_position(self):
        pos = np.array([[0.0, 0.0], [2.0, 4.0]])
        batch = SampleBatch(rss=np.zeros((2, 1)), times=np.zeros(2), positions=pos)
        assert np.allclose(batch.mean_position, [1.0, 2.0])

    def test_k_and_n(self):
        batch = SampleBatch(rss=np.zeros((5, 7)), times=np.zeros(5), positions=np.zeros((5, 2)))
        assert batch.k == 5 and batch.n_sensors == 7


class TestRssChannel:
    def test_distances(self, four_nodes):
        ch = make_channel(four_nodes)
        d = ch.distances(np.array([[30.0, 30.0]]))
        assert d[0, 0] == pytest.approx(0.0)
        assert d[0, 1] == pytest.approx(40.0)

    def test_noiseless_observation_matches_model(self, four_nodes):
        ch = make_channel(four_nodes)
        rng = np.random.default_rng(0)
        batch = ch.observe_static(np.array([50.0, 50.0]), 3, rng)
        d = np.hypot(four_nodes[:, 0] - 50.0, four_nodes[:, 1] - 50.0)
        expected = ch.pathloss.rss_dbm(d)
        assert np.allclose(batch.rss, expected[None, :])

    def test_sensing_range_gates_to_nan(self, four_nodes):
        ch = make_channel(four_nodes, sensing_range=30.0)
        rng = np.random.default_rng(0)
        batch = ch.observe_static(np.array([30.0, 30.0]), 2, rng)
        assert not np.isnan(batch.rss[:, 0]).any()  # co-located node hears
        assert np.isnan(batch.rss[:, 3]).all()  # diagonal node at ~56m silent

    def test_drop_mask_1d(self, four_nodes):
        ch = make_channel(four_nodes)
        rng = np.random.default_rng(0)
        batch = ch.observe(
            np.zeros((2, 2)),
            np.arange(2.0),
            rng,
            drop_mask=np.array([True, False, False, True]),
        )
        assert np.isnan(batch.rss[:, 0]).all()
        assert not np.isnan(batch.rss[:, 1]).any()
        assert np.isnan(batch.rss[:, 3]).all()

    def test_drop_mask_2d(self, four_nodes):
        ch = make_channel(four_nodes)
        rng = np.random.default_rng(0)
        mask = np.zeros((2, 4), dtype=bool)
        mask[0, 2] = True
        batch = ch.observe(np.zeros((2, 2)), np.arange(2.0), rng, drop_mask=mask)
        assert np.isnan(batch.rss[0, 2])
        assert not np.isnan(batch.rss[1, 2])

    def test_observe_static_times(self, four_nodes):
        ch = make_channel(four_nodes)
        rng = np.random.default_rng(0)
        batch = ch.observe_static(np.array([10.0, 10.0]), 4, rng, t0=2.0, dt=0.1)
        assert np.allclose(batch.times, [2.0, 2.1, 2.2, 2.3])

    def test_observe_static_rejects_bad_k(self, four_nodes):
        ch = make_channel(four_nodes)
        with pytest.raises(ValueError, match="k"):
            ch.observe_static(np.zeros(2), 0, np.random.default_rng(0))

    def test_rejects_bad_node_shape(self):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            RssChannel(nodes=np.zeros((3, 3)))

    def test_rejects_nonpositive_range(self, four_nodes):
        with pytest.raises(ValueError, match="range"):
            make_channel(four_nodes, sensing_range=0.0)

    def test_noise_changes_samples(self, four_nodes):
        from repro.rf.noise import GaussianNoise

        ch = make_channel(four_nodes, noise=GaussianNoise(6.0))
        rng = np.random.default_rng(0)
        batch = ch.observe_static(np.array([50.0, 50.0]), 5, rng)
        # successive samples at the same point must differ (fresh noise)
        assert not np.allclose(batch.rss[0], batch.rss[1])
