"""Shared fixtures.

Small, fast worlds reused across the suite: a four-node square deployment
(the paper's Fig. 3/5/7 setting), its uncertain and certain face maps, and
deterministic RNGs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GridConfig, SimulationConfig
from repro.geometry.faces import build_certain_face_map, build_face_map
from repro.geometry.grid import Grid
from repro.rf.channel import RssChannel
from repro.rf.noise import GaussianNoise
from repro.rf.pathloss import LogDistancePathLoss


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def four_nodes() -> np.ndarray:
    """Four sensors on a square — the paper's running example geometry."""
    return np.array([[30.0, 30.0], [70.0, 30.0], [30.0, 70.0], [70.0, 70.0]])


@pytest.fixture
def small_grid() -> Grid:
    return Grid.square(100.0, 2.0)


@pytest.fixture
def face_map(four_nodes, small_grid):
    """Uncertain-boundary face map for the four-node square (C = 1.5)."""
    return build_face_map(four_nodes, small_grid, c=1.5)


@pytest.fixture
def certain_map(four_nodes, small_grid):
    """Bisector-only division of the same deployment."""
    return build_certain_face_map(four_nodes, small_grid)


@pytest.fixture
def channel(four_nodes) -> RssChannel:
    return RssChannel(
        nodes=four_nodes,
        pathloss=LogDistancePathLoss(exponent=4.0, p0_dbm=-40.0),
        noise=GaussianNoise(3.0),
        sensing_range_m=None,
    )


@pytest.fixture
def fast_config() -> SimulationConfig:
    """A short, coarse config for integration tests."""
    return SimulationConfig(
        n_sensors=8,
        duration_s=10.0,
        grid=GridConfig(cell_size_m=4.0),
    )
