"""Shared fixtures and the seeded test-order shuffle.

Small, fast worlds reused across the suite: a four-node square deployment
(the paper's Fig. 3/5/7 setting), its uncertain and certain face maps, and
deterministic RNGs.

Hidden inter-test dependencies (a test passing only because an earlier
one warmed a cache or left an env var behind) survive for as long as the
collection order never changes.  ``--order-seed N`` (or
``REPRO_TEST_ORDER_SEED=N``) shuffles the collected items with that
seed — deterministically, so a failing order is replayable by number.
Seed 0 or unset keeps file order.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.config import GridConfig, SimulationConfig
from repro.geometry.faces import build_certain_face_map, build_face_map
from repro.geometry.grid import Grid
from repro.rf.channel import RssChannel
from repro.rf.noise import GaussianNoise
from repro.rf.pathloss import LogDistancePathLoss

# -- seeded random test ordering ------------------------------------------


def pytest_addoption(parser):
    parser.addoption(
        "--order-seed",
        action="store",
        default=None,
        metavar="N",
        help="shuffle test order with seed N (0 = keep file order); "
        "defaults to $REPRO_TEST_ORDER_SEED",
    )


def _order_seed(config) -> int:
    raw = config.getoption("--order-seed")
    if raw is None:
        raw = os.environ.get("REPRO_TEST_ORDER_SEED", "0")
    try:
        return int(raw)
    except ValueError:
        raise pytest.UsageError(f"--order-seed must be an integer, got {raw!r}")


def pytest_report_header(config):
    seed = _order_seed(config)
    if seed:
        return f"test order: shuffled with seed {seed} (replay with --order-seed {seed})"
    return None


def pytest_collection_modifyitems(config, items):
    seed = _order_seed(config)
    if seed:
        random.Random(seed).shuffle(items)


# -- shared fixtures ------------------------------------------------------


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def four_nodes() -> np.ndarray:
    """Four sensors on a square — the paper's running example geometry."""
    return np.array([[30.0, 30.0], [70.0, 30.0], [30.0, 70.0], [70.0, 70.0]])


@pytest.fixture
def small_grid() -> Grid:
    return Grid.square(100.0, 2.0)


@pytest.fixture
def face_map(four_nodes, small_grid):
    """Uncertain-boundary face map for the four-node square (C = 1.5)."""
    return build_face_map(four_nodes, small_grid, c=1.5)


@pytest.fixture
def certain_map(four_nodes, small_grid):
    """Bisector-only division of the same deployment."""
    return build_certain_face_map(four_nodes, small_grid)


@pytest.fixture
def channel(four_nodes) -> RssChannel:
    return RssChannel(
        nodes=four_nodes,
        pathloss=LogDistancePathLoss(exponent=4.0, p0_dbm=-40.0),
        noise=GaussianNoise(3.0),
        sensing_range_m=None,
    )


@pytest.fixture
def fast_config() -> SimulationConfig:
    """A short, coarse config for integration tests."""
    return SimulationConfig(
        n_sensors=8,
        duration_s=10.0,
        grid=GridConfig(cell_size_m=4.0),
    )
