"""Golden-trace regression: fixed scenarios must replay bit-exactly.

The committed ``trace_*.json`` fixtures hold ``float.hex``-serialized
per-round estimates for a fault-free and a faulty scenario.  Re-running
the scenario must reproduce every number bit-for-bit — tolerance zero.
If a kernel change intentionally moves the numbers, regenerate with
``PYTHONPATH=src python tools/make_golden_traces.py`` and review the diff.
"""

from __future__ import annotations

import pytest

from tests.golden.golden_traces import (
    FORMAT_VERSION,
    SCENARIOS,
    build_trace,
    golden_path,
    load_golden,
)

NAMES = sorted(SCENARIOS)


@pytest.mark.parametrize("name", NAMES)
def test_fixture_exists_and_versioned(name):
    assert golden_path(name).is_file(), (
        f"missing golden fixture {golden_path(name)}; generate with "
        "PYTHONPATH=src python tools/make_golden_traces.py"
    )
    assert load_golden(name)["format_version"] == FORMAT_VERSION


@pytest.mark.parametrize("name", NAMES)
def test_trace_replays_bit_exactly(name):
    golden = load_golden(name)
    fresh = build_trace(name)
    assert fresh["config"] == golden["config"], "golden scenario definition drifted"
    assert sorted(fresh["trackers"]) == sorted(golden["trackers"])
    for tracker, want in golden["trackers"].items():
        got = fresh["trackers"][tracker]
        assert got["mean_error"] == want["mean_error"], f"{name}/{tracker}: mean error moved"
        assert len(got["rounds"]) == len(want["rounds"])
        for r, (g, w) in enumerate(zip(got["rounds"], want["rounds"])):
            assert g == w, f"{name}/{tracker} round {r} diverged: {g} != {w}"


def test_baseline_and_faulty_differ():
    """The fault injection must actually change the numbers being pinned."""
    a = load_golden("baseline")
    b = load_golden("faulty")
    assert a["trackers"]["fttt"]["rounds"] != b["trackers"]["fttt"]["rounds"]


def test_faulty_trace_has_masked_rounds():
    """The faulty fixture exercises Eq. 6: some sensors stop reporting."""
    golden = load_golden("faulty")
    n_reporting = [r["n_reporting"] for r in golden["trackers"]["fttt"]["rounds"]]
    baseline = [r["n_reporting"] for r in load_golden("baseline")["trackers"]["fttt"]["rounds"]]
    assert min(n_reporting) < max(baseline)


def test_byzantine_trace_exercises_quorum_fallback():
    """The byzantine fixture pins the degradation path, not just matching.

    The scripted blackout leaves fewer than three reporters mid-run;
    ``fttt-robust`` must hold the previous face there (``sq_distance``
    serializes as ``inf``) while plain ``fttt`` keeps matching.
    """
    golden = load_golden("byzantine")
    robust = golden["trackers"]["fttt-robust"]["rounds"]
    plain = golden["trackers"]["fttt"]["rounds"]
    held = [r for r in robust if r["sq_distance"] == "inf"]
    assert held, "no quorum-fallback round pinned"
    assert all(r["n_reporting"] < 3 for r in held)
    assert not any(r["sq_distance"] == "inf" for r in plain)
    # a held round repeats the previous round's position bit-for-bit
    idx = robust.index(held[0])
    assert idx > 0
    assert held[0]["position"] == robust[idx - 1]["position"]


def test_byzantine_trace_separates_trackers():
    """Value faults must actually split the three pinned trackers."""
    golden = load_golden("byzantine")
    rounds = {t: golden["trackers"][t]["rounds"] for t in golden["trackers"]}
    assert rounds["fttt"] != rounds["fttt-robust"]
    assert golden["trackers"]["fttt"]["mean_error"] != (
        golden["trackers"]["fttt-robust"]["mean_error"]
    )
