"""Golden-trace regression: fixed scenarios must replay bit-exactly.

The committed ``trace_*.json`` fixtures hold ``float.hex``-serialized
per-round estimates for a fault-free and a faulty scenario.  Re-running
the scenario must reproduce every number bit-for-bit — tolerance zero.
If a kernel change intentionally moves the numbers, regenerate with
``PYTHONPATH=src python tools/make_golden_traces.py`` and review the diff.
"""

from __future__ import annotations

import pytest

from tests.golden.golden_traces import (
    FORMAT_VERSION,
    SCENARIOS,
    build_trace,
    golden_path,
    load_golden,
)

NAMES = sorted(SCENARIOS)


@pytest.mark.parametrize("name", NAMES)
def test_fixture_exists_and_versioned(name):
    assert golden_path(name).is_file(), (
        f"missing golden fixture {golden_path(name)}; generate with "
        "PYTHONPATH=src python tools/make_golden_traces.py"
    )
    assert load_golden(name)["format_version"] == FORMAT_VERSION


@pytest.mark.parametrize("name", NAMES)
def test_trace_replays_bit_exactly(name):
    golden = load_golden(name)
    fresh = build_trace(name)
    assert fresh["config"] == golden["config"], "golden scenario definition drifted"
    assert sorted(fresh["trackers"]) == sorted(golden["trackers"])
    for tracker, want in golden["trackers"].items():
        got = fresh["trackers"][tracker]
        assert got["mean_error"] == want["mean_error"], f"{name}/{tracker}: mean error moved"
        assert len(got["rounds"]) == len(want["rounds"])
        for r, (g, w) in enumerate(zip(got["rounds"], want["rounds"])):
            assert g == w, f"{name}/{tracker} round {r} diverged: {g} != {w}"


def test_baseline_and_faulty_differ():
    """The fault injection must actually change the numbers being pinned."""
    a = load_golden("baseline")
    b = load_golden("faulty")
    assert a["trackers"]["fttt"]["rounds"] != b["trackers"]["fttt"]["rounds"]


def test_faulty_trace_has_masked_rounds():
    """The faulty fixture exercises Eq. 6: some sensors stop reporting."""
    golden = load_golden("faulty")
    n_reporting = [r["n_reporting"] for r in golden["trackers"]["fttt"]["rounds"]]
    baseline = [r["n_reporting"] for r in load_golden("baseline")["trackers"]["fttt"]["rounds"]]
    assert min(n_reporting) < max(baseline)
