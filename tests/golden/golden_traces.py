"""Golden-trace scenarios and their bit-exact serialization.

A golden trace pins the *numbers* a fixed scenario produces — every
per-round estimate of every tracker, serialized with ``float.hex`` so the
comparison is bit-for-bit, not within-epsilon.  Any change to the
geometry kernels, the matchers, the fault fill, or the RNG plumbing that
perturbs a single ULP shows up as a diff against the committed fixture.

Regenerate (only after an *intentional* numerical change) with::

    PYTHONPATH=src python tools/make_golden_traces.py

and review the diff of ``tests/golden/*.json`` like any other code.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.config import GridConfig, SimulationConfig
from repro.network.faults import (
    ByzantineRSS,
    CompositeFaults,
    CrashFailures,
    IndependentDropout,
    Schedule,
)
from repro.sim.runner import run_all_trackers
from repro.sim.scenario import make_scenario

GOLDEN_DIR = Path(__file__).resolve().parent
FORMAT_VERSION = 1

_CONFIG = SimulationConfig(duration_s=8.0, n_sensors=8, grid=GridConfig(cell_size_m=4.0))
_TRACKERS = ["fttt", "fttt-exhaustive", "direct-mle"]
_SCENARIO_SEED = 11
_RNG_SEED = 42
_N_ROUNDS = 10

SCENARIOS: dict[str, dict[str, Any]] = {
    # fault-free world: pins the clean Algorithm 1 + matcher pipeline
    "baseline": {"faults": None},
    # transient dropouts + permanent crashes: pins the Eq. 6 fill, the
    # Eq. 7 masking, and the fault models' rng consumption order
    "faulty": {
        "faults": lambda: CompositeFaults(
            [
                IndependentDropout(p=0.25),
                CrashFailures(crash_fraction=0.25, horizon_rounds=_N_ROUNDS),
            ]
        )
    },
    # lying sensors + a scripted blackout: pins ByzantineRSS's per-sample
    # replacement stream and the degradation path of ``fttt-robust`` —
    # rounds 4-6 leave only two reporters, so the quorum check must hold
    # the previous face (sq_distance serializes as inf)
    "byzantine": {
        "faults": lambda: CompositeFaults(
            [
                ByzantineRSS(fraction=0.25),
                Schedule(outages=tuple((s, 4, 7) for s in range(6))),
            ]
        ),
        "trackers": ["fttt", "fttt-robust", "fttt-zero"],
    },
}


def _hex(x: float) -> str:
    return float(x).hex()


def _hex_list(a: np.ndarray) -> list[str]:
    return [_hex(v) for v in np.asarray(a, dtype=float).ravel()]


def build_trace(name: str) -> dict[str, Any]:
    """Run the named golden scenario and serialize every estimate."""
    spec = SCENARIOS[name]
    scenario = make_scenario(_CONFIG, seed=_SCENARIO_SEED)
    faults = spec["faults"]() if spec["faults"] is not None else None
    results = run_all_trackers(
        scenario,
        spec.get("trackers", _TRACKERS),
        rng=_RNG_SEED,
        faults=faults,
        n_rounds=_N_ROUNDS,
    )
    trackers: dict[str, Any] = {}
    for tracker_name, result in results.items():
        rounds = []
        for est, true_pos in zip(result.estimates, result.true_positions):
            rounds.append(
                {
                    "t": _hex(est.t),
                    "position": _hex_list(est.position),
                    "face_ids": [int(f) for f in est.face_ids],
                    "sq_distance": _hex(est.sq_distance),
                    "n_reporting": int(est.n_reporting),
                    "true_position": _hex_list(true_pos),
                }
            )
        trackers[tracker_name] = {
            "rounds": rounds,
            "mean_error": _hex(result.mean_error),
        }
    return {
        "format_version": FORMAT_VERSION,
        "scenario": name,
        "config": {
            "n_sensors": _CONFIG.n_sensors,
            "field_size_m": _CONFIG.field_size_m,
            "cell_size_m": _CONFIG.grid.cell_size_m,
            "scenario_seed": _SCENARIO_SEED,
            "rng_seed": _RNG_SEED,
            "n_rounds": _N_ROUNDS,
        },
        "trackers": trackers,
    }


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"trace_{name}.json"


def write_golden(name: str) -> Path:
    path = golden_path(name)
    path.write_text(json.dumps(build_trace(name), indent=2, sort_keys=True) + "\n")
    return path


def load_golden(name: str) -> dict[str, Any]:
    return json.loads(golden_path(name).read_text())
