"""Unit-level differentials: the oracle tier vs the production kernels.

The fuzz harness (``test_fuzz_sample``) covers randomized scenarios; the
tests here pin the individual oracle functions on the shared fixtures and
against independent ground truth (exact circle intersections, closed
forms), so a bug in the *oracle* itself cannot hide behind agreement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.error_bounds import expected_interface_error
from repro.analysis.sampling_times import (
    all_flips_probability,
    required_sampling_times,
)
from repro.core.tracker import DegradationPolicy, FTTTracker
from repro.geometry.exact import circle_intersections
from repro.geometry.primitives import Circle
from repro.oracle import (
    check_sampling_times_bound,
    dense_signatures,
    mc_flip_capture,
    mc_interface_error,
    oracle_masked_sq_distance,
    oracle_match,
    oracle_pair_value,
    oracle_sampling_vector,
    oracle_track,
    verify_face_map,
)
from repro.oracle.geometry import _apollonius_center_radius


class TestGeometryOracle:
    def test_apollonius_circle_agrees_with_exact_intersections(self):
        """The oracle's circle must pass through the exact locus points.

        Every intersection of the oracle circle with an arbitrary probe
        circle satisfies ``|x - p_i| / |x - p_j| = ratio`` — the defining
        property of the Apollonius locus (Eq. 4), checked through the
        independent :func:`repro.geometry.exact.circle_intersections`.
        """
        p_i, p_j, ratio = (20.0, 30.0), (60.0, 34.0), 1.0 / 1.4
        cx, cy, r = _apollonius_center_radius(p_i, p_j, ratio)
        probe = Circle(cx + r * 0.6, cy - r * 0.2, r * 0.9)
        points = circle_intersections(Circle(cx, cy, r), probe)
        assert len(points) == 2
        for x, y in points:
            d_i = np.hypot(x - p_i[0], y - p_i[1])
            d_j = np.hypot(x - p_j[0], y - p_j[1])
            assert d_i / d_j == pytest.approx(ratio, rel=1e-9)

    def test_pair_value_inside_each_circle(self):
        p_i, p_j, c = (30.0, 30.0), (70.0, 30.0), 1.5
        assert oracle_pair_value(p_i, p_i, p_j, c) == 1
        assert oracle_pair_value(p_j, p_i, p_j, c) == -1
        midpoint = (50.0, 30.0)
        assert oracle_pair_value(midpoint, p_i, p_j, c) == 0

    def test_pair_value_sensing_range_overrides(self):
        p_i, p_j = (0.0, 0.0), (100.0, 0.0)
        near_i = (5.0, 0.0)
        assert oracle_pair_value(near_i, p_i, p_j, 1.5, sensing_range=20.0) == 1
        far = (50.0, 80.0)
        assert oracle_pair_value(far, p_i, p_j, 1.5, sensing_range=20.0) == 0

    def test_face_map_fixture_verifies_clean(self, face_map):
        report = verify_face_map(face_map)
        assert report["mismatches"] == []
        assert report["centroid_errors"] == []
        assert report["n_checked"] == face_map.grid.n_cells * face_map.n_pairs

    def test_certain_map_fixture_verifies_clean(self, certain_map):
        report = verify_face_map(certain_map)
        assert report["mismatches"] == []
        assert report["centroid_errors"] == []

    def test_dense_signatures_match_production_cells(self, face_map):
        centers = face_map.grid.cell_centers[::97]  # a deterministic sample
        oracle = dense_signatures(centers, face_map.nodes, face_map.c)
        production = face_map.signatures[face_map.cell_face[::97]]
        assert np.array_equal(oracle, production)


class TestMatchingOracle:
    def _rss(self, rng, k=4, n=4):
        rss = rng.uniform(-80.0, -40.0, (k, n))
        rss[rng.random((k, n)) < 0.2] = np.nan
        return rss

    @pytest.mark.parametrize("mode", ["basic", "extended"])
    def test_vectors_bit_identical_to_production(self, rng, mode):
        from repro.core.vectors import extended_sampling_vector, sampling_vector

        build = extended_sampling_vector if mode == "extended" else sampling_vector
        for _ in range(50):
            rss = self._rss(rng)
            assert np.array_equal(
                build(rss),
                oracle_sampling_vector(rss, mode=mode),
                equal_nan=True,
            )

    def test_masked_distance_matches_float32_kernel(self, face_map, rng):
        for _ in range(25):
            v = oracle_sampling_vector(self._rss(rng))
            production = face_map.distances_to(v)
            for f in range(face_map.n_faces):
                # basic values are exact small integers: bit equality
                assert float(production[f]) == oracle_masked_sq_distance(
                    v, face_map.signatures[f].astype(float)
                )

    def test_match_ties_equal_production(self, face_map, rng):
        signatures = face_map.signatures.astype(float)
        for _ in range(25):
            v = oracle_sampling_vector(self._rss(rng))
            ties, best = face_map.match(v)
            oracle_ties, oracle_best = oracle_match(signatures, v)
            assert ties.tolist() == oracle_ties
            assert float(best) == oracle_best


class TestTrackingOracle:
    def _rounds(self, rng, n_rounds=5, k=3, n=4):
        out = []
        for _ in range(n_rounds):
            rss = rng.uniform(-80.0, -40.0, (k, n))
            rss[rng.random((k, n)) < 0.15] = np.nan
            out.append(rss)
        return out

    def test_plain_tracker_anchor_sequence_bit_identical(self, face_map, rng):
        rounds = self._rounds(rng)
        tracker = FTTTracker(face_map, matcher="exhaustive")
        production = [tracker.localize(r, t=float(i)) for i, r in enumerate(rounds)]
        oracle = oracle_track(face_map, rounds)
        for prod, want in zip(production, oracle):
            assert prod.face_ids.tolist() == list(want.face_ids)
            assert tuple(prod.position) == want.position
            assert float(prod.sq_distance) == want.sq_distance

    def test_degradation_tracker_bit_identical(self, face_map, rng):
        policy = DegradationPolicy(
            warmup_rounds=2, min_reporting=3, max_masked_fraction=0.5
        )
        rounds = self._rounds(rng, n_rounds=8)
        tracker = FTTTracker(face_map, matcher="exhaustive", degradation=policy)
        production = [tracker.localize(r, t=float(i)) for i, r in enumerate(rounds)]
        oracle = oracle_track(face_map, rounds, degradation=policy)
        held = 0
        for prod, want in zip(production, oracle):
            assert prod.face_ids.tolist() == list(want.face_ids)
            assert tuple(prod.position) == want.position
            assert float(prod.sq_distance) == want.sq_distance
            held += want.held
        assert held == sum(1 for p in production if p.sq_distance == float("inf"))


class TestAnalysisOracle:
    def test_mc_flip_capture_matches_closed_form(self):
        estimate = mc_flip_capture(5, 8, n_trials=20_000, rng=0)
        # independent pairs: truth is (1-f)^N; the paper's (1-f)^(N-1) is
        # the loose variant -- the MC estimate must sit at/below it
        f = 0.5**4
        assert estimate == pytest.approx((1 - f) ** 8, abs=0.02)
        assert estimate <= all_flips_probability(5, 8) + 0.02

    def test_mc_interface_error_matches_closed_form(self):
        estimate = mc_interface_error(4, 10, n_trials=20_000, rng=1)
        assert estimate == pytest.approx(expected_interface_error(4, 10), rel=0.1)

    @pytest.mark.parametrize("confidence", [0.9, 0.99, 0.999])
    @pytest.mark.parametrize("n_pairs", [4, 9, 16, 190])
    def test_bound_check_agrees_with_production(self, confidence, n_pairs):
        result = check_sampling_times_bound(confidence, n_pairs)
        assert result["holds_at_k"]
        assert result["fails_below_k"]
        assert result["k"] == required_sampling_times(n_pairs, confidence)
        # the integer k sits just above the real-valued bound
        assert result["k"] - 1 <= result["bound"] < result["k"]
