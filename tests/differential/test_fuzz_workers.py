"""Worker-count invariance of the fuzz campaign.

Scenario *i* is a pure function of ``(master_seed, i)`` and reports merge
in index order, so the full campaign report — hashed into ``digest`` —
must be byte-identical whether it ran inline or across a pool.  This is
the same determinism rule the simulation sweeps pin in
``tests/sim/test_parallel.py``, applied to the differential harness.
"""

from __future__ import annotations

import pytest

from repro.oracle.fuzz import run_fuzz


@pytest.mark.slow
def test_digest_identical_across_worker_counts():
    serial = run_fuzz(24, seed=99, n_workers=1, shrink=False)
    pooled = run_fuzz(24, seed=99, n_workers=4, shrink=False)
    assert serial["n_divergent"] == 0
    assert serial["digest"] == pooled["digest"]
    assert serial["n_checks"] == pooled["n_checks"]


def test_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "1")
    summary = run_fuzz(3, seed=42, shrink=False)
    assert summary["n_workers"] == 1
    monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
    with pytest.raises(ValueError):
        run_fuzz(3, seed=42)
    monkeypatch.setenv("REPRO_WORKERS", "0")
    with pytest.raises(ValueError):
        run_fuzz(3, seed=42)


def test_worker_count_clamped_to_scenarios(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "8")
    summary = run_fuzz(2, seed=7, shrink=False)
    assert summary["n_workers"] == 2
