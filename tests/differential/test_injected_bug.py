"""End-to-end sensitivity check: an injected kernel bug must be caught.

A differential harness that never fires is indistinguishable from one
that cannot fire.  These tests mutate a production kernel (the match tie
tolerance), assert the fuzzer reports a divergence with a shrunk,
replayable artifact, then restore the kernel and assert the same
campaign runs clean again.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.geometry.faces import FaceMap
from repro.oracle.fuzz import replay_divergence, run_fuzz

CAMPAIGN = dict(seed=3, n_workers=1)
N_SCENARIOS = 60


@pytest.fixture
def inflated_tie_tolerance(monkeypatch):
    """Mutate the kernel: admit faces 0.75 beyond the honest tie threshold."""
    original = FaceMap.tie_tolerance
    monkeypatch.setattr(
        FaceMap, "tie_tolerance", lambda self, best: original(self, best) + 0.75
    )


def test_injected_bug_is_caught_and_artifact_replayable(
    inflated_tie_tolerance, tmp_path
):
    summary = run_fuzz(N_SCENARIOS, artifact_dir=tmp_path, **CAMPAIGN)
    assert summary["n_divergent"] > 0
    first = summary["first_divergence"]
    assert first is not None
    assert first["check"] in ("match_winner", "batched_match", "tracker_anchor")

    artifact_path = tmp_path / f"divergence_seed{CAMPAIGN['seed']}_idx{first['index']}.json"
    assert str(artifact_path) == first["artifact"]
    artifact = json.loads(artifact_path.read_text())
    assert artifact["check"] == first["check"]
    assert artifact["spec"] == first["spec"]
    assert artifact["divergence"]["check"] == first["check"]

    # one-command repro: the artifact reproduces while the bug is in place
    replay = replay_divergence(artifact_path)
    assert replay["reproduced"]
    assert replay["recorded_check"] == first["check"]


def test_shrinking_minimizes_the_failing_spec(inflated_tie_tolerance, tmp_path):
    raw = run_fuzz(N_SCENARIOS, artifact_dir=tmp_path, shrink=False, **CAMPAIGN)
    shrunk = run_fuzz(N_SCENARIOS, artifact_dir=tmp_path, shrink=True, **CAMPAIGN)
    assert raw["first_divergence"]["index"] == shrunk["first_divergence"]["index"]

    def size(spec: dict) -> tuple:
        return (
            spec["n_nodes"],
            spec["n_rounds"],
            spec["k"],
            spec["value_fault"] is not None,
            spec["dropout_p"] > 0,
            spec["sample_loss_p"] > 0,
            spec["degradation"],
        )

    # never larger than the raw spec, in every shrink dimension
    assert all(
        s <= r
        for s, r in zip(
            size(shrunk["first_divergence"]["spec"]),
            size(raw["first_divergence"]["spec"]),
        )
    )


def test_campaign_is_clean_after_the_bug_is_removed(tmp_path):
    """Same campaign, honest kernel: zero divergences, no artifacts."""
    summary = run_fuzz(N_SCENARIOS, artifact_dir=tmp_path, **CAMPAIGN)
    assert summary["n_divergent"] == 0
    assert not list(tmp_path.iterdir())


def test_replayed_artifact_reports_clean_after_fix(tmp_path):
    """An artifact recorded under the bug stops reproducing once fixed."""
    original = FaceMap.tie_tolerance
    FaceMap.tie_tolerance = lambda self, best: original(self, best) + 0.75
    try:
        summary = run_fuzz(N_SCENARIOS, artifact_dir=tmp_path, **CAMPAIGN)
        artifact = summary["first_divergence"]["artifact"]
    finally:
        FaceMap.tie_tolerance = original
    replay = replay_divergence(artifact)
    assert not replay["reproduced"]
    assert replay["report"]["divergences"] == []


def test_vector_kernel_bug_is_caught(monkeypatch, tmp_path):
    """A second, independent mutation: break the Eq. 6 fill direction."""
    import repro.core.vectors as vectors

    original = vectors._fault_fill

    def flipped(values, rss, i_idx, j_idx, n_valid):
        return -original(values, rss, i_idx, j_idx, n_valid)

    monkeypatch.setattr(vectors, "_fault_fill", flipped)
    summary = run_fuzz(N_SCENARIOS, artifact_dir=tmp_path, **CAMPAIGN)
    assert summary["n_divergent"] > 0
    assert summary["first_divergence"]["check"] == "sampling_vector"
