"""The tier-1 fuzz sample: 200 randomized scenarios, zero divergences.

This is the acceptance gate of the oracle layer — every optimized kernel
(face signatures, Algorithm-1 vectors, Eq. 7 distances, exhaustive
matching, the tracker round loop, and all their batched variants) must
agree with the straight-from-the-paper reference on every scenario.

A deep run is available by exporting ``REPRO_FUZZ_BUDGET`` (the nightly
CI job sets it to several thousand); tier-1 keeps the fixed 200.
"""

from __future__ import annotations

import os

import pytest

from repro.oracle.fuzz import default_budget, generate_spec, run_fuzz, run_spec

TIER1_SCENARIOS = 200
TIER1_SEED = 20260806


def test_tier1_sample_has_zero_divergences(tmp_path):
    summary = run_fuzz(
        TIER1_SCENARIOS,
        seed=TIER1_SEED,
        n_workers=1,
        artifact_dir=tmp_path,
        shrink=False,
    )
    assert summary["n_scenarios"] == TIER1_SCENARIOS
    assert summary["n_divergent"] == 0, summary["first_divergence"]
    assert summary["first_divergence"] is None
    assert not list(tmp_path.iterdir())  # no artifact without a divergence
    # every check family must actually have run
    assert summary["n_checks"] > TIER1_SCENARIOS * 10


def test_scenario_generation_is_pure():
    """Spec *i* is a pure function of (seed, i) — the replay contract."""
    a = generate_spec(17, TIER1_SEED)
    b = generate_spec(17, TIER1_SEED)
    assert a == b
    assert a.to_dict() == b.to_dict()
    assert generate_spec(18, TIER1_SEED) != a


def test_spec_json_round_trip():
    from repro.oracle.fuzz import FuzzSpec

    spec = generate_spec(3, TIER1_SEED)
    assert FuzzSpec.from_dict(spec.to_dict()) == spec


def test_run_spec_is_deterministic():
    spec = generate_spec(5, TIER1_SEED)
    assert run_spec(spec) == run_spec(spec)


def test_default_budget_env(monkeypatch):
    monkeypatch.delenv("REPRO_FUZZ_BUDGET", raising=False)
    assert default_budget() == 200
    monkeypatch.setenv("REPRO_FUZZ_BUDGET", "5000")
    assert default_budget() == 5000
    monkeypatch.setenv("REPRO_FUZZ_BUDGET", "zero")
    with pytest.raises(ValueError):
        default_budget()
    monkeypatch.setenv("REPRO_FUZZ_BUDGET", "0")
    with pytest.raises(ValueError):
        default_budget()


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_FUZZ_BUDGET"),
    reason="deep fuzz only runs with REPRO_FUZZ_BUDGET set (nightly CI)",
)
def test_deep_fuzz_budget(tmp_path):
    """The nightly campaign: REPRO_FUZZ_BUDGET scenarios, parallel workers."""
    summary = run_fuzz(
        default_budget(),
        seed=TIER1_SEED + 1,
        artifact_dir=os.environ.get("REPRO_FUZZ_ARTIFACTS", tmp_path),
    )
    assert summary["n_divergent"] == 0, summary["first_divergence"]
