"""Statistical shape tests: the paper's headline claims must hold.

These are the slowest tests in the suite (full tracking runs), sized to be
statistically meaningful while staying in tens of seconds.  The benchmark
harness reproduces the full figures; these tests guard the *direction* of
every claim.
"""

import numpy as np
import pytest

from repro.config import GridConfig, SimulationConfig
from repro.sim.experiments import replicate_mean_error
from repro.sim.runner import run_all_trackers
from repro.sim.scenario import make_scenario

CFG = SimulationConfig(n_sensors=10, duration_s=30.0, grid=GridConfig(cell_size_m=2.5))


def mean_over_seeds(tracker_names, cfg=CFG, seeds=(0, 1, 2)):
    sums = {n: [] for n in tracker_names}
    for seed in seeds:
        scenario = make_scenario(cfg, seed=1000 + seed)
        results = run_all_trackers(scenario, tracker_names, 2000 + seed)
        for name, res in results.items():
            sums[name].append(res.mean_error)
    return {n: float(np.mean(v)) for n, v in sums.items()}


@pytest.mark.slow
class TestHeadlineClaims:
    def test_fig11_fttt_beats_pm_and_direct_mle(self):
        means = mean_over_seeds(["fttt", "pm", "direct-mle"])
        assert means["fttt"] < means["pm"]
        assert means["fttt"] < means["direct-mle"]

    def test_fig11_error_decreases_with_more_sensors(self):
        recs_sparse = replicate_mean_error(
            CFG.with_(n_sensors=5), ["fttt"], n_reps=3, seed=10
        )
        recs_dense = replicate_mean_error(
            CFG.with_(n_sensors=25), ["fttt"], n_reps=3, seed=10
        )
        assert recs_dense[0].mean_error < recs_sparse[0].mean_error

    def test_fig12a_lower_resolution_lowers_error_model_mode(self):
        """Fig. 12(a)'s epsilon slope under the paper's own flip semantics.

        Under the physical channel at Table-1's sigma = 6 dB the comparator
        resolution is second-order (noise dominates; see EXPERIMENTS.md),
        so this claim is checked in model mode, where the paper's coupling
        of flips to the epsilon-derived uncertain area is exact.
        """
        from repro.geometry.apollonius import uncertainty_constant
        from repro.geometry.faces import build_face_map
        from repro.geometry.grid import Grid
        from repro.mobility.waypoint import RandomWaypoint
        from repro.network.deployment import random_deployment
        from repro.sim.modelmode import ModelSampler, run_model_tracking

        def mean_err(eps):
            errs = []
            for seed in range(6):
                nodes = random_deployment(10, 100.0, seed, min_separation=4.0)
                c = uncertainty_constant(eps, 4.0, 6.0)
                fm = build_face_map(nodes, Grid.square(100.0, 2.5), c, sensing_range=40.0)
                mob = RandomWaypoint(field_size=100.0, duration_s=30.0, seed=seed + 100)
                times = np.arange(60) * 0.5
                sampler = ModelSampler(nodes, c, k=5, sensing_range=40.0)
                errs.append(
                    run_model_tracking(fm, sampler, mob.position(times), times, seed + 200).mean_error
                )
            return float(np.mean(errs))

        assert mean_err(0.5) <= mean_err(3.0) * 1.02

    def test_fig12a_physical_mode_epsilon_is_second_order(self):
        """Documented deviation: with real sigma = 6 dB sample noise, the
        comparator resolution barely moves the error (within 25%)."""
        recs_fine = replicate_mean_error(
            CFG.with_(resolution_dbm=0.5), ["fttt"], n_reps=3, seed=20
        )
        recs_coarse = replicate_mean_error(
            CFG.with_(resolution_dbm=3.0), ["fttt"], n_reps=3, seed=20
        )
        ratio = recs_fine[0].mean_error / recs_coarse[0].mean_error
        assert 0.75 < ratio < 1.45

    def test_fig12b_more_sampling_times_lower_error_model_mode(self):
        """Fig. 12(b)'s k slope under the paper's flip semantics: larger
        grouping samplings capture more flips, monotonically."""
        from repro.geometry.apollonius import uncertainty_constant
        from repro.geometry.faces import build_face_map
        from repro.geometry.grid import Grid
        from repro.mobility.waypoint import RandomWaypoint
        from repro.network.deployment import random_deployment
        from repro.sim.modelmode import ModelSampler, run_model_tracking

        def mean_err(k):
            c = uncertainty_constant(1.0, 4.0, 6.0)
            errs = []
            for seed in range(6):
                nodes = random_deployment(10, 100.0, seed, min_separation=4.0)
                fm = build_face_map(nodes, Grid.square(100.0, 2.5), c, sensing_range=40.0)
                mob = RandomWaypoint(field_size=100.0, duration_s=30.0, seed=seed + 100)
                times = np.arange(60) * 0.5
                sampler = ModelSampler(nodes, c, k=k, sensing_range=40.0)
                errs.append(
                    run_model_tracking(fm, sampler, mob.position(times), times, seed + 200).mean_error
                )
            return float(np.mean(errs))

        assert mean_err(9) < mean_err(3)

    def test_fig12b_physical_mode_static_target(self):
        """Physical-channel confirmation with the motion confound removed:
        for a quasi-static target, larger k strictly helps."""
        from repro.mobility.base import StationaryTarget
        from repro.sim.runner import run_tracking

        errs = {}
        for k in (3, 9):
            vals = []
            for seed in range(3):
                cfg = CFG.with_(sampling_times=k)
                scenario = make_scenario(
                    cfg,
                    seed=300 + seed,
                    mobility=StationaryTarget(np.array([35.0 + 10 * seed, 55.0])),
                )
                tracker = scenario.make_tracker("fttt")
                vals.append(run_tracking(scenario, tracker, 400 + seed).mean_error)
            errs[k] = float(np.mean(vals))
        assert errs[9] < errs[3]

    def test_fig12cd_extended_reduces_error_std(self):
        recs = replicate_mean_error(
            CFG, ["fttt", "fttt-extended"], n_reps=4, seed=40
        )
        by_name = {r.tracker: r for r in recs}
        # §6 claim: extension cuts the deviation (and never hurts the mean much)
        assert by_name["fttt-extended"].std_error < by_name["fttt"].std_error * 1.05
        assert by_name["fttt-extended"].mean_error < by_name["fttt"].mean_error * 1.2
