"""Sweep determinism and environment isolation.

Three contracts, all load-bearing for reproducibility claims:

* ``parallel_sweep`` emits identical records whatever the pool size —
  ``REPRO_WORKERS=1`` (inline) and ``REPRO_WORKERS=4`` must agree on
  every float;
* a ``cache_dir`` sweep scopes its ``REPRO_FACE_CACHE_DIR`` mutation to
  the call: the environment and the global cache configuration are
  restored afterwards, even when the sweep raises;
* an ``obs_dir`` sweep likewise restores ``REPRO_OBS`` and the tracer.
"""

from __future__ import annotations

import os

import pytest

import repro.obs as obs
from repro.config import GridConfig, SimulationConfig
from repro.geometry.cache import configure_face_map_cache, default_face_map_cache
from repro.network.faults import IndependentDropout
from repro.sim.parallel import parallel_sweep, recommended_workers

TINY = SimulationConfig(duration_s=6.0, grid=GridConfig(cell_size_m=4.0))

# spawns real worker pools; skippable in the quick loop via -m "not slow"
pytestmark = pytest.mark.slow


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for var in ("REPRO_WORKERS", "REPRO_FACE_CACHE", "REPRO_FACE_CACHE_DIR", "REPRO_OBS"):
        monkeypatch.delenv(var, raising=False)
    configure_face_map_cache(maxsize=64, disk_dir=None, enabled=None)
    default_face_map_cache().clear()
    obs.set_enabled(None)
    obs.set_tracer(None)
    yield
    configure_face_map_cache(maxsize=64, disk_dir=None, enabled=None)
    default_face_map_cache().clear()
    obs.set_enabled(None)
    obs.set_tracer(None)


def _points():
    return [(TINY.with_(n_sensors=n), {"n_sensors": n}) for n in (6, 8, 9, 10)]


def _run(**kwargs):
    return parallel_sweep(
        _points(),
        ["fttt", "nearest"],
        n_reps=2,
        seed=7,
        faults=IndependentDropout(p=0.2),
        **kwargs,
    )


def _assert_records_equal(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.tracker == y.tracker
        assert x.params == y.params
        assert x.mean_error == y.mean_error
        assert x.std_error == y.std_error
        assert x.per_rep_means == y.per_rep_means


class TestWorkerCountInvariance:
    def test_repro_workers_env_1_vs_4_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert recommended_workers(4) == 1
        serial = _run(n_workers=None)
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert recommended_workers(4) == 4
        pooled = _run(n_workers=None)
        _assert_records_equal(serial, pooled)

    def test_explicit_worker_counts_identical(self):
        _assert_records_equal(_run(n_workers=1), _run(n_workers=3))

    def test_worker_invariance_holds_with_obs_enabled(self, tmp_path):
        serial = _run(n_workers=1, obs_dir=tmp_path / "a")
        pooled = _run(n_workers=4, obs_dir=tmp_path / "b")
        _assert_records_equal(serial, pooled)


class TestCacheDirIsolation:
    def test_env_and_cache_config_restored(self, tmp_path):
        cache = default_face_map_cache()
        disk_before = cache.disk_dir
        _run(n_workers=1, cache_dir=tmp_path / "facemaps")
        assert "REPRO_FACE_CACHE_DIR" not in os.environ
        assert cache.disk_dir == disk_before

    def test_preexisting_env_value_restored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FACE_CACHE_DIR", "/somewhere/else")
        _run(n_workers=1, cache_dir=tmp_path / "facemaps")
        assert os.environ["REPRO_FACE_CACHE_DIR"] == "/somewhere/else"

    def test_restored_even_when_sweep_raises(self, tmp_path):
        # unknown tracker name fails inside the scoped-environment block
        with pytest.raises(Exception):
            parallel_sweep(
                _points()[:1], ["no-such-tracker"], n_workers=1, cache_dir=tmp_path / "fm"
            )
        assert "REPRO_FACE_CACHE_DIR" not in os.environ
        assert default_face_map_cache().disk_dir is None

    def test_two_tmp_path_sweeps_do_not_share_state(self, tmp_path):
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        a = _run(n_workers=1, cache_dir=a_dir)
        b = _run(n_workers=1, cache_dir=b_dir)
        _assert_records_equal(a, b)
        # each sweep populated its own isolated store
        assert list(a_dir.glob("facemap-*.npz"))
        assert list(b_dir.glob("facemap-*.npz"))

    def test_records_identical_with_and_without_cache_dir(self, tmp_path):
        _assert_records_equal(_run(n_workers=1), _run(n_workers=1, cache_dir=tmp_path / "c"))


class TestObsDirIsolation:
    def test_obs_env_and_tracer_restored(self, tmp_path):
        _run(n_workers=1, obs_dir=tmp_path / "obs")
        assert os.environ.get("REPRO_OBS") is None
        assert not obs.enabled()
        assert obs.tracer() is None

    def test_preexisting_obs_env_restored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        _run(n_workers=1, obs_dir=tmp_path / "obs")
        assert os.environ["REPRO_OBS"] == "0"

    def test_obs_sweep_does_not_change_records(self, tmp_path):
        _assert_records_equal(_run(n_workers=1), _run(n_workers=1, obs_dir=tmp_path / "obs"))
