"""Integration: mote firmware -> gateway collector -> FTTT, end to end.

The deepest testbed path: motes run their sample/report state machines on
the event scheduler, levels come from the acoustic channel, frames cross a
lossy acknowledged link, the gateway assembles per-round matrices, and the
unmodified FTTT stack tracks the walker from those matrices.
"""

import numpy as np
import pytest

from repro.core.tracker import FTTTracker
from repro.geometry.apollonius import uncertainty_constant
from repro.geometry.faces import build_face_map
from repro.geometry.grid import Grid
from repro.mobility.paths import l_shape_path
from repro.network.deployment import cross_deployment
from repro.rf.acoustic import AcousticToneChannel
from repro.rf.channel import SampleBatch
from repro.testbed.firmware import FirmwareConfig, MoteFirmware, run_reporting_epoch


@pytest.fixture(scope="module")
def world():
    field = 40.0
    positions = cross_deployment(field, arm_nodes=2)
    channel = AcousticToneChannel(noise_sigma_db=3.0)
    path = l_shape_path(field, speeds=2.0)
    beta = channel.effective_pathloss_exponent(field / 4)
    c = uncertainty_constant(0.5, beta, channel.noise_sigma_db)
    fm = build_face_map(positions, Grid.square(field, 1.0), c)
    return field, positions, channel, path, fm


class TestFirmwareToTracker:
    def run_stack(self, world, link_p, n_rounds=20, seed=0):
        field, positions, channel, path, fm = world
        cfg = FirmwareConfig(k=5, sample_period_s=0.1)
        motes = [MoteFirmware(i, cfg, link_delivery_p=link_p) for i in range(len(positions))]
        rng = np.random.default_rng(seed)

        def level(mote_id, t):
            target = path.position(np.array([t]))[0]
            d = float(np.hypot(*(target - positions[mote_id])))
            return float(channel.observe(np.array([d]), rng)[0])

        collector = run_reporting_epoch(motes, level, n_rounds, rng=seed + 1)
        tracker = FTTTracker(fm, matcher="heuristic")
        period = cfg.k * cfg.sample_period_s
        batches = []
        for r in range(n_rounds):
            rssm = collector.round_matrix(r)
            times = r * period + np.arange(cfg.k) * cfg.sample_period_s
            truth = path.position(times)
            batches.append(SampleBatch(rss=rssm, times=times, positions=truth))
        return tracker.track(batches), motes, collector

    def test_reliable_links_track_the_walker(self, world):
        result, motes, collector = self.run_stack(world, link_p=1.0)
        assert collector.rounds_seen == 20
        assert all(m.dropped_retries == 0 for m in motes)
        assert result.mean_error < 10.0  # quarter of the 40 m playground

    def test_lossy_links_still_track(self, world):
        result, motes, collector = self.run_stack(world, link_p=0.7)
        lost = sum(m.dropped_retries for m in motes)
        assert lost > 0  # faults genuinely happened
        assert np.isfinite(result.mean_error)
        assert result.mean_error < 15.0

    def test_loss_degrades_but_gracefully(self, world):
        clean, _, _ = self.run_stack(world, link_p=1.0)
        lossy, _, _ = self.run_stack(world, link_p=0.5)
        assert lossy.mean_error < max(clean.mean_error * 4.0, 16.0)

    def test_latency_reported(self, world):
        _, _, collector = self.run_stack(world, link_p=0.9)
        assert 0.0 < collector.mean_latency_s < 2.0
