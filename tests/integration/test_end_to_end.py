"""End-to-end integration tests: full pipeline, all trackers, with faults."""

import numpy as np
import pytest

from repro.config import GridConfig, SimulationConfig
from repro.network.basestation import BaseStation
from repro.network.faults import CompositeFaults, CrashFailures, IndependentDropout
from repro.sim.runner import generate_batches, run_all_trackers, run_tracking
from repro.sim.scenario import TRACKER_NAMES, make_scenario


@pytest.fixture(scope="module")
def world():
    cfg = SimulationConfig(n_sensors=10, duration_s=15.0, grid=GridConfig(cell_size_m=3.0))
    return make_scenario(cfg, seed=100)


class TestFullPipeline:
    def test_every_tracker_completes(self, world):
        results = run_all_trackers(world, list(TRACKER_NAMES), 101)
        for name, res in results.items():
            assert len(res) == world.config.n_localizations, name
            assert np.isfinite(res.mean_error), name
            assert np.all(np.isfinite(res.positions)), name

    def test_estimates_inside_field(self, world):
        results = run_all_trackers(world, ["fttt", "fttt-extended", "pm"], 102)
        for res in results.values():
            assert res.positions.min() >= 0
            assert res.positions.max() <= world.config.field_size_m

    def test_fttt_beats_nearest_node(self, world):
        results = run_all_trackers(world, ["fttt", "nearest"], 103)
        assert results["fttt"].mean_error < results["nearest"].mean_error


class TestFaultInjection:
    def test_fttt_survives_heavy_dropout(self, world):
        faults = IndependentDropout(p=0.4)
        tracker = world.make_tracker("fttt")
        res = run_tracking(world, tracker, 104, faults=faults)
        assert np.isfinite(res.mean_error)
        assert res.mean_error < world.config.field_size_m / 2

    def test_fttt_survives_crashes_plus_packet_loss(self, world):
        faults = CompositeFaults(
            models=(CrashFailures(crash_fraction=0.3, horizon_rounds=20), IndependentDropout(p=0.1))
        )
        bs = BaseStation(packet_loss_p=0.05)
        tracker = world.make_tracker("fttt")
        res = run_tracking(world, tracker, 105, faults=faults, basestation=bs)
        assert np.isfinite(res.mean_error)

    def test_graceful_degradation(self, world):
        """More dropout means worse — but not catastrophic — accuracy.

        Random dropout poisons the Eq. 6 fill (a crashed *near* sensor is
        assumed far), so degradation is super-linear; the guarantee is that
        tracking never collapses to field-scale error.
        """
        errors = {}
        for p in (0.0, 0.5):
            tracker = world.make_tracker("fttt")
            res = run_tracking(
                world, tracker, 106, faults=IndependentDropout(p=p)
            )
            errors[p] = res.mean_error
        assert errors[0.0] < errors[0.5]
        assert errors[0.5] < world.config.field_size_m / 3

    def test_all_sensors_dead_still_returns_positions(self, world):
        tracker = world.make_tracker("fttt")
        res = run_tracking(world, tracker, 107, faults=IndependentDropout(p=1.0), n_rounds=3)
        assert len(res) == 3
        assert np.all(np.isfinite(res.positions))


class TestDeterminism:
    def test_same_seed_same_everything(self, world):
        a = run_tracking(world, world.make_tracker("fttt"), 200, n_rounds=10)
        b = run_tracking(world, world.make_tracker("fttt"), 200, n_rounds=10)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.truth, b.truth)

    def test_different_noise_seed_same_truth(self, world):
        a = generate_batches(world, 201, n_rounds=5)
        b = generate_batches(world, 202, n_rounds=5)
        for x, y in zip(a, b):
            assert np.array_equal(x.positions, y.positions)
            assert not np.array_equal(x.rss, y.rss)
