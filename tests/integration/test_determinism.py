"""Cross-cutting determinism audit.

Every stochastic path in the library must be exactly reproducible from its
seeds — the property all figure regeneration rests on.  These tests pin it
across subsystems in one place.
"""

import numpy as np
import pytest

from repro.config import GridConfig, SimulationConfig

CFG = SimulationConfig(n_sensors=8, duration_s=8.0, grid=GridConfig(cell_size_m=4.0))


class TestTrackerDeterminism:
    @pytest.mark.parametrize("name", ["fttt", "fttt-extended", "pm", "direct-mle", "particle", "kalman"])
    def test_identical_runs(self, name):
        from repro.sim.runner import run_tracking
        from repro.sim.scenario import make_scenario

        outs = []
        for _ in range(2):
            scenario = make_scenario(CFG, seed=5)
            tracker = scenario.make_tracker(name)
            outs.append(run_tracking(scenario, tracker, 6, n_rounds=6))
        assert np.array_equal(outs[0].positions, outs[1].positions)
        assert np.array_equal(outs[0].truth, outs[1].truth)


class TestHarnessDeterminism:
    def test_replicated_sweep(self):
        from repro.sim.experiments import replicate_mean_error

        a = replicate_mean_error(CFG, ["fttt"], n_reps=2, seed=3)
        b = replicate_mean_error(CFG, ["fttt"], n_reps=2, seed=3)
        assert a[0].mean_error == b[0].mean_error
        assert a[0].per_rep_means == b[0].per_rep_means

    def test_model_mode(self):
        from repro.geometry.faces import build_face_map
        from repro.geometry.grid import Grid
        from repro.network.deployment import random_deployment
        from repro.sim.modelmode import ModelSampler, run_model_tracking

        nodes = random_deployment(6, 60.0, 1, min_separation=5.0)
        fm = build_face_map(nodes, Grid.square(60.0, 4.0), 1.5)
        sampler = ModelSampler(nodes, 1.5, k=5)
        times = np.arange(10) * 0.5
        pos = np.column_stack([10 + times, np.full_like(times, 30.0)])
        a = run_model_tracking(fm, sampler, pos, times, 7)
        b = run_model_tracking(fm, sampler, pos, times, 7)
        assert np.array_equal(a.positions, b.positions)

    def test_outdoor_testbed(self):
        from repro.testbed.outdoor import build_outdoor_system

        a = build_outdoor_system(seed=2).run(rng=3, n_rounds=6)
        b = build_outdoor_system(seed=2).run(rng=3, n_rounds=6)
        assert np.array_equal(a.positions, b.positions)

    def test_ablations(self):
        from repro.sim.ablations import ablate_noise_structure

        assert ablate_noise_structure(CFG, n_reps=1, seed=9) == ablate_noise_structure(
            CFG, n_reps=1, seed=9
        )

    def test_fault_models_are_rng_driven(self):
        from repro.network.faults import IndependentDropout, IntermittentFaults

        for model_cls in (lambda: IndependentDropout(p=0.3), lambda: IntermittentFaults()):
            masks = []
            for _ in range(2):
                rng = np.random.default_rng(4)
                model = model_cls()
                masks.append(np.stack([model.drop_mask(10, r, rng) for r in range(5)]))
            assert np.array_equal(masks[0], masks[1])

    def test_firmware_epoch(self):
        from repro.testbed.firmware import FirmwareConfig, MoteFirmware, run_reporting_epoch

        def run():
            cfg = FirmwareConfig(k=3)
            motes = [MoteFirmware(i, cfg, link_delivery_p=0.6) for i in range(3)]
            collector = run_reporting_epoch(motes, lambda m, t: 40.0 + m, 4, rng=11)
            return [collector.round_matrix(r) for r in range(4)]

        a, b = run(), run()
        for x, y in zip(a, b):
            assert np.array_equal(x, y, equal_nan=True)

    def test_duty_cycle_loop(self):
        from repro.network.duty_cycle import DutyCycleController
        from repro.sim.runner import run_tracking_with_duty_cycle
        from repro.sim.scenario import make_scenario

        outs = []
        for _ in range(2):
            scenario = make_scenario(CFG, seed=12)
            ctrl = DutyCycleController(scenario.nodes, sensing_range_m=CFG.sensing_range_m)
            res, ctrl = run_tracking_with_duty_cycle(
                scenario, scenario.make_tracker("fttt"), ctrl, 13, n_rounds=6
            )
            outs.append((res.positions.copy(), ctrl.energy_saved_fraction()))
        assert np.array_equal(outs[0][0], outs[1][0])
        assert outs[0][1] == outs[1][1]
