"""Tests for repro.analysis.metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    TrackingErrorSummary,
    compare_trackers,
    format_table,
    summarize_errors,
)
from repro.core.tracker import TrackEstimate, TrackResult


def make_result(errors):
    """TrackResult whose per-round errors equal the given values."""
    res = TrackResult()
    for i, e in enumerate(errors):
        est = TrackEstimate(
            t=float(i),
            position=np.array([float(e), 0.0]),
            face_ids=np.array([0]),
            sq_distance=0.0,
            n_reporting=4,
            visited_faces=1,
        )
        res.append(est, np.zeros(2))
    return res


class TestSummarize:
    def test_from_array(self):
        s = summarize_errors(np.array([1.0, 2.0, 3.0, 4.0]))
        assert s.n_rounds == 4
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.max == pytest.approx(4.0)
        assert s.rmse == pytest.approx(np.sqrt(7.5))

    def test_from_track_result(self):
        res = make_result([3.0, 4.0])
        s = summarize_errors(res)
        assert s.mean == pytest.approx(3.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            summarize_errors(np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            summarize_errors(np.zeros((2, 2)))

    def test_row_matches_header(self):
        s = summarize_errors(np.array([1.0, 2.0]))
        assert len(s.row()) == len(TrackingErrorSummary.header())


class TestCompare:
    def test_multiple_trackers(self):
        out = compare_trackers({"a": make_result([1.0]), "b": make_result([2.0, 4.0])})
        assert out["a"].mean == pytest.approx(1.0)
        assert out["b"].mean == pytest.approx(3.0)

    def test_rejects_empty_mapping(self):
        with pytest.raises(ValueError):
            compare_trackers({})


class TestFormatTable:
    def test_contains_all_rows(self):
        summaries = compare_trackers({"fttt": make_result([1.0]), "pm": make_result([2.0])})
        text = format_table(summaries, title="demo")
        assert "demo" in text
        assert "fttt" in text and "pm" in text
        assert "mean" in text

    def test_accepts_plain_rows(self):
        text = format_table({"x": [1.0, 2.0]}, header=["a", "b"])
        assert "x" in text and "a" in text
