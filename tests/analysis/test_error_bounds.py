"""Tests for repro.analysis.error_bounds (§5.2, Appendix II)."""

import numpy as np
import pytest

from repro.analysis.error_bounds import (
    expected_interface_error,
    simulate_interface_error,
    worst_case_error_bound,
)


class TestExpectedInterfaceError:
    def test_appendix_ii_closed_form(self):
        # E_N = N * f with f = (1/2)^(k-1)
        assert expected_interface_error(5, 10) == pytest.approx(10 * 0.0625)

    def test_zero_pairs_no_error(self):
        assert expected_interface_error(5, 0) == 0.0

    def test_linear_in_n(self):
        e1 = expected_interface_error(4, 7)
        e2 = expected_interface_error(4, 14)
        assert e2 == pytest.approx(2 * e1)

    def test_decreasing_in_k(self):
        es = [expected_interface_error(k, 10) for k in (2, 4, 8)]
        assert all(a > b for a, b in zip(es, es[1:]))


class TestClosedFormGrid:
    """Hand-computed ``E_N = N * (1/2)^(k-1)`` over the quoted (k, N) grid."""

    EXPECTED = {
        (2, 4): 2.0,
        (2, 9): 4.5,
        (2, 16): 8.0,
        (5, 4): 0.25,
        (5, 9): 0.5625,
        (5, 16): 1.0,
        (8, 4): 0.03125,
        (8, 9): 0.0703125,
        (8, 16): 0.125,
    }

    @pytest.mark.parametrize("k", [2, 5, 8])
    @pytest.mark.parametrize("n_pairs", [4, 9, 16])
    def test_matches_hand_computed(self, k, n_pairs):
        # dyadic rationals: the closed form must be *exact*, not approximate
        assert expected_interface_error(k, n_pairs) == self.EXPECTED[(k, n_pairs)]


class TestMonteCarloValidation:
    def test_matches_closed_form(self):
        est = simulate_interface_error(5, 20, n_trials=200_000, rng=0)
        assert est == pytest.approx(expected_interface_error(5, 20), rel=0.05)

    def test_zero_pairs(self):
        assert simulate_interface_error(5, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_interface_error(5, -1)
        with pytest.raises(ValueError):
            simulate_interface_error(5, 3, n_trials=0)


class TestWorstCaseBound:
    def test_eq10_scaling_in_k(self):
        """Bound halves per extra sampling time pair: ~ 2^(-(k-1)/2)."""
        b3 = worst_case_error_bound(3, 1e-3, 40.0)
        b5 = worst_case_error_bound(5, 1e-3, 40.0)
        assert b5 / b3 == pytest.approx(0.5, rel=1e-6)

    def test_scaling_in_density(self):
        """Doubling density should roughly halve the bound (1/rho term)."""
        b1 = worst_case_error_bound(5, 1e-3, 40.0)
        b2 = worst_case_error_bound(5, 2e-3, 40.0)
        assert 0.4 < b2 / b1 < 0.6

    def test_scaling_in_range(self):
        """Doubling R should roughly halve the bound (1/R term)."""
        b1 = worst_case_error_bound(5, 2e-3, 30.0)
        b2 = worst_case_error_bound(5, 2e-3, 60.0)
        assert 0.4 < b2 / b1 < 0.6

    def test_vacuous_when_too_sparse(self):
        with pytest.raises(ValueError, match="vacuous"):
            worst_case_error_bound(5, 1e-6, 10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            worst_case_error_bound(5, 0.0, 40.0)
        with pytest.raises(ValueError):
            worst_case_error_bound(5, 1e-3, 40.0, xi=0.0)
