"""Tests for repro.analysis.report."""

from pathlib import Path

import pytest

from repro.analysis.report import collect_results, render_report, write_report


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig11bc.csv").write_text("tracker,mean_error\nfttt,4.5\npm,6.1\n")
    (d / "custom_thing.csv").write_text("a,b\n1,2\n")
    return d


class TestCollect:
    def test_loads_all_csvs(self, results_dir):
        results = collect_results(results_dir)
        assert {r.result_id for r in results} == {"fig11bc", "custom_thing"}

    def test_known_results_titled(self, results_dir):
        results = {r.result_id: r for r in collect_results(results_dir)}
        assert "Fig. 11" in results["fig11bc"].title
        assert results["fig11bc"].claim != ""

    def test_unknown_results_keep_their_id(self, results_dir):
        results = {r.result_id: r for r in collect_results(results_dir)}
        assert results["custom_thing"].title == "custom_thing"
        assert results["custom_thing"].claim == ""

    def test_rows_parsed(self, results_dir):
        results = {r.result_id: r for r in collect_results(results_dir)}
        assert results["fig11bc"].header == ["tracker", "mean_error"]
        assert results["fig11bc"].rows == [["fttt", "4.5"], ["pm", "6.1"]]

    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="results"):
            collect_results(tmp_path / "nope")

    def test_empty_files_skipped(self, results_dir):
        (results_dir / "empty.csv").write_text("")
        ids = {r.result_id for r in collect_results(results_dir)}
        assert "empty" not in ids


class TestRender:
    def test_contains_sections_and_tables(self, results_dir):
        text = render_report(collect_results(results_dir))
        assert "# Reproduction report" in text
        assert "## Fig. 11(b,c)" in text
        assert "| fttt | 4.5 |" in text

    def test_long_tables_truncated(self, tmp_path):
        d = tmp_path / "r"
        d.mkdir()
        rows = "\n".join(f"{i},{i}" for i in range(30))
        (d / "big.csv").write_text("a,b\n" + rows + "\n")
        text = render_report(collect_results(d))
        assert "more rows" in text


class TestWrite:
    def test_writes_file(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "sub" / "REPORT.md")
        assert out.exists()
        assert out.read_text().startswith("# Reproduction report")

    def test_no_results_raises(self, tmp_path):
        empty = tmp_path / "r"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            write_report(empty, tmp_path / "out.md")
