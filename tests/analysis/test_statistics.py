"""Tests for repro.analysis.statistics."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    bootstrap_mean_ci,
    paired_comparison,
    required_replications,
    welch_test,
)


class TestBootstrapCI:
    def test_contains_mean(self, rng):
        x = rng.normal(10.0, 2.0, 50)
        mean, lo, hi = bootstrap_mean_ci(x, rng=0)
        assert lo <= mean <= hi
        assert mean == pytest.approx(x.mean())

    def test_width_shrinks_with_n(self, rng):
        small = rng.normal(10, 2, 10)
        large = rng.normal(10, 2, 1000)
        _, lo_s, hi_s = bootstrap_mean_ci(small, rng=0)
        _, lo_l, hi_l = bootstrap_mean_ci(large, rng=0)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_coverage_roughly_nominal(self):
        rng = np.random.default_rng(0)
        hits = 0
        for trial in range(200):
            x = rng.normal(5.0, 1.0, 20)
            _, lo, hi = bootstrap_mean_ci(x, confidence=0.9, n_boot=500, rng=trial)
            hits += lo <= 5.0 <= hi
        assert 0.8 < hits / 200 < 0.97

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.array([1.0]))
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.array([1.0, 2.0]), confidence=1.0)


class TestPairedComparison:
    def test_detects_clear_difference(self, rng):
        a = rng.normal(4.0, 0.5, 20)
        b = a + 2.0 + rng.normal(0, 0.2, 20)
        cmp = paired_comparison(a, b, rng=0)
        assert cmp.a_is_better
        assert cmp.mean_diff == pytest.approx(2.0, abs=0.3)
        assert cmp.win_rate_a == 1.0
        assert cmp.ci_lo > 0

    def test_no_difference_not_significant(self, rng):
        a = rng.normal(5.0, 1.0, 15)
        b = a + rng.normal(0, 0.01, 15)
        cmp = paired_comparison(a, b, rng=0)
        assert not cmp.a_is_better or abs(cmp.mean_diff) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_comparison(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            paired_comparison(np.zeros(1), np.zeros(1))

    def test_fttt_vs_direct_mle_significant(self, fast_config):
        """The headline comparison passes a paired significance test."""
        from repro.sim.runner import run_all_trackers
        from repro.sim.scenario import make_scenario

        fttt, mle = [], []
        for seed in range(6):
            scenario = make_scenario(fast_config.with_(duration_s=12.0), seed=seed)
            results = run_all_trackers(scenario, ["fttt", "direct-mle"], 50 + seed)
            fttt.append(results["fttt"].mean_error)
            mle.append(results["direct-mle"].mean_error)
        cmp = paired_comparison(np.array(fttt), np.array(mle), rng=0)
        assert cmp.mean_diff > 0  # FTTT lower error on average
        assert cmp.win_rate_a >= 0.5


class TestWelch:
    def test_detects_difference(self, rng):
        t, p = welch_test(rng.normal(0, 1, 50), rng.normal(2, 1, 50))
        assert p < 1e-6

    def test_no_difference(self, rng):
        t, p = welch_test(rng.normal(0, 1, 50), rng.normal(0, 1, 50))
        assert p > 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            welch_test(np.array([1.0]), np.array([1.0, 2.0]))


class TestRequiredReplications:
    def test_formula(self, rng):
        pilot = rng.normal(5.0, 2.0, 10)
        n = required_replications(pilot, target_halfwidth=0.5)
        # n = (1.96 * s / 0.5)^2 for 95%
        s = pilot.std(ddof=1)
        assert n == int(np.ceil((1.959963984540054 * s / 0.5) ** 2))

    def test_tighter_target_needs_more(self, rng):
        pilot = rng.normal(5.0, 2.0, 10)
        assert required_replications(pilot, target_halfwidth=0.2) > required_replications(
            pilot, target_halfwidth=1.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            required_replications(np.array([1.0]), target_halfwidth=0.5)
        with pytest.raises(ValueError):
            required_replications(np.array([1.0, 2.0]), target_halfwidth=0.0)
