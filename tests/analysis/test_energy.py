"""Tests for repro.analysis.energy."""

import numpy as np
import pytest

from repro.analysis.energy import EnergyLedger, EnergyModel, project_lifetime


class TestEnergyModel:
    def test_defaults_positive(self):
        m = EnergyModel()
        assert m.battery_j > 0
        assert m.sleep_j < m.idle_listen_j

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(sample_j=-1.0)
        with pytest.raises(ValueError):
            EnergyModel(battery_j=0.0)


class TestEnergyLedger:
    def test_charge_round_all_awake(self):
        m = EnergyModel(sample_j=1.0, report_tx_j=2.0, idle_listen_j=0.5, battery_j=100.0)
        led = EnergyLedger(3, m)
        led.charge_round(k=4)
        # 4 samples + idle + report = 4 + 0.5 + 2 = 6.5 each
        assert np.allclose(led.spent_j, 6.5)
        assert led.rounds == 1

    def test_sleeping_sensors_cheap(self):
        m = EnergyModel(sample_j=1.0, report_tx_j=2.0, idle_listen_j=0.5, sleep_j=0.01)
        led = EnergyLedger(2, m)
        led.charge_round(k=4, awake=np.array([True, False]))
        assert led.spent_j[0] == pytest.approx(6.5)
        assert led.spent_j[1] == pytest.approx(0.01)

    def test_relay_costs_added(self):
        m = EnergyModel(sample_j=0.0, report_tx_j=1.0, idle_listen_j=0.0, relay_tx_j=1.0)
        led = EnergyLedger(2, m)
        led.charge_round(k=0, relay_counts=np.array([3, 0]))
        assert led.spent_j[0] == pytest.approx(4.0)  # own report + 3 relays
        assert led.spent_j[1] == pytest.approx(1.0)

    def test_remaining_and_death(self):
        m = EnergyModel(sample_j=1.0, report_tx_j=0.0, idle_listen_j=0.0, battery_j=10.0)
        led = EnergyLedger(1, m)
        for _ in range(12):
            led.charge_round(k=1)
        assert led.remaining_j[0] == 0.0
        assert led.dead[0]

    def test_lifetime_projection(self):
        m = EnergyModel(sample_j=1.0, report_tx_j=0.0, idle_listen_j=0.0, battery_j=100.0)
        led = EnergyLedger(2, m)
        led.charge_round(k=2)
        assert led.projected_lifetime_rounds() == pytest.approx(50.0)

    def test_no_rounds_infinite_lifetime(self):
        led = EnergyLedger(2, EnergyModel())
        assert led.projected_lifetime_rounds() == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyLedger(0, EnergyModel())
        led = EnergyLedger(2, EnergyModel())
        with pytest.raises(ValueError):
            led.charge_round(k=-1)


class TestProjectLifetime:
    def test_duty_cycling_extends_lifetime(self):
        full = project_lifetime(10, 5, duty_cycle=1.0)
        half = project_lifetime(10, 5, duty_cycle=0.5)
        assert half["mean_rounds"] > full["mean_rounds"]
        assert half["duty_cycle_gain"] > 1.0

    def test_relay_load_shortens_bottleneck(self):
        light = project_lifetime(10, 5, max_relay_load=0)
        heavy = project_lifetime(10, 5, max_relay_load=8)
        assert heavy["bottleneck_rounds"] < light["bottleneck_rounds"]

    def test_consistency_with_ledger(self):
        m = EnergyModel()
        proj = project_lifetime(4, 5, model=m, duty_cycle=1.0)
        led = EnergyLedger(4, m)
        for _ in range(5):
            led.charge_round(k=5)
        assert led.projected_lifetime_rounds() == pytest.approx(proj["mean_rounds"], rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            project_lifetime(10, 5, duty_cycle=0.0)
        with pytest.raises(ValueError):
            project_lifetime(10, 5, max_relay_load=-1)
