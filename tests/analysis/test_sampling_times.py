"""Tests for repro.analysis.sampling_times (§5.1, Appendix I)."""

import numpy as np
import pytest

from repro.analysis.sampling_times import (
    all_flips_probability,
    miss_probability,
    required_sampling_times,
    simulate_flip_capture,
)


class TestMissProbability:
    def test_closed_form(self):
        assert miss_probability(1) == 1.0
        assert miss_probability(2) == 0.5
        assert miss_probability(5) == pytest.approx(0.0625)

    def test_decreasing_in_k(self):
        fs = [miss_probability(k) for k in range(1, 10)]
        assert all(a > b for a, b in zip(fs, fs[1:]))

    def test_rejects_k_below_one(self):
        with pytest.raises(ValueError):
            miss_probability(0)


class TestAllFlipsProbability:
    def test_single_pair_base_case(self):
        assert all_flips_probability(5, 1) == pytest.approx(1 - 0.0625)

    def test_decreasing_in_n_pairs(self):
        ps = [all_flips_probability(5, n) for n in (1, 5, 20, 100)]
        assert all(a >= b for a, b in zip(ps, ps[1:]))

    def test_increasing_in_k(self):
        ps = [all_flips_probability(k, 50) for k in (3, 5, 9, 15)]
        assert all(a < b for a, b in zip(ps, ps[1:]))

    def test_rejects_zero_pairs(self):
        with pytest.raises(ValueError):
            all_flips_probability(5, 0)


class TestRequiredSamplingTimes:
    def test_paper_worked_example(self):
        """20 sensors -> N = C(20,2) = 190 pairs; 99% confidence -> k = 16."""
        assert required_sampling_times(190, 0.99) == 16

    def test_satisfies_threshold(self):
        for n_pairs in (1, 10, 190, 780):
            for conf in (0.9, 0.99):
                k = required_sampling_times(n_pairs, conf)
                assert all_flips_probability(k, n_pairs) > conf
                if k > 1:
                    assert all_flips_probability(k - 1, n_pairs) <= conf

    def test_logarithmic_growth(self):
        """The paper's headline: even dense networks need few samples."""
        k_small = required_sampling_times(10, 0.99)
        k_huge = required_sampling_times(10_000, 0.99)
        assert k_huge - k_small <= 12

    def test_single_pair(self):
        k = required_sampling_times(1, 0.9)
        assert all_flips_probability(k, 1) > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            required_sampling_times(10, 1.0)
        with pytest.raises(ValueError):
            required_sampling_times(0, 0.9)


class TestClosedFormGrid:
    """Hand-computed k over the (lambda, N) grid the §5.1 rule is quoted for.

    Expected values derived independently: the smallest k with
    ``(1 - 2^-(k-1))^(N-1) > lambda``, evaluated by direct iteration.
    """

    EXPECTED = {
        (0.9, 4): 6,
        (0.9, 9): 8,
        (0.9, 16): 9,
        (0.99, 4): 10,
        (0.99, 9): 11,
        (0.99, 16): 12,
        (0.999, 4): 13,
        (0.999, 9): 14,
        (0.999, 16): 15,
    }

    @pytest.mark.parametrize("confidence", [0.9, 0.99, 0.999])
    @pytest.mark.parametrize("n_pairs", [4, 9, 16])
    def test_required_k_matches_hand_computed(self, confidence, n_pairs):
        assert required_sampling_times(n_pairs, confidence) == self.EXPECTED[
            (confidence, n_pairs)
        ]

    @pytest.mark.parametrize("confidence", [0.9, 0.99, 0.999])
    @pytest.mark.parametrize("n_pairs", [4, 9, 16])
    def test_k_brackets_the_log_bound(self, confidence, n_pairs):
        """k is the first integer strictly beyond 1 - log2(1 - lambda^(1/(N-1)))."""
        k = required_sampling_times(n_pairs, confidence)
        bound = 1.0 - np.log2(1.0 - confidence ** (1.0 / (n_pairs - 1)))
        assert k - 1 <= bound < k


class TestMonteCarlo:
    def test_matches_closed_form_single_pair(self):
        est = simulate_flip_capture(5, 1, n_trials=200_000, rng=0)
        assert est == pytest.approx(all_flips_probability(5, 1), abs=0.005)

    def test_matches_closed_form_many_pairs(self):
        # independence across pairs: closed form (1-f)^N (the Appendix-I
        # derivation's N-1 exponent is a loose upper variant; the MC truth
        # for independent pairs is (1-f)^N, within a factor (1-f) of it)
        k, n_pairs = 5, 20
        est = simulate_flip_capture(k, n_pairs, n_trials=100_000, rng=1)
        f = miss_probability(k)
        assert (1 - f) ** n_pairs <= est + 0.01
        assert est <= (1 - f) ** (n_pairs - 1) + 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_flip_capture(0, 1)
        with pytest.raises(ValueError):
            simulate_flip_capture(5, 1, n_trials=0)
