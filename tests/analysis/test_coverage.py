"""Tests for repro.analysis.coverage."""

import numpy as np
import pytest

from repro.analysis.coverage import coverage_field, coverage_report, density_tradeoff
from repro.geometry.grid import Grid
from repro.network.deployment import grid_deployment


class TestCoverageField:
    def test_counts_within_range(self, four_nodes):
        grid = Grid.square(100.0, 5.0)
        counts = coverage_field(four_nodes, grid, 40.0)
        assert counts.shape == (grid.n_cells,)
        assert counts.max() <= 4
        # the field centre hears all four sensors (distance ~28 m)
        centre_cell = grid.cell_of(np.array([[50.0, 50.0]]))[0]
        assert counts[centre_cell] == 4

    def test_zero_range_rejected(self, four_nodes):
        with pytest.raises(ValueError):
            coverage_field(four_nodes, Grid.square(100.0, 5.0), 0.0)

    def test_corners_hear_fewer(self, four_nodes):
        grid = Grid.square(100.0, 5.0)
        counts = coverage_field(four_nodes, grid, 40.0)
        corner_cell = grid.cell_of(np.array([[2.0, 2.0]]))[0]
        centre_cell = grid.cell_of(np.array([[50.0, 50.0]]))[0]
        assert counts[corner_cell] < counts[centre_cell]


class TestCoverageReport:
    def test_report_fields(self, four_nodes):
        report = coverage_report(four_nodes, Grid.square(100.0, 5.0), 40.0)
        assert report.n_sensors == 4
        assert 0 <= report.uncovered_fraction <= 1
        assert report.k_coverage_fraction[1] >= report.k_coverage_fraction[2]
        assert report.min_hearing_count <= report.mean_hearing_count <= report.max_hearing_count

    def test_k_coverage_monotone(self, four_nodes):
        report = coverage_report(four_nodes, Grid.square(100.0, 5.0), 40.0, k_levels=(1, 2, 3, 4))
        fractions = [report.k_coverage_fraction[k] for k in (1, 2, 3, 4)]
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))

    def test_dense_grid_supports_tracking(self):
        nodes = grid_deployment(25, 100.0)
        report = coverage_report(nodes, Grid.square(100.0, 5.0), 40.0)
        assert report.supports_pairwise_tracking()

    def test_sparse_does_not(self):
        nodes = np.array([[10.0, 10.0], [90.0, 90.0]])
        report = coverage_report(nodes, Grid.square(100.0, 5.0), 20.0)
        assert not report.supports_pairwise_tracking()


class TestDensityTradeoff:
    def test_rows_and_directions(self):
        rows = density_tradeoff([8, 32], 100.0, 40.0, seed=3)
        assert len(rows) == 2
        sparse, dense = rows
        # accuracy side improves with density...
        assert dense["mean_hearing"] > sparse["mean_hearing"]
        assert dense["two_coverage"] >= sparse["two_coverage"]
        # ...communication side worsens (the paper's trade-off)
        assert dense["max_relay_load"] >= sparse["max_relay_load"]
        assert dense["lifetime_rounds"] <= sparse["lifetime_rounds"]
