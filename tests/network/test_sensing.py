"""Tests for repro.network.sensing — the grouping-sampling driver."""

import numpy as np
import pytest

from repro.network.sensing import GroupSampler
from repro.rf.channel import RssChannel
from repro.rf.noise import NoNoise
from repro.rf.pathloss import LogDistancePathLoss


@pytest.fixture
def sampler(four_nodes):
    channel = RssChannel(
        nodes=four_nodes,
        pathloss=LogDistancePathLoss(exponent=4.0, p0_dbm=-40.0),
        noise=NoNoise(),
        sensing_range_m=None,
    )
    return GroupSampler(channel=channel, k=5, sampling_rate_hz=10.0)


def linear_path(times):
    times = np.atleast_1d(np.asarray(times, dtype=float))
    return np.column_stack([10.0 + 2.0 * times, np.full_like(times, 50.0)])


class TestGroupSampler:
    def test_group_duration(self, sampler):
        assert sampler.group_duration_s == pytest.approx(0.5)

    def test_sample_group_shapes(self, sampler, rng):
        batch = sampler.sample_group(linear_path, 1.0, rng)
        assert batch.rss.shape == (5, 4)
        assert np.allclose(batch.times, 1.0 + np.arange(5) / 10.0)

    def test_positions_track_the_path(self, sampler, rng):
        batch = sampler.sample_group(linear_path, 0.0, rng)
        assert np.allclose(batch.positions, linear_path(batch.times))

    def test_moving_target_changes_rss(self, sampler, rng):
        batch = sampler.sample_group(linear_path, 0.0, rng)
        # noiseless channel, moving target: consecutive samples differ
        assert not np.allclose(batch.rss[0], batch.rss[-1])

    def test_static_target_constant_rss(self, sampler, rng):
        batch = sampler.sample_static(np.array([33.0, 44.0]), rng)
        assert np.allclose(batch.rss, batch.rss[0][None, :])

    def test_drop_mask_applied(self, sampler, rng):
        batch = sampler.sample_group(
            linear_path, 0.0, rng, drop_mask=np.array([True, False, False, False])
        )
        assert np.isnan(batch.rss[:, 0]).all()

    def test_clock_jitter_changes_observations(self, four_nodes):
        channel = RssChannel(
            nodes=four_nodes,
            pathloss=LogDistancePathLoss(),
            noise=NoNoise(),
            sensing_range_m=None,
        )
        sync = GroupSampler(channel=channel, k=3, sampling_rate_hz=10.0, clock_jitter_s=0.0)
        jit = GroupSampler(channel=channel, k=3, sampling_rate_hz=10.0, clock_jitter_s=0.05)
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        b_sync = sync.sample_group(linear_path, 0.0, rng1)
        b_jit = jit.sample_group(linear_path, 0.0, rng2)
        assert not np.allclose(b_sync.rss, b_jit.rss)
        # nominal positions are reported identically
        assert np.allclose(b_sync.positions, b_jit.positions)

    def test_jitter_respects_drop_mask(self, four_nodes, rng):
        channel = RssChannel(nodes=four_nodes, noise=NoNoise(), sensing_range_m=None)
        jit = GroupSampler(channel=channel, k=3, clock_jitter_s=0.05)
        batch = jit.sample_group(linear_path, 0.0, rng, drop_mask=np.array([False, True, False, False]))
        assert np.isnan(batch.rss[:, 1]).all()

    def test_jitter_respects_sensing_range(self, four_nodes, rng):
        channel = RssChannel(nodes=four_nodes, noise=NoNoise(), sensing_range_m=10.0)
        jit = GroupSampler(channel=channel, k=3, clock_jitter_s=0.05)
        batch = jit.sample_group(lambda t: np.column_stack([np.full(len(np.atleast_1d(t)), 30.0), np.full(len(np.atleast_1d(t)), 30.0)]), 0.0, rng)
        # only the co-located node (30,30) is within 10 m
        assert not np.isnan(batch.rss[:, 0]).any()
        assert np.isnan(batch.rss[:, 1:]).all()

    def test_bad_path_fn_rejected(self, sampler, rng):
        with pytest.raises(ValueError, match="path_fn"):
            sampler.sample_group(lambda t: np.zeros((1, 2)), 0.0, rng)

    def test_validation(self, sampler):
        with pytest.raises(ValueError):
            GroupSampler(channel=sampler.channel, k=0)
        with pytest.raises(ValueError):
            GroupSampler(channel=sampler.channel, sampling_rate_hz=0.0)
        with pytest.raises(ValueError):
            GroupSampler(channel=sampler.channel, clock_jitter_s=-0.1)
